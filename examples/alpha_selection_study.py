"""Study the α-selection mechanism (Section II-F2) on expert revisions.

Runs the expert campaign, then shows the edit-distance spectrum of the
revision dataset R and what each α keeps — the paper's "quality control
of human input".

    python examples/alpha_selection_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core.selection import select_by_alpha
from repro.data import generate_dataset
from repro.experts import ExpertCampaign


def main() -> None:
    rng = np.random.default_rng(0)
    dataset = generate_dataset(rng, 2000)
    campaign = ExpertCampaign().run(dataset, rng)
    records = campaign.records
    distances = np.array([r.edit_distance for r in records])

    print(f"expert revision dataset R: {len(records)} pairs")
    print(f"edit distance: min {distances.min()}, median "
          f"{np.median(distances):.0f}, p90 {np.percentile(distances, 90):.0f},"
          f" max {distances.max()}")

    rows = []
    for alpha in (0.1, 0.3, 0.5, 0.7, 1.0):
        selected = select_by_alpha(records, alpha)
        kept = np.array([r.edit_distance for r in selected])
        rows.append([
            alpha, len(selected), f"{kept.mean():.1f}", int(kept.min()),
            f"{100 * sum(r.response_bucket == 'expand' for r in selected) / len(selected):.0f}%",
        ])
    print(format_table(
        ["alpha", "kept", "mean distance", "min distance", "expand share"],
        rows,
        title="\nwhat each alpha keeps (paper's main setting: alpha = 0.3)",
    ))

    smallest = sorted(records, key=lambda r: r.edit_distance)[0]
    largest = sorted(records, key=lambda r: -r.edit_distance)[0]
    print("\nsmallest revision kept only at high alpha (near-identity):")
    print(f"  before: {smallest.original.response}")
    print(f"  after : {smallest.revised.response}")
    print("largest revision (always kept):")
    print(f"  before: {largest.original.response}")
    print(f"  after : {largest.revised.response}")


if __name__ == "__main__":
    main()
