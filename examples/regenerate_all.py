"""Index of every reproduced table and figure, with its bench target.

    python examples/regenerate_all.py            # print the index
    pytest benchmarks/ --benchmark-only          # regenerate everything
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.pipeline import EXPERIMENTS


def main() -> None:
    print(format_table(
        ["Experiment", "Description", "Bench target"],
        [[e.exp_id, e.description, e.bench_target]
         for e in EXPERIMENTS.values()],
        title="CoachLM reproduction — experiment index "
              "(see EXPERIMENTS.md for paper-vs-measured)",
    ))
    print("\nRun a single experiment, e.g.:")
    print("  pytest benchmarks/test_bench_fig4_chatgpt_hist.py --benchmark-only -s")
    print("Scale and budget knobs: REPRO_SCALE=ci|bench|full, "
          "REPRO_BENCH_ITEMS=<n>, REPRO_SWEEP_SUBSET=<n>")


if __name__ == "__main__":
    main()
