"""Audit the quality of an instruction dataset against the Table II rubric.

Scores every pair with the nine-dimension criteria, prints the violation
profile, and rates the dataset with the ChatGPT-sim judge (the Fig. 4
instrument).  Useful standalone: point it at any JSONL dataset produced by
this library.

    python examples/dataset_quality_report.py [path/to/dataset.jsonl]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis import build_rating_histogram
from repro.data import InstructionDataset, generate_dataset
from repro.judges import ChatGPTJudge
from repro.quality import dataset_quality_report


def main() -> None:
    if len(sys.argv) > 1:
        dataset = InstructionDataset.load_jsonl(sys.argv[1])
        print(f"loaded {len(dataset)} pairs from {sys.argv[1]}")
    else:
        dataset = generate_dataset(np.random.default_rng(0), 1500)
        print(f"generated a fresh {len(dataset)}-pair ALPACA52K simulacrum")

    report = dataset_quality_report(dataset)
    print("\nTable II rubric audit")
    print("\n".join(report.summary_lines()))

    judge = ChatGPTJudge()
    ratings = judge.rate_dataset(dataset, np.random.default_rng(1))
    hist = build_rating_histogram(ratings)
    print()
    print(hist.render(title="ChatGPT-sim accuracy ratings (Fig. 4 instrument)"))


if __name__ == "__main__":
    main()
