"""Quickstart: train CoachLM and revise an instruction dataset.

Runs the paper's core loop end-to-end at a small scale (a few minutes on
CPU): generate an ALPACA52K simulacrum, run the expert revision campaign,
coach-tune a backbone on the top-α revision pairs, and revise fresh pairs.

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.config import get_scale
from repro.core import CoachLM
from repro.core.training import CoachTrainingConfig
from repro.data import generate_dataset
from repro.experts import ExpertCampaign
from repro.llm import BACKBONES, build_backbone, build_tokenizer
from repro.quality import dataset_quality_report


def main() -> None:
    scale = get_scale("bench").scaled(
        dataset_size=400, expert_sample_size=400, pretrain_steps=300
    )
    rng = np.random.default_rng(0)
    tokenizer = build_tokenizer()

    print("1) generating the ALPACA52K simulacrum ...")
    dataset = generate_dataset(rng, scale.dataset_size)
    report = dataset_quality_report(dataset)
    print(f"   {len(dataset)} pairs; mean response quality "
          f"{report.mean_response_score:.1f}; "
          f"{report.needs_revision_fraction:.0%} need revision")

    print("2) running the expert revision campaign (Table III/IV) ...")
    campaign = ExpertCampaign().run(dataset, rng)
    print(f"   excluded {len(campaign.excluded)} pairs, revised "
          f"{len(campaign.records)}, "
          f"{campaign.costs.total_days:.1f} person-days at paper rates")

    print("3) pre-training the ChatGLM2-sim backbone (the slow step) ...")
    backbone = build_backbone(BACKBONES["chatglm2-sim"], scale, tokenizer, rng)

    print("4) coach instruction tuning at alpha = 0.3 ...")
    coach = CoachLM.train(
        backbone, tokenizer, campaign.records, rng, alpha=0.3,
        config=CoachTrainingConfig(epochs=scale.coach_epochs,
                                   learning_rate=scale.coach_learning_rate),
    )

    print("5) revising pairs:\n")
    sample = dataset.sample(8, np.random.default_rng(5))
    for pair in sample:
        revised, outcome = coach.revise_pair(pair)
        print(f"   [{outcome.value}]")
        print(f"   instruction: {pair.instruction}")
        print(f"   response   : {pair.response}")
        if outcome.value == "revised":
            print(f"   -> instr   : {revised.instruction}")
            print(f"   -> resp    : {revised.response}")
        print()

    revised_ds, stats = coach.revise_dataset(dataset.sample(120, rng))
    after = dataset_quality_report(revised_ds)
    print(f"6) revised 120 pairs: outcomes {stats.outcomes}")
    print(f"   mean response quality {report.mean_response_score:.1f} -> "
          f"{after.mean_response_score:.1f}")


if __name__ == "__main__":
    main()
