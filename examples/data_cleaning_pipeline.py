"""Deployment scenario: CoachLM inside a data-management platform (Fig. 6).

Simulates the Huawei production integration of Section IV-A: raw user
cases flow through rule-based scripts, optionally through CoachLM, and
then to human annotators whose time is accounted per remaining defect.

    python examples/data_cleaning_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.config import get_scale
from repro.core import CoachLM
from repro.core.training import CoachTrainingConfig
from repro.data import generate_dataset
from repro.deployment import DataManagementPlatform, measure_inference_throughput
from repro.experts import ExpertCampaign
from repro.llm import BACKBONES, build_backbone, build_tokenizer


def main() -> None:
    scale = get_scale("bench").scaled(
        dataset_size=300, expert_sample_size=300, pretrain_steps=300
    )
    rng = np.random.default_rng(1)
    tokenizer = build_tokenizer()

    print("training a CoachLM to deploy (small budget) ...")
    dataset = generate_dataset(rng, scale.dataset_size)
    campaign = ExpertCampaign().run(dataset, rng)
    backbone = build_backbone(BACKBONES["chatglm2-sim"], scale, tokenizer, rng)
    coach = CoachLM.train(
        backbone, tokenizer, campaign.records, rng, alpha=0.3,
        config=CoachTrainingConfig(epochs=scale.coach_epochs,
                                   learning_rate=scale.coach_learning_rate),
    )

    platform = DataManagementPlatform(coach=coach)
    batch = 150

    print(f"\nprocessing a batch of {batch} raw user cases ...")
    baseline = platform.run_cleaning_batch(
        np.random.default_rng(2), batch, use_coachlm=False
    )
    boosted = platform.run_cleaning_batch(
        np.random.default_rng(2), batch, use_coachlm=True
    )

    print(f"  rules + annotators            : "
          f"{baseline.pairs_per_person_day:.1f} pairs/person-day")
    print(f"  rules + CoachLM + annotators  : "
          f"{boosted.pairs_per_person_day:.1f} pairs/person-day")
    net = DataManagementPlatform.net_improvement(baseline, boosted)
    print(f"  net CoachLM contribution      : {net:+.1%} "
          f"(paper: +15-20% on a 40k batch)")

    throughput = measure_inference_throughput(
        coach, platform.intake(np.random.default_rng(3), 48)
    )
    print(f"  CoachLM inference             : "
          f"{throughput.samples_per_second:.2f} samples/s on this CPU")


if __name__ == "__main__":
    main()
