"""IFD-guided data selection: score, revise the hardest pairs, re-score.

The end-to-end `repro.scoring` workflow (docs/scoring.md): train a small
CoachLM, teacher-force an IFD difficulty verdict for every pair in a
dataset, spend the coach's revision budget on the top-k *hardest* pairs
only (highest IFD — where the instruction helps least), run each
revision through the revise→score→re-revise self-review loop, then
re-score and print the difficulty and perplexity deltas the revisions
bought.

    python examples/data_selection.py
"""

from __future__ import annotations

import numpy as np

from repro.config import get_scale
from repro.core import CoachLM
from repro.core.coachlm import RevisionOutcome
from repro.core.training import CoachTrainingConfig
from repro.data import generate_dataset
from repro.experts import ExpertCampaign
from repro.llm import BACKBONES, build_backbone, build_tokenizer
from repro.scoring import dataset_ifd, select_top_k

N_PAIRS = 48
TOP_K = 12


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


def main() -> None:
    scale = get_scale("bench").scaled(
        dataset_size=400, expert_sample_size=400, pretrain_steps=300
    )
    rng = np.random.default_rng(0)
    tokenizer = build_tokenizer()

    print("1) training a coach (pretrain + coach tuning, the slow step) ...")
    corpus = generate_dataset(rng, scale.dataset_size)
    campaign = ExpertCampaign().run(corpus, rng)
    backbone = build_backbone(BACKBONES["chatglm2-sim"], scale, tokenizer, rng)
    coach = CoachLM.train(
        backbone, tokenizer, campaign.records, rng, alpha=0.3,
        config=CoachTrainingConfig(epochs=scale.coach_epochs,
                                   learning_rate=scale.coach_learning_rate),
    )

    dataset = generate_dataset(np.random.default_rng(1234), N_PAIRS)
    print(f"2) scoring {len(dataset)} fresh pairs "
          "(2 teacher-forced passes each) ...")
    before = dataset_ifd(coach.model, tokenizer, list(dataset), batch_size=16)
    scoreable = [v for v in before if v is not None]
    print(
        f"   IFD before revision: mean {_mean([v.ifd for v in scoreable]):.3f}, "
        f"hardest {max(v.ifd for v in scoreable):.3f}, "
        f"easiest {min(v.ifd for v in scoreable):.3f} "
        f"({len(scoreable)}/{len(dataset)} scoreable)"
    )

    selected, rest = select_top_k(before, TOP_K)
    print(f"3) selected the {len(selected)} hardest pairs for revision; "
          f"{len(rest)} pass through untouched")

    revised, stats = coach.revise_dataset(
        dataset, revise_top_k=TOP_K, self_review=True
    )
    outcome_line = ", ".join(
        f"{outcome}={count}" for outcome, count in sorted(stats.outcomes.items())
    )
    print(f"   revision outcomes: {outcome_line}")

    print("4) re-scoring the revised dataset ...")
    after = dataset_ifd(coach.model, tokenizer, list(revised), batch_size=16)
    changed = [
        i for i in selected
        if (revised[i].instruction, revised[i].response)
        != (dataset[i].instruction, dataset[i].response)
    ]
    kept = stats.outcomes.get(RevisionOutcome.REVISED.value, 0)
    rejected = stats.outcomes.get(RevisionOutcome.REVIEW_REJECTED.value, 0)
    print(f"   self-review kept {kept} revisions, rolled back {rejected} "
          f"({len(changed)} pairs changed text)")

    sel_before = [before[i] for i in selected if before[i] and after[i]]
    sel_after = [after[i] for i in selected if before[i] and after[i]]
    delta_ifd = _mean([a.ifd for a in sel_after]) - _mean(
        [b.ifd for b in sel_before]
    )
    delta_ppl = _mean([a.response_perplexity for a in sel_after]) - _mean(
        [b.response_perplexity for b in sel_before]
    )
    print(
        f"5) quality delta on the selected pairs: "
        f"mean IFD {_mean([b.ifd for b in sel_before]):.3f} → "
        f"{_mean([a.ifd for a in sel_after]):.3f} ({delta_ifd:+.3f}), "
        f"mean response perplexity "
        f"{_mean([b.response_perplexity for b in sel_before]):.1f} → "
        f"{_mean([a.response_perplexity for a in sel_after]):.1f} "
        f"({delta_ppl:+.1f})"
    )
    # The self-review loop's guarantee: every *kept* revision strictly
    # improved perplexity or IFD, so the selected-set deltas can only be
    # driven down by pairs the coach actually improved.
    for i in changed:
        assert before[i] is not None and after[i] is not None
        assert (
            after[i].response_perplexity < before[i].response_perplexity
            or after[i].ifd < before[i].ifd
        ), f"pair {i} was kept without improving"
    print("   every kept revision improved perplexity or IFD")


if __name__ == "__main__":
    main()
