"""Run the online revision service end to end: server, HTTP, metrics.

Starts a :class:`RevisionServer` over a tiny CoachLM, exposes it through
the stdlib HTTP front-end on an ephemeral port, posts a stream of user
cases (including a duplicate, to show the dedup cache), and prints
per-request outcomes plus the server's latency/throughput metrics —
the online half of the paper's Fig. 6 deployment.

    python examples/online_revision_service.py
"""

from __future__ import annotations

import json
import urllib.request

import numpy as np

from repro.config import ServingConfig
from repro.core.coachlm import CoachLM
from repro.data import generate_dataset
from repro.llm import build_tokenizer
from repro.nn import TransformerConfig, TransformerLM
from repro.serving import RevisionHTTPFrontend, RevisionServer

N_CASES = 8


def build_coach() -> CoachLM:
    """A demo-scale coach (raw backbone; training is out of scope here)."""
    tokenizer = build_tokenizer()
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=32,
        n_layers=1,
        n_heads=4,
        max_seq_len=192,
    )
    model = TransformerLM(config, np.random.default_rng(9))
    return CoachLM(model, tokenizer)


def post_revision(base: str, instruction: str, response: str) -> dict:
    request = urllib.request.Request(
        base + "/revise",
        data=json.dumps(
            {"instruction": instruction, "response": response}
        ).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120) as reply:
        return json.load(reply)


def main() -> None:
    coach = build_coach()
    cases = list(generate_dataset(np.random.default_rng(31), N_CASES))
    server = RevisionServer(coach, ServingConfig(max_batch=4, cache_capacity=64))
    with RevisionHTTPFrontend(server) as frontend:
        base = frontend.address
        print(f"revision service listening on {base}")

        print(f"\nposting {N_CASES} user cases (plus one duplicate):")
        for index, pair in enumerate(cases + cases[:1]):
            blob = post_revision(base, pair.instruction, pair.response)
            print(
                f"  case {index}: outcome={blob['outcome']:<14} "
                f"source={blob['source']:<6} "
                f"latency={1000 * blob['latency_s']:.1f} ms"
            )

        with urllib.request.urlopen(base + "/metrics", timeout=10) as reply:
            metrics = json.load(reply)

    print("\nserving metrics:")
    print(f"  completed        : {metrics['completed']}")
    print(f"  served by source : {metrics['by_source']}")
    print(f"  latency p50      : {1000 * metrics['latency_p50_s']:.1f} ms")
    print(f"  latency p95      : {1000 * metrics['latency_p95_s']:.1f} ms")
    print(f"  engine tokens/sec: {metrics['tokens_per_sec']:.0f}")
    print("\nthe duplicate case was served from the cache without decoding.")


if __name__ == "__main__":
    main()
