"""Table X — human evaluation of Alpaca-CoachLM vs Alpaca responses."""

from conftest import BENCH_ITEMS, print_banner

from repro.analysis import format_table
from repro.judges import HumanPanel


def test_table10_human_evaluation(benchmark, wb):
    panel = HumanPanel()

    def rate_models():
        scores = {}
        for key in ("alpaca", "alpaca-coachlm"):
            responses = wb.model_responses(key, "coachlm150",
                                           max_items=BENCH_ITEMS)
            rng = wb.rng(f"table10-{key}")
            scores[key] = [panel.rate_response(p, rng) for p in responses]
        return scores

    scores = benchmark.pedantic(rate_models, rounds=1, iterations=1)
    rows = []
    for key, label in (("alpaca", "Alpaca (paper 58.6)"),
                       ("alpaca-coachlm", "Alpaca-CoachLM (paper 64.3)")):
        avg = HumanPanel.average_by_rater(scores[key])
        rows.append([label] + [f"{avg[k]:.1f}" for k in ("R1", "R2", "R3", "Avg.")])
    print_banner("table10", "Human evaluation on CoachLM150 responses")
    print(format_table(["Model", "R1", "R2", "R3", "Avg."], rows))

    alpaca = HumanPanel.average_by_rater(scores["alpaca"])
    coach = HumanPanel.average_by_rater(scores["alpaca-coachlm"])
    # Shape: all three reviewers prefer Alpaca-CoachLM.
    for rater in ("R1", "R2", "R3"):
        assert coach[rater] > alpaca[rater], rater
