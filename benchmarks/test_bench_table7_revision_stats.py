"""Table VII — statistics of the CoachLM-revised ALPACA52K dataset."""

from conftest import print_banner

from repro.analysis import format_table
from repro.core import revision_statistics
from repro.core.coachlm import RevisionOutcome


def test_table7_revision_statistics(benchmark, wb):
    original = wb.alpaca_dataset()
    revised, stats = benchmark.pedantic(
        lambda: wb.coachlm_revised_dataset(alpha=0.3), rounds=1, iterations=1
    )
    table = revision_statistics(original, revised)
    print_banner("table7", "CoachLM-revised dataset statistics")
    print(format_table(
        ["Dataset", "Instr len", "Instr edit", "Resp len", "Resp edit"],
        [[r["dataset"], r["instr_avg_len"], r["instr_edit_dist"],
          r["resp_avg_len"], r["resp_edit_dist"]] for r in table.rows()],
        title="(paper: instr 17.7→16.8 / edit 3.4; resp 43.9→143.1 / edit 128.7)",
    ))
    print(f"instructions changed: {table.instructions_changed}/{table.total}; "
          f"responses changed: {table.responses_changed}/{table.total}")
    if stats is not None:
        print(f"revision outcomes: {stats.outcomes}")
        invalid = stats.fraction(RevisionOutcome.INVALID_OUTPUT)
        leaked = stats.fraction(RevisionOutcome.LEAKAGE_SKIPPED)
        print(f"invalid fallback {invalid:.1%} (paper ~1.3%); "
              f"leakage skipped {leaked:.1%} (paper ~1.3%)")
    # Shape: responses get revised much more than instructions, and grow
    # on average (the coach adds explanations/codas).
    assert table.response_edit_distance > table.instruction_edit_distance
    assert table.revised_avg_response_len > table.original_avg_response_len
    assert table.responses_changed > table.instructions_changed
