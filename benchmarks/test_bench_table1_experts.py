"""Table I — expertise and grouping of involved language experts."""

from conftest import print_banner

from repro.analysis import format_table
from repro.experts import group_profile_table
from repro.experts.assignment import UNIT_CLASS_ORDER, assign_units


def test_table1_expert_groups(benchmark):
    rows = benchmark(group_profile_table)
    print_banner("table1", "Expert groups (paper: 17/6/3, 11.29/5.64/12.57y)")
    print(format_table(
        ["Group", "Task", "Experts", "Avg. years"],
        [[r["group"], r["task"], r["number_of_experts"],
          r["average_years_of_experience"]] for r in rows],
    ))
    by_group = {r["group"]: r for r in rows}
    assert by_group["A"]["number_of_experts"] == 17
    assert by_group["B"]["number_of_experts"] == 6
    assert by_group["C"]["number_of_experts"] == 3
    assert abs(by_group["A"]["average_years_of_experience"] - 11.29) < 0.01

    units = assign_units()
    print(format_table(
        ["Unit (class)", "Members", "Avg. years (paper: 9.4/11.2/13.1)"],
        [[c, len(units[c].members), round(units[c].average_experience, 1)]
         for c in UNIT_CLASS_ORDER],
    ))
    averages = [units[c].average_experience for c in UNIT_CLASS_ORDER]
    assert averages == sorted(averages)
