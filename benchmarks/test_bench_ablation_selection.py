"""Extension ablation (not in the paper): edit-distance α-selection vs
random vs inverse selection of coach training pairs.

DESIGN.md §7: the paper argues the top-α-by-edit-distance rule removes
near-identity "negative samples".  If that mechanism is real, selecting
the *smallest*-distance records should hurt revision quality, and random
selection should sit in between.
"""

import numpy as np
from conftest import SWEEP_SUBSET, print_banner

from repro.analysis import format_table
from repro.core import CoachLM
from repro.core.selection import select_by_alpha
from repro.quality import dataset_quality_report

ALPHA = 0.3


def _coach_from(wb, records, label):
    return CoachLM.train(
        wb.backbone("chatglm2-sim"), wb.tokenizer, records,
        wb.rng(f"abl-{label}"), alpha=1.0, config=wb.coach_config(),
    )


def test_ablation_selection_strategy(benchmark, wb):
    records = wb.campaign().records
    n_keep = max(1, int(round(ALPHA * len(records))))
    subset = wb.alpaca_dataset().sample(
        min(SWEEP_SUBSET, len(wb.alpaca_dataset())), wb.rng("abl-subset")
    )

    strategies = {
        "top-distance (paper)": select_by_alpha(records, ALPHA),
        "random": [
            records[int(i)] for i in
            wb.rng("abl-random").choice(len(records), size=n_keep, replace=False)
        ],
        "inverse (smallest)": sorted(
            records, key=lambda r: (r.edit_distance, r.original.pair_id)
        )[:n_keep],
    }

    def run():
        quality = {}
        for label, selected in strategies.items():
            coach = _coach_from(wb, selected, label)
            revised, _ = coach.revise_dataset(subset)
            quality[label] = dataset_quality_report(revised).mean_response_score
        return quality

    quality = benchmark.pedantic(run, rounds=1, iterations=1)
    before = dataset_quality_report(subset).mean_response_score
    print_banner("ablation", "Coach-pair selection strategies (α=0.3 budget)")
    print(format_table(
        ["Strategy", "revised mean response quality"],
        [["(unrevised input)", f"{before:.1f}"]]
        + [[k, f"{v:.1f}"] for k, v in quality.items()],
    ))
    # Shape: the paper's top-distance rule is at least as good as selecting
    # the near-identity records.
    assert quality["top-distance (paper)"] >= quality["inverse (smallest)"] - 1.0
