"""Table VIII — human ratings on a subset of the CoachLM-revised dataset."""

import numpy as np
from conftest import print_banner

from repro.analysis import format_table
from repro.judges import HumanPanel


def test_table8_human_ratings(benchmark, wb):
    original = wb.alpaca_dataset()
    revised, _ = wb.coachlm_revised_dataset(alpha=0.3)
    idx = wb.rng("table8-sample").choice(len(original), size=150, replace=False)
    panel = HumanPanel()

    def rate():
        rows = {"orig_resp": [], "rev_resp": [], "orig_instr": [],
                "rev_instr": [], "modified": []}
        rng = wb.rng("table8-panel")
        for i in idx:
            before, after = original[int(i)], revised[int(i)]
            rows["orig_resp"].append(panel.rate_response(before, rng))
            rows["rev_resp"].append(panel.rate_response(after, rng))
            if before.instruction != after.instruction:
                rows["modified"].append(int(i))
                rows["orig_instr"].append(panel.rate_instruction(before, rng))
                rows["rev_instr"].append(panel.rate_instruction(after, rng))
        return rows

    rows = benchmark.pedantic(rate, rounds=1, iterations=1)
    avg = HumanPanel.average_by_rater
    orig = avg(rows["orig_resp"])
    rev = avg(rows["rev_resp"])
    print_banner("table8", "Human ratings, 150 sampled pairs")
    print(format_table(
        ["Dataset", "R1", "R2", "R3", "Avg."],
        [
            ["Original (paper 71.2)", *(f"{orig[k]:.1f}" for k in ("R1", "R2", "R3", "Avg."))],
            ["CoachLM-revised (paper 75.0)", *(f"{rev[k]:.1f}" for k in ("R1", "R2", "R3", "Avg."))],
        ],
        title="Responses",
    ))
    print(f"pairs with modified instructions: {len(rows['modified'])} "
          f"(paper: 18/150)")
    if rows["orig_instr"]:
        oi, ri = avg(rows["orig_instr"]), avg(rows["rev_instr"])
        print(format_table(
            ["Dataset", "Avg. instruction score"],
            [["Original (paper 76.2)", f"{oi['Avg.']:.1f}"],
             ["CoachLM-revised (paper 79.0)", f"{ri['Avg.']:.1f}"]],
            title="Instructions (modified subset)",
        ))
        assert ri["Avg."] > oi["Avg."]
    # Shape: every reviewer rates the revised responses higher.
    for rater in ("R1", "R2", "R3"):
        assert rev[rater] > orig[rater]
