"""Teacher-forced scoring throughput — sequential vs batched (pairs/sec).

Measures the data-selection workload: IFD-scoring a dataset means two
teacher-forced passes per pair (conditioned + unconditioned).  The
sequential baseline is the per-token KV-cached pass a naive port of
``generate()`` would use — prefill the prompt into a cache, then one
single-token forward (with a full-vocab head) per completion token.
The engine path (:meth:`BatchedEngine.score` at batch 16, the shape
``dataset_ifd`` runs) replaces that with **one cache-free forward per
sequence** whose final-norm + head GEMM touches only the scored
positions, so the per-token python/numpy step overhead disappears and
the logit computation collapses into a single GEMM.

The two paths are numerically different routes to the same quantity
(cached single-token forwards vs one whole-sequence forward), so the
cross-check is ``allclose`` on the per-token logprobs; the *bitwise*
contract — engine vs :meth:`TransformerLM.sequence_logprobs` — is
asserted exactly, per pair.

Results land in ``BENCH_scoring.json`` at the repo root.  Regression
floor: batch-16 scored pairs/sec must hold >= 5x over the sequential
teacher-forced pass.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import print_banner

from repro.data import generate_dataset
from repro.llm import build_tokenizer
from repro.nn import TransformerConfig, TransformerLM
from repro.nn.transformer import _token_logprobs
from repro.scoring import (
    conditioned_request,
    dataset_ifd,
    pair_ifd,
    score_pair_ifd,
    unconditioned_request,
)

N_PAIRS = 32
SCORE_BATCH = 16
#: Acceptance bar: batched scoring at batch 16 vs the per-token pass.
SCORING_BATCH16_FLOOR = 5.0


def _bench_model(scale):
    tokenizer = build_tokenizer()
    dims = scale.base_model
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=dims.d_model,
        n_layers=dims.n_layers,
        n_heads=dims.n_heads,
        max_seq_len=dims.max_seq_len,
    )
    return TransformerLM(config, np.random.default_rng(1234)), tokenizer


def _per_token_cached_pass(model, prompt_ids, completion_ids) -> np.ndarray:
    """The sequential teacher-forced baseline: ``generate()``'s KV-cached
    loop, scoring instead of sampling — prompt prefill into a fresh
    cache, then one single-token forward per completion token, reading
    each step's full-vocab logits for the target's logprob."""
    caches: list[dict] = [{"k": None, "v": None} for _ in model.blocks]
    idx = np.asarray([prompt_ids], dtype=np.int64)
    logits = model._forward_numpy(idx, caches)[:, -1, :]
    offset = len(prompt_ids)
    logprobs = []
    for token in completion_ids:
        logprobs.append(
            float(_token_logprobs(logits[0][None, :], np.asarray([token]))[0])
        )
        logits = model._forward_numpy(
            np.asarray([[token]], dtype=np.int64), caches, position_offset=offset
        )[:, -1, :]
        offset += 1
    return np.asarray(logprobs, dtype=np.float64)


def _time_best_of(fn, repeats: int = 3):
    outputs, best = fn(), None
    start = time.perf_counter()
    outputs = fn()
    best = time.perf_counter() - start
    for _ in range(repeats - 1):
        start = time.perf_counter()
        again = fn()
        elapsed = time.perf_counter() - start
        assert _equal(again, outputs)
        best = min(best, elapsed)
    return outputs, best


def _equal(a, b) -> bool:
    if isinstance(a, list):
        return len(a) == len(b) and all(_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, np.ndarray):
        return a.tobytes() == b.tobytes()
    return a == b


def test_scoring_sequential_vs_batched(wb):
    model, tokenizer = _bench_model(wb.scale)
    pairs = list(generate_dataset(np.random.default_rng(4242), N_PAIRS))
    requests = []
    for pair in pairs:
        requests.append(conditioned_request(tokenizer, pair))
        requests.append(unconditioned_request(tokenizer, pair))
    limit = model.config.max_seq_len
    assert all(
        len(r.prompt_ids) + len(r.completion_ids) <= limit for r in requests
    ), "bench pairs must all be scoreable at the bench context length"
    scored_tokens = sum(len(r.completion_ids) for r in requests)

    # -- sequential: per-token KV-cached teacher-forced pass -------------------
    sequential, seq_elapsed = _time_best_of(
        lambda: [
            _per_token_cached_pass(model, r.prompt_ids, r.completion_ids)
            for r in requests
        ]
    )

    # -- batched: dataset_ifd's engine.score at batch 16 -----------------------
    verdicts, batched_elapsed = _time_best_of(
        lambda: dataset_ifd(
            model, tokenizer, pairs, batch_size=SCORE_BATCH
        )
    )
    assert all(v is not None for v in verdicts)

    # The engine path is bitwise the sequential *reference* (the lone
    # (1, T) forward)...
    for pair, verdict in zip(pairs, verdicts):
        assert verdict == score_pair_ifd(model, tokenizer, pair)
    # ...and allclose to the per-token cached baseline, which reaches the
    # same logprobs along a different numerical route.
    for slot, verdict in enumerate(verdicts):
        baseline = pair_ifd(
            _SequenceScoreShim(sequential[2 * slot]),
            _SequenceScoreShim(sequential[2 * slot + 1]),
        )
        assert np.isclose(verdict.conditioned_nll, baseline.conditioned_nll,
                          rtol=1e-4, atol=1e-6)
        assert np.isclose(verdict.ifd, baseline.ifd, rtol=1e-4, atol=1e-6)

    speedup = seq_elapsed / batched_elapsed
    payload = {
        "scale": wb.scale.name,
        "model": {
            "d_model": model.config.d_model,
            "n_layers": model.config.n_layers,
            "vocab_size": model.config.vocab_size,
            "max_seq_len": model.config.max_seq_len,
        },
        "n_pairs": N_PAIRS,
        "passes_per_pair": 2,
        "scored_tokens": scored_tokens,
        "score_batch": SCORE_BATCH,
        "sequential": {
            "elapsed_s": round(seq_elapsed, 4),
            "pairs_per_sec": round(N_PAIRS / seq_elapsed, 2),
            "scored_tokens_per_sec": round(scored_tokens / seq_elapsed, 1),
        },
        "batched": {
            "elapsed_s": round(batched_elapsed, 4),
            "pairs_per_sec": round(N_PAIRS / batched_elapsed, 2),
            "scored_tokens_per_sec": round(scored_tokens / batched_elapsed, 1),
            "speedup": round(speedup, 2),
        },
        "floor": SCORING_BATCH16_FLOOR,
    }
    print_banner("scoring", "teacher-forced scoring: sequential vs batched")
    print(
        f"IFD over {N_PAIRS} pairs ({scored_tokens} scored tokens): "
        f"per-token pass {payload['sequential']['pairs_per_sec']:.1f} pairs/s "
        f"→ engine.score(B={SCORE_BATCH}) "
        f"{payload['batched']['pairs_per_sec']:.1f} pairs/s "
        f"({speedup:.2f}x)"
    )

    # Perf-regression floor: one forward per sequence must keep beating
    # the per-token cached pass by a wide margin.
    assert speedup >= SCORING_BATCH16_FLOOR, payload

    # Persist only after the gate passed — a failing run must never
    # overwrite the committed baseline with its own numbers.
    out_path = Path(__file__).resolve().parents[1] / "BENCH_scoring.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


class _SequenceScoreShim:
    """Duck-typed stand-in feeding baseline logprobs through pair_ifd."""

    def __init__(self, token_logprobs: np.ndarray):
        self.token_logprobs = token_logprobs

    @property
    def n_tokens(self) -> int:
        return int(self.token_logprobs.shape[0])

    @property
    def mean_nll(self) -> float:
        return float(-self.token_logprobs.mean())

    @property
    def perplexity(self) -> float:
        return float(np.exp(-self.token_logprobs.mean()))
