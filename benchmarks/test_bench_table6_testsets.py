"""Table VI — the four instruction-following test sets."""

import numpy as np
from conftest import print_banner

from repro.analysis import format_table
from repro.quality import CriteriaScorer
from repro.testsets import TESTSET_BUILDERS


def test_table6_testset_inventory(benchmark):
    rng = np.random.default_rng(0)
    sets = benchmark.pedantic(
        lambda: {name: builder(np.random.default_rng(0))
                 for name, builder in TESTSET_BUILDERS.items()},
        rounds=1, iterations=1,
    )
    scorer = CriteriaScorer()
    rows = []
    for name, ts in sets.items():
        ref_quality = float(np.mean(
            [scorer.score_response(i.reference).score for i in ts.items]
        ))
        rows.append([
            name, len(ts), ts.n_categories, ts.reference_grade.value,
            f"{ref_quality:.1f}",
        ])
    print_banner("table6", "Test sets (paper: 150/42, 170/11, 80/9, 252/15)")
    print(format_table(
        ["Name", "Size", "Categories", "Reference", "Ref quality"], rows,
    ))
    expected = {
        "coachlm150": (150, 42), "pandalm170": (170, 11),
        "vicuna80": (80, 9), "selfinstruct252": (252, 15),
    }
    for name, (size, cats) in expected.items():
        assert len(sets[name]) == size
        assert sets[name].n_categories == cats
