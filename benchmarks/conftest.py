"""Shared fixtures for the benchmark harness.

Benchmarks run at the ``bench`` scale preset (override with
``REPRO_SCALE``) against a persistent artifact cache in ``.artifacts/`` so
expensive stages (backbone pre-training, model tuning, dataset revision)
are paid once across the whole suite.

``REPRO_BENCH_ITEMS`` caps the number of test items judged per test set
(default 60) — a CPU wall-clock concession documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.config import DEFAULT_SEED, get_scale
from repro.pipeline import Workbench

#: Per-test-set item cap for model evaluation benches.
BENCH_ITEMS = int(os.environ.get("REPRO_BENCH_ITEMS", "60"))

#: Subset size used by sweep benches (Fig. 5, Table XI).
SWEEP_SUBSET = int(os.environ.get("REPRO_SWEEP_SUBSET", "300"))


@pytest.fixture(scope="session")
def wb() -> Workbench:
    root = Path(__file__).resolve().parents[1]
    return Workbench(
        scale=get_scale(),
        seed=DEFAULT_SEED,
        cache_dir=root / ".artifacts",
    )


def print_banner(exp_id: str, description: str) -> None:
    print(f"\n{'=' * 72}\n{exp_id.upper()} — {description}\n{'=' * 72}")
