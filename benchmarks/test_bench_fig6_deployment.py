"""Fig. 6 / Section IV-A — CoachLM inside the data-management platform."""

from conftest import print_banner

from repro.analysis import format_table
from repro.deployment import (
    DataManagementPlatform,
    measure_inference_throughput,
)


def test_fig6_deployment_throughput(benchmark, wb):
    coach = wb.coach(alpha=0.3)
    platform = DataManagementPlatform(coach=coach)
    batch = 200

    def run_batches():
        baseline = platform.run_cleaning_batch(
            wb.rng("fig6-base"), batch, use_coachlm=False
        )
        boosted = platform.run_cleaning_batch(
            wb.rng("fig6-coach"), batch, use_coachlm=True
        )
        return baseline, boosted

    baseline, boosted = benchmark.pedantic(run_batches, rounds=1, iterations=1)
    net = DataManagementPlatform.net_improvement(baseline, boosted)

    print_banner("fig6", "Data-management platform (paper: 80 -> ~100/day)")
    print(format_table(
        ["Pipeline", "pairs/person-day", "mean quality into annotation"],
        [
            ["rules + annotators",
             f"{baseline.pairs_per_person_day:.1f}",
             f"{baseline.mean_quality_in:.1f}"],
            ["rules + CoachLM + annotators",
             f"{boosted.pairs_per_person_day:.1f}",
             f"{boosted.mean_quality_out_of_coach:.1f}"],
        ],
    ))
    print(f"net improvement attributable to CoachLM: {net:.1%} "
          f"(paper: 15-20% net)")

    throughput = measure_inference_throughput(
        coach, platform.intake(wb.rng("fig6-speed"), 64), max_samples=48
    )
    print(f"CoachLM inference: {throughput.samples_per_second:.2f} samples/s "
          f"on this CPU (paper: 1.19 samples/s on one A100, batch 32)")

    # Shape: the CoachLM precursor increases annotator throughput.
    assert boosted.pairs_per_person_day > baseline.pairs_per_person_day
    assert boosted.mean_quality_out_of_coach > baseline.mean_quality_in
    assert throughput.samples_per_second > 0
