"""Table III — distribution of the excluded instruction pairs."""

from conftest import print_banner

from repro.analysis import format_table
from repro.experts.filtering import PAPER_TABLE3_RATIOS, preliminary_filter
from repro.experts.filtering import exclusion_distribution


def test_table3_exclusion_distribution(benchmark, wb):
    dataset = wb.alpaca_dataset()
    sample = dataset.sample(
        min(wb.scale.expert_sample_size, len(dataset)), wb.rng("expert-sample")
    )

    kept, excluded = benchmark(lambda: preliminary_filter(sample))
    dist = exclusion_distribution(excluded)
    print_banner("table3", "Preliminary filtering (paper: 1088/6000 = 18.1%)")
    print(f"examined {len(sample)}, excluded {len(excluded)} "
          f"({len(excluded) / len(sample):.1%})")
    print(format_table(
        ["Reason", "Ours", "Paper"],
        [[k, f"{dist.get(k, 0):.1%}", f"{v:.1%}"]
         for k, v in PAPER_TABLE3_RATIOS.items()],
    ))
    # Shape: exclusion share near 18% and invalid input the largest bucket.
    assert 0.10 < len(excluded) / len(sample) < 0.28
    assert max(dist, key=dist.get) == "invalid_input"
