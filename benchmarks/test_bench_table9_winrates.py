"""Table IX — win rates of all twelve LLMs on the four test sets.

The headline experiment: every model is genuinely tuned from the shared
backbones on its own corpus, responses are generated greedily, and
PandaLM-sim judges them against the test-set references with the swap
protocol.  Absolute numbers differ from the paper (tiny LMs vs 7-13B);
the tracked shape is the ordering within the baseline group:
Alpaca-CoachLM must beat Alpaca, Alpaca-cleaned and AlpaGasus.
"""

from conftest import BENCH_ITEMS, print_banner

from repro.analysis import format_table
from repro.judges import PandaLMJudge
from repro.pipeline import MODEL_KEYS

TESTSETS = ("coachlm150", "pandalm170", "vicuna80", "selfinstruct252")


def test_table9_win_rates(benchmark, wb):
    judge = PandaLMJudge()

    def evaluate_all():
        results = {}
        for model_key in MODEL_KEYS:
            results[model_key] = {
                ts: wb.evaluate(model_key, ts, judge, max_items=BENCH_ITEMS)
                for ts in TESTSETS
            }
        return results

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    headers = ["Model", "Size", "Type"]
    for ts in TESTSETS:
        headers += [f"{ts[:7]} WR1", "WR2", "QS"]
    rows = []
    for model_key, meta in MODEL_KEYS.items():
        row = [model_key, meta["size"], meta["type"]]
        for ts in TESTSETS:
            s = results[model_key][ts]
            row += [f"{s.wr1:.1%}", f"{s.wr2:.1%}", f"{s.qs:.1%}"]
        rows.append(row)
    print_banner("table9", f"Win rates vs references ({BENCH_ITEMS} items/set)")
    print(format_table(headers, rows))

    def mean_wr1(key):
        return sum(results[key][ts].wr1 for ts in TESTSETS) / len(TESTSETS)

    coach = mean_wr1("alpaca-coachlm")
    print("\nmean WR1 summary:")
    for key in MODEL_KEYS:
        print(f"  {key:18s} {mean_wr1(key):.1%}")

    # Shape criteria (paper Table IX):
    # 1. Alpaca-CoachLM beats the unrevised Alpaca variants.  AlpaGasus is
    #    compared with >= : filtering keeps only clean pairs, so at tiny
    #    scale it is the closest competitor and the two can land within a
    #    single judged item of each other — revision must never lose to
    #    filtering, and unlike filtering it preserves dataset integrity.
    assert coach > mean_wr1("alpaca"), "CoachLM must beat Alpaca"
    assert coach > mean_wr1("alpaca-cleaned"), "CoachLM must beat Alpaca-cleaned"
    assert coach >= mean_wr1("alpagasus"), "CoachLM must not lose to AlpaGasus"
    # 2. Alpaca-human (partial revision) sits between Alpaca and CoachLM.
    assert mean_wr1("alpaca-human") >= mean_wr1("alpaca") - 0.02
    # 3. The proprietary-data chat models top the stronger group.
    assert mean_wr1("llama2-13b-chat") > mean_wr1("alpaca")
