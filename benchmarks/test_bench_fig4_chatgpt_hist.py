"""Fig. 4 — ChatGPT rating histograms before/after CoachLM revision."""

from conftest import print_banner

from repro.analysis import build_rating_histogram
from repro.judges import ChatGPTJudge


def test_fig4_rating_histograms(benchmark, wb):
    original = wb.alpaca_dataset()
    revised, _ = wb.coachlm_revised_dataset(alpha=0.3)
    judge = ChatGPTJudge()

    def rate_both():
        before = judge.rate_dataset(original, wb.rng("fig4-before"))
        after = judge.rate_dataset(revised, wb.rng("fig4-after"))
        return before, after

    before, after = benchmark.pedantic(rate_both, rounds=1, iterations=1)
    hist_before = build_rating_histogram(before)
    hist_after = build_rating_histogram(after)
    print_banner("fig4", "ChatGPT ratings before/after revision")
    print(hist_before.render(title="(a) Before (paper: mean 3.95, 17.7% >= 4.5)"))
    print(hist_after.render(title="(b) After  (paper: mean 4.31, 78.9% >= 4.5)"))
    # Shape: the revision shifts the distribution upward — higher mean and
    # a strictly larger high-quality share.
    assert hist_after.mean > hist_before.mean
    assert hist_after.high_quality_fraction > hist_before.high_quality_fraction
    assert 0.08 < hist_before.high_quality_fraction < 0.30
