"""Table V — the evaluation approaches, with judge agreement measurement."""

import numpy as np
from conftest import print_banner

from repro.analysis import format_table
from repro.data.defects import build_pair
from repro.data.instruction_pair import InstructionPair
from repro.judges import (
    ChatGPTJudge,
    GPT4Judge,
    HumanPanel,
    PandaLMJudge,
    compare_with_swap,
)
from repro.textgen.responses import detokenize, ideal_response
from repro.textgen.tasks import render_instruction, sample_instance


def test_table5_judge_inventory_and_agreement(benchmark):
    print_banner("table5", "Evaluation approaches (plus PandaLM/GPT-4 agreement)")
    print(format_table(
        ["Approach", "Evaluation", "Task type"],
        [
            ["Human (R1-R3)", "Both", "Direct score 0-100"],
            ["ChatGPT-sim", "Instruction dataset", "Direct score 0-5"],
            ["GPT-4-sim", "LLM performance", "Comparison 0-10"],
            ["PandaLM-sim", "LLM performance", "Comparison win/tie/lose"],
        ],
    ))

    pandalm, gpt4 = PandaLMJudge(), GPT4Judge()
    sample_rng = np.random.default_rng(17)
    judge_rng = np.random.default_rng(18)
    comparisons = []
    for _ in range(150):
        instance = sample_instance(sample_rng)
        tokens, _ = render_instruction(instance)
        instruction = detokenize(tokens)
        good = InstructionPair(instruction, detokenize(ideal_response(instance)),
                               provenance=instance)
        bad_pair = build_pair(instance, (), ("resp_truncated",), sample_rng,
                              polite=False)
        bad = InstructionPair(instruction, bad_pair.response, provenance=instance)
        comparisons.append((instruction, good, bad))

    def agreement():
        agree = 0
        for instruction, good, bad in comparisons:
            v1 = compare_with_swap(pandalm, instruction, good, bad, judge_rng)
            v2 = compare_with_swap(gpt4, instruction, good, bad, judge_rng)
            agree += v1 is v2
        return agree / len(comparisons)

    rate = benchmark.pedantic(agreement, rounds=1, iterations=1)
    print(f"PandaLM-sim / GPT-4-sim agreement: {rate:.1%} (paper: 88.3%)")
    assert rate > 0.70

    # The other two instruments run on the same pair without error.
    chatgpt, panel = ChatGPTJudge(), HumanPanel()
    _, good, _ = comparisons[0]
    assert 0 <= chatgpt.rate(good, judge_rng).score <= 5
    assert set(panel.rate_response(good, judge_rng)) == {"R1", "R2", "R3"}
