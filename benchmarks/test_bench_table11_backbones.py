"""Table XI — CoachLM performance with varying backbone models (α = 1)."""

from conftest import BENCH_ITEMS, SWEEP_SUBSET, print_banner

from repro.analysis import format_table
from repro.core import CoachLM
from repro.judges import PandaLMJudge, evaluate_model_on_testset
from repro.llm.generation import generate_responses
from repro.llm.instruction_tuning import TuningRecipe, instruction_tune

BACKBONE_ORDER = ("llama-sim", "chatglm-sim", "chatglm2-sim")


def test_table11_backbone_ablation(benchmark, wb):
    judge = PandaLMJudge()
    subset = wb.alpaca_dataset().sample(
        min(SWEEP_SUBSET, len(wb.alpaca_dataset())), wb.rng("t11-subset")
    )
    testset = wb.testset("coachlm150")
    items = testset.items[:BENCH_ITEMS]
    recipe = TuningRecipe(
        epochs=wb.scale.finetune_epochs,
        batch_size=wb.scale.batch_size,
        learning_rate=wb.scale.learning_rate,
    )

    def run():
        rows = {}
        # Baseline: Alpaca tuned on the unrevised subset.
        base_model, _ = instruction_tune(
            wb.backbone("llama-sim"), wb.tokenizer, subset,
            wb.rng("t11-alpaca"), recipe,
        )
        candidates = generate_responses(
            base_model, wb.tokenizer,
            [i.instruction for i in items], [i.provenance for i in items],
            max_new_tokens=wb.scale.max_new_tokens,
        )
        rows["alpaca"] = evaluate_model_on_testset(
            judge, candidates, [i.reference for i in items], wb.rng("t11-j0"),
        )
        for backbone_name in BACKBONE_ORDER:
            coach = CoachLM.train(
                wb.backbone(backbone_name), wb.tokenizer,
                wb.campaign().records, wb.rng(f"t11-{backbone_name}"),
                alpha=1.0, config=wb.coach_config(),
            )
            revised, _ = coach.revise_dataset(subset)
            model, _ = instruction_tune(
                wb.backbone("llama-sim"), wb.tokenizer, revised,
                wb.rng(f"t11-tune-{backbone_name}"), recipe,
            )
            candidates = generate_responses(
                model, wb.tokenizer,
                [i.instruction for i in items], [i.provenance for i in items],
                max_new_tokens=wb.scale.max_new_tokens,
            )
            rows[backbone_name] = evaluate_model_on_testset(
                judge, candidates, [i.reference for i in items],
                wb.rng(f"t11-judge-{backbone_name}"),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("table11", "CoachLM backbone ablation (α=1, CoachLM150)")
    paper = {"alpaca": "48.0/45.7/74.7", "llama-sim": "49.3/48.6/75.3",
             "chatglm-sim": "54.0/59.1/82.0", "chatglm2-sim": "56.7/65.6/85.3"}
    print(format_table(
        ["Coach backbone", "WR1", "WR2", "QS", "paper WR1/WR2/QS"],
        [[name, f"{s.wr1:.1%}", f"{s.wr2:.1%}", f"{s.qs:.1%}", paper[name]]
         for name, s in rows.items()],
    ))
    # Shape: every backbone-coached dataset at least matches raw Alpaca,
    # and the best backbone is an aligned one (ChatGLM/ChatGLM2), not the
    # bare foundation model.
    best = max(rows, key=lambda k: rows[k].wr1)
    assert rows["chatglm2-sim"].wr1 >= rows["alpaca"].wr1 - 0.02
    assert best != "llama-sim"
