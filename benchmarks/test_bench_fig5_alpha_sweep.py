"""Fig. 5 — win rate vs human-input ratio α.

(a) Alpaca-CoachLM: CoachLM trained at each α revises a fixed subset; the
    tuned model is judged on CoachLM150.  Paper shape: α=0 is the worst
    (no coach training), a mid-α peak, mild degradation toward α=1.
(b) Alpaca-human: the top-α expert-revised pairs are merged back; win rate
    rises roughly linearly with the amount of human input (paper:
    R² = 0.98, slope 3.07%/k samples).
"""

from conftest import BENCH_ITEMS, SWEEP_SUBSET, print_banner

from repro.analysis import fit_line, format_table
from repro.core.selection import select_by_alpha
from repro.judges import PandaLMJudge, evaluate_model_on_testset
from repro.llm.generation import generate_responses
from repro.llm.instruction_tuning import TuningRecipe, instruction_tune

ALPHAS = (0.0, 0.3, 0.6, 1.0)


def _tune_and_evaluate(wb, dataset, judge, label):
    recipe = TuningRecipe(
        epochs=wb.scale.finetune_epochs,
        batch_size=wb.scale.batch_size,
        learning_rate=wb.scale.learning_rate,
    )
    model, _ = instruction_tune(
        wb.backbone("llama-sim"), wb.tokenizer, dataset,
        wb.rng(f"fig5-tune-{label}"), recipe,
    )
    testset = wb.testset("coachlm150")
    items = testset.items[:BENCH_ITEMS]
    candidates = generate_responses(
        model, wb.tokenizer,
        [i.instruction for i in items], [i.provenance for i in items],
        max_new_tokens=wb.scale.max_new_tokens,
    )
    return evaluate_model_on_testset(
        judge, candidates, [i.reference for i in items],
        wb.rng(f"fig5-judge-{label}"),
    )


def test_fig5_alpha_sweep(benchmark, wb):
    judge = PandaLMJudge()
    subset = wb.alpaca_dataset().sample(
        min(SWEEP_SUBSET, len(wb.alpaca_dataset())), wb.rng("fig5-subset")
    )
    records = wb.campaign().records

    full_dataset = wb.alpaca_dataset()

    def sweep():
        coach_curve = {}
        human_curve = {}
        for alpha in ALPHAS:
            coach = wb.coach(alpha=alpha)
            revised, _ = coach.revise_dataset(subset)
            coach_curve[alpha] = _tune_and_evaluate(
                wb, revised, judge, f"coach-{alpha}"
            ).average
            # (b) merges the top-α expert revisions back into the *full*
            # dataset — no coach inference needed, so the full corpus is
            # affordable and the human-input signal is as large as the
            # campaign provides.
            selected = select_by_alpha(records, alpha)
            replacements = {r.revised.pair_id: r.revised for r in selected}
            merged = full_dataset.replace_pairs(replacements)
            human_curve[alpha] = (
                _tune_and_evaluate(wb, merged, judge, f"human-{alpha}").average,
                len(replacements),
            )
        return coach_curve, human_curve

    coach_curve, human_curve = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_banner("fig5", "Win rate vs α (average of WR1/WR2/QS)")
    print(format_table(
        ["alpha", "(a) Alpaca-CoachLM", "(b) Alpaca-human", "human samples"],
        [[a, f"{coach_curve[a]:.1%}", f"{human_curve[a][0]:.1%}",
          human_curve[a][1]] for a in ALPHAS],
    ))

    xs = [float(human_curve[a][1]) for a in ALPHAS]
    ys = [human_curve[a][0] for a in ALPHAS]
    fit = fit_line(xs, ys)
    print(f"(b) linear fit: slope {fit.slope * 1000:.2f}%/k samples "
          f"(x100), R^2 = {fit.r_squared:.3f} (paper: 3.07%/k, R^2 0.98)")

    # Shape criteria:
    # (a) no coach training (α=0) is the worst configuration.
    best_alpha = max(ALPHAS, key=lambda a: coach_curve[a])
    assert coach_curve[0.0] <= min(coach_curve[a] for a in ALPHAS if a > 0), \
        "α=0 must not beat any trained coach"
    assert best_alpha > 0.0
    # (b) more human input trends upward.  Our expert pool is two orders
    # of magnitude smaller than the paper's 2.3k revisions, so the trend
    # is measured against the tuning-noise floor rather than required to
    # be strictly positive at every point.
    assert human_curve[1.0][0] >= human_curve[0.0][0] - 0.05
    assert fit.slope > -0.001
