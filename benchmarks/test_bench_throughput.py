"""Decoding throughput — sequential vs batched engine (tokens/sec).

Measures both heavy generation stages of the pipeline at the bench-scale
model dimensions: CoachLM revision decodes (copy-assist biases, ragged
Fig. 3 prompts) and test-set response generation (Alpaca template).  The
sequential baseline is the legacy per-sequence KV-cache loop; the
batched numbers run the same requests through the continuous-batching
engine, which is token-identical (asserted below) but amortises per-step
numpy overhead across the fleet.

Results land in ``BENCH_throughput.json`` at the repo root so the perf
trajectory of the engine is tracked across PRs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import print_banner

from repro.core.coachlm import CoachLM
from repro.data import generate_dataset
from repro.llm import build_tokenizer
from repro.llm.prompts import encode_truncated_instruction_prompt
from repro.nn import BatchedEngine, GenerationRequest, TransformerConfig, TransformerLM

#: Fleet widths reported in the JSON artifact (acceptance: >= 3x at >= 8).
BATCH_SIZES = (8, 16)
N_SEQUENCES = 32
MAX_NEW_TOKENS = 48


def _bench_model(scale) -> tuple[TransformerLM, "WordTokenizer"]:
    tokenizer = build_tokenizer()
    dims = scale.base_model
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=dims.d_model,
        n_layers=dims.n_layers,
        n_heads=dims.n_heads,
        max_seq_len=dims.max_seq_len,
    )
    return TransformerLM(config, np.random.default_rng(1234)), tokenizer


def _time_tokens(fn) -> tuple[list[list[int]], float]:
    start = time.perf_counter()
    outputs = fn()
    return outputs, time.perf_counter() - start


def _stage(name, requests, sequential_fn, model) -> dict:
    """Time one stage sequentially and at each fleet width."""
    expected, seq_elapsed = _time_tokens(sequential_fn)
    n_tokens = sum(len(seq) for seq in expected)
    stage = {
        "n_sequences": len(requests),
        "tokens": n_tokens,
        "sequential_tokens_per_sec": round(n_tokens / seq_elapsed, 1),
        "batched": {},
    }
    for batch in BATCH_SIZES:
        engine = BatchedEngine(model, max_batch=batch)
        got, elapsed = _time_tokens(lambda: engine.generate(requests))
        assert got == expected, f"{name}: batched tokens diverge at batch={batch}"
        stage["batched"][str(batch)] = {
            "tokens_per_sec": round(n_tokens / elapsed, 1),
            "speedup": round(seq_elapsed / elapsed, 2),
        }
    return stage


def test_throughput_sequential_vs_batched(wb):
    model, tokenizer = _bench_model(wb.scale)
    dataset = generate_dataset(np.random.default_rng(55), N_SEQUENCES)

    # -- stage 1: test-set style response generation ---------------------------
    context = model.config.max_seq_len
    prompts = [
        encode_truncated_instruction_prompt(tokenizer, pair.instruction, context)
        for pair in dataset
    ]
    eos = tokenizer.specials.eos
    response_requests = [
        GenerationRequest(p, MAX_NEW_TOKENS, eos_id=eos) for p in prompts
    ]
    response_stage = _stage(
        "responses",
        response_requests,
        lambda: [model.generate(p, MAX_NEW_TOKENS, eos_id=eos) for p in prompts],
        model,
    )

    # -- stage 2: CoachLM revision decodes (copy-assist biases) ----------------
    coach = CoachLM(model, tokenizer, max_new_tokens=MAX_NEW_TOKENS)
    gated = [coach._pre_generate(pair) for pair in dataset]
    coach_prompts = [
        (prompt, pair)
        for pair, (prompt, _) in zip(dataset, gated)
        if prompt is not None
    ]
    revision_requests = [
        coach._revision_request(prompt, pair) for prompt, pair in coach_prompts
    ]
    revision_stage = _stage(
        "revision",
        revision_requests,
        lambda: [
            coach._generate_with_copy_assist(prompt, pair)
            for prompt, pair in coach_prompts
        ],
        model,
    )

    payload = {
        "scale": wb.scale.name,
        "model": {
            "d_model": model.config.d_model,
            "n_layers": model.config.n_layers,
            "vocab_size": model.config.vocab_size,
        },
        "max_new_tokens": MAX_NEW_TOKENS,
        "response_generation": response_stage,
        "revision": revision_stage,
    }
    out_path = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print_banner("throughput", "sequential vs batched decoding (tokens/sec)")
    for stage_name in ("response_generation", "revision"):
        stage = payload[stage_name]
        line = ", ".join(
            f"B={batch}: {info['tokens_per_sec']:.0f} tok/s ({info['speedup']:.2f}x)"
            for batch, info in stage["batched"].items()
        )
        print(
            f"{stage_name}: seq {stage['sequential_tokens_per_sec']:.0f} tok/s "
            f"over {stage['tokens']} tokens → {line}"
        )

    # The engine must beat the sequential loop comfortably; the 3x
    # acceptance bar is asserted loosely (2x) to absorb CI timer noise.
    for stage in (response_stage, revision_stage):
        best = max(info["speedup"] for info in stage["batched"].values())
        assert best >= 2.0, stage
