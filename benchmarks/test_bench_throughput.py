"""Decoding throughput — sequential vs batched engine (tokens/sec).

Measures both heavy generation stages of the pipeline at the bench-scale
model dimensions: CoachLM revision decodes (copy-assist biases, ragged
Fig. 3 prompts) and test-set response generation (Alpaca template).  The
sequential baseline is the legacy per-sequence KV-cache loop; the
batched numbers run the same requests through the continuous-batching
engine, which is token-identical (asserted below) but amortises per-step
numpy overhead across the fleet.

A third, *prompt-heavy* scenario (prompt ≫ max_new_tokens — the shape of
Reflection-Tuning-style repeated re-revision sweeps, where the Fig. 3
template dominates every request) splits throughput into its prefill and
decode phases: prefill-phase tokens/sec is isolated by decoding exactly
one token per sequence, so the measurement compares one ragged batched
prefill forward against the per-request prefill loop directly.

Results land in ``BENCH_throughput.json`` at the repo root so the perf
trajectory of the engine is tracked across PRs.  Two regression floors
are asserted: batched decode speedup at batch 8 must not drop below the
PR-1 floor (>= 3.4x), and ragged batched prefill must hold >= 2x over
per-request prefill at batch 8.

The ``prefix_cache`` stage measures the radix prefix cache under
template-heavy load (every request extends one shared template): with
the cache on, prefill tok/s must beat the cache-off paged engine >= 3x
and KV bytes per live logical token must drop >= 2x.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import print_banner

from repro.core.coachlm import CoachLM
from repro.data import generate_dataset
from repro.llm import build_tokenizer
from repro.llm.prompts import encode_truncated_instruction_prompt
from repro.nn import BatchedEngine, GenerationRequest, TransformerConfig, TransformerLM

#: Fleet widths reported in the JSON artifact (acceptance: >= 3x at >= 8).
BATCH_SIZES = (8, 16)
N_SEQUENCES = 32
MAX_NEW_TOKENS = 48
#: PR-1 recorded 3.48x (revision) / 3.89x (responses) at batch 8; the
#: batched-prefill engine must never fall back below this floor.
PR1_BATCH8_FLOOR = 3.4
#: Prompt-heavy scenario: long prompts, almost no decode.
HEAVY_MAX_NEW_TOKENS = 8
#: Acceptance bar for ragged batched prefill at batch 8.
PREFILL_BATCH8_FLOOR = 2.0
#: Chunked-admission scenario: chunk size and the wall-clock bar
#: multi-slot admission must clear over single-slot chunking (the real
#: gap is ~2x; the floor leaves a wide band for CI timer noise).
ADMISSION_CHUNK_TOKENS = 16
ADMISSION_MULTI_VS_SINGLE_FLOOR = 1.2
#: Unified mixed-length forward: burst turnaround at chunk 16 must beat
#: PR-4's split chunk-forward + decode-forward schedule.
UNIFIED_VS_SPLIT_FLOOR = 1.15
#: Paged KV pool: resident KV bytes under staggered prompt-heavy load
#: must undercut the dense slabs at least this much (the real gap is
#: ~3-4x at partial occupancy).
KV_MEMORY_RATIO_FLOOR = 2.0
KV_PAGE_TOKENS = 64
#: Radix prefix cache under template-heavy load (every request extends
#: one shared template): prefill tok/s with the cache on must beat the
#: cache-off paged engine >= 3x (it skips the template's tokens), and
#: KV bytes per live *logical* token must drop >= 2x (the template's
#: pages are stored once, referenced by every slot).
PREFIX_PREFILL_FLOOR = 3.0
PREFIX_MEMORY_RATIO_FLOOR = 2.0
PREFIX_N_REQUESTS = 12


def _bench_model(scale) -> tuple[TransformerLM, "WordTokenizer"]:
    tokenizer = build_tokenizer()
    dims = scale.base_model
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=dims.d_model,
        n_layers=dims.n_layers,
        n_heads=dims.n_heads,
        max_seq_len=dims.max_seq_len,
    )
    return TransformerLM(config, np.random.default_rng(1234)), tokenizer


def _time_tokens(fn) -> tuple[list[list[int]], float]:
    start = time.perf_counter()
    outputs = fn()
    return outputs, time.perf_counter() - start


def _best_of(fn, repeats: int = 3) -> tuple[list[list[int]], float]:
    """Best-of-N timing: the first run pays numpy/BLAS warmup and page
    faults; the comparison should be between the paths' real speeds."""
    outputs, best = _time_tokens(fn)
    for _ in range(repeats - 1):
        again, elapsed = _time_tokens(fn)
        assert again == outputs
        best = min(best, elapsed)
    return outputs, best


def _stage(name, requests, sequential_fn, model) -> dict:
    """Time one stage sequentially and at each fleet width."""
    expected, seq_elapsed = _best_of(sequential_fn)
    n_tokens = sum(len(seq) for seq in expected)
    stage = {
        "n_sequences": len(requests),
        "tokens": n_tokens,
        "sequential_tokens_per_sec": round(n_tokens / seq_elapsed, 1),
        "batched": {},
    }
    for batch in BATCH_SIZES:
        got, elapsed = _best_of(
            lambda: BatchedEngine(model, max_batch=batch).generate(requests)
        )
        assert got == expected, f"{name}: batched tokens diverge at batch={batch}"
        stage["batched"][str(batch)] = {
            "tokens_per_sec": round(n_tokens / elapsed, 1),
            "speedup": round(seq_elapsed / elapsed, 2),
        }
    return stage


def _long_prompts(tokenizer, model, dataset) -> list[list[int]]:
    """Near-context-length prompts: tiled instruction text, ragged tails."""
    context = model.config.max_seq_len
    prompts = []
    for i, pair in enumerate(dataset):
        base = encode_truncated_instruction_prompt(
            tokenizer, pair.instruction, context
        )
        target = context - HEAVY_MAX_NEW_TOKENS - 1 - (i % 7)
        tiled = (base * (target // len(base) + 1))[:target]
        prompts.append(tiled)
    return prompts


def _prompt_heavy_stage(model, prompts) -> dict:
    """Prefill-vs-decode tokens/sec split for prompt-dominated requests.

    Prefill throughput is isolated with one-token budgets (the request
    finishes on the prefill's own first token, so no decode step runs);
    decode throughput is the residual of the full run.
    """
    prompt_tokens = sum(len(p) for p in prompts)
    prefill_requests = [GenerationRequest(p, 1, eos_id=None) for p in prompts]
    full_requests = [
        GenerationRequest(p, HEAVY_MAX_NEW_TOKENS, eos_id=None) for p in prompts
    ]

    # Per-request prefill baseline: the pre-batched-prefill engine path
    # (and TransformerLM.generate) prefill prompts one at a time.
    expected_first, seq_prefill_s = _best_of(
        lambda: [model.generate(p, 1) for p in prompts]
    )
    expected_full, seq_full_s = _best_of(
        lambda: [model.generate(p, HEAVY_MAX_NEW_TOKENS) for p in prompts]
    )
    decode_tokens = sum(len(seq) for seq in expected_full) - len(prompts)
    stage = {
        "n_sequences": len(prompts),
        "prompt_tokens": prompt_tokens,
        "max_new_tokens": HEAVY_MAX_NEW_TOKENS,
        "sequential": {
            "prefill_tokens_per_sec": round(prompt_tokens / seq_prefill_s, 1),
            "decode_tokens_per_sec": round(
                decode_tokens / max(seq_full_s - seq_prefill_s, 1e-9), 1
            ),
        },
        "batched": {},
    }
    for batch in BATCH_SIZES:
        got_first, prefill_s = _best_of(
            lambda: BatchedEngine(model, max_batch=batch).generate(
                prefill_requests
            )
        )
        assert got_first == expected_first, (
            f"prompt-heavy: prefill first tokens diverge at batch={batch}"
        )
        got_full, full_s = _best_of(
            lambda: BatchedEngine(model, max_batch=batch).generate(full_requests)
        )
        assert got_full == expected_full, (
            f"prompt-heavy: tokens diverge at batch={batch}"
        )
        stage["batched"][str(batch)] = {
            "prefill_tokens_per_sec": round(prompt_tokens / prefill_s, 1),
            "prefill_speedup": round(seq_prefill_s / prefill_s, 2),
            "decode_tokens_per_sec": round(
                decode_tokens / max(full_s - prefill_s, 1e-9), 1
            ),
            "overall_speedup": round(seq_full_s / full_s, 2),
        }
    return stage


def _chunked_admission_stage(model, prompts) -> dict:
    """Burst turnaround with chunked refill: single- vs multi-slot.

    The many-late-arrivals shape: a fleet of in-flight decodes when a
    burst of near-context prompts lands at once.  With chunking on and
    ``prefill_concurrency=1`` the burst's admission serializes (one
    chunk of one prompt per step, each arrival waiting out every chunk
    of the arrivals before it); at burst-width concurrency all parked
    prompts advance each step in one ragged chunk forward.  Measured as
    wall-clock from burst submission until the last arrival completes —
    the in-flight decodes keep running throughout, in both runs.  Every
    arrival must reproduce the sequential path's tokens exactly: the
    multi-slot speedup is pure scheduling, never different output.
    """
    burst = prompts[: BATCH_SIZES[0]]
    expected = [model.generate(p, HEAVY_MAX_NEW_TOKENS) for p in burst]
    burst_tokens = sum(len(p) for p in burst) + sum(
        len(seq) for seq in expected
    )
    rng = np.random.default_rng(321)
    decoys = [
        [int(t) for t in rng.integers(5, 300, size=12)]
        for _ in range(BATCH_SIZES[0])
    ]
    decoy_budget = model.config.max_seq_len - 16

    first_tokens = [seq[:1] for seq in expected]

    def burst_turnaround(
        concurrency: int, unified_step: bool = True, budget: int | None = None,
        repeats: int = 3,
    ) -> float:
        budget = HEAVY_MAX_NEW_TOKENS if budget is None else budget
        want = first_tokens if budget == 1 else expected
        best = float("inf")
        for _ in range(repeats):
            engine = BatchedEngine(
                model,
                max_batch=2 * BATCH_SIZES[0],
                prefill_chunk_tokens=ADMISSION_CHUNK_TOKENS,
                prefill_concurrency=concurrency,
                unified_step=unified_step,
            )
            for prompt in decoys:
                engine.submit(GenerationRequest(prompt, decoy_budget))
            engine.step()  # decoy fleet in flight; budgets outlast the burst
            ids = [engine.submit(GenerationRequest(p, budget)) for p in burst]
            results: dict[int, list[int]] = {}
            start = time.perf_counter()
            while not all(seq_id in results for seq_id in ids):
                engine.step()
                results.update(engine.collect())
            best = min(best, time.perf_counter() - start)
            assert [results[seq_id] for seq_id in ids] == want, (
                f"late-arrival tokens diverge at concurrency={concurrency}"
            )
        return best

    stage = {
        "n_arrivals": len(burst),
        "chunk_tokens": ADMISSION_CHUNK_TOKENS,
        "burst_tokens": burst_tokens,
        "by_concurrency": {},
    }
    for concurrency in (1, BATCH_SIZES[0]):
        elapsed = burst_turnaround(concurrency)
        stage["by_concurrency"][str(concurrency)] = {
            "tokens_per_sec": round(burst_tokens / elapsed, 1),
            "elapsed_s": round(elapsed, 4),
        }
    single = stage["by_concurrency"]["1"]["tokens_per_sec"]
    multi = stage["by_concurrency"][str(BATCH_SIZES[0])]["tokens_per_sec"]
    stage["multi_vs_single_slot"] = round(multi / single, 2)

    # The PR-5 merge lever, isolated: the same burst at full concurrency
    # under PR-4's split schedule (one ragged chunk forward + one decode
    # forward per step) vs the unified mixed-length forward.  One-token
    # budgets bound the window at every arrival's *first token* — the
    # burst's admission turnaround, the span the merged forward actually
    # changes (the decode tail after promotion is mode-independent and
    # would only dilute the ratio).  Identical tokens either way — the
    # gain is one model pass per step instead of two.
    # Interleaved best-of-8: the two schedules differ by ~20% over a
    # ~30 ms window, so the ratio needs tighter min-estimates than the
    # coarser stages, and alternating the trials makes any slow system
    # phase hit both sides instead of biasing one.
    split_s = unified_s = float("inf")
    for _ in range(8):
        split_s = min(
            split_s,
            burst_turnaround(BATCH_SIZES[0], unified_step=False, budget=1,
                             repeats=1),
        )
        unified_s = min(
            unified_s,
            burst_turnaround(BATCH_SIZES[0], unified_step=True, budget=1,
                             repeats=1),
        )
    prompt_tokens = sum(len(p) for p in burst)
    unified_stage = {
        "n_arrivals": len(burst),
        "chunk_tokens": ADMISSION_CHUNK_TOKENS,
        "prefill_concurrency": BATCH_SIZES[0],
        "burst_prompt_tokens": prompt_tokens,
        "split_elapsed_s": round(split_s, 4),
        "unified_elapsed_s": round(unified_s, 4),
        "split_tokens_per_sec": round(prompt_tokens / split_s, 1),
        "unified_tokens_per_sec": round(prompt_tokens / unified_s, 1),
        "unified_vs_split": round(split_s / unified_s, 2),
    }
    return stage, unified_stage


def _kv_memory_stage(model, prompts) -> dict:
    """Resident KV bytes: paged pool vs dense slabs, staggered arrivals.

    The memory claim the paged pool makes is that resident KV bytes
    follow the *live* fleet, not the provisioned worst case — so the
    scenario is an engine provisioned wide (two burst widths of slots)
    serving prompt-heavy requests that arrive over time, the serving
    shape where occupancy is variable.  Dense slabs hold
    ``max_batch × max_seq_len`` columns throughout; the pool holds the
    pages of the sequences actually alive (plus its gather scratch,
    counted).  Tokens must match the dense run exactly — the ratio is
    pure storage, never different output.
    """
    max_batch = 2 * BATCH_SIZES[0]

    def staggered(kv_page_tokens: int | None):
        engine = BatchedEngine(
            model, max_batch=max_batch, kv_page_tokens=kv_page_tokens
        )
        results: dict[int, list[int]] = {}
        ids: list[int] = []
        pending = list(prompts)
        peak_resident = 0
        peak_pages = 0
        while pending or engine.has_work:
            if pending:
                ids.append(
                    engine.submit(
                        GenerationRequest(pending.pop(0), HEAVY_MAX_NEW_TOKENS)
                    )
                )
            for _ in range(4):
                engine.step()
                results.update(engine.collect())
            stats = engine.kv_stats()
            peak_resident = max(peak_resident, stats["resident_kv_bytes"])
            if stats["paged"]:
                peak_pages = max(peak_pages, stats["pages_in_use"])
        results.update(engine.collect())
        return [results[i] for i in ids], peak_resident, peak_pages

    dense_tokens, dense_resident, _ = staggered(None)
    paged_tokens, paged_resident, peak_pages = staggered(KV_PAGE_TOKENS)
    assert paged_tokens == dense_tokens, "paged KV changed decoded tokens"
    return {
        "n_sequences": len(prompts),
        "max_batch": max_batch,
        "kv_page_tokens": KV_PAGE_TOKENS,
        "max_new_tokens": HEAVY_MAX_NEW_TOKENS,
        "dense_resident_bytes": dense_resident,
        "paged_resident_bytes": paged_resident,
        "resident_ratio": round(dense_resident / paged_resident, 2),
        "peak_kv_pages": peak_pages,
        "kv_bytes_per_live_token": round(
            paged_resident / (peak_pages * KV_PAGE_TOKENS), 1
        ),
    }


def _prefix_cache_stage(model) -> dict:
    """Template-heavy shared-prefix load: radix cache on vs off.

    The serving shape the prefix cache targets: every request extends
    one long instruction template (the Fig. 3 coach prompt shape) with a
    short distinct tail.  Both engines run the same paged pool; the only
    difference is the radix index.  A single warm request registers the
    template's pages, then the burst is timed with one-token budgets so
    the measurement isolates prefill — the phase the cache short-cuts by
    skipping straight to each prompt's first unshared token.  Tokens
    must match the sequential decode exactly in both runs: the cache is
    pure scheduling/storage, never different output.

    The memory split reruns the burst with real decode budgets and all
    requests concurrently live, and compares peak page storage per live
    *logical* token (what each sequence believes it has cached): with
    sharing, the template's pages count once for the whole fleet.
    """
    rng = np.random.default_rng(987)
    # Template fills the context up to one page of headroom: the tails
    # and decode budgets live in each request's single private page.
    template_pages = model.config.max_seq_len // KV_PAGE_TOKENS - 1
    template = [
        int(t)
        for t in rng.integers(5, 300, size=template_pages * KV_PAGE_TOKENS)
    ]
    prompts = [
        template + [int(t) for t in rng.integers(5, 300, size=int(n))]
        for n in rng.integers(9, 21, size=PREFIX_N_REQUESTS)
    ]
    warm_request = GenerationRequest(template + [7], 1, eos_id=None)
    prefill_requests = [GenerationRequest(p, 1, eos_id=None) for p in prompts]
    expected = [model.generate(p, 1) for p in prompts]

    def warmed_engine(prefix_cache: bool) -> BatchedEngine:
        engine = BatchedEngine(
            model,
            max_batch=PREFIX_N_REQUESTS + 1,
            prefill_concurrency=PREFIX_N_REQUESTS,
            kv_page_tokens=KV_PAGE_TOKENS,
            kv_prefix_cache=prefix_cache,
        )
        engine.generate([warm_request])
        return engine

    engines = {on: warmed_engine(on) for on in (False, True)}
    elapsed: dict[bool, float] = {}
    for on, engine in engines.items():
        got, elapsed[on] = _best_of(lambda: engine.generate(prefill_requests))
        assert got == expected, f"prefix_cache={on}: prefill tokens diverge"

    pc = engines[True].kv_stats()["prefix_cache"]
    prompt_tokens = sum(len(p) for p in prompts)

    # -- memory split: peak page storage per live logical token ----------------
    full_expected = [model.generate(p, HEAVY_MAX_NEW_TOKENS) for p in prompts]
    logical_tokens = sum(
        len(p) + HEAVY_MAX_NEW_TOKENS for p in prompts
    )
    token_bytes = 2 * model.config.n_layers * model.config.d_model * 4

    def peak_pages(prefix_cache: bool) -> int:
        engine = warmed_engine(prefix_cache)
        ids = [
            engine.submit(GenerationRequest(p, HEAVY_MAX_NEW_TOKENS, eos_id=None))
            for p in prompts
        ]
        results: dict[int, list[int]] = {}
        peak = 0
        while engine.has_work:
            engine.step()
            results.update(engine.collect())
            peak = max(peak, engine.kv_stats()["pages_in_use"])
        assert [results[i] for i in ids] == full_expected, (
            f"prefix_cache={prefix_cache}: decoded tokens diverge"
        )
        return peak

    pages = {on: peak_pages(on) for on in (False, True)}
    bytes_per_token = {
        on: pages[on] * KV_PAGE_TOKENS * token_bytes / logical_tokens
        for on in (False, True)
    }
    return {
        "n_sequences": len(prompts),
        "template_tokens": len(template),
        "prompt_tokens": prompt_tokens,
        "kv_page_tokens": KV_PAGE_TOKENS,
        "off_prefill_tokens_per_sec": round(prompt_tokens / elapsed[False], 1),
        "on_prefill_tokens_per_sec": round(prompt_tokens / elapsed[True], 1),
        "prefill_speedup": round(elapsed[False] / elapsed[True], 2),
        "hit_rate": pc["hit_rate"],
        "shared_tokens": pc["shared_tokens"],
        "off_peak_kv_pages": pages[False],
        "on_peak_kv_pages": pages[True],
        "off_kv_bytes_per_live_token": round(bytes_per_token[False], 1),
        "on_kv_bytes_per_live_token": round(bytes_per_token[True], 1),
        "kv_bytes_per_live_token_ratio": round(
            bytes_per_token[False] / bytes_per_token[True], 2
        ),
    }


def test_throughput_sequential_vs_batched(wb):
    model, tokenizer = _bench_model(wb.scale)
    dataset = generate_dataset(np.random.default_rng(55), N_SEQUENCES)

    # -- stage 1: test-set style response generation ---------------------------
    context = model.config.max_seq_len
    prompts = [
        encode_truncated_instruction_prompt(tokenizer, pair.instruction, context)
        for pair in dataset
    ]
    eos = tokenizer.specials.eos
    response_requests = [
        GenerationRequest(p, MAX_NEW_TOKENS, eos_id=eos) for p in prompts
    ]
    response_stage = _stage(
        "responses",
        response_requests,
        lambda: [model.generate(p, MAX_NEW_TOKENS, eos_id=eos) for p in prompts],
        model,
    )

    # -- stage 2: CoachLM revision decodes (copy-assist biases) ----------------
    coach = CoachLM(model, tokenizer, max_new_tokens=MAX_NEW_TOKENS)
    gated = [coach._pre_generate(pair) for pair in dataset]
    coach_prompts = [
        (prompt, pair)
        for pair, (prompt, _) in zip(dataset, gated)
        if prompt is not None
    ]
    revision_requests = [
        coach._revision_request(prompt, pair) for prompt, pair in coach_prompts
    ]
    revision_stage = _stage(
        "revision",
        revision_requests,
        lambda: [
            coach._generate_with_copy_assist(prompt, pair)
            for prompt, pair in coach_prompts
        ],
        model,
    )

    # -- stage 3: prompt-heavy (prefill-bound) ---------------------------------
    long_prompts = _long_prompts(tokenizer, model, dataset)
    heavy_stage = _prompt_heavy_stage(model, long_prompts)

    # -- stage 4: chunked admission, single- vs multi-slot, unified-vs-split ---
    admission_stage, unified_stage = _chunked_admission_stage(model, long_prompts)

    # -- stage 5: paged KV pool resident memory --------------------------------
    kv_memory_stage = _kv_memory_stage(model, long_prompts)

    # -- stage 6: radix prefix cache under template-heavy load -----------------
    prefix_stage = _prefix_cache_stage(model)

    payload = {
        "scale": wb.scale.name,
        "model": {
            "d_model": model.config.d_model,
            "n_layers": model.config.n_layers,
            "vocab_size": model.config.vocab_size,
        },
        "max_new_tokens": MAX_NEW_TOKENS,
        "response_generation": response_stage,
        "revision": revision_stage,
        "prompt_heavy": heavy_stage,
        "chunked_admission": admission_stage,
        "unified_forward": unified_stage,
        "kv_memory": kv_memory_stage,
        "prefix_cache": prefix_stage,
    }
    print_banner("throughput", "sequential vs batched decoding (tokens/sec)")
    for stage_name in ("response_generation", "revision"):
        stage = payload[stage_name]
        line = ", ".join(
            f"B={batch}: {info['tokens_per_sec']:.0f} tok/s ({info['speedup']:.2f}x)"
            for batch, info in stage["batched"].items()
        )
        print(
            f"{stage_name}: seq {stage['sequential_tokens_per_sec']:.0f} tok/s "
            f"over {stage['tokens']} tokens → {line}"
        )
    heavy_line = ", ".join(
        f"B={batch}: prefill {info['prefill_tokens_per_sec']:.0f} tok/s "
        f"({info['prefill_speedup']:.2f}x), decode "
        f"{info['decode_tokens_per_sec']:.0f} tok/s"
        for batch, info in heavy_stage["batched"].items()
    )
    print(
        f"prompt_heavy: seq prefill "
        f"{heavy_stage['sequential']['prefill_tokens_per_sec']:.0f} tok/s over "
        f"{heavy_stage['prompt_tokens']} prompt tokens → {heavy_line}"
    )
    single = admission_stage["by_concurrency"]["1"]
    multi = admission_stage["by_concurrency"][str(BATCH_SIZES[0])]
    print(
        f"chunked_admission (chunk={admission_stage['chunk_tokens']}): "
        f"single-slot {single['tokens_per_sec']:.0f} tok/s → multi-slot "
        f"{multi['tokens_per_sec']:.0f} tok/s "
        f"({admission_stage['multi_vs_single_slot']:.2f}x)"
    )
    print(
        f"unified_forward (chunk={unified_stage['chunk_tokens']}): split "
        f"{unified_stage['split_tokens_per_sec']:.0f} tok/s → unified "
        f"{unified_stage['unified_tokens_per_sec']:.0f} tok/s "
        f"({unified_stage['unified_vs_split']:.2f}x)"
    )
    print(
        f"kv_memory (staggered, {kv_memory_stage['max_batch']} slots): dense "
        f"{kv_memory_stage['dense_resident_bytes'] / 1e6:.2f} MB → paged "
        f"{kv_memory_stage['paged_resident_bytes'] / 1e6:.2f} MB "
        f"({kv_memory_stage['resident_ratio']:.2f}x, peak "
        f"{kv_memory_stage['peak_kv_pages']} pages, "
        f"{kv_memory_stage['kv_bytes_per_live_token']:.0f} B/live token)"
    )
    print(
        f"prefix_cache (template {prefix_stage['template_tokens']} tok, "
        f"{prefix_stage['n_sequences']} requests): prefill "
        f"{prefix_stage['off_prefill_tokens_per_sec']:.0f} → "
        f"{prefix_stage['on_prefill_tokens_per_sec']:.0f} tok/s "
        f"({prefix_stage['prefill_speedup']:.2f}x, hit rate "
        f"{prefix_stage['hit_rate']:.2f}); KV "
        f"{prefix_stage['off_kv_bytes_per_live_token']:.0f} → "
        f"{prefix_stage['on_kv_bytes_per_live_token']:.0f} B/live token "
        f"({prefix_stage['kv_bytes_per_live_token_ratio']:.2f}x)"
    )

    # Perf-regression floors.  The engine must not give back PR-1's
    # continuous-batching decode speedup, and the ragged batched prefill
    # must clear its own acceptance bar.
    for stage in (response_stage, revision_stage):
        assert stage["batched"]["8"]["speedup"] >= PR1_BATCH8_FLOOR, stage
    assert (
        heavy_stage["batched"]["8"]["prefill_speedup"] >= PREFILL_BATCH8_FLOOR
    ), heavy_stage
    # Multi-slot chunked admission must recover the throughput single-slot
    # chunking gives up to refill serialization.
    assert (
        admission_stage["multi_vs_single_slot"]
        >= ADMISSION_MULTI_VS_SINGLE_FLOOR
    ), admission_stage
    # Folding the chunk rows into the decode forward must beat PR-4's
    # split two-forward schedule on the same burst.
    assert (
        unified_stage["unified_vs_split"] >= UNIFIED_VS_SPLIT_FLOOR
    ), unified_stage
    # The paged pool's reason to exist: resident KV memory scales with
    # live tokens, not with max_batch × max_seq_len.
    assert (
        kv_memory_stage["resident_ratio"] >= KV_MEMORY_RATIO_FLOOR
    ), kv_memory_stage
    # The prefix cache's acceptance bars: skipping shared template
    # tokens must pay off in prefill throughput, and storing them once
    # must pay off in page footprint.
    assert prefix_stage["prefill_speedup"] >= PREFIX_PREFILL_FLOOR, prefix_stage
    assert (
        prefix_stage["kv_bytes_per_live_token_ratio"]
        >= PREFIX_MEMORY_RATIO_FLOOR
    ), prefix_stage

    # Persist only after every gate above passed — a failing run must
    # never overwrite the committed baseline with its own numbers.
    out_path = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
