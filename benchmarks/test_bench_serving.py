"""Serving load benchmark — Poisson arrivals through the RevisionServer.

A load generator drives the online revision service with requests whose
inter-arrival times are exponential (open-loop Poisson traffic, the
standard serving-load model), sweeping the arrival rate from
under-subscribed to saturating.  Per rate we record p50/p95 request
latency and the *sustained* engine tokens/sec (tokens produced / engine
busy time), and compare against the same engine driven offline at batch
8 — the streaming scheduler must not give back the continuous-batching
speedup that PR 1 bought.  A dedup pass then re-submits known content
and asserts it is served entirely from the cache, with zero engine work;
a long-prompt stall scenario pins the chunked-prefill latency bound, and
a late-arrival burst scenario pins that multi-slot chunked admission
cuts mean admission-to-first-token steps at least 2x vs single-slot.

Results land in ``BENCH_serving.json`` at the repo root, the serving
counterpart of ``BENCH_throughput.json``.
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

import numpy as np
from conftest import print_banner

from repro.config import FleetConfig, ServingConfig
from repro.core.coachlm import CoachLM
from repro.data import InstructionDataset, generate_dataset
from repro.errors import WorkerLostError
from repro.llm import build_tokenizer
from repro.nn import BatchedEngine, GenerationRequest, TransformerConfig, TransformerLM
from repro.serving import (
    EngineFleet,
    SOURCE_CACHE,
    SOURCE_DEDUP,
    RevisionServer,
    RunJournal,
    dataset_fingerprint,
)

MAX_BATCH = 8
N_CASES = 32
MAX_NEW_TOKENS = 48
#: Burst size of the late-arrival admission scenario (and the floor's
#: subject: multi-slot chunked prefill must cut the burst's mean
#: admission-to-first-token step count at least in half).
N_LATE_ARRIVALS = 8
ADMISSION_SPEEDUP_FLOOR = 2.0
#: One config for the whole bench: the offline batch-8 reference below is
#: re-derived from an engine built with *these exact knobs* on every run
#: (never a number hard-coded from a prior engine generation), so engine
#: improvements — ragged batched prefill, chunked refill — propagate into
#: both sides of the saturation ratio instead of silently inflating it.
SERVING_CONFIG = ServingConfig(max_batch=MAX_BATCH)
#: Arrival-rate multipliers relative to the engine's service capacity.
#: 0.5x is under-subscribed (latency ≈ decode time); 16x saturates the
#: fleet almost immediately, so the sustained-throughput comparison is
#: not diluted by the arrival ramp.
LOAD_MULTIPLIERS = (0.5, 16.0)


def _bench_coach(scale) -> tuple[CoachLM, list]:
    tokenizer = build_tokenizer()
    dims = scale.base_model
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=dims.d_model,
        n_layers=dims.n_layers,
        n_heads=dims.n_heads,
        max_seq_len=dims.max_seq_len,
    )
    model = TransformerLM(config, np.random.default_rng(1234))
    coach = CoachLM(model, tokenizer, max_new_tokens=MAX_NEW_TOKENS)
    dataset = generate_dataset(np.random.default_rng(55), N_CASES)
    # Only decode-eligible pairs: gated pairs never reach the engine and
    # would dilute the throughput comparison.
    eligible = [
        pair for pair in dataset if coach._pre_generate(pair)[0] is not None
    ]
    return coach, eligible


def _batch8_reference(coach: CoachLM, pairs: list) -> tuple[float, int]:
    """Offline batch-8 revision throughput over the same requests.

    Re-derived from the *current* engine on every run (never a number
    hard-coded from a prior engine generation), at the offline batch
    path's own configuration — :data:`SERVING_CONFIG`'s fleet width but
    *unchunked* prefill, exactly like ``CoachLM.revise_dataset``.  The
    server's chunked refill cost therefore shows up in the
    ``saturated_vs_batch8`` ratio instead of cancelling out of both
    sides of it.
    """
    requests = []
    for pair in pairs:
        request, outcome = coach.prepare_revision(pair)
        assert outcome is None
        requests.append(request)
    best = 0.0
    tokens = 0
    # Two timed runs, best-of: the first pays numpy/BLAS warmup and the
    # comparison below should be against the engine's real speed.
    for _ in range(2):
        engine = BatchedEngine(coach.model, max_batch=SERVING_CONFIG.max_batch)
        start = time.perf_counter()
        outputs = engine.generate(requests)
        elapsed = time.perf_counter() - start
        tokens = sum(len(seq) for seq in outputs)
        best = max(best, tokens / elapsed)
    return best, tokens


def _long_prompt_stall(coach: CoachLM) -> dict:
    """Worst decode-step stall when a near-context prompt joins mid-flight.

    This is the scenario chunked prefill exists for: a fleet of short
    requests is decoding when one long prompt arrives in a freed slot.
    Unchunked, the admitting step pays the whole prompt-length forward
    before any in-flight slot advances; chunked, each step pays at most
    one ``prefill_chunk_tokens`` forward.  Reported as the maximum
    single ``step()`` wall time between the long prompt's submission and
    the end of its prefill (best of three trials to damp scheduler
    noise).  The gap widens with context length — at bench scale the
    whole-prompt forward is only ~3x the chunk forward — but the bound
    itself is the contract: unchunked stall grows O(context), chunked
    stays O(chunk).
    """
    context = coach.model.config.max_seq_len
    rng = np.random.default_rng(77)
    short_prompts = [
        list(map(int, rng.integers(5, 300, size=12))) for _ in range(MAX_BATCH - 1)
    ]
    long_prompt = list(map(int, rng.integers(5, 300, size=context - 6)))

    def worst_step(chunk: int | None) -> float:
        best = float("inf")
        for _ in range(3):
            engine = BatchedEngine(
                coach.model, max_batch=MAX_BATCH, prefill_chunk_tokens=chunk
            )
            for prompt in short_prompts:
                engine.submit(GenerationRequest(prompt, MAX_NEW_TOKENS))
            engine.step()  # fleet in flight, one slot free
            seq_id = engine.submit(GenerationRequest(long_prompt, 4))
            worst = 0.0
            while seq_id not in engine.collect():
                start = time.perf_counter()
                engine.step()
                worst = max(worst, time.perf_counter() - start)
                if not engine.has_work:
                    break
            best = min(best, worst)
        return best

    unchunked = worst_step(None)
    chunked = worst_step(SERVING_CONFIG.prefill_chunk_tokens)
    return {
        "long_prompt_tokens": len(long_prompt),
        "chunk_tokens": SERVING_CONFIG.prefill_chunk_tokens,
        "unchunked_max_step_ms": round(unchunked * 1e3, 2),
        "chunked_max_step_ms": round(chunked * 1e3, 2),
        "stall_ratio": round(chunked / unchunked, 3),
    }


def _late_arrival_admission(coach: CoachLM) -> dict:
    """Mean admission-to-first-token steps for a simultaneous burst.

    The CoachLM deployment's bursty shape: a fleet is decoding when
    ``N_LATE_ARRIVALS`` long prompts land at once.  With single-slot
    chunked prefill the burst serializes — arrival ``j`` waits for every
    chunk of arrivals ``< j`` before its own first chunk runs — so its
    admission-to-first-token latency grows linearly in the burst size.
    Multi-slot admission advances *every* parked prompt one chunk per
    step in one ragged forward, collapsing that to the prompt's own
    chunk count.  Measured in engine steps (deterministic, timer-free):
    each arrival carries a one-token budget, so its completion step *is*
    its first-token step.
    """
    model = coach.model
    context = model.config.max_seq_len
    rng = np.random.default_rng(123)
    decoys = [
        list(map(int, rng.integers(5, 300, size=10))) for _ in range(MAX_BATCH)
    ]
    arrivals = [
        list(map(int, rng.integers(5, 300, size=context // 2 + (i % 5))))
        for i in range(N_LATE_ARRIVALS)
    ]

    def mean_steps(concurrency: int) -> tuple[float, float]:
        engine = BatchedEngine(
            model,
            max_batch=MAX_BATCH + N_LATE_ARRIVALS,
            prefill_chunk_tokens=SERVING_CONFIG.prefill_chunk_tokens,
            prefill_concurrency=concurrency,
        )
        for prompt in decoys:
            engine.submit(GenerationRequest(prompt, context))
        engine.step()  # decoy fleet in flight; budgets outlast the burst
        ids = {engine.submit(GenerationRequest(p, 1)) for p in arrivals}
        first: dict[int, int] = {}
        steps = 0
        start = time.perf_counter()
        while len(first) < len(ids):
            engine.step()
            steps += 1
            for seq_id in engine.collect():
                if seq_id in ids:
                    first[seq_id] = steps
        elapsed = time.perf_counter() - start
        return float(np.mean(list(first.values()))), elapsed

    single_steps, single_s = mean_steps(1)
    multi_steps, multi_s = mean_steps(SERVING_CONFIG.prefill_concurrency)
    return {
        "n_arrivals": N_LATE_ARRIVALS,
        "arrival_prompt_tokens": [len(p) for p in arrivals],
        "chunk_tokens": SERVING_CONFIG.prefill_chunk_tokens,
        "prefill_concurrency": SERVING_CONFIG.prefill_concurrency,
        "single_slot_mean_steps": round(single_steps, 2),
        "multi_slot_mean_steps": round(multi_steps, 2),
        "admission_speedup_steps": round(single_steps / multi_steps, 2),
        "single_slot_wall_ms": round(single_s * 1e3, 2),
        "multi_slot_wall_ms": round(multi_s * 1e3, 2),
    }


def _poisson_load(
    coach: CoachLM, pairs: list, rate_per_s: float, seed: int, repeats: int = 1
):
    """Open-loop load: submit each pair after an exponential gap.

    ``repeats`` takes the best sustained-throughput trial (keeping that
    trial's latencies), mirroring the best-of-2 warmup discipline of
    :func:`_batch8_reference` — the saturated point feeds a ratio whose
    *denominator* is already a best-of, so a single-shot numerator would
    systematically understate it under CI contention.
    """
    best = None
    for trial in range(repeats):
        rng = np.random.default_rng(seed + trial)
        gaps = rng.exponential(1.0 / rate_per_s, size=len(pairs))
        server = RevisionServer(coach, SERVING_CONFIG)
        with server:
            futures = []
            for pair, gap in zip(pairs, gaps):
                time.sleep(float(gap))
                futures.append(server.submit(pair))
            results = [future.result(timeout=600.0) for future in futures]
        latencies = sorted(result.latency_s for result in results)
        stats = {
            "rate_per_s": round(rate_per_s, 2),
            "n_requests": len(results),
            "p50_latency_s": round(float(np.percentile(latencies, 50)), 4),
            "p95_latency_s": round(float(np.percentile(latencies, 95)), 4),
            "sustained_tokens_per_sec": round(
                server.metrics.tokens_per_second(), 1
            ),
            "engine_tokens": server.metrics.engine_tokens,
        }
        if (
            best is None
            or stats["sustained_tokens_per_sec"]
            > best["sustained_tokens_per_sec"]
        ):
            best = stats
    return best


def _dedup_pass(coach: CoachLM, pairs: list) -> dict:
    """Warm the cache, then re-submit everything: zero engine work."""
    server = RevisionServer(coach, SERVING_CONFIG)
    with server:
        warm = [server.submit(pair) for pair in pairs]
        for future in warm:
            future.result(timeout=600.0)
        tokens_after_warm = server.metrics.engine_tokens
        repeat = [server.submit(pair) for pair in pairs]
        results = [future.result(timeout=600.0) for future in repeat]
    assert server.metrics.engine_tokens == tokens_after_warm, (
        "dedup-cache hits must not touch the engine"
    )
    sources = {result.source for result in results}
    assert sources <= {SOURCE_CACHE, SOURCE_DEDUP}, sources
    return {
        "repeats": len(results),
        "cache_served": len(results),
        "engine_tokens_saved": tokens_after_warm,
    }


def test_serving_sustains_batched_throughput(wb):
    coach, pairs = _bench_coach(wb.scale)
    ref_tokens_per_sec, ref_tokens = _batch8_reference(coach, pairs)
    tokens_per_request = ref_tokens / len(pairs)
    capacity_req_per_s = ref_tokens_per_sec / tokens_per_request

    sweep = {}
    for multiplier in LOAD_MULTIPLIERS:
        sweep[f"{multiplier}x"] = _poisson_load(
            coach, pairs, multiplier * capacity_req_per_s,
            seed=int(multiplier * 10),
            # Only the saturated point feeds the best-of-2 reference
            # ratio; the under-subscribed point is latency-shaped.
            repeats=3 if multiplier == max(LOAD_MULTIPLIERS) else 1,
        )
    dedup = _dedup_pass(coach, pairs)
    stall = _long_prompt_stall(coach)
    admission = _late_arrival_admission(coach)

    saturated = sweep[f"{max(LOAD_MULTIPLIERS)}x"]
    payload = {
        "scale": wb.scale.name,
        "model": {
            "d_model": coach.model.config.d_model,
            "n_layers": coach.model.config.n_layers,
            "vocab_size": coach.model.config.vocab_size,
        },
        "max_batch": MAX_BATCH,
        "max_new_tokens": MAX_NEW_TOKENS,
        "prefill_chunk_tokens": SERVING_CONFIG.prefill_chunk_tokens,
        "prefill_concurrency": SERVING_CONFIG.prefill_concurrency,
        # The serving default since PR 5: the engine behind every number
        # above runs on the paged KV pool, so the saturated ratio prices
        # in paging (mirror writes + lazy re-gathers), not just chunking.
        "kv_page_tokens": SERVING_CONFIG.kv_page_tokens,
        "reference_batch8_tokens_per_sec": round(ref_tokens_per_sec, 1),
        "arrival_sweep": sweep,
        "saturated_vs_batch8": round(
            saturated["sustained_tokens_per_sec"] / ref_tokens_per_sec, 3
        ),
        "dedup": dedup,
        "long_prompt_stall": stall,
        "late_arrival_admission": admission,
    }
    print_banner("serving", "Poisson load through the online revision service")
    print(
        f"offline batch-{MAX_BATCH} reference: {ref_tokens_per_sec:.0f} tok/s "
        f"({tokens_per_request:.0f} tok/req, capacity ~{capacity_req_per_s:.0f} req/s)"
    )
    for label, stats in sweep.items():
        print(
            f"load {label:>4} ({stats['rate_per_s']:.0f} req/s): "
            f"p50 {1000 * stats['p50_latency_s']:.0f} ms, "
            f"p95 {1000 * stats['p95_latency_s']:.0f} ms, "
            f"sustained {stats['sustained_tokens_per_sec']:.0f} tok/s"
        )
    print(
        f"dedup pass: {dedup['repeats']} repeats served from cache, "
        f"{dedup['engine_tokens_saved']} engine tokens saved"
    )
    print(
        f"long-prompt stall ({stall['long_prompt_tokens']} tokens joining "
        f"mid-flight): worst step {stall['unchunked_max_step_ms']:.1f} ms "
        f"unchunked → {stall['chunked_max_step_ms']:.1f} ms chunked "
        f"(chunk={stall['chunk_tokens']})"
    )
    print(
        f"late-arrival burst ({admission['n_arrivals']} prompts at once): "
        f"mean admission-to-first-token "
        f"{admission['single_slot_mean_steps']:.1f} steps single-slot → "
        f"{admission['multi_slot_mean_steps']:.1f} steps multi-slot "
        f"({admission['admission_speedup_steps']:.1f}x)"
    )

    # Under saturating Poisson load the streaming scheduler must stay
    # close to the *unchunked dense* offline batch-8 throughput — the
    # ratio now prices in both chunked prefill interleaving and the
    # paged KV pool (the serving defaults); the long-prompt stall and
    # kv_memory numbers are what those costs buy.  The JSON records the
    # exact ratio (~0.93-1.0 with the mirror-backed pool).
    assert saturated["sustained_tokens_per_sec"] >= 0.9 * ref_tokens_per_sec, (
        payload
    )
    # Chunking must deliver the thing it costs throughput for: a long
    # prompt joining a busy fleet may never stall in-flight decodes for
    # anything close to a whole prompt-length forward pass.
    assert stall["chunked_max_step_ms"] < stall["unchunked_max_step_ms"], payload
    # Multi-slot admission must collapse the burst's serialization: mean
    # admission-to-first-token steps drop at least 2x vs single-slot
    # chunking (step counts are deterministic — no timer noise band).
    assert (
        admission["admission_speedup_steps"] >= ADMISSION_SPEEDUP_FLOOR
    ), payload
    # Under-subscribed load must have lower latency than saturation.
    light = sweep[f"{min(LOAD_MULTIPLIERS)}x"]
    assert light["p50_latency_s"] <= saturated["p50_latency_s"], payload

    # Persist only after every gate above passed — a failing run must
    # never overwrite the committed baseline with its own numbers.
    out_path = Path(__file__).resolve().parents[1] / "BENCH_serving.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# -- priority preemption + streaming overhead stages -----------------------------

#: p95 high-priority time-to-first-token must beat the FIFO baseline at
#: least this much under saturating low-priority load (measured in
#: deterministic engine steps, like the admission bench).
PRIORITY_TTFT_FLOOR = 3.0
#: Streaming may cost at most this multiple of non-streamed sustained
#: throughput: plain_tok_s <= ceiling * streamed_tok_s.
STREAMING_OVERHEAD_CEILING = 1.1
#: High-priority probes fired into the saturated fleet (p95 subject).
N_PROBES = 5
#: Page size for the preemption stage: small enough that a bulk decode
#: spans several pages, so evicting one genuinely frees page headroom
#: for the urgent arrival (at the serving default of 64 a 60-token
#: sequence is a single page and preemption frees nothing).
PREEMPT_PAGE_TOKENS = 16


def _priority_preemption(coach: CoachLM) -> dict:
    """p95 TTFT of urgent probes vs a FIFO fleet, in engine steps.

    A decoy fleet of low-priority bulk decodes owns every KV page;
    urgent one-token probes (the TTFT trick of
    :func:`_late_arrival_admission`: a one-token budget makes the
    completion step the first-token step) land while it runs.  With
    priorities + preemption the probe evicts one bulk decode and speaks
    within a couple of steps; under FIFO (preemption off, one priority
    class) it waits for the whole bulk generation to retire.  Steps are
    deterministic — the floor is not exposed to CI timer noise — and
    wall times are recorded alongside.
    """
    model = coach.model
    rng = np.random.default_rng(31415)
    decoys = [
        list(map(int, rng.integers(5, 300, size=12))) for _ in range(MAX_BATCH)
    ]
    probes = [
        list(map(int, rng.integers(5, 300, size=12))) for _ in range(N_PROBES)
    ]
    pages_per_decoy = -(-(12 + MAX_NEW_TOKENS) // PREEMPT_PAGE_TOKENS)
    pool_pages = MAX_BATCH * pages_per_decoy
    submit_at = {i: 4 * (i + 1) for i in range(N_PROBES)}

    def ttft_steps(priorities: bool) -> tuple[list[int], float]:
        engine = BatchedEngine(
            model,
            max_batch=MAX_BATCH + 1,
            kv_page_tokens=PREEMPT_PAGE_TOKENS,
            kv_pool_pages=pool_pages,
            preemption=priorities,
        )
        for prompt in decoys:
            engine.submit(
                GenerationRequest(
                    prompt, MAX_NEW_TOKENS, priority=5 if priorities else 0
                )
            )
        ids: dict[int, int] = {}
        done_step: dict[int, int] = {}
        step = 0
        start = time.perf_counter()
        while len(done_step) < N_PROBES or engine.has_work:
            for i, at in submit_at.items():
                if step >= at and i not in ids:
                    ids[i] = engine.submit(
                        GenerationRequest(probes[i], 1, priority=0)
                    )
            engine.step()
            step += 1
            finished = engine.collect()
            for i, seq_id in ids.items():
                if seq_id in finished:
                    done_step[i] = step
        elapsed = time.perf_counter() - start
        stats = engine.kv_stats()
        assert stats["pages_in_use"] == 0 and stats["reserved_pages"] == 0
        return (
            [done_step[i] - submit_at[i] for i in range(N_PROBES)], elapsed
        )

    preempt_ttfts, preempt_s = ttft_steps(True)
    fifo_ttfts, fifo_s = ttft_steps(False)
    preempt_p95 = float(np.percentile(preempt_ttfts, 95))
    fifo_p95 = float(np.percentile(fifo_ttfts, 95))
    return {
        "n_probes": N_PROBES,
        "n_bulk_decodes": MAX_BATCH,
        "bulk_new_tokens": MAX_NEW_TOKENS,
        "kv_page_tokens": PREEMPT_PAGE_TOKENS,
        "kv_pool_pages": pool_pages,
        "preempt_ttft_steps": preempt_ttfts,
        "fifo_ttft_steps": fifo_ttfts,
        "preempt_p95_ttft_steps": round(preempt_p95, 2),
        "fifo_p95_ttft_steps": round(fifo_p95, 2),
        "ttft_speedup": round(fifo_p95 / preempt_p95, 2),
        "ttft_floor": PRIORITY_TTFT_FLOOR,
        "preempt_wall_ms": round(preempt_s * 1e3, 2),
        "fifo_wall_ms": round(fifo_s * 1e3, 2),
    }


def _streaming_overhead(coach: CoachLM, pairs: list) -> dict:
    """Sustained tok/s of streamed vs non-streamed revision traffic.

    Identical requests against fresh (cold-cache) servers, best-of-3
    per mode with the modes interleaved round by round (so a transient
    machine-load spike hits both sides, not just one); the streamed
    side pays the per-token delivery plumbing (scheduler callbacks,
    per-event queues) and must keep it under the
    :data:`STREAMING_OVERHEAD_CEILING`.
    """

    def run_once(streamed: bool) -> tuple[float, int]:
        server = RevisionServer(coach, SERVING_CONFIG)
        with server:
            start = time.perf_counter()
            if streamed:
                streams = [server.submit_stream(pair) for pair in pairs]
                n = 0
                for stream in streams:
                    while True:
                        event = stream.get(timeout=600.0)
                        assert event is not None, "stream stalled"
                        if event[0] == "tokens":
                            n += len(event[1])
                        elif event[0] == "done":
                            break
                        else:
                            raise AssertionError(event[1])
            else:
                futures = [server.submit(pair) for pair in pairs]
                n = sum(
                    f.result(timeout=600.0).generated_tokens
                    for f in futures
                )
            elapsed = time.perf_counter() - start
        return n / elapsed, n

    plain_tps = streamed_tps = 0.0
    plain_tokens = streamed_tokens = 0
    for _ in range(3):
        tps, plain_tokens = run_once(False)
        plain_tps = max(plain_tps, tps)
        tps, streamed_tokens = run_once(True)
        streamed_tps = max(streamed_tps, tps)
    assert streamed_tokens == plain_tokens, (
        "streaming changed the decoded token count"
    )
    return {
        "n_requests": len(pairs),
        "engine_tokens": plain_tokens,
        "plain_tokens_per_sec": round(plain_tps, 1),
        "streamed_tokens_per_sec": round(streamed_tps, 1),
        "overhead_ratio": round(plain_tps / streamed_tps, 3),
        "overhead_ceiling": STREAMING_OVERHEAD_CEILING,
    }


def test_priority_preemption_and_streaming_overhead(wb):
    coach, pairs = _bench_coach(wb.scale)
    preemption = _priority_preemption(coach)
    streaming = _streaming_overhead(coach, pairs[:16])

    out_path = Path(__file__).resolve().parents[1] / "BENCH_serving.json"
    payload = (
        json.loads(out_path.read_text(encoding="utf-8"))
        if out_path.exists()
        else {}
    )
    payload["priority_preemption"] = preemption
    payload["streaming_overhead"] = streaming

    print_banner(
        "preempt", "priority-tiered TTFT under saturation + streaming cost"
    )
    print(
        f"TTFT p95 over {preemption['n_probes']} urgent probes into "
        f"{preemption['n_bulk_decodes']} saturating bulk decodes: "
        f"{preemption['fifo_p95_ttft_steps']:.0f} steps FIFO → "
        f"{preemption['preempt_p95_ttft_steps']:.0f} steps preemptive "
        f"({preemption['ttft_speedup']:.1f}x, floor "
        f"{preemption['ttft_floor']:.0f}x)"
    )
    print(
        f"streaming overhead: {streaming['plain_tokens_per_sec']:.0f} tok/s "
        f"plain vs {streaming['streamed_tokens_per_sec']:.0f} tok/s streamed "
        f"({streaming['overhead_ratio']:.2f}x of ≤"
        f"{streaming['overhead_ceiling']:.1f}x budget)"
    )

    # The headline contract: under saturating low-priority load, urgent
    # traffic must reach its first token >= 3x faster than FIFO would
    # allow — that is what preemptive eviction exists for.
    assert (
        preemption["ttft_speedup"] >= PRIORITY_TTFT_FLOOR
    ), payload
    # Per-token delivery plumbing must stay near-free: the streamed run
    # may not fall more than the ceiling behind the plain run.
    assert (
        streaming["plain_tokens_per_sec"]
        <= STREAMING_OVERHEAD_CEILING * streaming["streamed_tokens_per_sec"]
    ), payload

    # Persist only after the gates passed — a failing run must never
    # overwrite the committed baseline with its own numbers.
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# -- multi-process fleet stages --------------------------------------------------

#: Minimum 2-worker speedup over 1 worker — only enforced with >= 2 CPU
#: cores (forked workers on one core just timeslice; the JSON records
#: the honest single-core numbers with ``floor_enforced: false``).
FLEET_SCALING_FLOOR = 1.6


def _fleet_config(n_workers: int) -> FleetConfig:
    return FleetConfig(
        fleet_workers=n_workers,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=5.0,
        restart_backoff_s=0.05,
        restart_backoff_max_s=0.2,
        serving=SERVING_CONFIG,
    )


def _fleet_throughput(coach: CoachLM, pairs: list, n_workers: int) -> dict:
    """Wall-clock revision throughput of an n-worker fleet.

    Tokens are summed from the results themselves (exact), and the clock
    runs from first submit to last resolution — wall time is what extra
    workers are supposed to buy, unlike per-engine busy time.
    """
    with EngineFleet(coach, _fleet_config(n_workers)) as fleet:
        start = time.perf_counter()
        futures = [fleet.submit(pair) for pair in pairs]
        results = [future.result(timeout=600.0) for future in futures]
        elapsed = time.perf_counter() - start
    tokens = sum(result.generated_tokens for result in results)
    return {
        "workers": n_workers,
        "n_requests": len(results),
        "engine_tokens": tokens,
        "wall_s": round(elapsed, 3),
        "tokens_per_sec": round(tokens / elapsed, 1),
    }


def _crash_recovery(coach: CoachLM, pairs: list) -> dict:
    """SIGKILL one of two workers mid-decode; every request must resolve."""
    with EngineFleet(coach, _fleet_config(2)) as fleet:
        start = time.perf_counter()
        futures = [fleet.submit(pair) for pair in pairs]
        deadline = time.monotonic() + 60.0
        victim_pid = None
        while time.monotonic() < deadline:
            busiest = max(fleet._workers, key=lambda w: len(w.outstanding))
            if busiest.outstanding and busiest.process is not None:
                victim_pid = busiest.process.pid
                os.kill(victim_pid, signal.SIGKILL)
                break
            time.sleep(0.002)
        assert victim_pid is not None, "no worker ever went busy"
        killed_at = time.perf_counter()
        resolved = 0
        lost = 0
        for future in futures:
            try:
                future.result(timeout=600.0)
                resolved += 1
            except WorkerLostError:
                # Typed, accounted failure — still a resolved future.
                resolved += 1
                lost += 1
        recovered_at = time.perf_counter()
        snap = fleet.metrics_snapshot()
        restarts = sum(w.restarts for w in fleet._workers)
    assert resolved == len(pairs), "an accepted request never resolved"
    assert snap["duplicate_results"] == 0, snap
    return {
        "workers": 2,
        "accepted": len(pairs),
        "resolved": resolved,
        "resolved_pct": 100.0,
        "worker_lost_failures": lost,
        "requeued": snap["requeued"],
        "worker_restarts": restarts,
        "wall_s": round(recovered_at - start, 3),
        "kill_to_done_s": round(recovered_at - killed_at, 3),
    }


def test_fleet_scaling_and_crash_recovery(wb):
    coach, pairs = _bench_coach(wb.scale)
    cpu_cores = os.cpu_count() or 1
    floor_enforced = cpu_cores >= 2

    scaling = {
        f"{n}w": _fleet_throughput(coach, pairs, n) for n in (1, 2, 4)
    }
    base = scaling["1w"]["tokens_per_sec"]
    fleet_scaling = {
        "cpu_cores": cpu_cores,
        "floor": FLEET_SCALING_FLOOR,
        "floor_enforced": floor_enforced,
        "by_workers": scaling,
        "speedup_2w": round(scaling["2w"]["tokens_per_sec"] / base, 2),
        "speedup_4w": round(scaling["4w"]["tokens_per_sec"] / base, 2),
    }
    recovery = _crash_recovery(coach, pairs)

    out_path = Path(__file__).resolve().parents[1] / "BENCH_serving.json"
    payload = (
        json.loads(out_path.read_text(encoding="utf-8"))
        if out_path.exists()
        else {}
    )
    payload["fleet_scaling"] = fleet_scaling
    payload["crash_recovery"] = recovery

    print_banner("fleet", "multi-process fleet scaling + crash recovery")
    for label, stats in scaling.items():
        print(
            f"{label}: {stats['tokens_per_sec']:.0f} tok/s "
            f"({stats['engine_tokens']} tokens in {stats['wall_s']:.1f}s)"
        )
    print(
        f"speedup 2w {fleet_scaling['speedup_2w']:.2f}x, "
        f"4w {fleet_scaling['speedup_4w']:.2f}x "
        f"({cpu_cores} cores, floor "
        f"{'enforced' if floor_enforced else 'recorded only'})"
    )
    print(
        f"crash recovery: {recovery['resolved']}/{recovery['accepted']} "
        f"resolved after SIGKILL ({recovery['worker_lost_failures']} typed "
        f"failures, {recovery['requeued']} requeues, "
        f"kill→done {recovery['kill_to_done_s']:.2f}s)"
    )

    if floor_enforced:
        # Two engine processes on >= 2 cores must actually scale.
        assert fleet_scaling["speedup_2w"] >= FLEET_SCALING_FLOOR, payload

    # Persist only after the gate passed — a failing run must never
    # overwrite the committed baseline with its own numbers.
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# -- crash-safe journal stages ---------------------------------------------------

#: The fsync'd run journal may cost at most this fraction of happy-path
#: revision throughput (pairs/s) — durability is supposed to be cheap
#: next to decode.
JOURNAL_OVERHEAD_CEILING = 0.05
#: A recovered run may decode at most this multiple of the interrupted
#: run's *tail* share — resume must skip the finished prefix, never
#: redo it.  Deterministic greedy decode makes the expected ratio
#: exactly 1.0; the headroom absorbs nothing but rounding.
RECOVERY_TAIL_FACTOR = 1.2
#: Fraction of the dataset "finished" before the simulated crash.
KILL_AFTER_FRACTION = 0.5
#: Decode budget for the journal-overhead measurement.  The journal's
#: fsync cost is per-*record* (constant per pair) while decode scales
#: with tokens; the 5% contract is about realistic revision lengths,
#: not the load sweep's truncated 48-token requests.
RESUME_MAX_NEW_TOKENS = 128


def _spy_engines() -> tuple[list, callable]:
    """Record every BatchedEngine built until ``restore()`` is called."""
    engines: list = []
    original = BatchedEngine.__init__

    def recording(self, *args, **kwargs):
        original(self, *args, **kwargs)
        engines.append(self)

    BatchedEngine.__init__ = recording
    return engines, lambda: setattr(BatchedEngine, "__init__", original)


def _resume_recovery(coach: CoachLM, pairs: list, journal_path: Path) -> dict:
    """Journal overhead + post-crash recovery cost of ``revise_dataset``.

    Two questions, both priced against the same offline revision run:

    * **Overhead** — what does the fsync-per-append write-ahead journal
      cost on the happy path?  Best-of-2 journal-less vs best-of-2
      journaled pairs/s over identical inputs.
    * **Recovery** — after a crash that durably finished half the pairs,
      how much decode does the resumed run spend?  The journal is cut at
      a record boundary after ``k`` DONE records (torn tails are the
      fuzz suite's subject, not a throughput question) and the resumed
      run's engines are spied: their summed ``total_generated_tokens``
      must stay within :data:`RECOVERY_TAIL_FACTOR` of the tail's own
      clean-run token share.
    """
    dataset = InstructionDataset(pairs, name="bench-resume")
    plain_s = journaled_s = float("inf")
    plain_dataset = None
    for _ in range(2):
        start = time.perf_counter()
        plain_dataset, _ = coach.revise_dataset(dataset)
        plain_s = min(plain_s, time.perf_counter() - start)
    for _ in range(2):
        journal_path.unlink(missing_ok=True)
        with RunJournal(journal_path) as journal:
            start = time.perf_counter()
            journaled_dataset, _ = coach.revise_dataset(
                dataset, journal=journal
            )
            journaled_s = min(journaled_s, time.perf_counter() - start)
    assert [(p.instruction, p.response) for p in journaled_dataset] == [
        (p.instruction, p.response) for p in plain_dataset
    ], "journaling changed the revision output"
    plain_pairs_per_s = len(pairs) / plain_s
    journaled_pairs_per_s = len(pairs) / journaled_s

    # Clean-run token shares, straight from the journal's DONE records.
    run_hash = coach.revision_run_hash()
    fingerprint = dataset_fingerprint(pairs)
    with RunJournal(journal_path) as journal:
        full = journal.open_run(run_hash, fingerprint)
    full_tokens = sum(d.generated_tokens for d in full.completed.values())

    # Simulate the crash: header + SUBMITTED + the first k DONE records.
    k = max(1, int(len(pairs) * KILL_AFTER_FRACTION))
    lines = journal_path.read_bytes().splitlines(keepends=True)
    journal_path.write_bytes(b"".join(lines[: 2 + k]))
    with RunJournal(journal_path) as journal:
        kept = journal.open_run(run_hash, fingerprint)
    assert kept.interrupted and kept.pairs_skipped == k
    tail_tokens = full_tokens - sum(
        d.generated_tokens for d in kept.completed.values()
    )

    engines, restore = _spy_engines()
    try:
        start = time.perf_counter()
        with RunJournal(journal_path) as journal:
            recovered_dataset, _ = coach.revise_dataset(
                dataset, journal=journal
            )
        recovery_s = time.perf_counter() - start
    finally:
        restore()
    recovered_tokens = sum(e.total_generated_tokens for e in engines)
    assert [(p.instruction, p.response) for p in recovered_dataset] == [
        (p.instruction, p.response) for p in plain_dataset
    ], "resume diverged from the uninterrupted run"

    return {
        "n_pairs": len(pairs),
        "max_new_tokens": coach.max_new_tokens,
        "plain_pairs_per_s": round(plain_pairs_per_s, 2),
        "journaled_pairs_per_s": round(journaled_pairs_per_s, 2),
        "journal_overhead_pct": round(
            100.0 * (1.0 - journaled_pairs_per_s / plain_pairs_per_s), 2
        ),
        "overhead_ceiling_pct": round(100.0 * JOURNAL_OVERHEAD_CEILING, 1),
        "pairs_finished_before_crash": k,
        "clean_run_tokens": full_tokens,
        "tail_tokens": tail_tokens,
        "recovered_tokens": recovered_tokens,
        "recovered_vs_tail": round(recovered_tokens / tail_tokens, 3),
        "tail_factor_ceiling": RECOVERY_TAIL_FACTOR,
        "recovery_wall_s": round(recovery_s, 3),
        "clean_wall_s": round(journaled_s, 3),
    }


def test_resume_recovery(wb, tmp_path):
    base_coach, pairs = _bench_coach(wb.scale)
    coach = CoachLM(
        base_coach.model,
        base_coach.tokenizer,
        max_new_tokens=RESUME_MAX_NEW_TOKENS,
    )
    recovery = _resume_recovery(coach, pairs, tmp_path / "bench-journal.jsonl")

    out_path = Path(__file__).resolve().parents[1] / "BENCH_serving.json"
    payload = (
        json.loads(out_path.read_text(encoding="utf-8"))
        if out_path.exists()
        else {}
    )
    payload["resume_recovery"] = recovery

    print_banner("resume", "crash-safe journal overhead + resume recovery")
    print(
        f"journal overhead: {recovery['plain_pairs_per_s']:.2f} pairs/s plain "
        f"→ {recovery['journaled_pairs_per_s']:.2f} pairs/s journaled "
        f"({recovery['journal_overhead_pct']:.1f}% of ≤"
        f"{recovery['overhead_ceiling_pct']:.0f}% budget)"
    )
    print(
        f"recovery: crash after {recovery['pairs_finished_before_crash']}/"
        f"{recovery['n_pairs']} pairs; resumed run decoded "
        f"{recovery['recovered_tokens']} tokens vs {recovery['tail_tokens']} "
        f"tail tokens ({recovery['recovered_vs_tail']:.2f}x of ≤"
        f"{recovery['tail_factor_ceiling']:.1f}x), "
        f"wall {recovery['recovery_wall_s']:.1f}s vs "
        f"{recovery['clean_wall_s']:.1f}s clean"
    )

    # Durability must be nearly free on the happy path: the fsync'd
    # journal may cost at most 5% of revision throughput.
    assert recovery["journaled_pairs_per_s"] >= (
        (1.0 - JOURNAL_OVERHEAD_CEILING) * recovery["plain_pairs_per_s"]
    ), recovery
    # Resume must skip the durable prefix: recovered decode stays within
    # the tail's own share (expected exactly 1.0x under greedy decode).
    assert recovery["recovered_tokens"] <= (
        RECOVERY_TAIL_FACTOR * recovery["tail_tokens"]
    ), recovery

    # Persist only after the gates passed — a failing run must never
    # overwrite the committed baseline with its own numbers.
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
