"""Serving load benchmark — Poisson arrivals through the RevisionServer.

A load generator drives the online revision service with requests whose
inter-arrival times are exponential (open-loop Poisson traffic, the
standard serving-load model), sweeping the arrival rate from
under-subscribed to saturating.  Per rate we record p50/p95 request
latency and the *sustained* engine tokens/sec (tokens produced / engine
busy time), and compare against the same engine driven offline at batch
8 — the streaming scheduler must not give back the continuous-batching
speedup that PR 1 bought.  A dedup pass then re-submits known content
and asserts it is served entirely from the cache, with zero engine work.

Results land in ``BENCH_serving.json`` at the repo root, the serving
counterpart of ``BENCH_throughput.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import print_banner

from repro.config import ServingConfig
from repro.core.coachlm import CoachLM
from repro.data import generate_dataset
from repro.llm import build_tokenizer
from repro.nn import BatchedEngine, TransformerConfig, TransformerLM
from repro.serving import SOURCE_CACHE, SOURCE_DEDUP, RevisionServer

MAX_BATCH = 8
N_CASES = 32
MAX_NEW_TOKENS = 48
#: Arrival-rate multipliers relative to the engine's service capacity.
#: 0.5x is under-subscribed (latency ≈ decode time); 16x saturates the
#: fleet almost immediately, so the sustained-throughput comparison is
#: not diluted by the arrival ramp.
LOAD_MULTIPLIERS = (0.5, 16.0)


def _bench_coach(scale) -> tuple[CoachLM, list]:
    tokenizer = build_tokenizer()
    dims = scale.base_model
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=dims.d_model,
        n_layers=dims.n_layers,
        n_heads=dims.n_heads,
        max_seq_len=dims.max_seq_len,
    )
    model = TransformerLM(config, np.random.default_rng(1234))
    coach = CoachLM(model, tokenizer, max_new_tokens=MAX_NEW_TOKENS)
    dataset = generate_dataset(np.random.default_rng(55), N_CASES)
    # Only decode-eligible pairs: gated pairs never reach the engine and
    # would dilute the throughput comparison.
    eligible = [
        pair for pair in dataset if coach._pre_generate(pair)[0] is not None
    ]
    return coach, eligible


def _batch8_reference(coach: CoachLM, pairs: list) -> tuple[float, int]:
    """Offline batch-8 revision throughput over the same requests."""
    requests = []
    for pair in pairs:
        request, outcome = coach.prepare_revision(pair)
        assert outcome is None
        requests.append(request)
    best = 0.0
    tokens = 0
    # Two timed runs, best-of: the first pays numpy/BLAS warmup and the
    # comparison below should be against the engine's real speed.
    for _ in range(2):
        engine = BatchedEngine(coach.model, max_batch=MAX_BATCH)
        start = time.perf_counter()
        outputs = engine.generate(requests)
        elapsed = time.perf_counter() - start
        tokens = sum(len(seq) for seq in outputs)
        best = max(best, tokens / elapsed)
    return best, tokens


def _poisson_load(coach: CoachLM, pairs: list, rate_per_s: float, seed: int):
    """Open-loop load: submit each pair after an exponential gap."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_s, size=len(pairs))
    server = RevisionServer(coach, ServingConfig(max_batch=MAX_BATCH))
    with server:
        futures = []
        for pair, gap in zip(pairs, gaps):
            time.sleep(float(gap))
            futures.append(server.submit(pair))
        results = [future.result(timeout=600.0) for future in futures]
    latencies = sorted(result.latency_s for result in results)
    return {
        "rate_per_s": round(rate_per_s, 2),
        "n_requests": len(results),
        "p50_latency_s": round(float(np.percentile(latencies, 50)), 4),
        "p95_latency_s": round(float(np.percentile(latencies, 95)), 4),
        "sustained_tokens_per_sec": round(server.metrics.tokens_per_second(), 1),
        "engine_tokens": server.metrics.engine_tokens,
    }


def _dedup_pass(coach: CoachLM, pairs: list) -> dict:
    """Warm the cache, then re-submit everything: zero engine work."""
    server = RevisionServer(coach, ServingConfig(max_batch=MAX_BATCH))
    with server:
        warm = [server.submit(pair) for pair in pairs]
        for future in warm:
            future.result(timeout=600.0)
        tokens_after_warm = server.metrics.engine_tokens
        repeat = [server.submit(pair) for pair in pairs]
        results = [future.result(timeout=600.0) for future in repeat]
    assert server.metrics.engine_tokens == tokens_after_warm, (
        "dedup-cache hits must not touch the engine"
    )
    sources = {result.source for result in results}
    assert sources <= {SOURCE_CACHE, SOURCE_DEDUP}, sources
    return {
        "repeats": len(results),
        "cache_served": len(results),
        "engine_tokens_saved": tokens_after_warm,
    }


def test_serving_sustains_batched_throughput(wb):
    coach, pairs = _bench_coach(wb.scale)
    ref_tokens_per_sec, ref_tokens = _batch8_reference(coach, pairs)
    tokens_per_request = ref_tokens / len(pairs)
    capacity_req_per_s = ref_tokens_per_sec / tokens_per_request

    sweep = {}
    for multiplier in LOAD_MULTIPLIERS:
        sweep[f"{multiplier}x"] = _poisson_load(
            coach, pairs, multiplier * capacity_req_per_s, seed=int(multiplier * 10)
        )
    dedup = _dedup_pass(coach, pairs)

    saturated = sweep[f"{max(LOAD_MULTIPLIERS)}x"]
    payload = {
        "scale": wb.scale.name,
        "model": {
            "d_model": coach.model.config.d_model,
            "n_layers": coach.model.config.n_layers,
            "vocab_size": coach.model.config.vocab_size,
        },
        "max_batch": MAX_BATCH,
        "max_new_tokens": MAX_NEW_TOKENS,
        "reference_batch8_tokens_per_sec": round(ref_tokens_per_sec, 1),
        "arrival_sweep": sweep,
        "saturated_vs_batch8": round(
            saturated["sustained_tokens_per_sec"] / ref_tokens_per_sec, 3
        ),
        "dedup": dedup,
    }
    out_path = Path(__file__).resolve().parents[1] / "BENCH_serving.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print_banner("serving", "Poisson load through the online revision service")
    print(
        f"offline batch-{MAX_BATCH} reference: {ref_tokens_per_sec:.0f} tok/s "
        f"({tokens_per_request:.0f} tok/req, capacity ~{capacity_req_per_s:.0f} req/s)"
    )
    for label, stats in sweep.items():
        print(
            f"load {label:>4} ({stats['rate_per_s']:.0f} req/s): "
            f"p50 {1000 * stats['p50_latency_s']:.0f} ms, "
            f"p95 {1000 * stats['p95_latency_s']:.0f} ms, "
            f"sustained {stats['sustained_tokens_per_sec']:.0f} tok/s"
        )
    print(
        f"dedup pass: {dedup['repeats']} repeats served from cache, "
        f"{dedup['engine_tokens_saved']} engine tokens saved"
    )

    # Under saturating Poisson load the streaming scheduler must sustain
    # the offline batch-8 throughput; asserted with a CI-noise guard band
    # (the JSON records the exact ratio).
    assert saturated["sustained_tokens_per_sec"] >= 0.85 * ref_tokens_per_sec, (
        payload
    )
    # Under-subscribed load must have lower latency than saturation.
    light = sweep[f"{min(LOAD_MULTIPLIERS)}x"]
    assert light["p50_latency_s"] <= saturated["p50_latency_s"], payload
