"""Table IV — statistics of expert revisions made on instruction pairs."""

from conftest import print_banner

from repro.analysis import format_table
from repro.experts.revision import (
    PAPER_TABLE4_INSTRUCTION,
    PAPER_TABLE4_RESPONSE,
)


def test_table4_revision_distribution(benchmark, wb):
    campaign = benchmark.pedantic(wb.campaign, rounds=1, iterations=1)
    print_banner("table4", "Expert revision campaign statistics")
    kept = len(campaign.kept)
    revised = len(campaign.records)
    print(f"kept {kept}, revised {revised} ({revised / kept:.1%}; paper 46.8%)")
    print(f"instruction-side revisions: {campaign.instruction_revised_count} "
          f"({campaign.instruction_revised_count / revised:.1%} of revised; "
          f"paper 1079/2301 = 46.9%)")
    print(f"person-days: {campaign.costs.total_days:.1f} at paper scale "
          f"rates (paper: 129 for 6k)")

    resp = campaign.table4_response_distribution()
    print(format_table(
        ["Response revision bucket", "Ours", "Paper"],
        [[k, f"{resp.get(k, 0):.1%}", f"{v:.1%}"]
         for k, v in PAPER_TABLE4_RESPONSE.items()],
    ))
    instr = campaign.table4_instruction_distribution()
    print(format_table(
        ["Instruction revision bucket", "Ours", "Paper"],
        [[k, f"{instr.get(k, 0):.1%}", f"{v:.1%}"]
         for k, v in PAPER_TABLE4_INSTRUCTION.items()],
    ))
    # Shape: revision rate near the paper's 46.8%; "expand" dominates the
    # response buckets; "readability" dominates the instruction buckets.
    assert 0.35 < revised / kept < 0.60
    assert max(resp, key=resp.get) == "expand"
    assert max(instr, key=instr.get) == "instr_readability"
