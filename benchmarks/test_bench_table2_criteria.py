"""Table II — the nine-dimension quality rubric, exercised at scale."""

import numpy as np
from conftest import print_banner

from repro.analysis import format_table
from repro.quality import (
    CriteriaScorer,
    DIMENSIONS,
    LEVEL_ADVANCED,
    LEVEL_BASIC,
    LEVEL_RED_LINE,
)


def test_table2_rubric_structure_and_throughput(benchmark, wb):
    print_banner("table2", "Human evaluation criteria (structure + scorer speed)")
    print(format_table(
        ["Side", "Level", "Dimension", "Score range"],
        [[d.side, d.level, d.name, f"{d.score_range[0]}-{d.score_range[1]}"]
         for d in DIMENSIONS],
    ))
    levels = {d.level for d in DIMENSIONS}
    assert levels == {LEVEL_RED_LINE, LEVEL_BASIC, LEVEL_ADVANCED}
    assert sum(d.level == LEVEL_RED_LINE for d in DIMENSIONS) == 1

    dataset = wb.alpaca_dataset()
    scorer = CriteriaScorer()
    pairs = list(dataset)[:200]

    def score_batch():
        return [scorer.score_pair(p) for p in pairs]

    reports = benchmark(score_batch)
    mean = float(np.mean([r.response.score for r in reports]))
    print(f"scored {len(reports)} pairs; mean response score {mean:.1f}")
    assert 40.0 <= mean <= 100.0
