"""Tests for tokenizer, prompts, pretraining and instruction tuning."""

import numpy as np
import pytest

from repro.data.instruction_pair import InstructionPair
from repro.data import generate_dataset
from repro.errors import GenerationError, ModelError
from repro.llm import (
    build_tokenizer,
    encode_coach_example,
    encode_coach_prompt,
    encode_instruction_example,
    encode_instruction_prompt,
    instruction_tune,
    parse_coach_output,
)
from repro.llm.pretrain import pack_corpus, pretrain_lm
from repro.llm.tokenizer import WordTokenizer
from repro.llm.instruction_tuning import TuningRecipe, dataset_to_examples
from repro.nn import TransformerConfig, TransformerLM
from repro.textgen.corpus import build_pretrain_corpus


# -- tokenizer ----------------------------------------------------------------


def test_tokenizer_roundtrip(tokenizer):
    text = "find the color in : the red fox runs near the hill"
    assert tokenizer.decode(tokenizer.encode(text)) == text


def test_tokenizer_specials_are_low_ids(tokenizer):
    sp = tokenizer.specials
    assert (sp.pad, sp.bos, sp.eos, sp.sep, sp.unk) == (0, 1, 2, 3, 4)


def test_tokenizer_unknown_maps_to_unk(tokenizer):
    ids = tokenizer.encode("xylophone")
    assert ids == [tokenizer.specials.unk]
    assert tokenizer.decode(ids) == ""


def test_tokenizer_decode_keeps_specials_when_asked(tokenizer):
    out = tokenizer.decode([tokenizer.specials.eos], skip_special=False)
    assert out == "<eos>"


def test_tokenizer_rejects_duplicates():
    with pytest.raises(ModelError):
        WordTokenizer(("red", "red"))


def test_tokenizer_rejects_special_collision():
    with pytest.raises(ModelError):
        WordTokenizer(("<pad>",))


def test_tokenizer_token_lookup(tokenizer):
    assert tokenizer.token("because") == tokenizer.encode("because")[0]
    with pytest.raises(ModelError):
        tokenizer.token("xylophone")


def test_tokenizer_covers_template_words(tokenizer):
    for word in ("instruction", "response", "please", "improve", "revised"):
        assert tokenizer.token(word) >= 5


# -- prompts -------------------------------------------------------------------


def test_instruction_prompt_shape(tokenizer):
    prompt = encode_instruction_prompt(tokenizer, "add 3 and 4")
    assert prompt[0] == tokenizer.specials.bos
    text = tokenizer.decode(prompt)
    assert text.startswith("instruction :")
    assert text.endswith("response :")


def test_instruction_example_mask_boundary(tokenizer):
    pair = InstructionPair(instruction="add 3 and 4", response="7 .")
    tokens, prompt_len = encode_instruction_example(tokenizer, pair)
    assert tokens[-1] == tokenizer.specials.eos
    completion = tokenizer.decode(tokens[prompt_len:])
    assert completion == "7 ."


def test_coach_roundtrip(tokenizer):
    original = InstructionPair(instruction="add 3 and 4", response="7 .")
    revised = InstructionPair(
        instruction="add 3 and 4",
        response="7 ; because 3 and 4 make 7 . i hope this helps .",
    )
    tokens, prompt_len = encode_coach_example(tokenizer, original, revised)
    completion = tokens[prompt_len:]
    instruction, response = parse_coach_output(tokenizer, completion)
    assert instruction == revised.instruction
    assert response == revised.response


def test_coach_prompt_ends_at_revised_instruction(tokenizer):
    pair = InstructionPair(instruction="add 3 and 4", response="7 .")
    prompt = encode_coach_prompt(tokenizer, pair)
    assert tokenizer.decode(prompt).endswith("revised instruction :")


def test_parse_coach_output_rejects_missing_marker(tokenizer):
    with pytest.raises(GenerationError):
        parse_coach_output(tokenizer, tokenizer.encode("add 3 and 4"))


def test_parse_coach_output_rejects_empty_fields(tokenizer):
    bad = tokenizer.encode("revised response : 7 .")
    with pytest.raises(GenerationError):
        parse_coach_output(tokenizer, bad)


def test_parse_coach_output_trims_decoder_loops(tokenizer):
    looped = tokenizer.encode(
        "add 3 and 4 revised response : 7 . revised response : 7 ."
    )
    _, response = parse_coach_output(tokenizer, looped)
    assert response == "7 ."


# -- pretraining -------------------------------------------------------------------


def test_pack_corpus_respects_document_boundaries(tokenizer):
    long_doc = ["red"] * 30
    short = ["blue", "."]
    examples = pack_corpus(tokenizer, [long_doc, short, short], window=40)
    # The long document must not be split: first window holds it entirely.
    first = tokenizer.decode(list(examples[0].tokens))
    assert first.count("red") == 30


def test_pack_corpus_truncates_over_long_docs(tokenizer):
    doc = ["red"] * 100
    examples = pack_corpus(tokenizer, [doc], window=40)
    assert all(len(e.tokens) <= 42 for e in examples)


def test_corpus_contains_revision_drills(tokenizer):
    corpus = build_pretrain_corpus(np.random.default_rng(0), 400)
    texts = [" ".join(s) for s in corpus]
    assert any("revised instruction :" in t for t in texts)
    assert any("repeat :" in t for t in texts)
    assert any("because" in t for t in texts)


def test_pretrain_reduces_loss(tokenizer, rng):
    cfg = TransformerConfig(vocab_size=tokenizer.vocab_size, d_model=32,
                            n_layers=1, n_heads=4, max_seq_len=128)
    model = TransformerLM(cfg, rng)
    stats = pretrain_lm(model, tokenizer, rng, steps=30, batch_size=16,
                        corpus_sentences=300)
    assert stats.final_loss < stats.initial_loss


# -- instruction tuning ---------------------------------------------------------------


def test_dataset_to_examples_skips_empty_completions(tokenizer):
    pair = InstructionPair(instruction="add 3 and 4", response="")
    examples = dataset_to_examples(
        tokenizer,
        __import__("repro.data", fromlist=["InstructionDataset"]).InstructionDataset(
            [pair, InstructionPair(instruction="add 1 and 1", response="2 .")]
        ),
        max_seq_len=64,
    )
    assert len(examples) >= 1


def test_instruction_tune_leaves_base_untouched(tokenizer, rng):
    cfg = TransformerConfig(vocab_size=tokenizer.vocab_size, d_model=32,
                            n_layers=1, n_heads=4, max_seq_len=128)
    base = TransformerLM(cfg, rng)
    snapshot = {k: v.copy() for k, v in base.state_dict().items()}
    dataset = generate_dataset(np.random.default_rng(0), 40)
    tuned, stats = instruction_tune(
        base, tokenizer, dataset, rng, TuningRecipe(epochs=1, batch_size=8)
    )
    assert stats.step_losses
    for name, value in base.state_dict().items():
        assert np.array_equal(value, snapshot[name])
    assert any(
        not np.array_equal(a, b)
        for (_, a), (_, b) in zip(
            sorted(tuned.state_dict().items()),
            sorted(snapshot.items()),
        )
    )
