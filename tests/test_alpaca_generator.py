"""Tests for generator profiles and the ALPACA52K simulacrum."""

from collections import Counter

import numpy as np
import pytest

from repro.data import (
    ALPACA_PROFILE,
    CONVERSATION_PROFILE,
    GeneratorProfile,
    PROPRIETARY_PROFILE,
    USER_CASE_PROFILE,
    generate_dataset,
    rule_clean,
)
from repro.errors import ConfigError


def test_profile_validation_rejects_unknown_defect():
    with pytest.raises(ConfigError):
        GeneratorProfile(
            name="bad", filter_fraction=0.1,
            filter_mix={"filter_invalid_input": 1.0},
            defective_fraction=0.5,
            response_defect_mix={"resp_fake": 1.0},
            instruction_defect_fraction=0.5,
            instruction_defect_mix={"instr_typos": 1.0},
            polite_fraction=0.5, context_fraction=0.1,
        )


def test_profile_validation_rejects_bad_fraction():
    with pytest.raises(ConfigError):
        GeneratorProfile(
            name="bad", filter_fraction=1.5,
            filter_mix={"filter_invalid_input": 1.0},
            defective_fraction=0.5,
            response_defect_mix={"resp_terse": 1.0},
            instruction_defect_fraction=0.5,
            instruction_defect_mix={"instr_typos": 1.0},
            polite_fraction=0.5, context_fraction=0.1,
        )


def test_pair_ids_are_unique_and_stable(small_dataset):
    ids = [p.pair_id for p in small_dataset]
    assert len(set(ids)) == len(ids)
    assert ids[0].endswith("000000")


def test_filter_fraction_calibration(small_dataset):
    counts = Counter(
        d for p in small_dataset for d in p.injected_defects
        if d.startswith("filter")
    )
    fraction = sum(counts.values()) / len(small_dataset)
    assert 0.10 < fraction < 0.28  # target 18.1%


def test_defective_fraction_calibration():
    ds = generate_dataset(np.random.default_rng(5), 1500)
    non_filter = [
        p for p in ds
        if not any(d.startswith("filter") for d in p.injected_defects)
    ]
    defective = [
        p for p in non_filter
        if any(d != "instr_needs_context" for d in p.injected_defects)
    ]
    fraction = len(defective) / len(non_filter)
    assert 0.40 < fraction < 0.55  # target 46.8%


def test_profiles_are_ordered_by_quality():
    sizes = 800
    means = {}
    from repro.quality import dataset_quality_report
    for profile in (USER_CASE_PROFILE, ALPACA_PROFILE, CONVERSATION_PROFILE,
                    PROPRIETARY_PROFILE):
        ds = generate_dataset(np.random.default_rng(1), sizes, profile)
        means[profile.name] = dataset_quality_report(ds).mean_response_score
    assert (
        means["user-cases-sim"]
        < means["alpaca52k-sim"]
        < means["user-conversations-sim"]
        < means["proprietary-alignment-sim"]
    )


def test_rule_clean_fixes_surface_not_semantics(small_dataset):
    cleaned = rule_clean(small_dataset)
    assert len(cleaned) == len(small_dataset)
    from repro.textgen import vocabulary as V
    for pair in cleaned:
        for token in pair.response_tokens:
            assert token not in V.NOISE_TOKENS
            assert token not in V.TYPO_MAP
    # Terse responses remain terse: rule cleaning cannot add explanations.
    terse_before = sum(
        1 for p in small_dataset if "resp_terse" in p.injected_defects
    )
    terse_after = sum(
        1 for p in cleaned
        if "resp_terse" in p.injected_defects and "because" not in p.response
    )
    assert terse_after == terse_before
