"""Tests for the Fig. 6 deployment simulator."""

import numpy as np
import pytest

from repro.data import generate_dataset, USER_CASE_PROFILE
from repro.deployment import (
    AnnotatorTimeModel,
    AnnotatorWorkforce,
    DataManagementPlatform,
)
from repro.deployment.annotators import MINUTES_PER_PERSON_DAY
from repro.data.instruction_pair import InstructionPair
from repro.quality import CriteriaScorer
from repro.textgen.responses import detokenize, ideal_response
from repro.textgen.tasks import TaskInstance


def _clean_pair():
    instance = TaskInstance("add_numbers", {"a": 2, "b": 3})
    from repro.textgen.tasks import render_instruction
    tokens, _ = render_instruction(instance)
    return InstructionPair(
        instruction=detokenize(tokens),
        response=detokenize(ideal_response(instance)),
        provenance=instance,
    )


def test_clean_pair_costs_review_only():
    model = AnnotatorTimeModel()
    minutes = model.minutes_for_pair(_clean_pair(), CriteriaScorer())
    assert minutes == model.review_minutes


def test_defective_pair_costs_more(rng):
    from repro.data.defects import build_pair
    from repro.textgen.tasks import sample_instance
    model = AnnotatorTimeModel()
    scorer = CriteriaScorer()
    instance = sample_instance(rng, "fact_color")
    bad = build_pair(instance, (), ("resp_truncated",), rng, polite=False)
    assert model.minutes_for_pair(bad, scorer) > model.review_minutes


def test_workforce_throughput_accounting():
    workforce = AnnotatorWorkforce()
    report = workforce.process_batch([_clean_pair()] * 10)
    assert report.pairs_processed == 10
    expected_days = 10 * 2.0 / MINUTES_PER_PERSON_DAY
    assert report.person_days == pytest.approx(expected_days)
    assert report.pairs_per_person_day == pytest.approx(10 / expected_days)


def test_proficiency_gain_speeds_up():
    slow = AnnotatorWorkforce(proficiency_gain=0.0)
    fast = AnnotatorWorkforce(proficiency_gain=0.1)
    pairs = [_clean_pair()] * 5
    assert (
        fast.process_batch(pairs).total_minutes
        < slow.process_batch(pairs).total_minutes
    )


def test_platform_without_coach_rejects_coach_batches(rng):
    platform = DataManagementPlatform(coach=None)
    with pytest.raises(ValueError):
        platform.run_cleaning_batch(rng, 10, use_coachlm=True)


def test_platform_baseline_batch(rng):
    platform = DataManagementPlatform()
    report = platform.run_cleaning_batch(rng, 40, use_coachlm=False)
    assert report.batch_size == 40
    assert not report.with_coachlm
    assert report.pairs_per_person_day > 0
    assert report.mean_quality_out_of_coach is None


def test_rule_based_cleaning_improves_surface(rng):
    platform = DataManagementPlatform()
    raw = platform.intake(rng, 60)
    parsed = platform.rule_based_cleaning(raw)
    scorer = CriteriaScorer()
    raw_q = np.mean([scorer.score_response(p).score for p in raw])
    parsed_q = np.mean([scorer.score_response(p).score for p in parsed])
    assert parsed_q >= raw_q


def test_net_improvement_deducts_proficiency():
    from repro.deployment.platform import CleaningBatchReport
    from repro.deployment.annotators import WorkforceReport

    def fake(ppd):
        return CleaningBatchReport(
            batch_size=1, with_coachlm=False,
            workforce=WorkforceReport(
                pairs_processed=100, total_minutes=100 / ppd * MINUTES_PER_PERSON_DAY,
                per_pair_minutes=[],
            ),
            mean_quality_in=0.0, mean_quality_out_of_coach=None,
        )

    net = DataManagementPlatform.net_improvement(
        fake(80.0), fake(100.0), proficiency_share=0.25
    )
    assert net == pytest.approx(0.25 * 0.75)
