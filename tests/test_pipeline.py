"""Tests for the artifact cache, workbench and experiment registry."""

import time

import numpy as np
import pytest

from repro.config import get_scale
from repro.data import InstructionDataset
from repro.data.instruction_pair import InstructionPair
from repro.errors import ConfigError, PipelineError
from repro.pipeline import EXPERIMENTS, MODEL_KEYS, ArtifactCache, Workbench
from repro.pipeline.cache import config_hash


# -- cache ----------------------------------------------------------------------


def test_config_hash_stable_and_sensitive():
    a = config_hash({"x": 1, "y": "z"})
    b = config_hash({"y": "z", "x": 1})
    c = config_hash({"x": 2, "y": "z"})
    assert a == b
    assert a != c


def test_cache_weights_roundtrip(tmp_path):
    cache = ArtifactCache(tmp_path)
    state = {"w": np.arange(6, dtype=np.float32).reshape(2, 3)}
    cache.save_weights("model", "k1", state)
    assert cache.has_weights("model", "k1")
    loaded = cache.load_weights("model", "k1")
    assert np.array_equal(loaded["w"], state["w"])


def test_cache_missing_weights_raise(tmp_path):
    cache = ArtifactCache(tmp_path)
    with pytest.raises(PipelineError):
        cache.load_weights("model", "nope")


def test_cache_dataset_roundtrip(tmp_path):
    cache = ArtifactCache(tmp_path)
    ds = InstructionDataset([InstructionPair("a", "b", pair_id="1")], name="x")
    cache.save_dataset("ds", "k", ds)
    loaded = cache.load_dataset("ds", "k", "x")
    assert loaded[0].instruction == "a"


def test_cache_json_roundtrip(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.save_json("meta", "k", {"alpha": 0.3})
    assert cache.load_json("meta", "k") == {"alpha": 0.3}


def test_cache_disabled_is_noop(tmp_path):
    cache = ArtifactCache(tmp_path / "off", enabled=False)
    cache.save_json("meta", "k", {})
    assert not cache.has_json("meta", "k")


def test_cache_writes_are_atomic(tmp_path, monkeypatch):
    """A writer crashing mid-save must leave the previous artifact intact
    (and no stray ``.tmp`` files) — concurrent serving workers sharing an
    artifact directory read these files at any time."""
    cache = ArtifactCache(tmp_path)
    cache.save_json("meta", "k", {"version": 1})
    ds = InstructionDataset([InstructionPair("a", "b", pair_id="1")], name="x")
    cache.save_dataset("ds", "k", ds)

    def exploding_save(self, path):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"instruction": "half-writ')
        raise OSError("disk full")

    monkeypatch.setattr(InstructionDataset, "save_jsonl", exploding_save)
    with pytest.raises(OSError):
        cache.save_dataset("ds", "k", ds)
    monkeypatch.undo()

    # The original artifact survives the failed overwrite untouched.
    loaded = cache.load_dataset("ds", "k", "x")
    assert loaded[0].instruction == "a"
    assert cache.load_json("meta", "k") == {"version": 1}
    assert not list(tmp_path.glob("*.tmp"))

    # Overwrites replace the whole file in one rename.
    cache.save_json("meta", "k", {"version": 2})
    assert cache.load_json("meta", "k") == {"version": 2}
    state = {"w": np.arange(4, dtype=np.float32)}
    cache.save_weights("model", "k", state)
    assert np.array_equal(cache.load_weights("model", "k")["w"], state["w"])
    assert not list(tmp_path.glob("*.tmp"))


def test_cache_get_json_quarantines_torn_write(tmp_path):
    """A truncated json blob (writer killed mid-save on a pre-hardening
    layout, or a torn disk) reads as a miss: get_json returns None, the
    corrupt bytes are quarantined aside for inspection, and a re-save
    heals the key."""
    cache = ArtifactCache(tmp_path)
    cache.save_json("meta", "k", {"version": 1})
    path = tmp_path / "meta-k.json"
    path.write_text('{"version": 1, "trunca', encoding="utf-8")

    assert cache.get_json("meta", "k") is None
    assert not path.exists()
    quarantined = list(tmp_path.glob("meta-k.json.corrupt-*"))
    assert len(quarantined) == 1
    assert quarantined[0].read_text(encoding="utf-8").startswith('{"version"')

    # The key heals on the next save; the quarantine file stays around.
    cache.save_json("meta", "k", {"version": 2})
    assert cache.get_json("meta", "k") == {"version": 2}
    assert len(list(tmp_path.glob("meta-k.json.corrupt-*"))) == 1


def test_cache_prunes_stale_quarantine_files(tmp_path):
    """Quarantined ``.corrupt-<pid>`` files are evidence, not permanent
    residents: construction reclaims the ones older than the retention
    window and leaves fresh ones (and everything else) alone."""
    import os

    cache = ArtifactCache(tmp_path)
    cache.save_json("meta", "k", {"version": 1})
    stale = tmp_path / "meta-old.json.corrupt-1234"
    stale.write_text('{"torn', encoding="utf-8")
    ancient = time.time() - 30 * 24 * 3600
    os.utime(stale, (ancient, ancient))
    fresh = tmp_path / "meta-new.json.corrupt-5678"
    fresh.write_text('{"torn', encoding="utf-8")

    ArtifactCache(tmp_path)  # construction prunes
    assert not stale.exists()
    assert fresh.exists()
    assert cache.get_json("meta", "k") == {"version": 1}

    # A shorter retention reclaims the fresh one too; disabled caches
    # never touch the directory.
    ArtifactCache(tmp_path / "absent", enabled=False)
    assert not (tmp_path / "absent").exists()
    ArtifactCache(tmp_path, corrupt_retention_s=0.0)
    assert not fresh.exists()


def test_cache_get_json_misses_and_disabled(tmp_path):
    cache = ArtifactCache(tmp_path)
    assert cache.get_json("meta", "absent") is None
    cache.save_json("meta", "k", [1, 2])
    assert cache.get_json("meta", "k") == [1, 2]
    off = ArtifactCache(tmp_path, enabled=False)
    assert off.get_json("meta", "k") is None


def test_cache_concurrent_multiprocess_writers_one_key(tmp_path):
    """N processes hammering one json key concurrently: every read ever
    observed is one of the complete payloads — never a torn mixture —
    and the survivor parses clean.  Exercises the per-key flock path
    across real process boundaries."""
    import multiprocessing

    cache = ArtifactCache(tmp_path)

    def writer(worker: int) -> None:
        worker_cache = ArtifactCache(tmp_path)
        for i in range(20):
            worker_cache.save_json(
                "meta", "shared", {"worker": worker, "i": i, "pad": "x" * 4096}
            )

    ctx = multiprocessing.get_context("fork")
    procs = [ctx.Process(target=writer, args=(w,)) for w in range(4)]
    for p in procs:
        p.start()
    corrupt = 0
    deadline = time.monotonic() + 120
    while any(p.is_alive() for p in procs) and time.monotonic() < deadline:
        blob = cache.get_json("meta", "shared")
        if blob is not None:
            assert set(blob) == {"worker", "i", "pad"}
            assert blob["pad"] == "x" * 4096
        else:
            corrupt += 1
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    # No torn write was ever quarantined; the final artifact is healthy.
    assert corrupt == 0
    assert not list(tmp_path.glob("*.corrupt-*"))
    final = cache.load_json("meta", "shared")
    assert final["i"] == 19  # type: ignore[index]


def test_cache_records_roundtrip(tmp_path, rng):
    from repro.data.defects import build_pair
    from repro.experts import ExpertReviser, GROUP_A
    from repro.textgen.tasks import sample_instance
    reviser = ExpertReviser(context_add_rate=0.0)
    instance = sample_instance(rng, "add_numbers")
    pair = build_pair(instance, (), ("resp_terse",), rng, polite=False,
                      pair_id="c-1")
    record = reviser.revise(pair, rng, GROUP_A[0], "qa")
    cache = ArtifactCache(tmp_path)
    cache.save_records("rec", "k", [record])
    loaded = cache.load_records("rec", "k")
    assert loaded[0].edit_distance == record.edit_distance


# -- workbench ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def bench(tmp_path_factory):
    return Workbench(
        scale=get_scale("ci"), seed=11,
        cache_dir=tmp_path_factory.mktemp("artifacts"),
    )


def test_workbench_dataset_is_deterministic(bench, tmp_path_factory):
    other = Workbench(
        scale=get_scale("ci"), seed=11,
        cache_dir=tmp_path_factory.mktemp("artifacts2"),
    )
    a = bench.alpaca_dataset()
    b = other.alpaca_dataset()
    assert [p.pair_id for p in a] == [p.pair_id for p in b]
    assert a[5].instruction == b[5].instruction


def test_workbench_seed_changes_dataset(tmp_path_factory):
    a = Workbench(scale=get_scale("ci"), seed=1,
                  cache_dir=tmp_path_factory.mktemp("a")).alpaca_dataset()
    b = Workbench(scale=get_scale("ci"), seed=2,
                  cache_dir=tmp_path_factory.mktemp("b")).alpaca_dataset()
    assert any(x.instruction != y.instruction for x, y in zip(a, b))


def test_workbench_rng_label_independence(bench):
    a = bench.rng("alpha").integers(0, 10**9)
    b = bench.rng("alpha").integers(0, 10**9)
    c = bench.rng("beta").integers(0, 10**9)
    assert a == b
    assert a != c


def test_workbench_rejects_unknown_model(bench):
    with pytest.raises(ConfigError):
        bench.model("gpt-5")


def test_workbench_rejects_unknown_backbone(bench):
    with pytest.raises(ConfigError):
        bench.backbone("mystery")


def test_workbench_rejects_unknown_variant(bench):
    with pytest.raises(ConfigError):
        bench.training_dataset("imagined")


def test_training_dataset_variants(bench):
    original = bench.training_dataset("original")
    cleaned = bench.training_dataset("cleaned")
    human = bench.training_dataset("human")
    assert len(original) == len(cleaned) == len(human)
    assert any(
        a.response != b.response for a, b in zip(original, cleaned)
    )


def test_model_keys_cover_table9():
    assert len(MODEL_KEYS) == 12
    baseline = [k for k, v in MODEL_KEYS.items() if v["group"] == "baseline"]
    stronger = [k for k, v in MODEL_KEYS.items() if v["group"] == "stronger"]
    assert len(baseline) == 7
    assert len(stronger) == 5
    assert "alpaca-coachlm" in baseline


# -- registry -----------------------------------------------------------------------


def test_registry_covers_all_tables_and_figures():
    expected = {f"table{i}" for i in range(1, 12)} | {"fig4", "fig5", "fig6"}
    assert set(EXPERIMENTS) == expected


def test_registry_bench_targets_exist_on_disk():
    from pathlib import Path
    root = Path(__file__).resolve().parents[1]
    for experiment in EXPERIMENTS.values():
        assert (root / experiment.bench_target).exists(), experiment.bench_target


# -- model_responses cache handling -------------------------------------------------


@pytest.fixture()
def response_bench(tmp_path, monkeypatch):
    """A Workbench whose model/testset stages are cheap stubs."""
    from repro.nn import TransformerConfig, TransformerLM

    wb = Workbench(scale=get_scale("ci"), seed=3, cache_dir=tmp_path)
    config = TransformerConfig(
        vocab_size=wb.tokenizer.vocab_size, d_model=32, n_layers=1,
        n_heads=4, max_seq_len=160,
    )
    model = TransformerLM(config, np.random.default_rng(0))
    monkeypatch.setattr(wb, "model", lambda key: model)
    return wb


def test_model_responses_regenerates_short_cache(response_bench):
    wb = response_bench
    full = wb.model_responses("alpaca", "vicuna80", max_items=6)
    assert len(full) == 6

    # Corrupt the cached artifact down to 2 items: a subsequent call must
    # treat it as a miss and regenerate all 6, not return the stub.
    key = wb._scale_key({
        "responses": "alpaca", "testset": "vicuna80", "items": 6,
    })
    wb.cache.save_dataset(
        "responses", key, InstructionDataset(list(full)[:2], name="stub")
    )
    assert len(wb.cache.load_dataset("responses", key, "stub")) == 2

    again = wb.model_responses("alpaca", "vicuna80", max_items=6)
    assert len(again) == 6
    assert [p.response for p in again] == [p.response for p in full]
    # The regenerated set replaces the short artifact on disk.
    assert len(wb.cache.load_dataset("responses", key, "check")) == 6


def test_model_responses_truncates_longer_cache(response_bench):
    wb = response_bench
    full = wb.model_responses("alpaca", "vicuna80", max_items=6)
    key = wb._scale_key({
        "responses": "alpaca", "testset": "vicuna80", "items": 4,
    })
    # A cached artifact longer than n_items is truncated, not regenerated.
    wb.cache.save_dataset(
        "responses", key, InstructionDataset(list(full), name="long")
    )
    four = wb.model_responses("alpaca", "vicuna80", max_items=4)
    assert len(four) == 4
    assert [p.response for p in four] == [p.response for p in full[:4]]
