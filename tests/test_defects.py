"""Tests for defect injection: every defect leaves a detectable trace."""

import numpy as np
import pytest

from repro.data.defects import (
    CONSTANT_ANSWER_CATEGORIES,
    DEFECTS,
    FILTER_BUILDERS,
    NUMERIC_ANSWER_CATEGORIES,
    build_filter_pair,
    build_pair,
)
from repro.errors import DatasetError
from repro.textgen import vocabulary as V
from repro.textgen.responses import detokenize
from repro.textgen.tasks import TaskInstance, sample_instance, solve


@pytest.fixture()
def instance():
    return TaskInstance("add_numbers", {"a": 3, "b": 4})


def test_registry_covers_three_sides():
    sides = {d.side.value for d in DEFECTS.values()}
    assert sides == {"instruction", "response", "filter"}


def test_clean_pair_matches_oracle(instance, rng):
    pair = build_pair(instance, (), (), rng, polite=True)
    assert pair.response.startswith("7 ; because")
    assert pair.injected_defects == ()


def test_unknown_defect_raises(instance, rng):
    with pytest.raises(DatasetError):
        build_pair(instance, (), ("resp_sloppy",), rng)


def test_empty_defect(instance, rng):
    pair = build_pair(instance, (), ("resp_empty",), rng)
    assert pair.response == ""


def test_terse_defect_removes_explanation(instance, rng):
    pair = build_pair(instance, (), ("resp_terse",), rng, polite=False)
    assert "because" not in pair.response


def test_miscalculation_is_off_by_one(instance, rng):
    pair = build_pair(instance, (), ("resp_miscalculation",), rng, polite=False)
    core = pair.response_tokens[0]
    assert core == "8"  # 7 + 1


def test_miscalculation_rejects_non_numeric(rng):
    instance = sample_instance(rng, "fact_color")
    with pytest.raises(DatasetError):
        build_pair(instance, (), ("resp_miscalculation",), rng)


def test_wrong_answer_differs(instance, rng):
    pair = build_pair(instance, (), ("resp_wrong_answer",), rng, polite=False)
    answer, _ = solve(instance)
    assert pair.response_tokens[: len(answer)] != answer


def test_unsafe_defect_plants_phrase(instance, rng):
    pair = build_pair(instance, (), ("resp_unsafe",), rng)
    assert detokenize(list(V.UNSAFE_PHRASE)) in pair.response


def test_machine_tone_prefix(instance, rng):
    pair = build_pair(instance, (), ("resp_machine_tone",), rng)
    assert pair.response.startswith(detokenize(list(V.MACHINE_TONE_PREFIX)))
    assert "hope" not in pair.response  # tone defect suppresses the coda


def test_bad_layout_drops_period(instance, rng):
    pair = build_pair(instance, (), ("resp_bad_layout",), rng, polite=False)
    assert not pair.response.endswith(".")


def test_truncated_shortens(instance, rng):
    clean = build_pair(instance, (), (), rng, polite=False)
    pair = build_pair(instance, (), ("resp_truncated",), rng, polite=False)
    assert pair.response_length < clean.response_length


def test_irrelevant_changes_category_content(rng):
    instance = sample_instance(rng, "fact_color")
    pair = build_pair(instance, (), ("resp_irrelevant",), rng, polite=False)
    answer, _ = solve(instance)
    assert pair.response_tokens[: len(answer)] != answer


def test_instruction_ambiguous_cuts_payload(rng):
    instance = sample_instance(rng, "extract_color")
    pair = build_pair(instance, ("instr_ambiguous",), (), rng)
    assert pair.instruction.endswith(":")


def test_instruction_typos(rng):
    instance = sample_instance(rng, "extract_color")
    pair = build_pair(instance, ("instr_typos",), (), rng)
    clean = build_pair(instance, (), (), rng, polite=True, context=False)
    assert pair.instruction != clean.instruction


def test_needs_context_is_textual_noop(rng):
    instance = sample_instance(rng, "add_numbers")
    pair = build_pair(instance, ("instr_needs_context",), (), rng)
    clean = build_pair(instance, (), (), rng, polite=True, context=False)
    assert pair.instruction == clean.instruction


@pytest.mark.parametrize("kind", sorted(FILTER_BUILDERS))
def test_filter_builders_produce_markers(kind, rng):
    pair = build_filter_pair(kind, rng, pair_id="x-1")
    assert pair.injected_defects == (kind,)
    assert pair.pair_id == "x-1"
    text = pair.instruction + " " + pair.response
    markers = {
        "filter_invalid_input": "link",
        "filter_beyond_expertise": "chords",
        "filter_massive_workload": "whole page",
        "filter_multimodal": ("photo", "image", "video"),
        "filter_toxic": "ignore safety",
    }[kind]
    if isinstance(markers, tuple):
        assert any(m in text for m in markers)
    else:
        assert markers in text


def test_unknown_filter_kind_raises(rng):
    with pytest.raises(DatasetError):
        build_filter_pair("filter_boring", rng)


def test_category_sets_disjoint():
    assert not NUMERIC_ANSWER_CATEGORIES & CONSTANT_ANSWER_CATEGORIES
