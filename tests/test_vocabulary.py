"""Tests for the microtext lexicon."""

import pytest

from repro.errors import VocabularyError
from repro.textgen import vocabulary as V


def test_vocabulary_is_closed_and_sorted():
    words = V.all_words()
    assert list(words) == sorted(words)
    assert len(set(words)) == len(words)


def test_lexicon_groups_are_disjoint_enough():
    # Colors and animals must not overlap: extraction tasks rely on it.
    assert not set(V.COLORS) & set(V.ANIMALS)
    assert not set(V.OBJECTS) & set(V.PLACES)


def test_typo_map_targets_exist():
    for typo, fix in V.TYPO_MAP.items():
        assert V.is_known_word(typo)
        assert V.is_known_word(fix)
        assert typo != fix


def test_fact_tables_closed():
    for subject, color in V.FACT_COLORS.items():
        assert V.is_known_word(subject)
        assert color in V.COLORS
    for animal, home in V.ANIMAL_HOMES.items():
        assert animal in V.ANIMALS
        assert home in V.PLACES


def test_marker_phrases_closed():
    for phrase in (V.MACHINE_TONE_PREFIX, V.UNSAFE_PHRASE, V.POLITE_CODA):
        for token in phrase:
            assert V.is_known_word(token), token


def test_noise_tokens_are_in_vocab_but_flagged():
    # Noise tokens are representable (the tokenizer must encode them) yet
    # clearly out-of-language for the scorer.
    for token in V.NOISE_TOKENS:
        assert V.is_known_word(token)


def test_require_known_raises_on_garbage():
    with pytest.raises(VocabularyError):
        V.require_known(["definitely_not_a_word"])


def test_require_known_passes_known():
    V.require_known(list(V.COLORS))


def test_verb_fix_pairs():
    for base, third in V.VERB_FIX.items():
        assert base in V.VERBS_BASE
        assert third in V.VERBS_3RD
