"""Tests and hypothesis properties for the edit-distance module."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.instruction_pair import InstructionPair
from repro.editdist import (
    align,
    char_edit_distance,
    diff_stats,
    edit_distance,
    normalized_edit_distance,
    pair_edit_distance,
    word_edit_distance,
)
from repro.editdist.alignment import EditOp
from repro.errors import ReproError

_seqs = st.lists(st.sampled_from("abcd"), max_size=12)


def test_known_distances():
    assert edit_distance("kitten", "sitting") == 3
    assert edit_distance("", "abc") == 3
    assert edit_distance("abc", "abc") == 0
    assert edit_distance("flaw", "lawn") == 2


def test_word_level():
    assert word_edit_distance("the red fox", "the blue fox") == 1
    assert word_edit_distance("a b c", "c b a") == 2


def test_char_vs_word():
    assert char_edit_distance("abc def", "abc deg") == 1
    assert word_edit_distance("abc def", "abc deg") == 1


@given(_seqs)
@settings(max_examples=60, deadline=None)
def test_identity(seq):
    assert edit_distance(seq, seq) == 0


@given(_seqs, _seqs)
@settings(max_examples=60, deadline=None)
def test_symmetry(a, b):
    assert edit_distance(a, b) == edit_distance(b, a)


@given(_seqs, _seqs)
@settings(max_examples=60, deadline=None)
def test_bounds(a, b):
    d = edit_distance(a, b)
    assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))


@given(_seqs, _seqs, _seqs)
@settings(max_examples=40, deadline=None)
def test_triangle_inequality(a, b, c):
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


@given(_seqs, _seqs)
@settings(max_examples=40, deadline=None)
def test_alignment_distance_agrees(a, b):
    assert diff_stats(a, b).distance == edit_distance(a, b)


def test_max_distance_early_exit():
    assert edit_distance("aaaa", "bbbb", max_distance=2) == 3
    assert edit_distance("aaaa", "aaab", max_distance=2) == 1


def test_max_distance_negative_raises():
    with pytest.raises(ReproError):
        edit_distance("a", "b", max_distance=-1)


def test_normalized_bounds():
    assert normalized_edit_distance("", "") == 0.0
    assert normalized_edit_distance("aa", "bb") == 1.0
    assert 0.0 < normalized_edit_distance("ab", "ac") < 1.0


def test_align_script_transforms():
    script = align("cat", "cart")
    ops = [op for op, _, _ in script]
    assert ops.count(EditOp.INSERT) == 1
    assert ops.count(EditOp.MATCH) == 3


def test_pair_edit_distance_sums_sides():
    a = InstructionPair(instruction="do x", response="done x")
    b = InstructionPair(instruction="do y now", response="done x")
    assert pair_edit_distance(a, b) == 2
