"""Tests for response composition and reference grades."""

import numpy as np
import pytest

from repro.textgen import vocabulary as V
from repro.textgen.responses import (
    ResponseGrade,
    compose_reference,
    compose_response,
    contextualize_instruction,
    detokenize,
    has_context_marker,
    ideal_response,
    terse_response,
    tokenize,
)
from repro.textgen.tasks import TaskInstance, sample_instance


@pytest.fixture()
def add_instance():
    return TaskInstance("add_numbers", {"a": 2, "b": 5})


def test_tokenize_roundtrip():
    text = "the red fox runs ."
    assert detokenize(tokenize(text)) == text


def test_ideal_has_explanation_and_coda(add_instance):
    tokens = ideal_response(add_instance)
    assert "because" in tokens
    assert tuple(tokens[-5:]) == V.POLITE_CODA


def test_terse_is_answer_only(add_instance):
    tokens = terse_response(add_instance)
    assert tokens == ["7", "."]


def test_rich_no_polite(add_instance):
    tokens = compose_response(add_instance, rich=True, polite=False)
    assert "because" in tokens
    assert "hope" not in tokens


def test_creative_terse_keeps_first_sentence():
    rng = np.random.default_rng(0)
    instance = sample_instance(rng, "story_animal")
    rich = compose_response(instance, rich=True, polite=False)
    terse = compose_response(instance, rich=False, polite=False)
    assert len(terse) < len(rich)
    assert terse.count(".") == 1


def test_reference_grades_monotone_in_quality():
    rng = np.random.default_rng(7)
    instance = sample_instance(rng, "fact_color")
    oracle = compose_reference(instance, ResponseGrade.ORACLE, np.random.default_rng(1))
    assert "because" in oracle and "hope" in oracle
    # The CHATGPT grade is sometimes terse: over many draws it must produce
    # at least one response without an explanation.
    chatgpt_rich = [
        "because" in compose_reference(instance, ResponseGrade.CHATGPT,
                                       np.random.default_rng(i))
        for i in range(40)
    ]
    assert not all(chatgpt_rich)


def test_contextualize_adds_detectable_marker(add_instance, rng):
    from repro.textgen.tasks import render_instruction
    tokens, _ = render_instruction(add_instance)
    assert not has_context_marker(tokens)
    enriched = contextualize_instruction(tokens, rng)
    assert has_context_marker(enriched)
    assert len(enriched) > len(tokens)
