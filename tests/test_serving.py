"""Tests for the online revision service (repro.serving).

The service's contract has two halves: *parity* — a served revision is
token-for-token identical to :meth:`CoachLM.revise_dataset` on the same
input — and *streaming* — a late-arriving request joins the in-flight
batch at the first retired slot instead of waiting for a drain.  Both
are pinned here, along with the queue/cache/metrics/HTTP plumbing.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from collections import Counter

import numpy as np
import pytest

from repro.config import ServingConfig
from repro.core.coachlm import CoachLM, RevisionOutcome
from repro.data import generate_dataset
from repro.data.instruction_pair import InstructionPair
from repro.deployment import DataManagementPlatform
from repro.errors import AdmissionError, ConfigError, ServingError
from repro.nn import BatchedEngine, GenerationRequest, TransformerConfig, TransformerLM
from repro.serving import (
    BoundedPriorityQueue,
    CachedRevision,
    EngineJob,
    InProcessRevisionClient,
    OUTCOME_EXPIRED,
    OUTCOME_QUALITY_GATED,
    RevisionHTTPFrontend,
    RevisionLRUCache,
    RevisionServer,
    ServingMetrics,
    SOURCE_CACHE,
    SOURCE_DEADLINE,
    SOURCE_DEDUP,
    SOURCE_ENGINE,
    SOURCE_GATE,
    SOURCE_SHED,
    StreamingScheduler,
)
from repro.serving.requests import RevisionResult
from repro.textgen.responses import detokenize, ideal_response
from repro.textgen.tasks import TaskInstance, render_instruction


@pytest.fixture(scope="module")
def coach(tokenizer):
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=32,
        n_layers=1,
        n_heads=4,
        max_seq_len=192,
    )
    model = TransformerLM(config, np.random.default_rng(9))
    return CoachLM(model, tokenizer)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(np.random.default_rng(77), 10)


def _clean_pair() -> InstructionPair:
    instance = TaskInstance("add_numbers", {"a": 2, "b": 3})
    tokens, _ = render_instruction(instance)
    return InstructionPair(
        instruction=detokenize(tokens),
        response=detokenize(ideal_response(instance)),
        provenance=instance,
    )


# -- bounded priority queue --------------------------------------------------------


def test_queue_priority_order_and_fifo_within_class():
    queue = BoundedPriorityQueue(capacity=8)
    queue.put("b0", priority=1)
    queue.put("a0", priority=0)
    queue.put("b1", priority=1)
    queue.put("a1", priority=0)
    assert [queue.get(0) for _ in range(4)] == ["a0", "a1", "b0", "b1"]
    assert queue.get(timeout=0) is None


def test_queue_admission_control():
    queue = BoundedPriorityQueue(capacity=2)
    queue.put(1)
    queue.put(2)
    with pytest.raises(AdmissionError):
        queue.put(3)
    assert queue.depth == 2


def test_queue_close_drains_then_rejects():
    queue = BoundedPriorityQueue(capacity=4)
    queue.put("x")
    queue.close()
    with pytest.raises(ServingError):
        queue.put("y")
    assert queue.get(0) == "x"      # queued items still drain
    assert queue.get(0) is None     # then closed-and-empty

    with pytest.raises(ConfigError):
        BoundedPriorityQueue(capacity=0)


def test_queue_get_wakes_on_cross_thread_put():
    queue = BoundedPriorityQueue(capacity=2)
    got = []
    thread = threading.Thread(target=lambda: got.append(queue.get(timeout=5.0)))
    thread.start()
    queue.put("item")
    thread.join(timeout=5.0)
    assert got == ["item"]


# -- LRU cache ---------------------------------------------------------------------


def test_lru_cache_hit_miss_and_eviction():
    cache = RevisionLRUCache(capacity=2)
    entry = CachedRevision("i", "r", RevisionOutcome.REVISED.value)
    assert cache.get("a") is None
    cache.put("a", entry)
    cache.put("b", entry)
    assert cache.get("a") is entry      # refreshes a
    cache.put("c", entry)               # evicts b (LRU)
    assert cache.get("b") is None
    assert cache.get("a") is entry and cache.get("c") is entry
    assert cache.hits == 3 and cache.misses == 2

    disabled = RevisionLRUCache(capacity=0)
    disabled.put("a", entry)
    assert disabled.get("a") is None and len(disabled) == 0


def test_import_entries_reports_entries_actually_retained():
    """import_entries must count only rows the cache stored, not rows it
    parsed: a cache-disabled fleet (capacity 0) retains nothing and must
    report 0 instead of the rows it silently dropped, and damaged rows
    never count — warm-start logs stay honest."""
    rows = [
        ["k1", "i1", "r1", RevisionOutcome.REVISED.value],
        ["k2", "i2", "r2", RevisionOutcome.REVISED.value],
        ["k3", "i3", "r3", RevisionOutcome.REVISED.value],
    ]
    disabled = RevisionLRUCache(capacity=0)
    assert disabled.import_entries(rows) == 0
    assert len(disabled) == 0

    cache = RevisionLRUCache(capacity=8)
    assert cache.import_entries(rows + [["bad", "row"], 7]) == 3
    assert len(cache) == 3


def test_cached_revision_rebinds_identity():
    pair = _clean_pair()
    revised = CachedRevision("new instruction", "new response",
                             RevisionOutcome.REVISED.value)
    out = revised.apply(pair)
    assert out.instruction == "new instruction"
    assert out.provenance is pair.provenance
    fallback = CachedRevision("x", "y", RevisionOutcome.INVALID_OUTPUT.value)
    assert fallback.apply(pair) is pair


# -- metrics -----------------------------------------------------------------------


def test_metrics_percentiles_and_throughput():
    metrics = ServingMetrics()
    pair = _clean_pair()
    for latency in (0.1, 0.2, 0.3, 0.4):
        metrics.record_result(
            RevisionResult(pair, "revised", SOURCE_ENGINE, latency)
        )
    metrics.record_engine_work(tokens=500, busy_s=0.25)
    assert metrics.latency_percentile(50) == pytest.approx(0.25)
    assert metrics.tokens_per_second() == pytest.approx(2000.0)
    snap = metrics.snapshot(queue_depth=3)
    assert snap["completed"] == 4
    assert snap["queue_depth"] == 3
    assert snap["latency_p95_s"] <= 0.4


# -- streaming scheduler (deterministic, no threads) -------------------------------


def _no_eos_job(model, prompt, budget, done):
    request = GenerationRequest(prompt, budget, eos_id=None)
    return EngineJob(request, lambda tokens: done.append(tokens))


def test_late_arrival_joins_in_flight_batch(coach):
    """A request submitted mid-flight must finish while the original
    batch is still decoding — it never waits for the batch to drain."""
    model = coach.model
    rng = np.random.default_rng(3)
    scheduler = StreamingScheduler(BatchedEngine(model, max_batch=3))
    long_done: list[list[int]] = []
    prompt_a = list(rng.integers(5, 100, size=12))
    prompt_b = list(rng.integers(5, 100, size=7))
    scheduler.submit(_no_eos_job(model, prompt_a, 40, long_done))
    scheduler.submit(_no_eos_job(model, prompt_b, 40, long_done))
    for _ in range(5):
        scheduler.pump()
    assert scheduler.engine.n_active == 2 and not long_done

    late_done: list[list[int]] = []
    prompt_c = list(rng.integers(5, 100, size=5))
    scheduler.submit(_no_eos_job(model, prompt_c, 3, late_done))
    pumps_until_late = 0
    while not late_done:
        scheduler.pump()
        pumps_until_late += 1
    # The late job completed while both long jobs are still in flight.
    assert not long_done
    assert scheduler.engine.n_active == 2
    assert pumps_until_late <= 4
    assert len(late_done[0]) == 3

    scheduler.drain()
    assert len(long_done) == 2
    assert scheduler.engine.n_active == 0 and not scheduler.engine.has_work


def test_scheduler_reports_tokens_and_busy_time(coach):
    metrics = ServingMetrics()
    scheduler = StreamingScheduler(
        BatchedEngine(coach.model, max_batch=2), metrics
    )
    done: list[list[int]] = []
    rng = np.random.default_rng(5)
    for _ in range(3):
        prompt = list(rng.integers(5, 100, size=6))
        scheduler.submit(_no_eos_job(coach.model, prompt, 4, done))
    completed = scheduler.drain()
    assert completed == 3
    assert metrics.engine_tokens == sum(len(tokens) for tokens in done) == 12
    assert metrics.engine_busy_s > 0


# -- engine streaming edge cases the scheduler depends on --------------------------


def test_engine_all_slots_eos_same_step_refills_pending(coach, tokenizer):
    """Every slot retiring on the same step must refill from pending."""
    model = coach.model
    rng = np.random.default_rng(11)
    prompt = list(rng.integers(5, 100, size=9))
    probe = model.generate(prompt, 8, eos_id=None)
    # Declare "EOS" the first token that doesn't already occur earlier in
    # the continuation: every (identical) sequence then survives prefill
    # and hits EOS on the same later step, retiring the whole fleet at once.
    eos = next(t for k, t in enumerate(probe) if k >= 1 and t not in probe[:k])
    expected = model.generate(prompt, 8, eos_id=eos)
    assert 2 <= len(expected) <= 8

    engine = BatchedEngine(model, max_batch=4)
    ids = [engine.submit(GenerationRequest(prompt, 8, eos_id=eos))
           for _ in range(7)]
    mass_retire_seen = False
    total_finished = 0
    while engine.has_work:
        finished = engine.step()
        total_finished += finished
        if finished == 4 and total_finished < len(ids):
            mass_retire_seen = True
            # Retired slots refilled from pending within the same step:
            # the next wave (3 remaining) is already active.
            assert engine.n_active == 3 and engine.n_pending == 0
    results = engine.collect()
    assert mass_retire_seen
    assert [results[i] for i in ids] == [expected] * 7


def test_engine_submit_after_drain_reuses_retired_slots(coach):
    """A drained engine must serve a fresh fleet from its stale slots."""
    model = coach.model
    rng = np.random.default_rng(13)
    first = [list(rng.integers(5, 100, size=int(n))) for n in
             rng.integers(4, 30, size=5)]
    second = [list(rng.integers(5, 100, size=int(n))) for n in
              rng.integers(4, 30, size=5)]
    engine = BatchedEngine(model, max_batch=2)
    got_first = engine.generate(
        [GenerationRequest(p, 10, eos_id=2) for p in first]
    )
    assert not engine.has_work
    got_second = engine.generate(
        [GenerationRequest(p, 10, eos_id=2) for p in second]
    )
    expected = [model.generate(p, 10, eos_id=2) for p in first + second]
    assert got_first + got_second == expected


# -- the revision server -----------------------------------------------------------


def test_server_parity_with_revise_dataset(coach, dataset):
    expected, expected_stats = coach.revise_dataset(dataset, batch_size=5)
    with RevisionServer(coach, ServingConfig(max_batch=4)) as server:
        got, got_stats = InProcessRevisionClient(server).revise_dataset(dataset)
    assert len(got) == len(expected)
    for exp, pair in zip(expected, got):
        assert pair.instruction == exp.instruction
        assert pair.response == exp.response
        assert pair.pair_id == exp.pair_id
    assert got_stats.outcomes == expected_stats.outcomes


def test_client_journal_resume_serves_from_journal(coach, dataset, tmp_path):
    """A journaled served run resumes without re-submitting: every pair
    comes back with ``source == "journal"`` and the server's journal
    metrics reflect the replay."""
    from repro.serving import RunJournal, SOURCE_JOURNAL

    journal_path = tmp_path / "served.jsonl"
    with RevisionServer(coach, ServingConfig(max_batch=4)) as server:
        client = InProcessRevisionClient(server)
        with RunJournal(journal_path) as journal:
            first, first_stats = client.revise_dataset(
                dataset, journal=journal
            )
        submitted_before = server.metrics.submitted
        with RunJournal(journal_path) as journal:
            resumed, resumed_stats = client.revise_dataset(
                dataset, journal=journal
            )
        assert server.metrics.submitted == submitted_before  # nothing sent
        snap = server.metrics.snapshot()
        assert snap["journal"]["pairs_skipped"] == len(dataset)
        assert snap["journal"]["records_replayed"] > 0
        results = client.revise_pairs(list(dataset))  # journal-less still works
    for exp, pair in zip(first, resumed):
        assert (pair.instruction, pair.response) == (
            exp.instruction, exp.response
        )
    assert resumed_stats.outcomes == first_stats.outcomes
    assert len(results) == len(dataset)


def test_server_parity_with_tiny_prefill_chunks(coach, dataset):
    """Chunked prefill interleaving (even 5-token chunks) must not change
    a single served token relative to the offline batch path."""
    expected, _ = coach.revise_dataset(dataset, batch_size=5)
    config = ServingConfig(max_batch=3, prefill_chunk_tokens=5)
    with RevisionServer(coach, config) as server:
        got, _ = InProcessRevisionClient(server).revise_dataset(dataset)
    for exp, pair in zip(expected, got):
        assert pair.instruction == exp.instruction
        assert pair.response == exp.response


def test_server_leakage_gating_matches_coach(tokenizer, dataset):
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size, d_model=32, n_layers=1, n_heads=4,
        max_seq_len=192,
    )
    model = TransformerLM(config, np.random.default_rng(9))
    leaky_ids = frozenset({dataset[0].pair_id, dataset[3].pair_id})
    leaky_coach = CoachLM(model, tokenizer, trained_instructions=leaky_ids)
    expected, expected_stats = leaky_coach.revise_dataset(dataset)
    with RevisionServer(leaky_coach) as server:
        got, got_stats = InProcessRevisionClient(server).revise_dataset(dataset)
    assert got_stats.outcomes == expected_stats.outcomes
    assert got_stats.outcomes[RevisionOutcome.LEAKAGE_SKIPPED.value] == 2
    for exp, pair in zip(expected, got):
        assert (pair.instruction, pair.response) == (
            exp.instruction, exp.response
        )


def test_server_dedup_and_cache(coach, dataset):
    pair = dataset[0]
    server = RevisionServer(coach, ServingConfig(max_batch=2))
    # Submit duplicates before the worker starts: one leader enters the
    # queue, the rest attach in flight.
    futures = [server.submit(pair) for _ in range(4)]
    assert server.queue.depth == 1
    with server:
        results = [future.result(timeout=60.0) for future in futures]
    sources = Counter(result.source for result in results)
    assert sources == {SOURCE_ENGINE: 1, SOURCE_DEDUP: 3}
    texts = {(r.pair.instruction, r.pair.response) for r in results}
    assert len(texts) == 1

    # A later identical submission is an LRU hit: engine untouched.
    tokens_before = server.metrics.engine_tokens
    with server:
        hit = server.revise(pair, timeout=60.0)
    assert hit.source == SOURCE_CACHE
    assert hit.generated_tokens == 0
    assert server.metrics.engine_tokens == tokens_before
    assert (hit.pair.instruction, hit.pair.response) in texts


def test_server_quality_gate_skips_good_pairs(coach):
    config = ServingConfig(max_batch=2, quality_gate_threshold=80.0)
    with RevisionServer(coach, config) as server:
        result = server.revise(_clean_pair(), timeout=60.0)
    assert result.outcome == OUTCOME_QUALITY_GATED
    assert result.source == SOURCE_GATE
    assert result.pair.instruction == _clean_pair().instruction
    assert server.metrics.engine_tokens == 0


def test_server_deadline_expiry(coach, dataset):
    server = RevisionServer(coach, ServingConfig(max_batch=2))
    future = server.submit(dataset[1], deadline_s=1e-4)
    time.sleep(0.01)     # expire while the worker is not yet running
    with server:
        result = future.result(timeout=60.0)
    assert result.outcome == OUTCOME_EXPIRED
    assert result.source == SOURCE_DEADLINE
    assert result.pair is dataset[1]


def test_server_expired_leader_promotes_follower(coach, dataset):
    """A follower with a laxer deadline must not inherit the leader's
    expiry: it is promoted to leader and revised normally."""
    pair = dataset[6]
    server = RevisionServer(coach, ServingConfig(max_batch=2))
    leader = server.submit(pair, deadline_s=1e-4)
    follower = server.submit(pair)           # no deadline: never expires
    time.sleep(0.01)
    with server:
        leader_result = leader.result(timeout=60.0)
        follower_result = follower.result(timeout=60.0)
    assert leader_result.outcome == OUTCOME_EXPIRED
    assert follower_result.outcome != OUTCOME_EXPIRED
    assert follower_result.source == SOURCE_ENGINE
    expected_pair, expected_outcome = coach.revise_pair(pair)
    assert follower_result.outcome == expected_outcome.value
    assert follower_result.pair.response == expected_pair.response


def test_server_submit_when_stopped_leaves_no_poison_key(coach, dataset):
    """A submit rejected because the server is stopped must not leave a
    dangling in-flight entry that strands later identical requests."""
    pair = dataset[7]
    server = RevisionServer(coach, ServingConfig(max_batch=2))
    with server:
        pass                                  # start + drain + stop
    with pytest.raises(ServingError):
        server.submit(pair)
    with server:                              # restart: same content serves
        result = server.revise(pair, timeout=60.0)
    assert result.source == SOURCE_ENGINE


def test_server_admission_control_rejects_when_full(coach, dataset):
    server = RevisionServer(
        coach, ServingConfig(max_batch=2, max_queue_depth=1)
    )
    first = server.submit(dataset[2])
    with pytest.raises(AdmissionError):
        server.submit(dataset[4])
    assert server.metrics.rejected == 1
    with server:
        first.result(timeout=60.0)
    # The rejected pair's dedup slot was released: resubmission works.
    with server:
        assert server.revise(dataset[4], timeout=60.0).outcome


def test_serving_config_validation():
    with pytest.raises(ConfigError):
        ServingConfig(max_batch=0)
    with pytest.raises(ConfigError):
        ServingConfig(max_queue_depth=0)
    with pytest.raises(ConfigError):
        ServingConfig(cache_capacity=-1)
    with pytest.raises(ConfigError):
        ServingConfig(default_deadline_s=0.0)
    with pytest.raises(ConfigError):
        ServingConfig(quality_gate_threshold=101.0)
    with pytest.raises(ConfigError):
        ServingConfig(idle_wait_s=0.0)


# -- platform integration ----------------------------------------------------------


def test_platform_routes_through_server(coach):
    rng_a = np.random.default_rng(21)
    rng_b = np.random.default_rng(21)
    direct = DataManagementPlatform(coach=coach)
    with RevisionServer(coach, ServingConfig(max_batch=4)) as server:
        served = DataManagementPlatform(server=server)
        report_served = served.run_cleaning_batch(rng_b, 12, use_coachlm=True)
    report_direct = direct.run_cleaning_batch(rng_a, 12, use_coachlm=True)
    assert served.coach is coach
    assert report_served.pairs_per_person_day == pytest.approx(
        report_direct.pairs_per_person_day
    )
    assert report_served.mean_quality_out_of_coach == pytest.approx(
        report_direct.mean_quality_out_of_coach
    )
    assert server.metrics.completed >= 12


# -- HTTP front-end ----------------------------------------------------------------


def _post_json(url: str, payload: dict, timeout: float = 60.0) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def test_http_revise_metrics_and_errors(coach, dataset):
    server = RevisionServer(coach, ServingConfig(max_batch=4))
    with RevisionHTTPFrontend(server) as frontend:
        base = frontend.address
        pair = dataset[5]
        blob = _post_json(
            base + "/revise",
            {"instruction": pair.instruction, "response": pair.response},
        )
        expected_pair, expected_outcome = coach.revise_pair(
            InstructionPair(pair.instruction, pair.response)
        )
        assert blob["outcome"] == expected_outcome.value
        assert blob["instruction"] == expected_pair.instruction
        assert blob["response"] == expected_pair.response
        assert blob["source"] == SOURCE_ENGINE
        assert blob["latency_s"] >= 0

        # Identical content → cache, engine untouched.
        again = _post_json(
            base + "/revise",
            {"instruction": pair.instruction, "response": pair.response},
        )
        assert again["source"] == SOURCE_CACHE

        with urllib.request.urlopen(base + "/metrics", timeout=10) as response:
            metrics = json.load(response)
        assert metrics["completed"] == 2
        assert metrics["by_source"][SOURCE_CACHE] == 1
        assert metrics["tokens_per_sec"] > 0

        with urllib.request.urlopen(base + "/healthz", timeout=10) as response:
            health = json.load(response)
        assert health["status"] == "ok"

        for bad_body, expect in (
            (b"not json", 400),
            (json.dumps({"instruction": "x"}).encode(), 400),
        ):
            request = urllib.request.Request(
                base + "/revise", data=bad_body, method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == expect

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/nope", timeout=10)
        assert excinfo.value.code == 404


# -- scheduler deadlines (deterministic, no threads) -------------------------------


def test_scheduler_submit_rejects_already_expired_job(coach):
    """A job whose deadline passed before submit() must never reach the
    engine: it resolves through on_expired and costs zero engine work."""
    scheduler = StreamingScheduler(BatchedEngine(coach.model, max_batch=2))
    expired: list[str] = []
    job = EngineJob(
        GenerationRequest([5, 6, 7], 8, eos_id=None),
        on_done=lambda tokens: pytest.fail("expired job must not complete"),
        deadline=time.monotonic() - 1.0,
        on_expired=lambda: expired.append("dead"),
    )
    assert scheduler.submit(job) is None
    assert expired == ["dead"]
    assert not scheduler.engine.has_work and scheduler.in_flight == 0


def test_scheduler_pump_expires_overdue_engine_job(coach):
    """A job that expires while waiting inside the engine is cancelled at
    the next pump — live jobs keep their exact tokens."""
    model = coach.model
    rng = np.random.default_rng(3)
    scheduler = StreamingScheduler(BatchedEngine(model, max_batch=1))
    live_done: list[list[int]] = []
    prompt_live = list(rng.integers(5, 100, size=6))
    scheduler.submit(
        EngineJob(
            GenerationRequest(prompt_live, 6, eos_id=None),
            on_done=lambda tokens: live_done.append(tokens),
        )
    )
    scheduler.pump()  # live job occupies the only slot
    expired: list[str] = []
    scheduler.submit(
        EngineJob(
            GenerationRequest(list(rng.integers(5, 100, size=6)), 6),
            on_done=lambda tokens: pytest.fail("expired job must not complete"),
            deadline=time.monotonic() + 1e-4,
            on_expired=lambda: expired.append("dead"),
        )
    )
    time.sleep(0.01)
    completed = scheduler.drain()
    assert expired == ["dead"]
    assert completed == 1
    assert live_done == [model.generate(prompt_live, 6)]


def test_engine_job_terminal_callbacks_fire_exactly_once(coach):
    """The EngineJob terminal latch: whichever of done/expired lands
    first wins, and every later transition is a silent no-op — no
    interleaving of expiry and completion can double-resolve a future."""
    done_calls: list[list[int]] = []
    expired_calls: list[str] = []
    job = EngineJob(
        GenerationRequest([5, 6, 7], 4, eos_id=None),
        on_done=done_calls.append,
        deadline=time.monotonic() + 60.0,
        on_expired=lambda: expired_calls.append("dead"),
    )
    assert job.resolve_done([1, 2]) is True
    assert job.resolve_done([3, 4]) is False
    assert job.resolve_expired() is False
    assert done_calls == [[1, 2]] and expired_calls == []

    job2 = EngineJob(
        GenerationRequest([5, 6, 7], 4, eos_id=None),
        on_done=done_calls.append,
        on_expired=lambda: expired_calls.append("dead"),
    )
    assert job2.resolve_expired() is True
    assert job2.resolve_expired() is False
    assert job2.resolve_done([9]) is False
    assert done_calls == [[1, 2]] and expired_calls == ["dead"]


def test_scheduler_raising_on_done_does_not_strand_batchmates(coach):
    """A completion callback that raises must not swallow the other
    completions of the same pump round: every batchmate's on_done still
    fires, then the first error surfaces to the pump driver."""
    model = coach.model
    rng = np.random.default_rng(21)
    scheduler = StreamingScheduler(BatchedEngine(model, max_batch=3))
    done: list[int] = []

    def make_done(index: int):
        def on_done(tokens: list[int]) -> None:
            done.append(index)
            if index == 0:
                raise RuntimeError("callback bug")
        return on_done

    # Identical budgets, no EOS: all three complete on the same step.
    prompt = list(rng.integers(5, 100, size=6))
    for index in range(3):
        scheduler.submit(
            EngineJob(GenerationRequest(prompt, 3, eos_id=None), make_done(index))
        )
    with pytest.raises(RuntimeError, match="callback bug"):
        scheduler.drain()
    # The raising callback ran AND both batchmates were still dispatched.
    assert sorted(done) == [0, 1, 2]
    assert scheduler.in_flight == 0
    # The engine is clean: drain after the error finds nothing to do.
    assert scheduler.drain() == 0


def test_scheduler_drain_sweep_resolves_externally_cancelled_job(coach):
    """drain() must never return while a tracked job is unresolved: a job
    the engine lost track of (cancelled behind the scheduler's back) is
    resolved through its expiry path by the final safety sweep."""
    model = coach.model
    rng = np.random.default_rng(22)
    scheduler = StreamingScheduler(BatchedEngine(model, max_batch=2))
    expired: list[str] = []
    seq_id = scheduler.submit(
        EngineJob(
            GenerationRequest(list(rng.integers(5, 100, size=6)), 4, eos_id=None),
            on_done=lambda tokens: pytest.fail("cancelled job must not complete"),
            on_expired=lambda: expired.append("swept"),
        )
    )
    assert seq_id is not None
    # Simulate a cancellation the scheduler didn't perform itself.
    assert scheduler.engine.cancel(seq_id)
    scheduler.drain()
    assert expired == ["swept"]
    assert scheduler.in_flight == 0


def test_server_expires_deadline_missed_job_waiting_in_engine(coach, dataset):
    """End-to-end: a job stuck behind a full fleet past its deadline is
    expired by the scheduler sweep instead of decoding after the miss."""
    config = ServingConfig(max_batch=1, cache_capacity=0)
    with RevisionServer(coach, config) as server:
        blocker = server.submit(dataset[8])
        tight = server.submit(dataset[9], deadline_s=1e-4)
        blocker_result = blocker.result(timeout=60.0)
        tight_result = tight.result(timeout=60.0)
    assert blocker_result.outcome != OUTCOME_EXPIRED
    assert tight_result.outcome == OUTCOME_EXPIRED
    assert tight_result.source == SOURCE_DEADLINE


# -- slot-refill hygiene (regression) ----------------------------------------------


def test_refill_into_just_retired_slot_inherits_clean_kv(coach):
    """A job admitted into a slot freed on the very same step() must see
    a clean KV cache: its tokens cannot depend on the retired occupant's
    stale columns, however long that occupant's sequence was."""
    model = coach.model
    rng = np.random.default_rng(17)
    # The first occupant decodes a long continuation (long stale KV);
    # the replacement's prompt is much shorter, so most of the slot's
    # columns hold the dead sequence's keys.
    long_occupant = list(rng.integers(5, 100, size=60))
    replacement = list(rng.integers(5, 100, size=4))
    engine = BatchedEngine(model, max_batch=1)
    first = engine.submit(GenerationRequest(long_occupant, 24, eos_id=None))
    for _ in range(24):
        engine.step()
    done = engine.collect()
    assert list(done) == [first], "occupant must have retired"
    # Same-step refill: the replacement is pending when the occupant's
    # final step runs, so it enters the freed slot within that step()
    # in the unchunked path, and on the next step otherwise.
    second = engine.submit(GenerationRequest(replacement, 8, eos_id=None))
    results = {}
    while engine.has_work:
        engine.step()
        results.update(engine.collect())
    assert results[second] == model.generate(replacement, 8, eos_id=None)

    # And the genuinely same-step variant: two sequences, slot 0 retires
    # while slot 1 keeps decoding; the pending job must refill slot 0
    # within the retiring step and still match the sequential path.
    # Budget-based retirement keeps the retiring step deterministic.
    engine = BatchedEngine(model, max_batch=2)
    a = engine.submit(GenerationRequest(long_occupant, 12, eos_id=None))
    b = engine.submit(GenerationRequest(list(rng.integers(5, 100, size=8)), 40))
    engine.step()
    c = engine.submit(GenerationRequest(replacement, 8, eos_id=None))
    refilled_same_step = False
    results = {}
    while engine.has_work:
        active_before = engine.n_active
        finished = engine.step()
        if finished and engine.n_active == active_before:
            # a retired and c was admitted within the same step.
            refilled_same_step = True
        results.update(engine.collect())
        if c in results:
            break
    assert refilled_same_step
    assert results[a] == model.generate(long_occupant, 12, eos_id=None)
    assert results[c] == model.generate(replacement, 8, eos_id=None)


# -- HTTP error paths --------------------------------------------------------------


def test_http_oversized_payload_rejected_before_submit(coach):
    server = RevisionServer(coach, ServingConfig(max_batch=2))
    with RevisionHTTPFrontend(server, max_body_bytes=256) as frontend:
        submitted_before = server.metrics.submitted
        big = json.dumps(
            {"instruction": "x" * 4096, "response": "y"}
        ).encode("utf-8")
        request = urllib.request.Request(
            frontend.address + "/revise", data=big, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 413
        blob = json.load(excinfo.value)
        assert "exceeds" in blob["error"]
        # Rejected before touching the serving queue or the engine.
        assert server.metrics.submitted == submitted_before

        # A normal-sized request still serves on the same front-end.
        pair = _clean_pair()
        ok = _post_json(
            frontend.address + "/revise",
            {"instruction": pair.instruction, "response": pair.response},
        )
        assert "outcome" in ok


def test_http_queue_full_replies_429_with_retry_after(coach, dataset):
    # A stopped server never drains its queue: depth-1 admission control
    # trips deterministically on the second submission.
    server = RevisionServer(coach, ServingConfig(max_batch=2, max_queue_depth=1))
    frontend = RevisionHTTPFrontend(server)
    frontend.httpd.timeout = 5
    thread = threading.Thread(target=frontend.httpd.serve_forever, daemon=True)
    thread.start()
    try:
        base = frontend.address
        first = dataset[0]
        server.submit(first)  # fills the only queue slot
        request = urllib.request.Request(
            base + "/revise",
            data=json.dumps(
                {"instruction": "fresh content", "response": "fresh reply"}
            ).encode("utf-8"),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 429
        assert excinfo.value.headers["Retry-After"] == "1"
        assert server.metrics.rejected >= 1
    finally:
        frontend.httpd.shutdown()
        frontend.httpd.server_close()
        thread.join(timeout=10)


def test_http_malformed_numeric_fields_rejected(coach):
    server = RevisionServer(coach, ServingConfig(max_batch=2))
    with RevisionHTTPFrontend(server) as frontend:
        for payload in (
            {"instruction": "a", "response": "b", "priority": "high"},
            {"instruction": "a", "response": "b", "deadline_s": "soon"},
            {"instruction": "a", "response": "b", "timeout_s": []},
        ):
            request = urllib.request.Request(
                frontend.address + "/revise",
                data=json.dumps(payload).encode("utf-8"),
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400


def test_http_metrics_schema_is_stable(coach, dataset):
    """The /metrics payload is a monitoring contract: pin its exact key
    set (top-level and per-source) so dashboards never silently break."""
    server = RevisionServer(coach, ServingConfig(max_batch=2))
    with RevisionHTTPFrontend(server) as frontend:
        pair = dataset[3]
        _post_json(
            frontend.address + "/revise",
            {"instruction": pair.instruction, "response": pair.response},
        )
        with urllib.request.urlopen(
            frontend.address + "/metrics", timeout=10
        ) as response:
            metrics = json.load(response)
    assert set(metrics) == {
        "submitted",
        "completed",
        "rejected",
        "by_source",
        "engine_tokens",
        "engine_busy_s",
        "requeued",
        "worker_lost",
        "duplicate_results",
        "retries",
        "retry_after_honored_s",
        "gave_up",
        "journal",
        "latency_p50_s",
        "latency_p95_s",
        "tokens_per_sec",
        "queue_depth",
        "engine",
    }
    assert set(metrics["by_source"]) == {
        SOURCE_ENGINE,
        SOURCE_CACHE,
        SOURCE_DEDUP,
        SOURCE_GATE,
        SOURCE_DEADLINE,
        SOURCE_SHED,
    }
    # Fault-tolerance counters exist (and stay zero) in a single process.
    assert metrics["requeued"] == 0
    assert metrics["worker_lost"] == 0
    # Preemption observability contract: the engine section always
    # carries the counter block, zeroed when nothing was ever evicted.
    assert metrics["engine"]["n_preempted"] == 0
    assert set(metrics["engine"]["preemption"]) == {
        "preemptions",
        "resumes",
        "preempted_resident_tokens",
        "stream_disconnects",
    }
    assert metrics["duplicate_results"] == 0
    # Durability counters exist (and stay zero) on a journal-less,
    # retry-free happy path.
    assert metrics["retries"] == 0
    assert metrics["gave_up"] == 0
    assert metrics["journal"] == {
        "records_replayed": 0, "pairs_skipped": 0
    }
    for key in ("submitted", "completed", "rejected", "engine_tokens"):
        assert isinstance(metrics[key], int)
    for key in (
        "engine_busy_s", "latency_p50_s", "latency_p95_s", "tokens_per_sec"
    ):
        assert isinstance(metrics[key], (int, float))
    # The engine section is the admission-pressure dashboard: occupancy
    # plus (serving default = paged KV) the pool's free-page headroom.
    engine = metrics["engine"]
    for key in (
        "max_batch", "n_active", "n_prefilling", "n_pending", "free_slots",
        "paged", "kv_page_tokens", "resident_kv_bytes",
    ):
        assert key in engine, engine
    assert engine["paged"] is True  # ServingConfig default: 64-token pages
    assert isinstance(engine["total_pages"], int)
    assert 0 <= engine["free_pages"] <= engine["total_pages"]


def test_server_parity_with_multislot_prefill(coach, dataset):
    """Multi-slot chunked admission (tiny chunks, full concurrency) must
    not change a single served token relative to the offline batch path."""
    expected, _ = coach.revise_dataset(dataset, batch_size=5)
    config = ServingConfig(
        max_batch=4, prefill_chunk_tokens=5, prefill_concurrency=4
    )
    with RevisionServer(coach, config) as server:
        got, _ = InProcessRevisionClient(server).revise_dataset(dataset)
    for exp, pair in zip(expected, got):
        assert pair.instruction == exp.instruction
        assert pair.response == exp.response


def test_http_negative_content_length_rejected(coach):
    """A negative Content-Length must get a 400, not a read-to-EOF that
    blocks the handler thread for the life of the connection."""
    import http.client

    server = RevisionServer(coach, ServingConfig(max_batch=2))
    with RevisionHTTPFrontend(server) as frontend:
        host, port = frontend.httpd.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=5)
        try:
            conn.putrequest("POST", "/revise")
            conn.putheader("Content-Length", "-1")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            assert b"Content-Length" in response.read()
        finally:
            conn.close()
