"""Tests for modules, transformer, LoRA, optimiser and trainer."""

import numpy as np
import pytest

from repro.errors import GenerationError, ModelError
from repro.nn import (
    Adam,
    Embedding,
    LMTrainer,
    LayerNorm,
    Linear,
    LoRALinear,
    Tensor,
    TrainExample,
    TransformerConfig,
    TransformerLM,
    apply_lora,
    clip_grad_norm,
    cosine_schedule,
    lora_parameters,
    merge_lora,
)


@pytest.fixture()
def tiny_model(rng):
    cfg = TransformerConfig(
        vocab_size=40, d_model=16, n_layers=2, n_heads=2, max_seq_len=48
    )
    return TransformerLM(cfg, rng)


# -- modules -----------------------------------------------------------------


def test_linear_shapes(rng):
    layer = Linear(8, 3, rng)
    out = layer(Tensor(np.zeros((5, 4, 8), dtype=np.float32)))
    assert out.shape == (5, 4, 3)


def test_linear_numpy_path_matches(rng):
    layer = Linear(8, 3, rng)
    x = np.random.default_rng(0).normal(size=(2, 6, 8)).astype(np.float32)
    auto = layer(Tensor(x)).data
    fast = layer.forward_numpy(x)
    assert np.allclose(auto, fast, atol=1e-6)


def test_embedding_bounds(rng):
    emb = Embedding(10, 4, rng)
    with pytest.raises(ModelError):
        emb(np.array([10]))


def test_state_dict_roundtrip(tiny_model):
    state = tiny_model.state_dict()
    clone = tiny_model.clone()
    for name, value in clone.state_dict().items():
        assert np.array_equal(value, state[name])


def test_state_dict_mismatch_raises(tiny_model, rng):
    other = TransformerLM(
        TransformerConfig(vocab_size=40, d_model=32, n_layers=2, n_heads=2,
                          max_seq_len=48),
        rng,
    )
    with pytest.raises(ModelError):
        tiny_model.load_state_dict(other.state_dict())


def test_layernorm_normalises(rng):
    ln = LayerNorm(8)
    x = np.random.default_rng(0).normal(3.0, 2.0, size=(4, 8)).astype(np.float32)
    out = ln.forward_numpy(x)
    assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
    assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)


# -- transformer ---------------------------------------------------------------


def test_forward_shapes(tiny_model):
    logits = tiny_model.forward(np.zeros((2, 7), dtype=np.int64))
    assert logits.shape == (2, 7, 40)


def test_context_overflow_raises(tiny_model):
    with pytest.raises(ModelError):
        tiny_model.forward(np.zeros((1, 49), dtype=np.int64))


def test_train_and_infer_paths_agree(tiny_model, rng):
    idx = rng.integers(1, 40, size=(2, 9))
    auto = tiny_model.forward(idx).data
    fast = tiny_model.logits_numpy(idx)
    assert np.allclose(auto, fast, atol=1e-5)


def test_kv_cache_matches_full_forward(tiny_model, rng):
    idx = rng.integers(1, 40, size=(1, 12))
    full = tiny_model.logits_numpy(idx)[0, -1]
    caches = [{"k": None, "v": None} for _ in tiny_model.blocks]
    out = tiny_model._forward_numpy(idx[:, :6], caches)
    for t in range(6, 12):
        out = tiny_model._forward_numpy(idx[:, t:t + 1], caches, position_offset=t)
    assert np.allclose(out[0, -1], full, atol=1e-4)


def test_generate_greedy_memorization(rng):
    cfg = TransformerConfig(vocab_size=30, d_model=32, n_layers=2,
                            n_heads=2, max_seq_len=32)
    model = TransformerLM(cfg, rng)
    examples = [
        TrainExample((1, 2 + i % 3, 10 + i % 3, 11 + i % 3, 3), 2)
        for i in range(12)
    ]
    trainer = LMTrainer(model, pad_id=0, lr=3e-3, batch_size=6)
    stats = trainer.train(examples, epochs=60, rng=rng)
    assert stats.final_loss < 0.1
    assert model.generate([1, 2], 4, eos_id=3) == [10, 11, 3]


def test_generate_rejects_empty_prompt(tiny_model):
    with pytest.raises(GenerationError):
        tiny_model.generate([], 4)


def test_generate_top_k_requires_rng(tiny_model):
    with pytest.raises(GenerationError):
        tiny_model.generate([1], 4, top_k=3)


def test_generate_respects_context_budget(tiny_model):
    out = tiny_model.generate([5] * 46, 100)
    assert len(out) <= 2


def test_logit_bias_steers_decode(tiny_model):
    bias = np.zeros(40, dtype=np.float32)
    bias[7] = 1e4
    out = tiny_model.generate([1, 2], 3, logit_bias=bias)
    assert out == [7, 7, 7]


def test_tied_embeddings_have_no_head(tiny_model):
    assert tiny_model.head is None
    names = [n for n, _ in tiny_model.named_parameters()]
    assert not any("head" in n for n in names)


def test_untied_model_has_head(rng):
    cfg = TransformerConfig(vocab_size=40, d_model=16, n_layers=1,
                            n_heads=2, max_seq_len=32, tie_embeddings=False)
    model = TransformerLM(cfg, rng)
    assert model.head is not None
    logits = model.logits_numpy(np.zeros((1, 4), dtype=np.int64))
    assert logits.shape == (1, 4, 40)


# -- LoRA -----------------------------------------------------------------------


def test_lora_is_noop_at_init(tiny_model, rng):
    idx = rng.integers(1, 40, size=(1, 8))
    before = tiny_model.logits_numpy(idx)
    apply_lora(tiny_model, rank=4, alpha=8, rng=rng)
    after = tiny_model.logits_numpy(idx)
    assert np.allclose(before, after)


def test_lora_freezes_base(tiny_model, rng):
    apply_lora(tiny_model, rank=4, alpha=8, rng=rng)
    trainable = {id(p) for p in tiny_model.trainable_parameters()}
    assert trainable == {id(p) for p in lora_parameters(tiny_model)}


def test_lora_double_apply_raises(tiny_model, rng):
    apply_lora(tiny_model, rank=4, alpha=8, rng=rng)
    with pytest.raises(ModelError):
        apply_lora(tiny_model, rank=4, alpha=8, rng=rng)


def test_lora_merge_equivalence(tiny_model, rng):
    idx = rng.integers(1, 40, size=(1, 8))
    apply_lora(tiny_model, rank=4, alpha=8, rng=rng)
    for p in lora_parameters(tiny_model):
        p.data = rng.normal(0, 0.05, size=p.data.shape).astype(np.float32)
    before = tiny_model.logits_numpy(idx)
    merge_lora(tiny_model)
    after = tiny_model.logits_numpy(idx)
    assert np.allclose(before, after, atol=1e-4)
    assert not any(
        isinstance(b.attn.qkv, LoRALinear) for b in tiny_model.blocks
    )


def test_lora_parameters_without_adapters_raises(tiny_model):
    with pytest.raises(ModelError):
        lora_parameters(tiny_model)


def test_lora_rank_validation(rng):
    base = Linear(4, 4, rng)
    with pytest.raises(ModelError):
        LoRALinear(base, rank=0, alpha=1, rng=rng)


# -- optimiser --------------------------------------------------------------------


def test_adam_minimises_quadratic():
    x = Tensor(np.array([5.0], dtype=np.float32), requires_grad=True)
    opt = Adam([x], lr=0.3)
    for _ in range(100):
        x.grad = None
        loss = (x * x).sum()
        loss.backward()
        opt.step()
    assert abs(x.data[0]) < 0.05


def test_adam_empty_params_raises():
    with pytest.raises(ModelError):
        Adam([])


def test_clip_grad_norm():
    p = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
    p.grad = np.full(4, 10.0, dtype=np.float32)
    norm = clip_grad_norm([p], max_norm=1.0)
    assert norm == pytest.approx(20.0)
    assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)


def test_cosine_schedule_endpoints():
    lr = cosine_schedule(1.0, total_steps=100, warmup_steps=10)
    assert lr(0) == pytest.approx(0.1)
    assert lr(10) == pytest.approx(1.0, abs=0.01)
    assert lr(100) == pytest.approx(0.0, abs=1e-6)


def test_cosine_schedule_validation():
    with pytest.raises(ModelError):
        cosine_schedule(1.0, total_steps=0)


# -- trainer ------------------------------------------------------------------------


def test_train_example_validation():
    with pytest.raises(ModelError):
        TrainExample((1, 2, 3), prompt_len=0)
    with pytest.raises(ModelError):
        TrainExample((1, 2, 3), prompt_len=4)


def test_collate_masks_prompt_and_padding(tiny_model):
    trainer = LMTrainer(tiny_model, pad_id=0, batch_size=4)
    batch = [TrainExample((5, 6, 7, 8), 2), TrainExample((5, 6, 7), 2)]
    inputs, targets, mask = trainer._collate(batch)
    assert inputs.shape == (2, 3)
    # Example 0: positions predicting tokens 7, 8 are counted; token 6 is
    # prompt.  Example 1: only token 7; the padded slot is masked.
    assert mask.tolist() == [[0.0, 1.0, 1.0], [0.0, 1.0, 0.0]]


def test_trainer_requires_examples(tiny_model, rng):
    trainer = LMTrainer(tiny_model, pad_id=0)
    with pytest.raises(ModelError):
        trainer.train([], epochs=1, rng=rng)


def test_evaluate_matches_training_loss_scalewise(tiny_model, rng):
    examples = [
        TrainExample(tuple(rng.integers(1, 40, size=8).tolist()), 3)
        for _ in range(8)
    ]
    trainer = LMTrainer(tiny_model, pad_id=0, batch_size=4)
    loss = trainer.evaluate(examples)
    assert 0.0 < loss < 10.0
