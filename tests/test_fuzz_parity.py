"""Randomized differential-parity fuzz for the batched decoding engine.

Every scenario draws a random *serving trace* — uneven prompt lengths
(including prompt-too-long edge cases), staggered arrival steps, chunked
or unchunked prefill at random chunk sizes and concurrencies, greedy and
seeded top-k requests mixed in one fleet, and early cancellations — runs
it through :class:`BatchedEngine`'s streaming ``submit``/``step``/
``collect`` API, and asserts the result of every surviving request is
**token-for-token identical** to the sequential
:meth:`TransformerLM.generate` path (cancelled requests must be an exact
prefix of it).

Each scenario also draws its *KV backend*: dense slot slabs or the paged
pool at a random page size (including degenerate one-token pages), a
randomly undersized page budget (so page-exhaustion deferral and
recycling are fuzzed, not just directed-tested), the radix prefix cache
on or off, and the unified mixed-length step forward on or off — none
of which may change a single token.

Scenarios draw *shared-prefix request families* alongside independent
prompts: several requests extend the same template prefix at random cut
points, so with the prefix cache on the trace exercises radix hits,
partial boundary-page shares, copy-on-write, pinned-page admission and
eviction — and every drained trace asserts zero leaked pages, zero
leaked reservations, zero pinned shared pages, and (after a cache
clear) a free list covering the whole allocation.

Scenarios are generated from ``seed = REPRO_FUZZ_SEED + index``, so a
failure is reproducible in isolation::

    REPRO_FUZZ_SEED=<printed seed> REPRO_FUZZ_SCENARIOS=1 \
        python -m pytest tests/test_fuzz_parity.py

``REPRO_FUZZ_SCENARIOS`` (default 60) sets the per-run budget, and
``REPRO_FUZZ_PAGED`` pins the backend draw: ``on`` forces every
scenario onto the paged pool (the CI paged leg — same seeds, so each
trace differentially tests paged against its dense twin from the
default leg), ``off`` forces dense, and ``auto`` (default) randomizes
per scenario.  ``REPRO_FUZZ_PREFIX`` pins the prefix-cache draw the
same way (``on`` applies to paged scenarios only).  ``scripts/ci.sh``
pins all of them so CI runs a fixed, deterministic corpus.

``REPRO_FUZZ_PREEMPT`` pins the preemption draw: ``on`` gives every
scenario random request priorities plus a random mid-decode
preempt/resume schedule (the CI preempt leg).  All preemption draws
come from a *separate* rng stream keyed off the scenario seed, so the
preempt legs replay byte-identical traces (prompts, arrivals, cancels)
to the other legs — every evicted-and-resumed sequence must still match
its sequential reference token-for-token, and drained traces must show
zero suspended sequences and zero leaked pages, reservations, or pins.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.nn import BatchedEngine, GenerationRequest, TransformerConfig, TransformerLM

MASTER_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20240311"))
N_SCENARIOS = int(os.environ.get("REPRO_FUZZ_SCENARIOS", "60"))
PAGED_MODE = os.environ.get("REPRO_FUZZ_PAGED", "auto")  # auto | on | off
PREFIX_MODE = os.environ.get("REPRO_FUZZ_PREFIX", "auto")  # auto | on | off
PREEMPT_MODE = os.environ.get("REPRO_FUZZ_PREEMPT", "auto")  # auto | on | off
PAGE_SIZES = (1, 3, 16, 64)

VOCAB = 131
EOS_ID = 2


@pytest.fixture(scope="module")
def model():
    config = TransformerConfig(
        vocab_size=VOCAB, d_model=32, n_layers=2, n_heads=4, max_seq_len=64
    )
    return TransformerLM(config, np.random.default_rng(1729))


@dataclass
class _FuzzRequest:
    """One fuzzed request plus its trace-level scheduling decisions."""

    prompt: list[int]
    max_new_tokens: int
    eos_id: int | None
    top_k: int | None
    sample_seed: int | None
    arrival_step: int
    cancel_step: int | None = None
    priority: int = 0


@dataclass
class _Scenario:
    seed: int
    max_batch: int
    prefill_chunk_tokens: int | None
    prefill_concurrency: int
    kv_page_tokens: int | None = None
    kv_pool_pages: int | None = None
    kv_prefix_cache: bool = False
    unified_step: bool = True
    preemption: bool = False
    preempt_seed: int = 0
    requests: list[_FuzzRequest] = field(default_factory=list)


def _draw_scenario(seed: int, context: int) -> _Scenario:
    rng = np.random.default_rng(seed)
    # Priority/preemption draws come from a SEPARATE rng stream keyed
    # off the scenario seed: the main stream below is untouched, so the
    # preempt legs (REPRO_FUZZ_PREEMPT=on/off) replay the exact traces
    # of the other legs — preemption is the only variable.
    preempt_rng = np.random.default_rng((seed, 0x70EE))
    preempt_coin = preempt_rng.random() < 0.5
    preempt_seed = int(preempt_rng.integers(0, 2**31))
    preempt = preempt_coin if PREEMPT_MODE == "auto" else PREEMPT_MODE == "on"
    # KV backend draw.  Every backend-related draw is consumed
    # unconditionally, in a fixed order, BEFORE the mode override is
    # applied: the rng stream position at the trace draws below is then
    # identical across REPRO_FUZZ_PAGED=auto/on/off, so the forced legs
    # replay the auto leg's exact traces (prompts, arrivals, cancels) on
    # the other backend — a true differential corpus.
    paged_coin = rng.random() < 0.5
    page_tokens = int(rng.choice(PAGE_SIZES))
    undersized_coin = rng.random() < 0.35
    prefix_coin = rng.random() < 0.5
    # Undersized pool: admission must defer on page exhaustion and
    # recycle pages from retirements/cancels — without token drift.
    pages_per_seq = -(-context // page_tokens)
    pool_pages = pages_per_seq + int(rng.integers(0, 2 * pages_per_seq))
    paged = paged_coin if PAGED_MODE == "auto" else PAGED_MODE == "on"
    prefix = prefix_coin if PREFIX_MODE == "auto" else PREFIX_MODE == "on"
    if not paged:
        page_tokens = None
        pool_pages = None
        prefix = False
    elif not undersized_coin:
        pool_pages = None
    # Shared-prefix request families: templates are drawn unconditionally
    # (fixed draw order across PAGED/PREFIX overrides) and a slice of the
    # requests below extends one of them at a random cut point.
    templates = [
        [int(t) for t in rng.integers(5, VOCAB, size=int(rng.integers(4, context // 2 + 1)))]
        for _ in range(2)
    ]
    scenario = _Scenario(
        seed=seed,
        max_batch=int(rng.integers(1, 7)),
        prefill_chunk_tokens=(
            None if rng.random() < 0.25 else int(rng.integers(1, 9))
        ),
        prefill_concurrency=int(rng.integers(1, 5)),
        kv_page_tokens=page_tokens,
        kv_pool_pages=pool_pages,
        kv_prefix_cache=prefix,
        unified_step=rng.random() < 0.75,
        preemption=preempt,
        preempt_seed=preempt_seed,
    )
    for i in range(int(rng.integers(1, 11))):
        # Drawn unconditionally (stream alignment across modes), applied
        # only on the preempt legs.
        drawn_priority = int(preempt_rng.integers(0, 4))
        family_coin = rng.random() < 0.45
        template = templates[int(rng.integers(0, len(templates)))]
        cut = int(rng.integers(1, len(template) + 1))
        if rng.random() < 0.06:
            # Prompt at or past the context window: zero token budget.
            n_prompt = context + int(rng.integers(0, 4))
            family_coin = False
        else:
            n_prompt = int(rng.integers(1, context - 4))
        prompt = [int(t) for t in rng.integers(5, VOCAB, size=n_prompt)]
        if family_coin:
            # Extend the family template at the cut point; keep the
            # request's own drawn length so budgets stay varied.
            prompt = (template[:cut] + prompt)[:n_prompt] or prompt
        top_k = int(rng.integers(1, 6)) if rng.random() < 0.35 else None
        scenario.requests.append(
            _FuzzRequest(
                prompt=prompt,
                max_new_tokens=int(rng.integers(1, 14)),
                eos_id=EOS_ID if rng.random() < 0.7 else None,
                top_k=top_k,
                sample_seed=int(rng.integers(0, 2**31)) if top_k else None,
                arrival_step=int(rng.integers(0, 9)),
                cancel_step=(
                    int(rng.integers(1, 25)) if rng.random() < 0.2 else None
                ),
                priority=drawn_priority if preempt else 0,
            )
        )
    return scenario


def _sequential_reference(model: TransformerLM, req: _FuzzRequest) -> list[int]:
    rng = (
        np.random.default_rng(req.sample_seed)
        if req.sample_seed is not None
        else None
    )
    return model.generate(
        req.prompt,
        req.max_new_tokens,
        eos_id=req.eos_id,
        top_k=req.top_k,
        rng=rng,
    )


def _run_engine_trace(
    model: TransformerLM, scenario: _Scenario
) -> tuple[dict[int, list[int]], dict[int, int]]:
    """Drive the streaming API along the scenario's arrival/cancel trace.

    Returns ``(results by request index, seq_id by request index)`` —
    cancellations key off the engine-assigned sequence ids.
    """
    engine = BatchedEngine(
        model,
        max_batch=scenario.max_batch,
        prefill_chunk_tokens=scenario.prefill_chunk_tokens,
        prefill_concurrency=scenario.prefill_concurrency,
        kv_page_tokens=scenario.kv_page_tokens,
        kv_pool_pages=scenario.kv_pool_pages,
        kv_prefix_cache=scenario.kv_prefix_cache,
        unified_step=scenario.unified_step,
    )
    preempt_rng = (
        np.random.default_rng(scenario.preempt_seed)
        if scenario.preemption
        else None
    )
    seq_ids: dict[int, int] = {}
    results: dict[int, list[int]] = {}
    step = 0
    guard = 0
    while len(results) < len(scenario.requests):
        for i, req in enumerate(scenario.requests):
            if i not in seq_ids and req.arrival_step <= step:
                rng = (
                    np.random.default_rng(req.sample_seed)
                    if req.sample_seed is not None
                    else None
                )
                seq_ids[i] = engine.submit(
                    GenerationRequest(
                        req.prompt,
                        req.max_new_tokens,
                        eos_id=req.eos_id,
                        top_k=req.top_k,
                        rng=rng,
                        priority=req.priority,
                    )
                )
            if (
                i in seq_ids
                and req.cancel_step is not None
                and req.arrival_step + req.cancel_step <= step
            ):
                engine.cancel(seq_ids[i])
                req.cancel_step = None  # at most one cancel per request
        if preempt_rng is not None and preempt_rng.random() < 0.15:
            # Evict one live sequence mid-decode; preempt() is a no-op
            # (False) unless the victim is actively decoding, so this
            # also fuzzes preempt-on-pending/prefilling/finished.
            live = [i for i in seq_ids if i not in results]
            if live:
                victim = live[int(preempt_rng.integers(0, len(live)))]
                engine.preempt(seq_ids[victim])
        engine.step()
        for seq_id, tokens in engine.collect().items():
            index = next(i for i, s in seq_ids.items() if s == seq_id)
            results[index] = tokens
        step += 1
        guard += 1
        assert guard < 5000, "fuzz trace failed to terminate"
    stats = engine.kv_stats()
    assert stats["n_preempted"] == 0, stats    # no sequence left suspended
    if stats["paged"]:
        # Every page and every reservation must come back once the trace
        # drains — leaks here would strangle a long-lived server.
        assert stats["pages_in_use"] == 0, stats
        assert stats["reserved_pages"] == 0, stats
        if stats.get("prefix_cache") is not None:
            # No shared page may stay pinned after its borrowers retired,
            # and clearing the index must return every allocated page to
            # the free list — zero leaked refcounts, pages, or pins.
            assert stats["prefix_cache"]["shared_pinned_pages"] == 0, stats
            engine.clear_prefix_cache()
            cleared = engine.kv_stats()
            assert cleared["prefix_cache"]["cached_pages"] == 0, cleared
            assert (
                cleared["free_list_pages"] == cleared["allocated_pages"]
            ), cleared
    return results, seq_ids


@pytest.mark.parametrize("index", range(N_SCENARIOS))
def test_fuzz_streaming_engine_matches_sequential(model, index):
    seed = MASTER_SEED + index
    scenario = _draw_scenario(seed, model.config.max_seq_len)
    cancelled = {
        i for i, req in enumerate(scenario.requests)
        if req.cancel_step is not None
    }
    results, _ = _run_engine_trace(model, scenario)
    repro_hint = (
        f"reproduce with: REPRO_FUZZ_SEED={seed} REPRO_FUZZ_SCENARIOS=1 "
        f"python -m pytest tests/test_fuzz_parity.py"
    )
    assert len(results) == len(scenario.requests), repro_hint
    for i, req in enumerate(scenario.requests):
        expected = _sequential_reference(model, req)
        got = results[i]
        if i in cancelled:
            # A cancelled request may stop anywhere, but every token it
            # did produce must match the sequential decode exactly.
            assert got == expected[: len(got)], (
                f"fuzz seed {seed}: cancelled request {i} diverged from "
                f"the sequential prefix\nengine:     {got}\n"
                f"sequential: {expected}\nscenario: {scenario}\n{repro_hint}"
            )
        else:
            assert got == expected, (
                f"fuzz seed {seed}: request {i} diverged\n"
                f"engine:     {got}\nsequential: {expected}\n"
                f"scenario: {scenario}\n{repro_hint}"
            )
