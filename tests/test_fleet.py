"""Directed tests for the fault-tolerant multi-process serving fleet.

Covers the supervisor's contract one failure mode at a time: parity
with the sequential coach, SIGKILL resilience mid-decode, seeded
crash/hang/drop faults, restart backoff with warm exclusion, requeue
budgets ending in a typed :class:`WorkerLostError`, priority shedding,
graceful drain, cross-process cache persistence (including torn-write
recovery), and the aggregated metrics/health schema.  The randomized
cross-product of these faults lives in ``tests/test_fuzz_fleet.py``.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.config import ConfigError, FleetConfig, ServingConfig
from repro.core.coachlm import CoachLM
from repro.data import generate_dataset
from repro.data.instruction_pair import InstructionPair
from repro.errors import OverloadError, WorkerLostError
from repro.nn import TransformerConfig, TransformerLM
from repro.serving import (
    EngineFleet,
    FaultPlan,
    RevisionHTTPFrontend,
    SOURCE_CACHE,
    SOURCE_ENGINE,
    SOURCE_SHED,
    WorkerFaults,
)
from repro.serving.requests import OUTCOME_SHED


@pytest.fixture(scope="module")
def coach(tokenizer):
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=32,
        n_layers=1,
        n_heads=4,
        max_seq_len=192,
    )
    model = TransformerLM(config, np.random.default_rng(9))
    return CoachLM(model, tokenizer)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(np.random.default_rng(77), 10)


@pytest.fixture(scope="module")
def reference(coach, dataset):
    """Sequential ground truth: greedy decode is deterministic, so any
    fleet result must reproduce these texts token-for-token."""
    return {
        pair.pair_id: coach.revise_pair(pair) for pair in dataset
    }


def _fast_fleet_config(**overrides) -> FleetConfig:
    defaults = dict(
        fleet_workers=2,
        heartbeat_interval_s=0.02,
        heartbeat_timeout_s=1.0,
        restart_backoff_s=0.05,
        restart_backoff_max_s=0.2,
        worker_ready_timeout_s=60.0,
        drain_timeout_s=60.0,
        serving=ServingConfig(max_batch=4),
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def _assert_parity(result, pair, reference):
    expected_pair, expected_outcome = reference[pair.pair_id]
    assert result.outcome == expected_outcome.value
    assert result.pair.instruction == expected_pair.instruction
    assert result.pair.response == expected_pair.response


# -- config --------------------------------------------------------------------


def test_fleet_config_validation():
    with pytest.raises(ConfigError):
        FleetConfig(fleet_workers=0)
    with pytest.raises(ConfigError):
        FleetConfig(heartbeat_timeout_s=0.01, heartbeat_interval_s=0.05)
    with pytest.raises(ConfigError):
        FleetConfig(requeue_budget=-1)
    with pytest.raises(ConfigError):
        FleetConfig(max_queue_depth=0)
    with pytest.raises(ConfigError):
        FleetConfig(dispatch_depth_per_worker=0)
    with pytest.raises(ConfigError):
        FleetConfig(restart_backoff_s=0.0)
    assert FleetConfig().serving.max_batch == ServingConfig().max_batch


# -- parity --------------------------------------------------------------------


def test_fleet_parity_with_sequential_coach(coach, dataset, reference):
    with EngineFleet(coach, _fast_fleet_config()) as fleet:
        futures = [(pair, fleet.submit(pair)) for pair in dataset]
        for pair, future in futures:
            result = future.result(timeout=120)
            _assert_parity(result, pair, reference)
        snap = fleet.metrics_snapshot()
    assert snap["duplicate_results"] == 0
    assert snap["worker_lost"] == 0
    assert snap["completed"] == len(dataset)


def test_fleet_dedup_and_cache_across_submits(coach, dataset, reference):
    pair = dataset[0]
    with EngineFleet(coach, _fast_fleet_config()) as fleet:
        first = fleet.submit(pair)
        result = first.result(timeout=120)
        _assert_parity(result, pair, reference)
        cached = fleet.submit(pair).result(timeout=120)
        assert cached.source == SOURCE_CACHE
        assert cached.pair.response == result.pair.response


# -- kill resilience -----------------------------------------------------------


def test_fleet_sigkill_mid_decode_no_lost_futures(coach, dataset, reference):
    """The acceptance drill: SIGKILL a worker while it is decoding.
    Every accepted request resolves — with exact token parity (requeued
    work re-decodes deterministically) or a typed WorkerLostError — and
    nothing resolves twice."""
    with EngineFleet(coach, _fast_fleet_config()) as fleet:
        futures = [(pair, fleet.submit(pair)) for pair in dataset]
        # Wait until decode work is actually in flight, then shoot the
        # worker owning the most of it.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            busiest = max(fleet._workers, key=lambda w: len(w.outstanding))
            if busiest.outstanding and busiest.process is not None:
                os.kill(busiest.process.pid, signal.SIGKILL)
                break
            time.sleep(0.002)
        else:
            pytest.fail("no worker ever had outstanding jobs")
        lost = 0
        for pair, future in futures:
            try:
                result = future.result(timeout=120)
            except WorkerLostError:
                lost += 1
                continue
            _assert_parity(result, pair, reference)
        snap = fleet.metrics_snapshot()
    assert snap["duplicate_results"] == 0
    assert snap["completed"] + lost == len(dataset)
    assert snap["worker_lost"] == lost
    # With a healthy second worker and the default budget, the usual
    # outcome is full recovery.
    assert snap["requeued"] >= 1 or lost == 0


def test_fleet_crash_fault_restarts_and_recovers(coach, dataset, reference):
    plan = FaultPlan(workers={0: WorkerFaults(crash_at_step=2)})
    with EngineFleet(coach, _fast_fleet_config(), fault_plan=plan) as fleet:
        futures = [(pair, fleet.submit(pair)) for pair in dataset]
        for pair, future in futures:
            result = future.result(timeout=120)
            _assert_parity(result, pair, reference)
        stats = fleet.worker_stats()
        snap = fleet.metrics_snapshot()
    assert snap["duplicate_results"] == 0
    assert snap["requeued"] >= 1
    # The victim slot was restarted (fresh incarnation runs clean).
    assert stats[0]["restarts"] >= 1
    assert stats[0]["incarnation"] >= 1


def test_fleet_hang_fault_detected_and_killed(coach, dataset, reference):
    plan = FaultPlan(workers={1: WorkerFaults(hang_at_step=1)})
    config = _fast_fleet_config(heartbeat_timeout_s=0.4)
    with EngineFleet(coach, config, fault_plan=plan) as fleet:
        futures = [(pair, fleet.submit(pair)) for pair in dataset[:6]]
        for pair, future in futures:
            result = future.result(timeout=120)
            _assert_parity(result, pair, reference)
        stats = fleet.worker_stats()
    assert stats[1]["restarts"] >= 1


def test_fleet_dropped_result_is_recomputed_not_lost(coach, dataset, reference):
    """A worker that completes a job but dies before flushing the result:
    the supervisor must requeue and recompute, and the recomputed tokens
    are identical (greedy decode)."""
    plan = FaultPlan(workers={0: WorkerFaults(drop_results=1)})
    with EngineFleet(coach, _fast_fleet_config(), fault_plan=plan) as fleet:
        futures = [(pair, fleet.submit(pair)) for pair in dataset]
        for pair, future in futures:
            result = future.result(timeout=120)
            _assert_parity(result, pair, reference)
        snap = fleet.metrics_snapshot()
    assert snap["duplicate_results"] == 0
    assert snap["completed"] == len(dataset)


def test_fleet_requeue_budget_exhaustion_raises_typed_error(coach, dataset):
    """A single-worker fleet whose only worker always crashes, with no
    restart budget: the accepted request must fail fast with
    WorkerLostError — never hang, never silently drop."""
    plan = FaultPlan(workers={0: WorkerFaults(crash_at_step=1)})
    config = _fast_fleet_config(
        fleet_workers=1, max_worker_restarts=0, requeue_budget=0
    )
    with EngineFleet(coach, config, fault_plan=plan) as fleet:
        future = fleet.submit(dataset[0])
        with pytest.raises(WorkerLostError):
            future.result(timeout=120)
        snap = fleet.metrics_snapshot()
    assert snap["worker_lost"] == 1


# -- load shedding --------------------------------------------------------------


def test_fleet_sheds_lowest_priority_first(coach, dataset):
    """With a full queue, a higher-priority arrival displaces the worst
    queued request (resolved as shed); an arrival that doesn't outrank
    anything is refused with OverloadError carrying a retry hint."""
    config = _fast_fleet_config(fleet_workers=1, max_queue_depth=2)
    fleet = EngineFleet(coach, config)
    # Not started: nothing drains the queue, so occupancy is deterministic.
    low = [fleet.submit(pair, priority=5) for pair in dataset[:2]]
    high = fleet.submit(dataset[2], priority=0)
    shed = [f for f in low if f.done()]
    assert len(shed) == 1
    result = shed[0].result(timeout=1)
    assert result.source == SOURCE_SHED and result.outcome == OUTCOME_SHED
    with pytest.raises(OverloadError) as excinfo:
        fleet.submit(dataset[3], priority=9)
    assert excinfo.value.retry_after_s > 0
    assert not high.done()
    snap = fleet.metrics_snapshot()
    assert snap["by_source"][SOURCE_SHED] == 1
    assert snap["rejected"] == 1


# -- graceful drain -------------------------------------------------------------


def test_fleet_drain_completes_inflight_and_rejects_new(coach, dataset, reference):
    fleet = EngineFleet(coach, _fast_fleet_config())
    fleet.start()
    futures = [(pair, fleet.submit(pair)) for pair in dataset]
    fleet.stop()
    # Every accepted request resolved during the drain.
    for pair, future in futures:
        assert future.done()
        result = future.result(timeout=1)
        _assert_parity(result, pair, reference)
    # The drained fleet refuses new work with a 503-shaped error...
    fresh = InstructionPair(
        instruction="Explain what a drained fleet refuses.",
        response="It refuses this, because it has never seen it before.",
    )
    with pytest.raises(OverloadError):
        fleet.submit(fresh)
    # ...but still serves what it already knows (degraded service).
    hit = fleet.submit(dataset[1])
    assert hit.result(timeout=1).source == SOURCE_CACHE
    # Workers exited cleanly with empty engines: no leaked pages.
    for stat in fleet.worker_stats():
        assert stat["clean_exit"]
        kv = stat["kv"]
        assert kv is not None and kv["n_active"] == 0
        if kv.get("paged"):
            assert kv["free_pages"] == kv["total_pages"]
            assert kv["reserved_pages"] == 0


def test_fleet_persists_cache_across_restarts(coach, dataset, reference, tmp_path):
    pair = dataset[4]
    with EngineFleet(
        coach, _fast_fleet_config(), artifact_dir=tmp_path
    ) as fleet:
        first = fleet.submit(pair).result(timeout=120)
        assert first.source == SOURCE_ENGINE
    # A brand-new fleet over the same artifact dir warm-starts: the same
    # content is a cache hit before any engine spins up.
    with EngineFleet(
        coach, _fast_fleet_config(), artifact_dir=tmp_path
    ) as fleet2:
        warm = fleet2.submit(pair).result(timeout=120)
    assert warm.source == SOURCE_CACHE
    assert warm.pair.response == first.pair.response


def test_fleet_survives_torn_cache_persistence(coach, dataset, reference, tmp_path):
    """A fleet that dies mid-persist leaves truncated JSON; the next
    fleet must quarantine it and serve correctly from a cold cache."""
    pair = dataset[5]
    plan = FaultPlan(torn_cache_write=True)
    with EngineFleet(
        coach, _fast_fleet_config(), artifact_dir=tmp_path, fault_plan=plan
    ) as fleet:
        fleet.submit(pair).result(timeout=120)
    # The torn artifact is really on disk.
    torn = list(tmp_path.glob("fleet-cache-*.json"))
    assert len(torn) == 1
    with pytest.raises(json.JSONDecodeError):
        json.loads(torn[0].read_text(encoding="utf-8"))
    with EngineFleet(
        coach, _fast_fleet_config(), artifact_dir=tmp_path
    ) as fleet2:
        result = fleet2.submit(pair).result(timeout=120)
        # Cold cache: recomputed on the engine, same tokens as ever.
        assert result.source == SOURCE_ENGINE
        _assert_parity(result, pair, reference)
    assert list(tmp_path.glob("*.corrupt-*"))


# -- observability ---------------------------------------------------------------


def test_fleet_metrics_and_health_schema(coach, dataset):
    with EngineFleet(coach, _fast_fleet_config()) as fleet:
        fleet.submit(dataset[0]).result(timeout=120)
        snap = fleet.metrics_snapshot()
        health = fleet.health()
    assert {
        "submitted", "completed", "rejected", "by_source", "engine_tokens",
        "engine_busy_s", "requeued", "worker_lost", "duplicate_results",
        "latency_p50_s", "latency_p95_s", "tokens_per_sec", "queue_depth",
        "engine",
    } <= set(snap)
    engine = snap["engine"]
    assert engine["workers"] <= 2
    for key in ("max_batch", "free_slots", "n_active"):
        assert key in engine
    if engine["workers"]:
        # Preemption counters merge across workers (zero-valued here).
        assert set(engine["preemption"]) == {
            "preemptions",
            "resumes",
            "preempted_resident_tokens",
            "stream_disconnects",
        }
    assert health["status"] in ("ok", "degraded")
    assert set(health["workers"]) == {"alive", "total", "restarts"}
    assert health["workers"]["total"] == 2


def test_http_frontend_serves_fleet(coach, dataset):
    fleet = EngineFleet(coach, _fast_fleet_config())
    with RevisionHTTPFrontend(fleet) as frontend:
        pair = dataset[6]
        body = json.dumps(
            {"instruction": pair.instruction, "response": pair.response}
        ).encode("utf-8")
        request = urllib.request.Request(
            frontend.address + "/revise", data=body, method="POST"
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            payload = json.load(response)
        assert payload["source"] == SOURCE_ENGINE
        with urllib.request.urlopen(
            frontend.address + "/healthz", timeout=10
        ) as response:
            health = json.load(response)
        assert health["workers"]["total"] == 2
        with urllib.request.urlopen(
            frontend.address + "/metrics", timeout=10
        ) as response:
            metrics = json.load(response)
        assert metrics["engine"]["workers"] >= 1


# -- HTTP drain mode (satellite: graceful front-end drain) -----------------------


def test_http_frontend_drain_rejects_new_completes_inflight(coach, dataset):
    from repro.config import ServingConfig as SC
    from repro.serving import RevisionServer

    server = RevisionServer(coach, SC(max_batch=2, cache_capacity=0))
    with RevisionHTTPFrontend(server) as frontend:
        pair = dataset[7]
        outcome: dict = {}

        def post() -> None:
            body = json.dumps(
                {"instruction": pair.instruction, "response": pair.response}
            ).encode("utf-8")
            request = urllib.request.Request(
                frontend.address + "/revise", data=body, method="POST"
            )
            with urllib.request.urlopen(request, timeout=120) as response:
                outcome["status"] = response.status
                outcome["payload"] = json.load(response)

        thread = threading.Thread(target=post)
        thread.start()
        # Wait until the request is tracked in flight, then drain.
        deadline = time.monotonic() + 30
        while frontend.inflight_requests == 0:
            assert time.monotonic() < deadline, "request never went in flight"
            time.sleep(0.002)
        assert frontend.drain(timeout_s=120.0)
        thread.join(timeout=120)
        # The in-flight request completed normally during the drain...
        assert outcome["status"] == 200
        assert outcome["payload"]["source"] == SOURCE_ENGINE
        # ...while new work is refused with 503 + Retry-After.
        body = json.dumps(
            {"instruction": pair.instruction, "response": pair.response}
        ).encode("utf-8")
        request = urllib.request.Request(
            frontend.address + "/revise", data=body, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 503
        assert excinfo.value.headers["Retry-After"] is not None
        # Monitoring endpoints keep answering, reporting the drain.
        with urllib.request.urlopen(
            frontend.address + "/healthz", timeout=10
        ) as response:
            assert json.load(response)["status"] == "draining"


# -- scoring traffic ---------------------------------------------------------------


def test_fleet_mixed_score_and_revise_traffic(coach, tokenizer, dataset, reference):
    """Scoring shares the workers with revise traffic: verdicts match
    the sequential IFD reference, revisions keep their parity, and the
    two kinds never cross-contaminate the shared cache."""
    from repro.scoring import score_pair_ifd
    from repro.serving import OUTCOME_SCORED

    with EngineFleet(coach, _fast_fleet_config()) as fleet:
        score_futures = [(pair, fleet.submit_score(pair)) for pair in dataset]
        revise_futures = [(pair, fleet.submit(pair)) for pair in dataset[:4]]
        for pair, future in score_futures:
            result = future.result(timeout=120)
            assert result.outcome == OUTCOME_SCORED
            expected = score_pair_ifd(coach.model, tokenizer, pair).as_dict()
            assert result.score == expected
            assert result.pair.response == pair.response
        for pair, future in revise_futures:
            result = future.result(timeout=120)
            _assert_parity(result, pair, reference)
            assert result.score is None
        # Repeat score: LRU hit with the payload intact.
        again = fleet.score(dataset[0], timeout=120)
        assert again.source == SOURCE_CACHE
        assert again.score == score_pair_ifd(
            coach.model, tokenizer, dataset[0]
        ).as_dict()
        # Revise of the same content must not be served from the score
        # entry: the key-spaces are kind-namespaced.
        revised = fleet.revise(dataset[5], timeout=120)
        assert revised.score is None
        _assert_parity(revised, dataset[5], reference)
        snap = fleet.metrics_snapshot()
    assert snap["duplicate_results"] == 0
    assert snap["worker_lost"] == 0
