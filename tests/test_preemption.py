"""Directed tests for preemptive decode eviction and token streaming.

The contract under test is exactly the ISSUE's headline: a sequence
that is preempted mid-decode and later resumed produces **exactly** the
tokens it would have produced uninterrupted — across dense and paged
backends, any prefill chunking, resume-after-cancel, and page-pressure
auto-preemption — with **zero** prompt tokens re-prefilled on the paged
backend (the ``total_prompt_tokens_prefilled`` counter proves it).  On
top sit the serving-layer guarantees: priority classes order admission,
a saturated fleet evicts its lowest-priority decode for a strictly more
urgent arrival, streams surface preemption as a stall (never an error),
and a mid-stream disconnect recycles the sequence's pages.
"""

from __future__ import annotations

import json
import socket
import time

import numpy as np
import pytest

from repro.config import ServingConfig
from repro.core.coachlm import CoachLM
from repro.data import generate_dataset
from repro.errors import GenerationError, ServingError
from repro.nn import (
    BatchedEngine,
    GenerationRequest,
    TransformerConfig,
    TransformerLM,
)
from repro.serving import (
    BoundedPriorityQueue,
    ConnectionFault,
    FaultyProxy,
    NetworkFaultPlan,
    OUTCOME_EXPIRED,
    RevisionHTTPClient,
    RevisionHTTPFrontend,
    RevisionServer,
    SOURCE_CACHE,
    SOURCE_DEADLINE,
    SOURCE_ENGINE,
)


@pytest.fixture(scope="module")
def model():
    config = TransformerConfig(
        vocab_size=197, d_model=32, n_layers=2, n_heads=4, max_seq_len=80
    )
    return TransformerLM(config, np.random.default_rng(42))


@pytest.fixture(scope="module")
def prompts():
    rng = np.random.default_rng(7)
    return [
        list(rng.integers(5, 197, size=int(rng.integers(3, 24))))
        for _ in range(6)
    ]


@pytest.fixture(scope="module")
def coach(tokenizer):
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=32,
        n_layers=1,
        n_heads=4,
        max_seq_len=192,
    )
    model = TransformerLM(config, np.random.default_rng(9))
    return CoachLM(model, tokenizer)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(np.random.default_rng(77), 10)


def _drive(engine, seq_ids, preempt_at):
    """Step the engine to completion, preempting per ``preempt_at``.

    ``preempt_at`` maps an index into ``seq_ids`` → the produced-token
    count at which that sequence is evicted (the engine re-admits it on
    its own).  Returns outputs in ``seq_ids`` order.
    """
    pending = dict(preempt_at)
    finished: dict[int, list[int]] = {}
    for _ in range(4000):
        if not engine.has_work:
            break
        engine.step()
        finished.update(engine.collect())
        for index, count in list(pending.items()):
            seq_id = seq_ids[index]
            if seq_id in finished:
                del pending[index]
                continue
            produced = engine.produced_so_far(seq_id)
            if (
                produced is not None
                and len(produced) >= count
                and engine.preempt(seq_id)
            ):
                del pending[index]
    assert not engine.has_work, "engine failed to drain"
    finished.update(engine.collect())
    return [finished[seq_id] for seq_id in seq_ids]


def _assert_kv_clean(engine):
    stats = engine.kv_stats()
    if stats.get("paged"):
        assert stats["pages_in_use"] == 0
        assert stats["reserved_pages"] == 0
    assert stats["n_active"] == 0
    assert stats["n_preempted"] == 0


# -- engine: preempt/resume token parity -------------------------------------------


@pytest.mark.parametrize("chunk", [None, 1, 3, 64])
def test_paged_preempt_resume_token_parity(model, prompts, chunk):
    baseline = BatchedEngine(model, max_batch=3).generate(
        [GenerationRequest(p, 16, eos_id=2) for p in prompts]
    )
    engine = BatchedEngine(
        model,
        max_batch=3,
        prefill_chunk_tokens=chunk,
        kv_page_tokens=8,
        kv_pool_pages=40,
    )
    seq_ids = [
        engine.submit(GenerationRequest(p, 16, eos_id=2)) for p in prompts
    ]
    got = _drive(engine, seq_ids, preempt_at={0: 2, 3: 4, 5: 7})
    assert got == baseline
    assert engine.preemptions >= 1
    assert engine.resumes == engine.preemptions
    _assert_kv_clean(engine)


def test_dense_preempt_resume_token_parity(model, prompts):
    baseline = BatchedEngine(model, max_batch=3).generate(
        [GenerationRequest(p, 16, eos_id=2) for p in prompts]
    )
    engine = BatchedEngine(model, max_batch=3)
    seq_ids = [
        engine.submit(GenerationRequest(p, 16, eos_id=2)) for p in prompts
    ]
    got = _drive(engine, seq_ids, preempt_at={1: 2, 4: 5})
    assert got == baseline
    assert engine.preemptions >= 1
    assert engine.resumes == engine.preemptions
    _assert_kv_clean(engine)


def test_paged_preempt_resumes_with_zero_reprefill(model, prompts):
    """The paged resume must reuse the detached KV: the prefill counter
    accounts every prompt token exactly once despite the evictions."""
    engine = BatchedEngine(
        model, max_batch=2, kv_page_tokens=8, kv_pool_pages=40
    )
    seq_ids = [
        engine.submit(GenerationRequest(p, 12, eos_id=None)) for p in prompts
    ]
    _drive(engine, seq_ids, preempt_at={0: 3, 2: 2})
    assert engine.preemptions >= 2
    assert engine.total_prompt_tokens_prefilled == sum(
        len(p) for p in prompts
    )
    _assert_kv_clean(engine)


def test_preempt_then_cancel_yields_prefix_and_recovers_pages(model, prompts):
    baseline = BatchedEngine(model, max_batch=2).generate(
        [GenerationRequest(prompts[0], 16, eos_id=None)]
    )[0]
    engine = BatchedEngine(
        model, max_batch=2, kv_page_tokens=8, kv_pool_pages=24
    )
    seq_id = engine.submit(GenerationRequest(prompts[0], 16, eos_id=None))
    produced: list[int] = []
    for _ in range(100):
        engine.step()
        got = engine.produced_so_far(seq_id)
        if got is not None and len(got) >= 4:
            produced = got
            break
    assert engine.preempt(seq_id)
    assert engine.cancel(seq_id)
    assert not engine.has_work
    prefix = engine.collect().get(seq_id, produced)
    assert prefix == baseline[: len(prefix)]
    _assert_kv_clean(engine)
    assert engine.kv_stats()["free_pages"] == 24


def test_page_pressure_auto_preempts_lower_priority(model, prompts):
    """Two bulk decodes own the whole pool; a strictly more urgent
    arrival evicts one of them and everybody still matches sequential."""
    bulk = [prompts[0][:4], prompts[1][:4]]
    urgent = prompts[2][:4]
    expected = [
        model.generate(p, n, eos_id=None)
        for p, n in ((bulk[0], 44), (bulk[1], 44), (urgent, 8))
    ]
    engine = BatchedEngine(
        model, max_batch=3, kv_page_tokens=8, kv_pool_pages=12
    )
    seq_ids = [
        engine.submit(GenerationRequest(p, 44, eos_id=None, priority=5))
        for p in bulk
    ]
    for _ in range(4):
        engine.step()
    assert engine.kv_stats()["free_pages"] == 0
    seq_ids.append(
        engine.submit(GenerationRequest(urgent, 8, eos_id=None, priority=0))
    )
    finished: dict[int, list[int]] = {}
    for _ in range(4000):
        if not engine.has_work:
            break
        engine.step()
        finished.update(engine.collect())
    finished.update(engine.collect())
    assert [finished[i] for i in seq_ids] == expected
    assert engine.preemptions >= 1
    assert engine.resumes == engine.preemptions
    _assert_kv_clean(engine)


def test_preempt_victim_requires_strictly_lower_priority(model, prompts):
    engine = BatchedEngine(model, max_batch=2)
    seq_ids = [
        engine.submit(GenerationRequest(p[:6], 20, eos_id=None, priority=1))
        for p in prompts[:2]
    ]
    engine.step()
    assert engine.n_active == 2
    # Equal priority never preempts — no thrash between peers.
    assert engine.preempt_victim(1) is None
    assert engine.preempt_victim(2) is None
    # Strictly more urgent evicts the *newest* equal-priority decode.
    victim = engine.preempt_victim(0)
    assert victim == max(seq_ids)
    assert engine.n_preempted == 1
    _drive(engine, seq_ids, preempt_at={})


def test_preemption_disabled_never_selects_a_victim(model, prompts):
    engine = BatchedEngine(model, max_batch=2, preemption=False)
    engine.submit(GenerationRequest(prompts[0][:6], 8, eos_id=None, priority=9))
    engine.step()
    assert engine.preempt_victim(0) is None
    while engine.has_work:
        engine.step()
    assert engine.preemptions == 0


def test_preempt_rejects_unknown_and_pending_sequences(model, prompts):
    engine = BatchedEngine(model, max_batch=1)
    first = engine.submit(GenerationRequest(prompts[0][:6], 8, eos_id=None))
    queued = engine.submit(GenerationRequest(prompts[1][:6], 8, eos_id=None))
    engine.step()
    assert not engine.preempt(queued)   # still pending, nothing resident
    assert not engine.preempt(10_000)   # unknown id
    _drive(engine, [first, queued], preempt_at={})


# -- queue: starvation-guard plumbing ----------------------------------------------


def test_queue_peek_priority_and_sweep():
    queue = BoundedPriorityQueue(capacity=8)
    assert queue.peek_priority() is None
    queue.put("low", priority=7)
    queue.put("high", priority=0)
    queue.put("mid", priority=3)
    assert queue.peek_priority() == 0
    swept = queue.sweep(lambda item: item == "mid")
    assert swept == ["mid"]
    assert queue.depth == 2
    assert [queue.get(0) for _ in range(2)] == ["high", "low"]


# -- server: streaming + priority preemption ---------------------------------------


def _collect_stream(stream, timeout=120.0):
    tokens: list[int] = []
    deadline = time.monotonic() + timeout
    while True:
        event = stream.get(timeout=max(0.0, deadline - time.monotonic()))
        assert event is not None, "stream stalled without a terminal event"
        kind, payload = event
        if kind == "tokens":
            tokens.extend(payload)
        elif kind == "done":
            return tokens, payload
        else:
            raise AssertionError(f"stream error event: {payload!r}")


def test_server_stream_tokens_match_sync_result(coach, dataset):
    pair = dataset[0]
    with RevisionServer(coach, ServingConfig(max_batch=2)) as server:
        tokens, result = _collect_stream(server.submit_stream(pair))
        assert result.source == SOURCE_ENGINE
        assert result.generated_tokens == len(tokens) > 0
        # The sync path (a cache hit now) agrees on the revised text.
        sync = server.revise(pair)
    assert sync.source == SOURCE_CACHE
    assert sync.pair.response == result.pair.response
    assert sync.outcome == result.outcome


def test_server_stream_cache_hit_emits_done_only(coach, dataset):
    pair = dataset[1]
    with RevisionServer(coach, ServingConfig(max_batch=2)) as server:
        warm = server.revise(pair)
        tokens, result = _collect_stream(server.submit_stream(pair))
    assert tokens == []
    assert result.source == SOURCE_CACHE
    assert result.pair.response == warm.pair.response


def test_server_priority_preemption_preserves_bulk_parity(coach, dataset):
    """Saturate the fleet with bulk work, then land an urgent request:
    the server preempts a bulk decode for it, and every bulk result is
    still bit-identical to a preemption-disabled reference run."""
    config = ServingConfig(
        max_batch=2, kv_page_tokens=16, kv_pool_pages=24
    )
    reference_config = ServingConfig(
        max_batch=2, kv_page_tokens=16, kv_pool_pages=24,
        preemption_enabled=False,
    )
    bulk = list(dataset)
    urgent = bulk.pop(0)
    with RevisionServer(coach, reference_config) as server:
        want = [server.revise(p) for p in bulk]
        want_urgent = server.revise(urgent)
    with RevisionServer(coach, config) as server:
        futures = [server.submit(p, priority=5) for p in bulk]
        time.sleep(0.05)
        urgent_future = server.submit(urgent, priority=0)
        got = [f.result(timeout=120) for f in futures]
        got_urgent = urgent_future.result(timeout=120)
        stats = server.scheduler.kv_stats()
    assert [(r.pair.response, r.outcome) for r in got] == [
        (r.pair.response, r.outcome) for r in want
    ]
    assert (got_urgent.pair.response, got_urgent.outcome) == (
        want_urgent.pair.response, want_urgent.outcome,
    )
    preemption = stats["preemption"]
    assert preemption["resumes"] == preemption["preemptions"]
    assert preemption["preemptions"] >= 0  # timing-dependent, parity is not
    assert stats["pages_in_use"] == 0
    assert stats["reserved_pages"] == 0


def test_server_stream_cancel_recycles_sequence(coach, dataset):
    pair = dataset[2]
    config = ServingConfig(max_batch=2, kv_page_tokens=16, kv_pool_pages=24)
    with RevisionServer(coach, config) as server:
        stream = server.submit_stream(pair)
        event = stream.get(timeout=60)
        assert event is not None and event[0] == "tokens"
        stream.cancel()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            stats = server.scheduler.kv_stats()
            if (
                stats["preemption"]["stream_disconnects"] >= 1
                and stats["n_active"] == 0
                and stats["pages_in_use"] == 0
            ):
                break
            time.sleep(0.01)
        else:
            raise AssertionError(f"cancel never recycled: {stats}")
        # No terminal event follows a consumer-side cancel.
        assert stream.get(timeout=0.1) is None
        # The server keeps serving after the disconnect.
        assert server.revise(dataset[3]).source == SOURCE_ENGINE


def test_starved_low_priority_request_expires_typed(coach, dataset):
    """The starvation guard: a low-priority request pinned behind a
    saturating high-priority stream expires at its deadline instead of
    waiting unboundedly — swept out of the queue *body*, it never has to
    reach the head to die."""
    server = RevisionServer(coach, ServingConfig(max_batch=1))
    # Queue up while the worker is parked: the high-priority wall is in
    # front of the starved request the instant service begins.
    saturating = [server.submit(p, priority=0) for p in dataset[:4]]
    starved = server.submit(dataset[7], priority=9, deadline_s=0.05)
    time.sleep(0.15)    # the deadline passes while still queued
    with server:
        result = starved.result(timeout=120)
        assert result.outcome == OUTCOME_EXPIRED
        assert result.source == SOURCE_DEADLINE
        for future in saturating:
            assert future.result(timeout=120).source == SOURCE_ENGINE


def test_http_expired_deadline_answers_504_with_retry_after(coach, dataset):
    import urllib.error
    import urllib.request

    server = RevisionServer(coach, ServingConfig(max_batch=1))
    with RevisionHTTPFrontend(server) as frontend:
        pair = dataset[9]
        request = urllib.request.Request(
            frontend.address + "/revise",
            data=json.dumps({
                "instruction": pair.instruction,
                "response": pair.response,
                "deadline_s": 0,
            }).encode("utf-8"),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=60)
        assert excinfo.value.code == 504
        assert excinfo.value.headers["Retry-After"] is not None


# -- HTTP edge: SSE streaming, disconnects, fault injection ------------------------


def test_http_stream_revise_matches_blocking_revise(coach, dataset):
    pair = dataset[4]
    server = RevisionServer(coach, ServingConfig(max_batch=2))
    with RevisionHTTPFrontend(server) as frontend:
        client = RevisionHTTPClient(frontend.address, timeout_s=120.0)
        tokens: list[int] = []
        done = None
        for kind, payload in client.stream_revise(pair):
            if kind == "tokens":
                tokens.extend(payload)
            else:
                done = payload
        assert done is not None
        assert done.generated_tokens == len(tokens) > 0
        blocking = client.revise_pair(pair)
        assert blocking.pair.response == done.pair.response
        assert blocking.outcome == done.outcome


def test_http_stream_priority_field_is_validated(coach, dataset):
    server = RevisionServer(coach, ServingConfig(max_batch=2))
    with RevisionHTTPFrontend(server) as frontend:
        client = RevisionHTTPClient(frontend.address, timeout_s=30.0)
        with pytest.raises(ServingError) as excinfo:
            list(client.stream_revise(dataset[5], priority="soon"))
        assert "400" in str(excinfo.value)


def test_http_stream_on_nonstreamable_service_is_501(coach, dataset):
    class _NoStreamProxy:
        """A serving backend without submit_stream (e.g. an old fleet)."""

        def __init__(self, server):
            self._server = server

        def __getattr__(self, name):
            if name == "submit_stream":
                raise AttributeError(name)
            return getattr(self._server, name)

    server = RevisionServer(coach, ServingConfig(max_batch=2))
    with server:
        with RevisionHTTPFrontend(_NoStreamProxy(server)) as frontend:
            client = RevisionHTTPClient(frontend.address, timeout_s=30.0)
            with pytest.raises(ServingError) as excinfo:
                list(client.stream_revise(dataset[5]))
            assert "501" in str(excinfo.value)


def _await_disconnect_recycled(server, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = server.scheduler.kv_stats()
        if (
            stats["preemption"]["stream_disconnects"] >= 1
            and stats["n_active"] == 0
            and stats.get("pages_in_use", 0) == 0
        ):
            return stats
        time.sleep(0.01)
    raise AssertionError(
        f"disconnect never recycled: {server.scheduler.kv_stats()}"
    )


def test_http_midstream_rst_cancels_and_recycles(coach, dataset):
    """A real-socket client that RSTs mid-SSE: the server must notice on
    its next write, cancel the sequence, recycle its pages, and keep
    serving other clients."""
    pair = dataset[6]
    config = ServingConfig(max_batch=2, kv_page_tokens=16, kv_pool_pages=24)
    server = RevisionServer(coach, config)
    with RevisionHTTPFrontend(server) as frontend:
        host, port = frontend.httpd.server_address[:2]
        body = json.dumps({
            "instruction": pair.instruction,
            "response": pair.response,
            "stream": True,
        }).encode("utf-8")
        head = (
            f"POST /revise HTTP/1.1\r\nHost: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        ).encode("ascii")
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(head + body)
            seen = b""
            while seen.count(b"data: ") < 2:   # mid-stream, tokens flowing
                chunk = sock.recv(4096)
                assert chunk, "stream closed before any token event"
                seen += chunk
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                __import__("struct").pack("ii", 1, 0),
            )
        _await_disconnect_recycled(server)
        # Healthy afterwards: the same pair revises cleanly end-to-end.
        client = RevisionHTTPClient(frontend.address, timeout_s=120.0)
        assert client.revise_pair(pair).outcome is not None


def test_fault_plan_stream_reset_tears_stream_and_server_recovers(
    coach, dataset
):
    """The new ``stream_reset`` fault class through the real proxy: the
    streaming client sees a typed transport fault, the server recycles
    the abandoned sequence, and a clean retry finds the answer."""
    plan = NetworkFaultPlan(
        seed=0,
        connections={
            0: ConnectionFault(kind="stream_reset", after_bytes=400)
        },
    )
    pair = dataset[8]
    server = RevisionServer(coach, ServingConfig(max_batch=2))
    with RevisionHTTPFrontend(server) as frontend:
        host, port = frontend.httpd.server_address[:2]
        with FaultyProxy(host, port, plan) as proxy:
            client = RevisionHTTPClient(proxy.address, timeout_s=30.0)
            with pytest.raises(ServingError):
                list(client.stream_revise(pair))
        _await_disconnect_recycled(server)
        clean = RevisionHTTPClient(frontend.address, timeout_s=120.0)
        assert clean.revise_pair(pair).outcome is not None


def test_stream_reset_fault_kind_from_env():
    plan = NetworkFaultPlan.from_env({
        "REPRO_FAULT_NET_KIND": "stream_reset",
        "REPRO_FAULT_NET_AFTER_BYTES": "123",
    })
    assert plan is not None
    fault = plan.for_connection(0)
    assert fault is not None
    assert fault.kind == "stream_reset"
    assert fault.after_bytes == 123


def test_serving_config_preemption_toggle_reaches_engine(coach):
    with RevisionServer(
        coach, ServingConfig(max_batch=2, preemption_enabled=False)
    ) as server:
        assert server.scheduler.engine.preemption is False
    with RevisionServer(coach, ServingConfig(max_batch=2)) as server:
        assert server.scheduler.engine.preemption is True
