"""Tests for the 42-category task taxonomy and its oracles."""

import numpy as np
import pytest

from repro.errors import VocabularyError
from repro.textgen import tasks, vocabulary as V
from repro.textgen.tasks import (
    CATEGORIES,
    CATEGORY_IDS,
    CLASS_CREATIVE,
    CLASS_LANGUAGE,
    CLASS_QA,
    TaskInstance,
    categories_by_class,
    get_category,
    render_instruction,
    sample_instance,
    solve,
)


def test_exactly_42_categories():
    assert len(CATEGORIES) == 42


def test_three_classes_partition():
    total = sum(
        len(categories_by_class(c))
        for c in (CLASS_LANGUAGE, CLASS_QA, CLASS_CREATIVE)
    )
    assert total == 42


def test_class_sizes():
    assert len(categories_by_class(CLASS_LANGUAGE)) == 16
    assert len(categories_by_class(CLASS_QA)) == 14
    assert len(categories_by_class(CLASS_CREATIVE)) == 12


def test_unknown_class_raises():
    with pytest.raises(VocabularyError):
        categories_by_class("hard")


def test_unknown_category_raises():
    with pytest.raises(VocabularyError):
        get_category("juggling")


@pytest.mark.parametrize("category_id", CATEGORY_IDS)
def test_every_category_is_vocab_closed(category_id):
    rng = np.random.default_rng(hash(category_id) % 2**31)
    for _ in range(10):
        instance = sample_instance(rng, category_id)
        instruction, payload_start = render_instruction(instance)
        answer, explanation = solve(instance)
        V.require_known(instruction)
        V.require_known(answer)
        V.require_known(explanation)
        if payload_start is not None:
            assert 0 < payload_start <= len(instruction)
            assert instruction[payload_start - 1] == ":"


@pytest.mark.parametrize("category_id", CATEGORY_IDS)
def test_solve_is_deterministic(category_id):
    rng = np.random.default_rng(5)
    instance = sample_instance(rng, category_id)
    assert solve(instance) == solve(instance)


def test_sampling_is_seed_deterministic():
    a = sample_instance(np.random.default_rng(3))
    b = sample_instance(np.random.default_rng(3))
    assert a == b


def test_instance_json_roundtrip():
    instance = sample_instance(np.random.default_rng(0), "add_numbers")
    again = TaskInstance.from_json(instance.to_json())
    assert again == instance


def test_arithmetic_oracles():
    inst = TaskInstance("add_numbers", {"a": 3, "b": 4})
    answer, explanation = solve(inst)
    assert answer == ["7"]
    assert "because" == explanation[0]
    inst = TaskInstance("subtract_numbers", {"a": 9, "b": 2})
    assert solve(inst)[0] == ["7"]
    inst = TaskInstance("next_number", {"n": 6})
    assert solve(inst)[0] == ["7"]


def test_sort_and_extract_oracles():
    inst = TaskInstance("sort_ascending", {"nums": [3, 1, 2]})
    assert solve(inst)[0] == ["1", "2", "3"]
    inst = TaskInstance("sort_descending", {"nums": [3, 1, 2]})
    assert solve(inst)[0] == ["3", "2", "1"]
    inst = TaskInstance("reverse_list", {"items": ["box", "cup", "bell"]})
    assert solve(inst)[0] == ["bell", "cup", "box"]
    inst = TaskInstance(
        "extract_color",
        {"color": "red", "animal": "fox", "verb": "runs", "place": "hill"},
    )
    assert solve(inst)[0] == ["red"]


def test_grammar_fix_oracle_uses_third_person():
    inst = TaskInstance("grammar_fix", {"pron": "he", "verb": "run", "tail": "now"})
    answer, _ = solve(inst)
    assert answer == ["he", "runs", "now"]


def test_spelling_fix_never_collides_with_noun():
    rng = np.random.default_rng(0)
    for _ in range(200):
        instance = sample_instance(rng, "spelling_fix")
        typo = instance.slots["typo"]
        assert V.TYPO_MAP[typo] != instance.slots["noun"]


def test_creative_solutions_have_empty_explanations():
    rng = np.random.default_rng(2)
    for category in categories_by_class(CLASS_CREATIVE):
        instance = sample_instance(rng, category.category_id)
        _, explanation = solve(instance)
        assert explanation == []


def test_yes_no_oracle():
    assert solve(TaskInstance("yes_no_bigger", {"a": 7, "b": 3}))[0] == ["yes"]
    assert solve(TaskInstance("yes_no_bigger", {"a": 2, "b": 3}))[0] == ["no"]
