"""Seeded fault-injection fuzz harness for the serving fleet.

Each scenario draws a reproducible :class:`FaultPlan` from its seed —
crashes mid-decode, hangs, dropped results, slow pipes, torn cache
persistence — runs a real two-worker fleet through a fixed workload, and
asserts the invariants that define the fleet's contract:

* **no lost results** — every accepted request's future resolves, with a
  result or a typed :class:`WorkerLostError`; accounting closes exactly
  (``completed + worker_lost == submitted``);
* **no duplicates** — the at-most-once requeue discipline holds
  (``duplicate_results == 0``);
* **exact token parity** — every engine-produced revision matches the
  sequential :meth:`CoachLM.revise_pair` byte-for-byte (greedy decode is
  deterministic, so fault recovery must not change tokens);
* **no leaked pages** — every cleanly-exited worker drained its engine
  to zero active sequences with the full KV pool back on the free list;
* **torn persistence is survivable** — a sabotaged drain-time cache
  write reads back as a quarantined miss, never a crash.

The scenario count scales with the environment: ``REPRO_FUZZ_FAULTS=on``
(the CI fleet leg) runs ``REPRO_FLEET_SCENARIOS`` seeds (default 40); a
plain developer run keeps a 4-seed smoke version so the harness itself
stays exercised by tier-1.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config import FleetConfig, ServingConfig
from repro.core.coachlm import CoachLM
from repro.data import generate_dataset
from repro.errors import WorkerLostError
from repro.nn import TransformerConfig, TransformerLM
from repro.serving import (
    EngineFleet,
    FaultPlan,
    SOURCE_CACHE,
    SOURCE_DEDUP,
    SOURCE_ENGINE,
)

_FAULTS_ON = os.environ.get("REPRO_FUZZ_FAULTS", "") in ("1", "on", "true")
_N_SCENARIOS = int(
    os.environ.get("REPRO_FLEET_SCENARIOS", "40" if _FAULTS_ON else "4")
)
_N_WORKERS = 2


@pytest.fixture(scope="module")
def coach(tokenizer):
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=32,
        n_layers=1,
        n_heads=4,
        max_seq_len=192,
    )
    model = TransformerLM(config, np.random.default_rng(9))
    return CoachLM(model, tokenizer)


@pytest.fixture(scope="module")
def workload(coach):
    """Eight pairs plus their sequential ground truth."""
    pairs = list(generate_dataset(np.random.default_rng(77), 8))
    reference = {pair.pair_id: coach.revise_pair(pair) for pair in pairs}
    return pairs, reference


def _scenario_config() -> FleetConfig:
    # Tight failure-detection knobs so a 600s injected hang is caught in
    # well under a second and scenarios stay fast.
    return FleetConfig(
        fleet_workers=_N_WORKERS,
        heartbeat_interval_s=0.02,
        heartbeat_timeout_s=0.6,
        restart_backoff_s=0.05,
        restart_backoff_max_s=0.2,
        worker_ready_timeout_s=60.0,
        drain_timeout_s=60.0,
        serving=ServingConfig(max_batch=4),
    )


@pytest.mark.parametrize("seed", range(_N_SCENARIOS))
def test_fleet_invariants_under_seeded_faults(seed, coach, workload, tmp_path):
    pairs, reference = workload
    plan = FaultPlan.from_seed(seed, n_workers=_N_WORKERS)
    fleet = EngineFleet(
        coach, _scenario_config(), artifact_dir=tmp_path, fault_plan=plan
    )
    with fleet:
        futures = [(pair, fleet.submit(pair)) for pair in pairs]
        lost = 0
        for pair, future in futures:
            try:
                result = future.result(timeout=120)
            except WorkerLostError:
                # Only reachable when the plan burned through the requeue
                # budget — legal, but it must be the *typed* failure.
                lost += 1
                continue
            assert result.source in (SOURCE_ENGINE, SOURCE_CACHE, SOURCE_DEDUP)
            expected_pair, expected_outcome = reference[pair.pair_id]
            assert result.outcome == expected_outcome.value, (
                f"seed {seed}: outcome diverged for {pair.pair_id}"
            )
            assert result.pair.instruction == expected_pair.instruction
            assert result.pair.response == expected_pair.response, (
                f"seed {seed}: token parity broken for {pair.pair_id}"
            )
        snap = fleet.metrics_snapshot()
    # Accounting closes exactly: nothing lost, nothing double-resolved.
    assert snap["submitted"] == len(pairs)
    assert snap["completed"] + lost == len(pairs), f"seed {seed}: lost futures"
    assert snap["worker_lost"] == lost
    assert snap["duplicate_results"] == 0, (
        f"seed {seed}: at-most-once requeue discipline broke"
    )
    # Page hygiene: each worker that exited cleanly drained its engine.
    for stat in fleet.worker_stats():
        if not stat["clean_exit"]:
            continue
        kv = stat["kv"]
        assert kv is not None and kv["n_active"] == 0, (
            f"seed {seed}: worker {stat['slot']} exited with active sequences"
        )
        if kv.get("paged"):
            assert kv["free_pages"] == kv["total_pages"], (
                f"seed {seed}: worker {stat['slot']} leaked KV pages"
            )
            assert kv.get("reserved_pages", 0) == 0
    # Persistence: a torn drain-time write must read back as a
    # quarantined miss; a healthy one as the exported revision cache.
    persisted = fleet.artifact_cache.get_json(
        "fleet-cache", fleet._persistence_key()
    )
    if plan.torn_cache_write:
        assert persisted is None
        assert list(tmp_path.glob("*.corrupt-*")), (
            f"seed {seed}: torn cache artifact was not quarantined"
        )
    elif snap["by_source"][SOURCE_ENGINE] > 0:
        assert isinstance(persisted, dict) and persisted["revisions"]
