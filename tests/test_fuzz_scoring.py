"""Randomized mixed score/revise-traffic fuzz for the scoring engine.

The directed scoring tests pin parity on clean, single-kind workloads;
this fuzz drives *mixed traces* — teacher-forced scoring jobs and
generation jobs arriving interleaved at random steps, with random
cancellations of both kinds — through :class:`BatchedEngine`'s streaming
``submit``/``submit_score``/``step``/``collect`` API, and asserts:

* every completed scoring job is **bitwise identical** to the sequential
  :meth:`TransformerLM.sequence_logprobs` reference;
* every completed generation job is token-for-token
  :meth:`TransformerLM.generate` (cancelled: an exact prefix);
* after the trace drains, the paged KV pool reports **zero pages in use
  and zero reservations** — score jobs must never leak the slots, pages
  or reservations they are not supposed to occupy in the first place.

Scenarios follow the ``tests/test_fuzz_parity.py`` conventions: seed =
``REPRO_FUZZ_SEED + index`` (default master seed 20240311), every rng
draw consumed unconditionally so a scenario is reproducible in
isolation::

    REPRO_FUZZ_SEED=<printed seed> REPRO_FUZZ_SCENARIOS=1 \
        python -m pytest tests/test_fuzz_scoring.py

``REPRO_FUZZ_SCORING=on`` unlocks the full CI budget (the
``scripts/ci.sh`` scoring leg); the default tier-1 run keeps a small
smoke budget.  ``REPRO_FUZZ_SCENARIOS`` overrides either.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.nn import (
    BatchedEngine,
    GenerationRequest,
    ScoringRequest,
    TransformerConfig,
    TransformerLM,
)

MASTER_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20240311"))
FULL_BUDGET = os.environ.get("REPRO_FUZZ_SCORING", "off") == "on"
N_SCENARIOS = int(
    os.environ.get("REPRO_FUZZ_SCENARIOS", "40" if FULL_BUDGET else "12")
)
PAGE_SIZES = (1, 3, 16, 64)

VOCAB = 131
EOS_ID = 2


@pytest.fixture(scope="module")
def model():
    config = TransformerConfig(
        vocab_size=VOCAB, d_model=32, n_layers=2, n_heads=4, max_seq_len=64
    )
    return TransformerLM(config, np.random.default_rng(1729))


@dataclass
class _FuzzJob:
    """One fuzzed request (either kind) plus its scheduling decisions."""

    kind: str                      #: "score" | "generate"
    prompt: list[int]
    completion: list[int]          #: scored tokens (score jobs only)
    max_new_tokens: int            #: decode budget (generate jobs only)
    eos_id: int | None
    arrival_step: int
    cancel_step: int | None = None


@dataclass
class _Scenario:
    seed: int
    max_batch: int
    kv_page_tokens: int | None = None
    kv_pool_pages: int | None = None
    jobs: list[_FuzzJob] = field(default_factory=list)


def _draw_scenario(seed: int, context: int) -> _Scenario:
    rng = np.random.default_rng(seed)
    # Backend draw first, every draw consumed unconditionally (the
    # fuzz-parity convention): dense half the time, else a random page
    # size, sometimes with an undersized pool so generation jobs hit
    # page-exhaustion deferral while score jobs stream past them.
    paged_coin = rng.random() < 0.5
    page_tokens = int(rng.choice(PAGE_SIZES))
    undersized_coin = rng.random() < 0.35
    pages_per_seq = -(-context // page_tokens)
    pool_pages = pages_per_seq + int(rng.integers(0, 2 * pages_per_seq))
    if not paged_coin:
        page_tokens = None
        pool_pages = None
    elif not undersized_coin:
        pool_pages = None
    scenario = _Scenario(
        seed=seed,
        max_batch=int(rng.integers(1, 7)),
        kv_page_tokens=page_tokens,
        kv_pool_pages=pool_pages,
    )
    for _ in range(int(rng.integers(2, 13))):
        # Draw both shapes unconditionally, then pick the kind — keeps
        # the rng stream position independent of the mix that came up.
        n_prompt = int(rng.integers(1, context - 8))
        n_completion = int(rng.integers(1, context - n_prompt))
        max_new = int(rng.integers(1, 12))
        score_coin = rng.random() < 0.5
        eos_coin = rng.random() < 0.7
        arrival = int(rng.integers(0, 9))
        cancel = int(rng.integers(1, 20)) if rng.random() < 0.15 else None
        scenario.jobs.append(
            _FuzzJob(
                kind="score" if score_coin else "generate",
                prompt=[int(t) for t in rng.integers(5, VOCAB, size=n_prompt)],
                completion=[
                    int(t) for t in rng.integers(5, VOCAB, size=n_completion)
                ],
                max_new_tokens=max_new,
                eos_id=EOS_ID if eos_coin else None,
                arrival_step=arrival,
                cancel_step=cancel,
            )
        )
    return scenario


def _run_trace(model: TransformerLM, scenario: _Scenario) -> dict[int, object]:
    engine = BatchedEngine(
        model,
        max_batch=scenario.max_batch,
        kv_page_tokens=scenario.kv_page_tokens,
        kv_pool_pages=scenario.kv_pool_pages,
    )
    seq_ids: dict[int, int] = {}
    results: dict[int, object] = {}
    step = 0
    guard = 0
    while len(results) < len(scenario.jobs):
        for i, job in enumerate(scenario.jobs):
            if i not in seq_ids and job.arrival_step <= step:
                if job.kind == "score":
                    seq_ids[i] = engine.submit_score(
                        ScoringRequest(job.prompt, job.completion)
                    )
                else:
                    seq_ids[i] = engine.submit(
                        GenerationRequest(
                            job.prompt, job.max_new_tokens, eos_id=job.eos_id
                        )
                    )
            if (
                i in seq_ids
                and job.cancel_step is not None
                and job.arrival_step + job.cancel_step <= step
            ):
                engine.cancel(seq_ids[i])
                job.cancel_step = None
        engine.step()
        for seq_id, outcome in engine.collect().items():
            index = next(i for i, s in seq_ids.items() if s == seq_id)
            results[index] = outcome
        step += 1
        guard += 1
        assert guard < 5000, "fuzz trace failed to terminate"
    stats = engine.kv_stats()
    if stats["paged"]:
        assert stats["pages_in_use"] == 0, stats
        assert stats["reserved_pages"] == 0, stats
    return results


@pytest.mark.parametrize("index", range(N_SCENARIOS))
def test_fuzz_mixed_scoring_trace_matches_sequential(model, index):
    seed = MASTER_SEED + index
    scenario = _draw_scenario(seed, model.config.max_seq_len)
    cancelled = {
        i for i, job in enumerate(scenario.jobs)
        if job.cancel_step is not None
    }
    results = _run_trace(model, scenario)
    repro_hint = (
        f"reproduce with: REPRO_FUZZ_SEED={seed} REPRO_FUZZ_SCENARIOS=1 "
        f"python -m pytest tests/test_fuzz_scoring.py"
    )
    assert len(results) == len(scenario.jobs), repro_hint
    for i, job in enumerate(scenario.jobs):
        got = results[i]
        if job.kind == "score":
            if got is None:
                # Only an explicit cancel may swallow a scoring job.
                assert i in cancelled, repro_hint
                continue
            expected = model.sequence_logprobs(job.prompt, job.completion)
            assert got.token_logprobs.tobytes() == expected.tobytes(), (
                f"fuzz seed {seed}: scoring job {i} diverged bitwise\n"
                f"scenario: {scenario}\n{repro_hint}"
            )
        else:
            expected = model.generate(
                job.prompt, job.max_new_tokens, eos_id=job.eos_id
            )
            if i in cancelled:
                assert got == expected[: len(got)], (
                    f"fuzz seed {seed}: cancelled generate job {i} diverged "
                    f"from the sequential prefix\n{repro_hint}"
                )
            else:
                assert got == expected, (
                    f"fuzz seed {seed}: generate job {i} diverged\n"
                    f"engine:     {got}\nsequential: {expected}\n{repro_hint}"
                )
