"""Tests for repro.config: presets, seeds, RNG discipline."""

import numpy as np
import pytest

from repro.config import DEFAULT_SEED, PRESETS, get_scale, make_rng, spawn_rng, ModelScale
from repro.errors import ConfigError


def test_presets_exist():
    assert set(PRESETS) == {"ci", "bench", "full"}


def test_preset_sizes_are_ordered():
    assert PRESETS["ci"].dataset_size < PRESETS["bench"].dataset_size
    assert PRESETS["bench"].dataset_size < PRESETS["full"].dataset_size


def test_full_preset_matches_paper_counts():
    full = PRESETS["full"]
    assert full.dataset_size == 52000
    assert full.expert_sample_size == 6000


def test_get_scale_by_name():
    assert get_scale("ci").name == "ci"


def test_get_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "ci")
    assert get_scale().name == "ci"


def test_get_scale_unknown_raises():
    with pytest.raises(ConfigError):
        get_scale("huge")


def test_make_rng_deterministic():
    a = make_rng(5).integers(0, 1000, size=8)
    b = make_rng(5).integers(0, 1000, size=8)
    assert np.array_equal(a, b)


def test_make_rng_none_uses_default_seed():
    a = make_rng(None).integers(0, 1000, size=4)
    b = make_rng(DEFAULT_SEED).integers(0, 1000, size=4)
    assert np.array_equal(a, b)


def test_make_rng_passthrough():
    gen = np.random.default_rng(0)
    assert make_rng(gen) is gen


def test_make_rng_rejects_bad_seed():
    with pytest.raises(ConfigError):
        make_rng("seed")  # type: ignore[arg-type]


def test_spawn_rng_decorrelates():
    parent = make_rng(0)
    child_a = spawn_rng(parent, "a")
    parent2 = make_rng(0)
    child_b = spawn_rng(parent2, "b")
    assert child_a.integers(0, 10**9) != child_b.integers(0, 10**9)


def test_model_scale_validates_heads():
    with pytest.raises(ConfigError):
        ModelScale(d_model=30, n_layers=1, n_heads=4, max_seq_len=32, lora_rank=2)


def test_scale_config_validates_batch_sizes():
    with pytest.raises(ConfigError, match="gen_batch_size"):
        get_scale("ci").scaled(gen_batch_size=0)
    with pytest.raises(ConfigError, match="batch_size"):
        get_scale("ci").scaled(batch_size=0)
    with pytest.raises(ConfigError, match="max_new_tokens"):
        get_scale("ci").scaled(max_new_tokens=0)
    assert get_scale("ci").scaled(gen_batch_size=1).gen_batch_size == 1


def test_scaled_override():
    cfg = get_scale("ci").scaled(dataset_size=17)
    assert cfg.dataset_size == 17
    assert cfg.name == "ci"


def test_scale_config_validates_prefill_chunk():
    with pytest.raises(ConfigError, match="prefill_chunk_tokens"):
        get_scale("ci").scaled(prefill_chunk_tokens=0)
    assert get_scale("ci").prefill_chunk_tokens is None
    assert get_scale("ci").scaled(prefill_chunk_tokens=16).prefill_chunk_tokens == 16


def test_serving_config_validates_prefill_chunk():
    from repro.config import ServingConfig

    with pytest.raises(ConfigError, match="prefill_chunk_tokens"):
        ServingConfig(prefill_chunk_tokens=0)
    assert ServingConfig().prefill_chunk_tokens is not None
    assert ServingConfig(prefill_chunk_tokens=None).prefill_chunk_tokens is None


def test_scale_config_validates_prefill_concurrency():
    with pytest.raises(ConfigError, match="prefill_concurrency"):
        get_scale("ci").scaled(prefill_concurrency=0)
    assert get_scale("ci").prefill_concurrency == 1
    assert get_scale("ci").scaled(prefill_concurrency=4).prefill_concurrency == 4


def test_serving_config_validates_prefill_concurrency():
    from repro.config import DEFAULT_GEN_BATCH_SIZE, ServingConfig

    with pytest.raises(ConfigError, match="prefill_concurrency"):
        ServingConfig(prefill_concurrency=0)
    # The serving default admits a whole fleet-width burst concurrently.
    assert ServingConfig().prefill_concurrency == DEFAULT_GEN_BATCH_SIZE
    assert ServingConfig(prefill_concurrency=2).prefill_concurrency == 2


def test_scale_config_validates_kv_paging():
    with pytest.raises(ConfigError, match="kv_page_tokens"):
        get_scale("ci").scaled(kv_page_tokens=0)
    with pytest.raises(ConfigError, match="kv_pool_pages requires"):
        get_scale("ci").scaled(kv_pool_pages=8)
    with pytest.raises(ConfigError, match="kv_pool_pages"):
        get_scale("ci").scaled(kv_page_tokens=16, kv_pool_pages=0)
    # Offline presets default to dense slabs; paging is opt-in.
    assert get_scale("ci").kv_page_tokens is None
    cfg = get_scale("ci").scaled(kv_page_tokens=64, kv_pool_pages=24)
    assert (cfg.kv_page_tokens, cfg.kv_pool_pages) == (64, 24)


def test_serving_config_validates_kv_paging():
    from repro.config import ServingConfig

    with pytest.raises(ConfigError, match="kv_page_tokens"):
        ServingConfig(kv_page_tokens=0)
    with pytest.raises(ConfigError, match="kv_pool_pages requires"):
        ServingConfig(kv_page_tokens=None, kv_pool_pages=8)
    # The serving default is the paged pool at 64-token pages: resident
    # KV memory follows the live fleet, and /metrics exports free_pages.
    assert ServingConfig().kv_page_tokens == 64
    assert ServingConfig().kv_pool_pages is None
    assert ServingConfig(kv_page_tokens=None).kv_page_tokens is None
