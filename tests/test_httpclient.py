"""Directed tests for the retrying HTTP client and the hardened server.

Each test injects one specific network failure (via
:class:`~repro.serving.faults.FaultyProxy` on real sockets, or raw
socket surgery against the front-end) and pins the client's exact
response: which errors retry, which give up typed, which fail fast, and
what the server answers a stalled or vanished peer.
Randomised schedules live in ``tests/test_fuzz_network.py``.
"""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest

from repro.config import ServingConfig
from repro.core.coachlm import CoachLM
from repro.data import generate_dataset
from repro.errors import RetryBudgetExceededError, ServingError
from repro.llm.tokenizer import build_tokenizer
from repro.nn import TransformerConfig, TransformerLM
from repro.serving import (
    ConnectionFault,
    FaultyProxy,
    NetworkFaultPlan,
    RevisionHTTPClient,
    RevisionHTTPFrontend,
    RevisionServer,
    RunJournal,
    ServingMetrics,
    SOURCE_JOURNAL,
)


@pytest.fixture(scope="module")
def coach():
    tokenizer = build_tokenizer()
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=32,
        n_layers=1,
        n_heads=4,
        max_seq_len=192,
    )
    model = TransformerLM(config, np.random.default_rng(9))
    return CoachLM(model, tokenizer)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(np.random.default_rng(77), 6)


@pytest.fixture()
def frontend(coach):
    server = RevisionServer(coach, ServingConfig(max_batch=4))
    with RevisionHTTPFrontend(server) as fe:
        yield fe


def _upstream(frontend):
    host, port = frontend.httpd.server_address[:2]
    return host, port


def _client(address, **overrides):
    defaults = dict(
        timeout_s=5.0,
        max_attempts=5,
        backoff_base_s=0.005,
        backoff_cap_s=0.02,
        seed=7,
    )
    defaults.update(overrides)
    return RevisionHTTPClient(address, **defaults)


def test_happy_path_matches_offline_coach(coach, dataset, frontend):
    client = _client(frontend.address)
    pairs = list(dataset)
    results = client.revise_pairs(pairs)
    expected = [coach.revise_pair(pair) for pair in pairs]
    assert [
        (r.pair.instruction, r.pair.response, r.outcome) for r in results
    ] == [(p.instruction, p.response, o.value) for p, o in expected]
    assert client.metrics.retries == 0
    assert client.metrics.gave_up == 0


@pytest.mark.parametrize(
    "fault",
    [
        ConnectionFault("reset", after_bytes=0),
        ConnectionFault("reset", after_bytes=200),
        ConnectionFault("truncate", after_bytes=60),
        ConnectionFault("stall", after_bytes=20, stall_s=1.5),
    ],
    ids=["reset-statusline", "reset-midbody", "truncate", "stall"],
)
def test_transport_faults_retry_transparently(coach, dataset, frontend, fault):
    """One faulted connection, then clean: the caller never notices."""
    pair = dataset[0]
    expected_pair, expected_outcome = coach.revise_pair(pair)
    host, port = _upstream(frontend)
    plan = NetworkFaultPlan(connections={0: fault})
    metrics = ServingMetrics()
    with FaultyProxy(host, port, plan) as proxy:
        client = _client(proxy.address, timeout_s=0.4, metrics=metrics)
        result = client.revise_pair(pair)
    assert (result.pair.instruction, result.pair.response) == (
        expected_pair.instruction, expected_pair.response
    )
    assert result.outcome == expected_outcome.value
    assert metrics.retries >= 1
    assert metrics.gave_up == 0
    # The retried request found the finished/in-flight work server-side:
    # never a duplicate resolution.
    assert frontend.service.metrics.duplicate_results == 0


def test_retry_after_from_503_is_honored(dataset, frontend):
    host, port = _upstream(frontend)
    plan = NetworkFaultPlan(connections={
        0: ConnectionFault("reject", retry_after_s=0.15),
    })
    metrics = ServingMetrics()
    with FaultyProxy(host, port, plan) as proxy:
        client = _client(proxy.address, metrics=metrics)
        started = time.monotonic()
        client.revise_pair(dataset[0])
        elapsed = time.monotonic() - started
    assert metrics.retries == 1
    assert metrics.retry_after_honored_s == pytest.approx(0.15)
    assert elapsed >= 0.15  # actually slept what the server asked


def test_retry_budget_exhaustion_is_typed_with_cause(dataset, frontend):
    host, port = _upstream(frontend)
    plan = NetworkFaultPlan(connections={
        n: ConnectionFault("reject", retry_after_s=0.01) for n in range(10)
    })
    metrics = ServingMetrics()
    with FaultyProxy(host, port, plan) as proxy:
        client = _client(
            proxy.address, max_attempts=3, metrics=metrics
        )
        with pytest.raises(RetryBudgetExceededError) as excinfo:
            client.revise_pair(dataset[0])
    assert excinfo.value.__cause__ is not None
    assert metrics.gave_up == 1
    assert metrics.retries == 2  # budget of 3 attempts = 2 retries


def test_client_errors_never_retry(frontend):
    client = _client(frontend.address)
    with pytest.raises(ServingError) as excinfo:
        client._request("/no-such-endpoint", {"instruction": "a"})
    assert not isinstance(excinfo.value, RetryBudgetExceededError)
    assert "404" in str(excinfo.value)
    assert client.metrics.retries == 0


def test_connection_refused_gives_up_typed():
    # Bind-then-close yields a port with nothing listening.
    probe = socket.create_server(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    client = _client(f"http://127.0.0.1:{port}", max_attempts=2)
    with pytest.raises(RetryBudgetExceededError) as excinfo:
        client.revise_pair(generate_dataset(np.random.default_rng(1), 1)[0])
    assert isinstance(excinfo.value.__cause__, OSError)


def test_backoff_is_seeded_jitter_with_cap():
    client_a = _client("http://127.0.0.1:1", seed=3)
    client_b = _client("http://127.0.0.1:1", seed=3)
    delays_a = [client_a._backoff_s(n) for n in range(6)]
    delays_b = [client_b._backoff_s(n) for n in range(6)]
    assert delays_a == delays_b  # reproducible
    assert all(0.0 <= d <= client_a.backoff_cap_s for d in delays_a)
    ceilings = [
        min(client_a.backoff_cap_s, client_a.backoff_base_s * 2 ** n)
        for n in range(6)
    ]
    assert all(d <= c for d, c in zip(delays_a, ceilings))


def test_rejects_non_http_base_url():
    with pytest.raises(ServingError):
        RevisionHTTPClient("ftp://example.com")


def test_journal_composes_over_http(coach, dataset, frontend, tmp_path):
    """A journaled HTTP run resumes without touching the network."""
    pairs = list(dataset)
    journal_path = tmp_path / "http-run.jsonl"
    client = _client(frontend.address)
    with RunJournal(journal_path) as journal:
        first = client.revise_pairs(pairs, journal=journal)
    # Resume against a dead port: every pair must come from the journal.
    probe = socket.create_server(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    offline = _client(f"http://127.0.0.1:{dead_port}", max_attempts=1)
    with RunJournal(journal_path) as journal:
        resumed = offline.revise_pairs(pairs, journal=journal)
    assert all(r.source == SOURCE_JOURNAL for r in resumed)
    assert [
        (r.pair.instruction, r.pair.response, r.outcome) for r in resumed
    ] == [(r.pair.instruction, r.pair.response, r.outcome) for r in first]
    assert offline.metrics.journal_pairs_skipped == len(pairs)


def test_score_over_http_with_faults(coach, dataset, frontend):
    host, port = _upstream(frontend)
    plan = NetworkFaultPlan(connections={0: ConnectionFault("truncate", 80)})
    with FaultyProxy(host, port, plan) as proxy:
        client = _client(proxy.address, timeout_s=0.4)
        results = client.score_pairs(list(dataset)[:3])
    assert all(r.outcome == "scored" for r in results)
    assert all(r.score is not None and "ifd" in r.score for r in results)


def _read_until_eof(sock) -> bytes:
    """Drain a socket to EOF — the reply may arrive in several segments."""
    chunks = []
    while True:
        data = sock.recv(4096)
        if not data:
            return b"".join(chunks)
        chunks.append(data)


def test_server_answers_408_on_stalled_body(coach):
    """A client that announces a body and never sends it gets 408 and a
    closed connection — not a pinned handler thread."""
    server = RevisionServer(coach, ServingConfig(max_batch=2))
    with RevisionHTTPFrontend(server, handler_timeout_s=0.2) as fe:
        host, port = fe.httpd.server_address[:2]
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(
                b"POST /revise HTTP/1.1\r\n"
                b"Host: x\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 64\r\n"
                b"\r\n"
                b'{"instruction": '  # ...and then silence
            )
            # Reaching EOF is itself the close-after-408 assertion.
            reply = _read_until_eof(sock)
        assert b" 408 " in reply[:32], reply
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(
                b"POST /revise HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 8\r\n\r\n"
            )
            assert b" 408 " in _read_until_eof(sock)[:32]
        # The server is still healthy for well-behaved clients.
        client = _client(fe.address)
        result = client.revise_pair(
            generate_dataset(np.random.default_rng(3), 1)[0]
        )
        assert result.outcome


def test_server_survives_peer_vanishing_mid_reply(coach, dataset):
    """A peer that resets the connection while the server replies must
    not take the handler thread (or the service) down with it."""
    server = RevisionServer(coach, ServingConfig(max_batch=2))
    with RevisionHTTPFrontend(server) as fe:
        host, port = fe.httpd.server_address[:2]
        import json as _json
        import struct

        pair = dataset[0]
        body = _json.dumps({
            "instruction": pair.instruction, "response": pair.response,
        }).encode()
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(
                b"POST /revise HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            # Abort (RST) without reading the reply.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        # Service still serves the next client.
        client = _client(fe.address)
        result = client.revise_pair(dataset[1])
        assert result.outcome
        assert server.metrics.duplicate_results == 0


def test_network_fault_plan_is_reproducible_and_env_reachable():
    plan_a = NetworkFaultPlan.from_seed(42, n_connections=20, p_fault=0.5)
    plan_b = NetworkFaultPlan.from_seed(42, n_connections=20, p_fault=0.5)
    assert plan_a == plan_b
    assert plan_a.n_faulty > 0
    assert all(
        f.kind in ("reset", "truncate", "stall", "reject")
        for f in plan_a.connections.values()
    )
    env_plan = NetworkFaultPlan.from_env({
        "REPRO_FAULT_NET_KIND": "reset",
        "REPRO_FAULT_NET_CONN": "2",
        "REPRO_FAULT_NET_AFTER_BYTES": "33",
    })
    assert env_plan is not None
    assert env_plan.for_connection(2) == ConnectionFault(
        "reset", after_bytes=33, stall_s=0.6, retry_after_s=0.05
    )
    assert env_plan.for_connection(0) is None
    assert NetworkFaultPlan.from_env({}) is None
    with pytest.raises(ValueError):
        NetworkFaultPlan.from_env({"REPRO_FAULT_NET_KIND": "explode"})
