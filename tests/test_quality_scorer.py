"""Tests for the Table II rubric scorer."""

import numpy as np
import pytest

from repro.data.defects import build_pair
from repro.data.instruction_pair import InstructionPair
from repro.quality import CriteriaScorer, analyze_response
from repro.textgen.responses import detokenize, ideal_response
from repro.textgen.tasks import TaskInstance, sample_instance


@pytest.fixture(scope="module")
def scorer():
    return CriteriaScorer()


@pytest.fixture()
def instance():
    return TaskInstance("add_numbers", {"a": 3, "b": 4})


def _pair(instance, instr_defects=(), resp_defects=(), polite=True, context=False):
    return build_pair(
        instance, tuple(instr_defects), tuple(resp_defects),
        np.random.default_rng(0), polite=polite, context=context,
    )


def test_ideal_pair_scores_95(scorer, instance):
    pair = _pair(instance, polite=True)
    report = scorer.score_pair(pair)
    assert report.response.score == 95.0
    assert not report.needs_revision


def test_rich_without_coda_scores_88(scorer, instance):
    pair = _pair(instance, polite=False)
    assert scorer.score_response(pair).score == 88.0


def test_terse_scores_80_and_triggers_revision(scorer, instance):
    pair = _pair(instance, resp_defects=["resp_terse"], polite=False)
    report = scorer.score_pair(pair)
    assert report.response.score == 80.0
    assert report.response.violated("richness")
    assert report.needs_revision


def test_unsafe_caps_at_40(scorer, instance):
    pair = _pair(instance, resp_defects=["resp_unsafe"])
    report = scorer.score_response(pair)
    assert report.score <= 40.0
    assert report.violated("safety")


def test_empty_response_scores_40(scorer, instance):
    pair = _pair(instance, resp_defects=["resp_empty"])
    report = scorer.score_response(pair)
    assert report.score == 40.0
    assert report.violated("correctness")


def test_wrong_answer_violates_correctness_not_relevance(scorer, instance):
    pair = _pair(instance, resp_defects=["resp_wrong_answer"], polite=False)
    report = scorer.score_response(pair)
    assert report.violated("correctness")
    assert report.satisfied("relevance")
    assert report.score < 80.0


def test_irrelevant_violates_relevance(scorer):
    rng = np.random.default_rng(3)
    hits = 0
    total = 30
    for _ in range(total):
        instance = sample_instance(rng, "fact_color")
        pair = build_pair(instance, (), ("resp_irrelevant",), rng, polite=False)
        if scorer.score_response(pair).violated("relevance"):
            hits += 1
    assert hits >= total * 0.5  # lexical collisions allow some misses


def test_machine_tone_blocks_humanization(scorer, instance):
    pair = _pair(instance, resp_defects=["resp_machine_tone"])
    report = scorer.score_response(pair)
    assert report.violated("humanization")
    assert report.score <= 84.0


def test_basic_violations_cap_at_80(scorer, instance):
    for defect in ("resp_noisy", "resp_bad_layout", "resp_truncated"):
        pair = _pair(instance, resp_defects=[defect], polite=False)
        assert scorer.score_response(pair).score < 80.0, defect


def test_ambiguous_instruction_is_infeasible(scorer):
    rng = np.random.default_rng(1)
    instance = sample_instance(rng, "extract_color")
    pair = build_pair(instance, ("instr_ambiguous",), (), rng)
    report = scorer.score_instruction(pair)
    assert report.violated("feasibility")
    assert report.score < 60.0


def test_context_earns_advanced_band(scorer, instance):
    plain = _pair(instance, context=False)
    rich = _pair(instance, context=True)
    assert scorer.score_instruction(plain).score == 82.0
    assert scorer.score_instruction(rich).score == 95.0


def test_empty_instruction(scorer):
    pair = InstructionPair(instruction="", response="7 .")
    assert scorer.score_instruction(pair).score == 15.0


def test_spelling_fix_typo_is_not_a_flaw(scorer):
    instance = TaskInstance("spelling_fix", {"typo": "blu", "noun": "dog"})
    pair = InstructionPair(
        instruction="fix the spelling : the blu dog",
        response=detokenize(ideal_response(instance)),
        provenance=instance,
    )
    report = scorer.score_pair(pair)
    assert report.instruction.satisfied("readability")
    assert report.response.score == 95.0


def test_spelling_fix_unfixed_typo_is_incorrect(scorer):
    instance = TaskInstance("spelling_fix", {"typo": "blu", "noun": "dog"})
    pair = InstructionPair(
        instruction="fix the spelling : the blu dog",
        response="the blu dog .",
        provenance=instance,
    )
    assert scorer.score_response(pair).violated("correctness")


def test_analyze_response_views(instance):
    pair = _pair(instance, polite=True)
    view = analyze_response(pair)
    assert view.polite
    assert not view.machine_tone
    assert view.core == ("7",)
    assert not view.flaws


def test_needs_revision_matches_ground_truth(scorer, small_dataset):
    agree = 0
    considered = 0
    for pair in small_dataset:
        if any(d.startswith("filter") for d in pair.injected_defects):
            continue
        considered += 1
        truth = any(d != "instr_needs_context" for d in pair.injected_defects)
        if scorer.score_pair(pair).needs_revision == truth:
            agree += 1
    assert agree / considered > 0.95


def test_scorer_never_reads_injected_labels(scorer, instance):
    # Two pairs with identical text but different ground-truth labels must
    # score identically (the labels are test-only metadata).
    a = _pair(instance, polite=True)
    b = InstructionPair(
        instruction=a.instruction, response=a.response,
        provenance=a.provenance, injected_defects=("resp_wrong_answer",),
    )
    assert scorer.score_pair(a).response.score == scorer.score_pair(b).response.score
