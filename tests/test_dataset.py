"""Tests for the dataset container."""

import numpy as np
import pytest

from repro.data import InstructionDataset, InstructionPair, generate_dataset
from repro.data.instruction_pair import Origin
from repro.errors import DatasetError


def _pair(i: int) -> InstructionPair:
    return InstructionPair(
        instruction=f"do thing {i}", response=f"did thing {i}", pair_id=f"p-{i}"
    )


@pytest.fixture()
def tiny():
    return InstructionDataset([_pair(i) for i in range(10)], name="tiny")


def test_len_getitem_iter(tiny):
    assert len(tiny) == 10
    assert tiny[3].pair_id == "p-3"
    assert sum(1 for _ in tiny) == 10


def test_map_returns_new_dataset(tiny):
    upper = tiny.map(
        lambda p: p.with_text(p.instruction.upper(), p.response, Origin.RULE_CLEANED)
    )
    assert upper[0].instruction == "DO THING 0"
    assert tiny[0].instruction == "do thing 0"


def test_filter(tiny):
    evens = tiny.filter(lambda p: int(p.pair_id.split("-")[1]) % 2 == 0)
    assert len(evens) == 5


def test_sample_deterministic(tiny):
    a = tiny.sample(4, np.random.default_rng(0))
    b = tiny.sample(4, np.random.default_rng(0))
    assert [p.pair_id for p in a] == [p.pair_id for p in b]


def test_sample_too_large_raises(tiny):
    with pytest.raises(DatasetError):
        tiny.sample(11, np.random.default_rng(0))


def test_split_partitions(tiny):
    head, tail = tiny.split(0.3, np.random.default_rng(0))
    assert len(head) == 3 and len(tail) == 7
    ids = {p.pair_id for p in head} | {p.pair_id for p in tail}
    assert len(ids) == 10


def test_split_bad_fraction(tiny):
    with pytest.raises(DatasetError):
        tiny.split(1.5, np.random.default_rng(0))


def test_replace_pairs_merges_by_id(tiny):
    replacement = _pair(3).with_text("new", "new resp", Origin.EXPERT_REVISED)
    merged = tiny.replace_pairs({"p-3": replacement})
    assert merged[3].instruction == "new"
    assert merged[2].instruction == "do thing 2"


def test_replace_pairs_unknown_id_raises(tiny):
    with pytest.raises(DatasetError):
        tiny.replace_pairs({"p-99": _pair(99)})


def test_by_id_requires_unique_ids(tiny):
    assert set(tiny.by_id()) == {f"p-{i}" for i in range(10)}
    dup = InstructionDataset([_pair(1), _pair(1)])
    with pytest.raises(DatasetError):
        dup.by_id()


def test_jsonl_roundtrip(tmp_path, small_dataset):
    path = tmp_path / "ds.jsonl"
    small_dataset.save_jsonl(path)
    loaded = InstructionDataset.load_jsonl(path)
    assert len(loaded) == len(small_dataset)
    assert loaded[7].to_json() == small_dataset[7].to_json()


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(DatasetError):
        InstructionDataset.load_jsonl(tmp_path / "nope.jsonl")


def test_load_malformed_raises(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"instruction": "x"}\n', encoding="utf-8")
    with pytest.raises(DatasetError):
        InstructionDataset.load_jsonl(path)


def test_stats(small_dataset):
    stats = small_dataset.stats()
    assert stats.size == len(small_dataset)
    assert stats.avg_instruction_length > 0
    assert stats.n_categories > 30  # 42 categories + filter bucket


def test_extend(tiny):
    both = tiny.extend(tiny)
    assert len(both) == 20


def test_generate_dataset_rejects_bad_size(rng):
    with pytest.raises(DatasetError):
        generate_dataset(rng, 0)
