"""Tests for expert profiles, filtering, assignment, revision, workflow."""

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.data.defects import build_filter_pair, build_pair
from repro.experts import (
    ExpertCampaign,
    ExpertReviser,
    GROUP_A,
    GROUP_B,
    GROUP_C,
    assign_units,
    group_profile_table,
    preliminary_filter,
)
from repro.experts.assignment import UNIT_CLASS_ORDER, unit_for_pair
from repro.experts.filtering import classify_exclusion, exclusion_distribution
from repro.experts.revision import RevisionRecord
from repro.quality import CriteriaScorer
from repro.textgen.tasks import TaskInstance, sample_instance


# ---------------------------------------------------------------------------
# Table I — profiles
# ---------------------------------------------------------------------------


def test_group_sizes_match_table1():
    assert len(GROUP_A) == 17
    assert len(GROUP_B) == 6
    assert len(GROUP_C) == 3


def test_group_experience_matches_table1():
    rows = {r["group"]: r for r in group_profile_table()}
    assert rows["A"]["average_years_of_experience"] == pytest.approx(11.29, abs=0.01)
    assert rows["B"]["average_years_of_experience"] == pytest.approx(5.64, abs=0.01)
    assert rows["C"]["average_years_of_experience"] == pytest.approx(12.57, abs=0.01)


def test_groups_do_not_overlap():
    names = [e.name for e in GROUP_A + GROUP_B + GROUP_C]
    assert len(set(names)) == 26


# ---------------------------------------------------------------------------
# Table III — preliminary filtering
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind,expected", [
    ("filter_invalid_input", "invalid_input"),
    ("filter_beyond_expertise", "beyond_expertise"),
    ("filter_massive_workload", "massive_workload"),
    ("filter_multimodal", "multimodal"),
    ("filter_toxic", "safety"),
])
def test_classify_exclusion_detects_each_kind(kind, expected, rng):
    pair = build_filter_pair(kind, rng)
    assert classify_exclusion(pair) == expected


def test_clean_pair_is_not_excluded(rng):
    instance = sample_instance(rng, "add_numbers")
    pair = build_pair(instance, (), (), rng)
    assert classify_exclusion(pair) is None


def test_single_unsafe_span_is_revisable_not_excluded(rng):
    instance = sample_instance(rng, "add_numbers")
    pair = build_pair(instance, (), ("resp_unsafe",), rng)
    assert classify_exclusion(pair) is None


def test_preliminary_filter_partitions(small_dataset, rng):
    kept, excluded = preliminary_filter(small_dataset)
    assert len(kept) + len(excluded) == len(small_dataset)
    dist = exclusion_distribution(excluded)
    assert abs(sum(dist.values()) - 1.0) < 1e-9
    assert "invalid_input" in dist


def test_retain_fraction_keeps_some(small_dataset):
    rng = np.random.default_rng(0)
    kept, excluded = preliminary_filter(small_dataset, retain_fraction=1.0, rng=rng)
    assert not excluded
    retained_reasons = [d for d in kept if d.reason is not None]
    assert retained_reasons


# ---------------------------------------------------------------------------
# Section II-E2 — assignment
# ---------------------------------------------------------------------------


def test_units_ordered_by_experience():
    units = assign_units()
    averages = [units[c].average_experience for c in UNIT_CLASS_ORDER]
    assert averages == sorted(averages)
    assert len(units) == 3
    assert sum(len(u.members) for u in units.values()) == 17


def test_owner_is_most_experienced():
    units = assign_units()
    for unit in units.values():
        assert unit.owner.years_experience == max(
            m.years_experience for m in unit.members
        )


def test_unit_routing(rng):
    units = assign_units()
    creative = sample_instance(rng, "story_animal")
    pair = build_pair(creative, (), (), rng)
    assert unit_for_pair(pair, units).task_class == "creative"
    qa = sample_instance(rng, "fact_color")
    pair = build_pair(qa, (), (), rng)
    assert unit_for_pair(pair, units).task_class == "qa"


# ---------------------------------------------------------------------------
# Revision + workflow
# ---------------------------------------------------------------------------


def test_reviser_skips_clean_pairs(rng):
    reviser = ExpertReviser()
    instance = sample_instance(rng, "add_numbers")
    pair = build_pair(instance, (), (), rng, polite=True)
    assert reviser.revise(pair, rng, GROUP_A[0], "qa") is None


def test_reviser_fixes_terse_response(rng):
    reviser = ExpertReviser(context_add_rate=0.0)
    instance = sample_instance(rng, "add_numbers")
    pair = build_pair(instance, (), ("resp_terse",), rng, polite=False,
                      pair_id="t-1")
    record = reviser.revise(pair, rng, GROUP_A[0], "qa")
    assert record is not None
    assert record.response_bucket == "expand"
    assert "because" in record.revised.response
    assert record.edit_distance > 0
    scorer = CriteriaScorer()
    assert scorer.score_response(record.revised).score >= 95.0


def test_reviser_bucket_for_miscalculation(rng):
    reviser = ExpertReviser(context_add_rate=0.0)
    instance = TaskInstance("add_numbers", {"a": 2, "b": 2})
    pair = build_pair(instance, (), ("resp_miscalculation",), rng, polite=False)
    record = reviser.revise(pair, rng, GROUP_A[0], "qa")
    assert record is not None
    assert record.response_bucket == "fix_calculation"


def test_reviser_bucket_for_unsafe(rng):
    reviser = ExpertReviser(context_add_rate=0.0)
    instance = sample_instance(rng, "fact_color")
    pair = build_pair(instance, (), ("resp_unsafe",), rng)
    record = reviser.revise(pair, rng, GROUP_A[0], "qa")
    assert record is not None
    assert record.response_bucket == "safety_other"


def test_reviser_repairs_instruction(rng):
    reviser = ExpertReviser(context_add_rate=0.0)
    instance = sample_instance(rng, "extract_color")
    pair = build_pair(instance, ("instr_typos",), (), rng, polite=True)
    record = reviser.revise(pair, rng, GROUP_A[0], "language")
    assert record is not None
    assert record.instruction_revised
    assert record.instruction_bucket == "instr_readability"


def test_revision_record_json_roundtrip(rng):
    reviser = ExpertReviser(context_add_rate=0.0)
    instance = sample_instance(rng, "add_numbers")
    pair = build_pair(instance, (), ("resp_terse",), rng, polite=False,
                      pair_id="r-1")
    record = reviser.revise(pair, rng, GROUP_A[0], "qa")
    assert record is not None
    again = RevisionRecord.from_json(record.to_json())
    assert again.edit_distance == record.edit_distance
    assert again.original.pair_id == record.original.pair_id
    assert again.revised.response == record.revised.response


def test_campaign_end_to_end(rng):
    dataset = generate_dataset(np.random.default_rng(4), 400)
    result = ExpertCampaign().run(dataset, rng)
    assert result.examined == 400
    assert 0 < len(result.records) < len(result.kept)
    assert result.costs.total_days > 0
    # Revised pairs are replacements for originals (same ids).
    merged = result.merge_back(dataset)
    assert len(merged) == len(dataset)
    revised_ids = {r.revised.pair_id for r in result.records}
    changed = sum(
        1 for a, b in zip(dataset, merged)
        if (a.instruction, a.response) != (b.instruction, b.response)
    )
    assert changed == len(revised_ids)


def test_campaign_cost_scales_to_129_days():
    # At the paper's scale the calibrated rates must land near 129 days.
    from repro.experts.workflow import (
        QC_RATE_PER_DAY, REVIEW_RATE_PER_DAY, REVISION_RATE_PER_DAY,
    )
    days = 6000 / REVIEW_RATE_PER_DAY + 2301 / REVISION_RATE_PER_DAY \
        + 2301 / QC_RATE_PER_DAY
    assert days == pytest.approx(129, abs=3)
