"""Parity and behaviour tests for the batched decoding engine.

The engine's contract is token-for-token greedy parity with the
sequential paths (:meth:`TransformerLM.generate` and CoachLM's
copy-assisted decode) on ragged prompt batches, EOS at different steps,
per-sequence logit biases, and prompt-too-long edge cases.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.coachlm import CoachLM
from repro.data import generate_dataset
from repro.errors import GenerationError
from repro.llm import TextEngine, build_tokenizer, generate_response, generate_responses
from repro.nn import (
    BatchedEngine,
    GenerationRequest,
    InductionCopyBias,
    PagedKVCaches,
    SlotKVCaches,
    TransformerConfig,
    TransformerLM,
)


@pytest.fixture(scope="module")
def model():
    config = TransformerConfig(
        vocab_size=197, d_model=32, n_layers=2, n_heads=4, max_seq_len=80
    )
    return TransformerLM(config, np.random.default_rng(42))


@pytest.fixture(scope="module")
def ragged_prompts():
    rng = np.random.default_rng(7)
    return [
        list(rng.integers(5, 197, size=int(rng.integers(2, 40))))
        for _ in range(11)
    ]


def _sequential(model, prompts, max_new_tokens, eos_id, biases=None):
    biases = biases or [None] * len(prompts)
    return [
        model.generate(p, max_new_tokens, eos_id=eos_id, logit_bias=b)
        for p, b in zip(prompts, biases)
    ]


# -- plain greedy parity -----------------------------------------------------------


@pytest.mark.parametrize("max_batch", [1, 3, 8, 32])
def test_engine_matches_sequential_on_ragged_batch(model, ragged_prompts, max_batch):
    expected = _sequential(model, ragged_prompts, 20, eos_id=2)
    engine = BatchedEngine(model, max_batch=max_batch)
    got = engine.generate(
        [GenerationRequest(p, 20, eos_id=2) for p in ragged_prompts]
    )
    assert got == expected


def test_engine_eos_at_different_steps(model, ragged_prompts):
    # Pick the most frequent generated token as the EOS id so sequences
    # terminate at genuinely different depths (including step 0).
    free_run = _sequential(model, ragged_prompts, 20, eos_id=None)
    eos, _ = Counter(t for seq in free_run for t in seq).most_common(1)[0]
    expected = _sequential(model, ragged_prompts, 20, eos_id=eos)
    lengths = {len(seq) for seq in expected}
    assert len(lengths) > 1, "EOS should fire at different steps"
    got = BatchedEngine(model, max_batch=4).generate(
        [GenerationRequest(p, 20, eos_id=eos) for p in ragged_prompts]
    )
    assert got == expected


def test_engine_per_sequence_logit_bias(model, ragged_prompts):
    rng = np.random.default_rng(13)
    biases = [
        None if i % 3 == 0 else rng.normal(scale=2.0, size=197).astype(np.float32)
        for i in range(len(ragged_prompts))
    ]
    expected = _sequential(model, ragged_prompts, 12, eos_id=2, biases=biases)
    got = BatchedEngine(model, max_batch=5).generate(
        [
            GenerationRequest(p, 12, eos_id=2, logit_bias=b)
            for p, b in zip(ragged_prompts, biases)
        ]
    )
    assert got == expected


def test_engine_prompt_too_long_and_tiny_budget(model):
    rng = np.random.default_rng(3)
    context = model.config.max_seq_len
    prompts = [
        list(rng.integers(5, 197, size=context + 4)),   # budget < 0
        list(rng.integers(5, 197, size=context)),       # budget = 0
        list(rng.integers(5, 197, size=context - 1)),   # budget = 1
        list(rng.integers(5, 197, size=6)),             # normal
    ]
    expected = _sequential(model, prompts, 16, eos_id=2)
    assert expected[0] == [] and expected[1] == [] and len(expected[2]) == 1
    got = BatchedEngine(model, max_batch=2).generate(
        [GenerationRequest(p, 16, eos_id=2) for p in prompts]
    )
    assert got == expected


def test_engine_rejects_bad_requests(model):
    engine = BatchedEngine(model, max_batch=4)
    with pytest.raises(GenerationError):
        engine.generate([GenerationRequest([], 8)])
    with pytest.raises(GenerationError):
        engine.generate(
            [GenerationRequest([5, 6], 8, logit_bias=np.zeros(3, np.float32))]
        )
    with pytest.raises(GenerationError):
        BatchedEngine(model, max_batch=0)


def test_engine_failed_generate_leaves_no_residue(model):
    """A generate() rejected mid-list must not strand earlier requests."""
    engine = BatchedEngine(model, max_batch=2)
    good = GenerationRequest([5, 6, 7], 6, eos_id=2)
    with pytest.raises(GenerationError):
        engine.generate([good, GenerationRequest([], 6)])
    assert engine.n_pending == 0 and not engine.has_work
    assert engine.generate([good]) == [model.generate([5, 6, 7], 6, eos_id=2)]


def test_engine_more_requests_than_slots_preserves_order(model):
    rng = np.random.default_rng(5)
    prompts = [list(rng.integers(5, 197, size=3 + i)) for i in range(17)]
    expected = _sequential(model, prompts, 9, eos_id=2)
    got = BatchedEngine(model, max_batch=4).generate(
        [GenerationRequest(p, 9, eos_id=2) for p in prompts]
    )
    assert got == expected


# -- induction bias index ----------------------------------------------------------


def test_induction_copy_bias_matches_reference_scan():
    rng = np.random.default_rng(23)
    for _ in range(30):
        prompt = list(rng.integers(0, 12, size=int(rng.integers(2, 40))))
        produced = list(rng.integers(0, 12, size=int(rng.integers(1, 6))))
        blocked = frozenset(int(t) for t in rng.integers(0, 12, size=3))
        strength = 3.0
        fast = np.zeros(12, dtype=np.float32)
        InductionCopyBias(prompt, strength, blocked)(produced, fast)
        slow = np.zeros(12, dtype=np.float32)
        for follower, s in CoachLM._induction_followers(prompt, produced):
            if follower not in blocked:
                slow[follower] += strength * s
        assert np.array_equal(fast, slow), (prompt, produced, blocked)


def test_induction_copy_bias_noop_before_first_token():
    row = np.zeros(8, dtype=np.float32)
    InductionCopyBias([1, 2, 3], 2.0)([], row)
    assert not row.any()


# -- CoachLM through the engine ----------------------------------------------------


@pytest.fixture(scope="module")
def coach():
    tokenizer = build_tokenizer()
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=32,
        n_layers=1,
        n_heads=4,
        max_seq_len=192,
    )
    model = TransformerLM(config, np.random.default_rng(9))
    return CoachLM(model, tokenizer)


def test_copy_assist_engine_parity(coach):
    dataset = generate_dataset(np.random.default_rng(31), 10)
    prompts, requests, expected = [], [], []
    for pair in dataset:
        prompt, outcome = coach._pre_generate(pair)
        if prompt is None:
            continue
        prompts.append(prompt)
        requests.append(coach._revision_request(prompt, pair))
        expected.append(coach._generate_with_copy_assist(prompt, pair))
    assert requests, "fixture produced no eligible pairs"
    got = BatchedEngine(coach.model, max_batch=4).generate(requests)
    assert got == expected


def test_revise_dataset_matches_pairwise_revision(coach):
    dataset = generate_dataset(np.random.default_rng(77), 12)
    expected = [coach.revise_pair(pair) for pair in dataset]
    revised, stats = coach.revise_dataset(dataset, batch_size=5)
    assert len(revised) == len(dataset)
    for (exp_pair, exp_outcome), got_pair in zip(expected, revised):
        assert got_pair.instruction == exp_pair.instruction
        assert got_pair.response == exp_pair.response
    counted = Counter(outcome.value for _, outcome in expected)
    assert stats.outcomes == dict(counted)


def test_blocked_ids_computed_once(tokenizer, monkeypatch):
    calls = Counter()
    original = CoachLM._blocked_ids

    def counting(tok):
        calls["n"] += 1
        return original(tok)

    monkeypatch.setattr(CoachLM, "_blocked_ids", staticmethod(counting))
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size, d_model=32, n_layers=1, n_heads=4,
        max_seq_len=160,
    )
    coach = CoachLM(TransformerLM(config, np.random.default_rng(0)), tokenizer)
    dataset = generate_dataset(np.random.default_rng(2), 3)
    for pair in dataset:
        coach._copy_bias_vector(pair)
        prompt, _ = coach._pre_generate(pair)
        if prompt is not None:
            coach._revision_request(prompt, pair)
    assert calls["n"] == 1


# -- text-level facade -------------------------------------------------------------


def test_generate_responses_matches_sequential(tokenizer):
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size, d_model=32, n_layers=1, n_heads=4,
        max_seq_len=96,
    )
    model = TransformerLM(config, np.random.default_rng(4))
    dataset = generate_dataset(np.random.default_rng(8), 9)
    instructions = [pair.instruction for pair in dataset]
    expected = [
        generate_response(model, tokenizer, text, max_new_tokens=16)
        for text in instructions
    ]
    batched = generate_responses(
        model, tokenizer, instructions, max_new_tokens=16, batch_size=4
    )
    assert [pair.response for pair in batched] == expected
    assert [pair.instruction for pair in batched] == instructions

    engine = TextEngine(model, tokenizer, batch_size=3)
    assert engine.respond(instructions, max_new_tokens=16) == expected


def test_text_engine_streaming_matches_batch(tokenizer):
    """respond_iter yields every response (completion order) with the
    same text the batch path produces for the same instruction."""
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size, d_model=32, n_layers=1, n_heads=4,
        max_seq_len=96,
    )
    model = TransformerLM(config, np.random.default_rng(4))
    dataset = generate_dataset(np.random.default_rng(8), 7)
    instructions = [pair.instruction for pair in dataset]
    engine = TextEngine(model, tokenizer, batch_size=3)
    expected = engine.respond(instructions, max_new_tokens=12)
    streamed = dict(engine.respond_iter(instructions, max_new_tokens=12))
    assert [streamed[i] for i in range(len(instructions))] == expected


# -- streaming engine API ----------------------------------------------------------


def test_engine_free_capacity_counts_mid_prefill(model, ragged_prompts):
    """A parked chunked prefill occupies capacity until it joins or fails."""
    engine = BatchedEngine(model, max_batch=2, prefill_chunk_tokens=2)
    engine.submit(GenerationRequest(ragged_prompts[0][:2], 30, eos_id=None))
    engine.step()  # admitted (idle fleet → batched prefill) and decoding
    assert engine.n_active == 1 and engine.free_capacity == 1
    long = max(ragged_prompts, key=len)
    engine.submit(GenerationRequest(long, 10, eos_id=2))
    engine.step()  # one chunk of the long prompt while slot 0 decodes
    assert engine.n_prefilling == 1
    assert engine.free_capacity == 0
    while engine.has_work:
        engine.step()
    assert engine.n_prefilling == 0 and engine.free_capacity == 2


def test_engine_submit_step_collect_matches_generate(model, ragged_prompts):
    expected = _sequential(model, ragged_prompts, 14, eos_id=2)
    engine = BatchedEngine(model, max_batch=4)
    # Submit the first half up front, the rest only after decoding starts —
    # late submissions must produce identical tokens.
    ids = [
        engine.submit(GenerationRequest(p, 14, eos_id=2))
        for p in ragged_prompts[:5]
    ]
    for _ in range(3):
        engine.step()
    ids += [
        engine.submit(GenerationRequest(p, 14, eos_id=2))
        for p in ragged_prompts[5:]
    ]
    results: dict[int, list[int]] = {}
    while engine.has_work:
        engine.step()
        results.update(engine.collect())
    assert [results[i] for i in ids] == expected
    assert engine.n_active == 0 and engine.n_pending == 0


# -- ragged batched prefill --------------------------------------------------------


def test_ragged_prefill_first_tokens_bitwise_identical(model, ragged_prompts):
    """One ragged prefill forward must pick the exact first tokens of the
    per-request path across uneven prompt lengths (including length 1 and
    the batch's longest, pad-free row)."""
    prompts = ragged_prompts + [[9], list(range(5, 55))]
    # max_new_tokens=1 isolates the prefill phase: every sequence finishes
    # on its first token, so no decode step ever runs.
    expected = _sequential(model, prompts, 1, eos_id=None)
    assert all(len(seq) == 1 for seq in expected)
    got = BatchedEngine(model, max_batch=len(prompts)).generate(
        [GenerationRequest(p, 1, eos_id=None) for p in prompts]
    )
    assert got == expected


def test_ragged_prefill_last_token_logits_match_per_request(model, ragged_prompts):
    """The batched prefill's last-token logits agree with a lone prefill
    to within BLAS kernel-selection noise, and agree exactly on argmax."""
    from repro.nn.decoding import _SlotState

    prompts = ragged_prompts + [[9]]
    engine = BatchedEngine(model, max_batch=len(prompts))
    engine._ensure_state()
    states = [
        _SlotState(i, GenerationRequest(p, 4, eos_id=2), 4)
        for i, p in enumerate(prompts)
    ]
    logits = engine._ragged_prefill(states, list(range(len(states))))
    for row, prompt in enumerate(prompts):
        caches = [{"k": None, "v": None} for _ in model.blocks]
        ref = model._forward_numpy(
            np.asarray([prompt], dtype=np.int64), caches
        )[0, -1, :]
        assert int(logits[row].argmax()) == int(ref.argmax())
        np.testing.assert_allclose(logits[row], ref, atol=1e-4, rtol=1e-5)


def test_ragged_prefill_then_decode_matches_sequential(model):
    """Uneven prompts admitted in one wave decode to full parity."""
    rng = np.random.default_rng(17)
    prompts = [
        list(rng.integers(5, 197, size=n)) for n in (1, 2, 7, 19, 40, 40, 3)
    ]
    expected = _sequential(model, prompts, 18, eos_id=2)
    got = BatchedEngine(model, max_batch=len(prompts)).generate(
        [GenerationRequest(p, 18, eos_id=2) for p in prompts]
    )
    assert got == expected


# -- chunked prefill ---------------------------------------------------------------


@pytest.mark.parametrize("chunk", [1, 3, 64])
def test_chunked_prefill_matches_unchunked(model, ragged_prompts, chunk):
    """Late-arriving prompts prefilled chunk-by-chunk produce the same
    tokens as whole-prompt prefill and as the sequential path."""
    expected = _sequential(model, ragged_prompts, 14, eos_id=2)
    engine = BatchedEngine(model, max_batch=4, prefill_chunk_tokens=chunk)
    # First wave keeps the fleet decoding; the rest arrive late so their
    # admission takes the chunked path.
    ids = [
        engine.submit(GenerationRequest(p, 14, eos_id=2))
        for p in ragged_prompts[:4]
    ]
    for _ in range(2):
        engine.step()
    ids += [
        engine.submit(GenerationRequest(p, 14, eos_id=2))
        for p in ragged_prompts[4:]
    ]
    results: dict[int, list[int]] = {}
    while engine.has_work:
        engine.step()
        results.update(engine.collect())
    assert [results[i] for i in ids] == expected
    assert engine.n_prefilling == 0


def test_chunked_generate_matches_unchunked(model, ragged_prompts):
    """Run-to-completion with chunking on (refills go chunk-by-chunk)."""
    requests = [GenerationRequest(p, 16, eos_id=2) for p in ragged_prompts]
    expected = BatchedEngine(model, max_batch=3).generate(requests)
    got = BatchedEngine(model, max_batch=3, prefill_chunk_tokens=2).generate(
        [GenerationRequest(p, 16, eos_id=2) for p in ragged_prompts]
    )
    assert got == expected
    assert expected == _sequential(model, ragged_prompts, 16, eos_id=2)


def test_engine_rejects_bad_prefill_chunk(model):
    with pytest.raises(GenerationError):
        BatchedEngine(model, max_batch=2, prefill_chunk_tokens=0)


# -- in-engine top-k sampling ------------------------------------------------------


def test_engine_top_k_matches_sequential_under_same_seed(model, ragged_prompts):
    """Seeded top-k through the engine reproduces TransformerLM.generate
    draw-for-draw: each request consumes only its own rng stream."""
    expected = [
        model.generate(p, 12, eos_id=2, top_k=4, rng=np.random.default_rng(100 + i))
        for i, p in enumerate(ragged_prompts)
    ]
    got = BatchedEngine(model, max_batch=5).generate(
        [
            GenerationRequest(
                p, 12, eos_id=2, top_k=4, rng=np.random.default_rng(100 + i)
            )
            for i, p in enumerate(ragged_prompts)
        ]
    )
    assert got == expected


def test_engine_mixed_greedy_and_top_k_batch(model, ragged_prompts):
    """Greedy and sampled requests share one fleet without interference,
    whatever the batch composition."""
    def rng_for(i):
        return np.random.default_rng(7 * i) if i % 2 else None

    expected = [
        model.generate(
            p, 10, eos_id=2,
            top_k=3 if i % 2 else None, rng=rng_for(i),
        )
        for i, p in enumerate(ragged_prompts)
    ]
    for max_batch in (2, 6):
        got = BatchedEngine(model, max_batch=max_batch).generate(
            [
                GenerationRequest(
                    p, 10, eos_id=2,
                    top_k=3 if i % 2 else None, rng=rng_for(i),
                )
                for i, p in enumerate(ragged_prompts)
            ]
        )
        assert got == expected


def test_engine_top_k_with_varied_k_values(model, ragged_prompts):
    """Rows with different k are grouped, partitioned and drawn correctly."""
    ks = [1, 2, 3, 8, 500]  # 500 > vocab exercises the clamp
    prompts = ragged_prompts[: len(ks)]
    expected = [
        model.generate(p, 8, eos_id=2, top_k=k, rng=np.random.default_rng(50 + i))
        for i, (p, k) in enumerate(zip(prompts, ks))
    ]
    got = BatchedEngine(model, max_batch=len(ks)).generate(
        [
            GenerationRequest(
                p, 8, eos_id=2, top_k=k, rng=np.random.default_rng(50 + i)
            )
            for i, (p, k) in enumerate(zip(prompts, ks))
        ]
    )
    assert got == expected


def test_engine_rejects_top_k_without_rng(model):
    engine = BatchedEngine(model, max_batch=2)
    with pytest.raises(GenerationError):
        engine.generate([GenerationRequest([5, 6], 4, top_k=3)])
    with pytest.raises(GenerationError):
        engine.generate(
            [GenerationRequest([5, 6], 4, top_k=0, rng=np.random.default_rng(0))]
        )


def test_text_engine_top_k_routes_through_engine(tokenizer):
    """TextEngine.respond(top_k=...) is reproducible given one seed and
    matches a second engine run with the same seed."""
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size, d_model=32, n_layers=1, n_heads=4,
        max_seq_len=96,
    )
    model = TransformerLM(config, np.random.default_rng(4))
    dataset = generate_dataset(np.random.default_rng(8), 6)
    instructions = [pair.instruction for pair in dataset]
    first = TextEngine(model, tokenizer, batch_size=3).respond(
        instructions, max_new_tokens=12, top_k=4, seed=123
    )
    second = TextEngine(model, tokenizer, batch_size=2).respond(
        instructions, max_new_tokens=12, top_k=4, seed=123
    )
    assert first == second
    greedy = TextEngine(model, tokenizer, batch_size=3).respond(
        instructions, max_new_tokens=12
    )
    assert first != greedy or all(not r for r in first)


def test_chunked_prefill_advances_at_most_one_chunk_per_step(model):
    """The stall bound must hold even on steps that retire sequences:
    a retiring slot's same-step refill must not advance the parked
    prompt a second chunk."""
    chunk = 2
    engine = BatchedEngine(model, max_batch=2, prefill_chunk_tokens=chunk)
    rng = np.random.default_rng(21)
    # One long-running decode keeps the fleet busy for the whole parked
    # prefill, so every chunk advance happens with decodes in flight.
    short = list(rng.integers(5, 197, size=4))
    engine.submit(GenerationRequest(short, 45))
    engine.step()
    long_prompt = list(rng.integers(5, 197, size=40))
    engine.submit(GenerationRequest(long_prompt, 6, eos_id=2))
    parked, seen, observed = None, 0, 0
    while engine.has_work:
        active_before = engine.n_active
        engine.step()
        if engine.n_prefilling:
            state = engine._prefilling[0]
            if state is not parked:
                parked, seen = state, 0
            advanced = state.prefilled - seen
            # The stall bound holds whenever decodes were in flight; an
            # idle fleet legitimately finishes the remainder whole.
            if active_before > 0:
                assert 0 < advanced <= chunk, advanced
            seen = state.prefilled
            observed += 1
    results = engine.collect()
    assert observed >= 40 // chunk - 1, "long prompt never took the chunked path"
    assert results[1] == model.generate(long_prompt, 6, eos_id=2)
    assert results[0] == model.generate(short, 45)


def test_chunked_prefill_finishes_whole_when_fleet_idle(model):
    """Once the decode fleet empties there is nothing left to stall: a
    parked mid-prefill prompt must finish its remainder in one forward
    instead of trickling out chunk by chunk."""
    rng = np.random.default_rng(33)
    engine = BatchedEngine(model, max_batch=2, prefill_chunk_tokens=3)
    short = list(rng.integers(5, 197, size=4))
    a = engine.submit(GenerationRequest(short, 2))
    b = engine.submit(GenerationRequest(short, 2))
    engine.step()  # both admitted (idle fleet), decoding
    long_prompt = list(rng.integers(5, 197, size=40))
    c = engine.submit(GenerationRequest(long_prompt, 5, eos_id=2))
    steps = 0
    while engine.has_work:
        engine.step()
        steps += 1
        assert steps < 60
    # The shorts retire after one more decode step; the parked prompt had
    # advanced by at most a couple of 3-token chunks by then, and the
    # idle-fleet fast path must finish the rest in a single step — far
    # fewer rounds than the ~14 a pure chunk-by-chunk trickle needs.
    assert steps <= 12, steps
    results = engine.collect()
    assert results[c] == model.generate(long_prompt, 5, eos_id=2)
    assert results[a] == model.generate(short, 2)


# -- multi-slot chunked prefill ----------------------------------------------------


@pytest.mark.parametrize("concurrency", [1, 2, 8])
def test_multislot_chunked_prefill_matches_unchunked(model, ragged_prompts, concurrency):
    """Chunked == unchunked token parity must hold at any prefill
    concurrency: a burst of late arrivals prefilled concurrently produces
    exactly the sequential path's tokens."""
    expected = _sequential(model, ragged_prompts, 14, eos_id=2)
    engine = BatchedEngine(
        model, max_batch=8, prefill_chunk_tokens=3,
        prefill_concurrency=concurrency,
    )
    ids = [
        engine.submit(GenerationRequest(p, 14, eos_id=2))
        for p in ragged_prompts[:3]
    ]
    for _ in range(2):
        engine.step()
    # The burst: everything else arrives at once.
    ids += [
        engine.submit(GenerationRequest(p, 14, eos_id=2))
        for p in ragged_prompts[3:]
    ]
    results: dict[int, list[int]] = {}
    while engine.has_work:
        engine.step()
        results.update(engine.collect())
    assert [results[i] for i in ids] == expected
    assert engine.n_prefilling == 0


def test_multislot_advances_every_parked_prompt_each_step(model):
    """With prefill_concurrency=N, N parked prompts all advance one chunk
    per step — the admission fleet, not a serialized queue."""
    rng = np.random.default_rng(19)
    chunk = 4
    engine = BatchedEngine(
        model, max_batch=8, prefill_chunk_tokens=chunk, prefill_concurrency=4
    )
    engine.submit(GenerationRequest(list(rng.integers(5, 197, size=3)), 60))
    engine.step()  # one long-running decode keeps the fleet busy
    prompts = [list(rng.integers(5, 197, size=30)) for _ in range(4)]
    ids = [engine.submit(GenerationRequest(p, 4, eos_id=2)) for p in prompts]
    engine.step()
    assert engine.n_prefilling == 4
    assert [s.prefilled for s in engine._prefilling] == [chunk] * 4
    engine.step()
    assert [s.prefilled for s in engine._prefilling] == [2 * chunk] * 4
    results: dict[int, list[int]] = {}
    while engine.has_work:
        engine.step()
        results.update(engine.collect())
    for seq_id, prompt in zip(ids, prompts):
        assert results[seq_id] == model.generate(prompt, 4, eos_id=2)


def test_multislot_out_of_order_completion(model):
    """A short prompt parked *behind* a long one finishes prefill first:
    the completed row must be promoted past the still-parked partial slab
    without corrupting either sequence."""
    rng = np.random.default_rng(29)
    long_prompt = list(rng.integers(5, 197, size=40))
    short_prompt = list(rng.integers(5, 197, size=5))
    engine = BatchedEngine(
        model, max_batch=4, prefill_chunk_tokens=3, prefill_concurrency=2
    )
    engine.submit(GenerationRequest(list(rng.integers(5, 197, size=4)), 60))
    engine.step()  # busy fleet
    a = engine.submit(GenerationRequest(long_prompt, 8, eos_id=2))
    b = engine.submit(GenerationRequest(short_prompt, 8, eos_id=2))
    results: dict[int, list[int]] = {}
    saw_short_done_while_long_parked = False
    while engine.has_work:
        engine.step()
        done = engine.collect()
        if b in done and engine.n_prefilling:
            saw_short_done_while_long_parked = True
        results.update(done)
        if a in results and b in results:
            break
    assert saw_short_done_while_long_parked
    assert results[a] == model.generate(long_prompt, 8, eos_id=2)
    assert results[b] == model.generate(short_prompt, 8, eos_id=2)


def test_single_token_chunks_merge_into_decode_forward(model, ragged_prompts):
    """chunk=1 makes every parked advance decode-row-shaped: the parked
    fleet must fold into the decode forward (no separate chunk pass) and
    still reproduce sequential tokens exactly."""
    expected = _sequential(model, ragged_prompts, 10, eos_id=2)
    engine = BatchedEngine(
        model, max_batch=6, prefill_chunk_tokens=1, prefill_concurrency=3
    )
    forwards = {"n": 0}
    original = engine.model._forward_numpy

    def counting(*args, **kwargs):
        forwards["n"] += 1
        return original(*args, **kwargs)

    engine.model._forward_numpy = counting
    try:
        ids = [
            engine.submit(GenerationRequest(p, 10, eos_id=2))
            for p in ragged_prompts[:4]
        ]
        engine.step()
        ids += [
            engine.submit(GenerationRequest(p, 10, eos_id=2))
            for p in ragged_prompts[4:]
        ]
        results: dict[int, list[int]] = {}
        steps = 0
        while engine.has_work:
            before = forwards["n"]
            had_decodes = engine.n_active > 0
            had_parked = engine.n_prefilling > 0 or engine.n_pending > 0
            engine.step()
            steps += 1
            if had_decodes and had_parked:
                # Merged: one forward advanced decodes AND parked chunks.
                assert forwards["n"] - before == 1
            results.update(engine.collect())
    finally:
        engine.model._forward_numpy = original
    assert [results[i] for i in ids] == expected


def test_multislot_respects_capacity_limit(model, ragged_prompts):
    """The parked fleet never exceeds the free slot budget, whatever the
    concurrency knob says."""
    engine = BatchedEngine(
        model, max_batch=3, prefill_chunk_tokens=2, prefill_concurrency=8
    )
    engine.submit(GenerationRequest(ragged_prompts[0][:3], 40))
    engine.submit(GenerationRequest(ragged_prompts[1][:3], 40))
    engine.step()
    for p in ragged_prompts[2:8]:
        engine.submit(GenerationRequest(p, 6, eos_id=2))
    engine.step()
    assert engine.n_active == 2
    assert engine.n_prefilling <= 1  # only one slot is free
    assert engine.free_capacity <= 0
    assert engine.n_active + engine.n_prefilling <= engine.max_batch


def test_engine_rejects_bad_prefill_concurrency(model):
    with pytest.raises(GenerationError):
        BatchedEngine(model, max_batch=2, prefill_concurrency=0)


# -- cancellation ------------------------------------------------------------------


def test_cancel_pending_parked_and_active(model):
    """cancel() reclaims a sequence in every lifecycle state; survivors
    keep producing exactly the sequential tokens."""
    rng = np.random.default_rng(41)
    prompts = [list(rng.integers(5, 197, size=n)) for n in (6, 35, 30, 9, 7)]
    engine = BatchedEngine(
        model, max_batch=2, prefill_chunk_tokens=3, prefill_concurrency=2
    )
    survivor = engine.submit(GenerationRequest(prompts[0], 12))
    engine.step()
    parked = engine.submit(GenerationRequest(prompts[1], 12))
    queued = engine.submit(GenerationRequest(prompts[2], 12))
    engine.step()
    assert engine.n_prefilling == 1 and engine.n_pending == 1
    assert engine.cancel(parked) and engine.cancel(queued)
    assert engine.n_prefilling == 0 and engine.n_pending == 0
    mid = engine.submit(GenerationRequest(prompts[3], 12))
    for _ in range(6):
        engine.step()
    assert engine.cancel(mid)
    results: dict[int, list[int]] = {}
    while engine.has_work:
        engine.step()
        results.update(engine.collect())
    results.update(engine.collect())
    assert results[parked] == [] and results[queued] == []
    full_mid = model.generate(prompts[3], 12)
    assert results[mid] == full_mid[: len(results[mid])]
    assert results[survivor] == model.generate(prompts[0], 12)
    # Unknown / already-finished ids are a no-op.
    assert not engine.cancel(survivor)
    assert not engine.cancel(10_000)


# -- paged KV pool -----------------------------------------------------------------


@pytest.mark.parametrize("page_tokens", [1, 3, 16, 64])
def test_paged_engine_matches_dense(model, ragged_prompts, page_tokens):
    """The paged pool is a storage change, never a decoding change:
    token-for-token identical to dense slabs at every page size."""
    requests = lambda: [GenerationRequest(p, 14, eos_id=2) for p in ragged_prompts]
    expected = BatchedEngine(model, max_batch=4).generate(requests())
    engine = BatchedEngine(model, max_batch=4, kv_page_tokens=page_tokens)
    assert engine.generate(requests()) == expected
    stats = engine.kv_stats()
    assert stats["paged"] and stats["pages_in_use"] == 0
    assert stats["reserved_pages"] == 0


def test_paged_chunked_multislot_matches_dense(model, ragged_prompts):
    """Paged + multi-slot chunked admission + unified step forward: the
    full serving configuration reproduces dense tokens exactly."""
    expected = _sequential(model, ragged_prompts, 14, eos_id=2)
    for unified in (True, False):
        engine = BatchedEngine(
            model, max_batch=4, prefill_chunk_tokens=3, prefill_concurrency=4,
            kv_page_tokens=8, unified_step=unified,
        )
        ids = [
            engine.submit(GenerationRequest(p, 14, eos_id=2))
            for p in ragged_prompts[:4]
        ]
        engine.step()
        ids += [
            engine.submit(GenerationRequest(p, 14, eos_id=2))
            for p in ragged_prompts[4:]
        ]
        results: dict[int, list[int]] = {}
        while engine.has_work:
            engine.step()
            results.update(engine.collect())
        assert [results[i] for i in ids] == expected, f"unified={unified}"


def test_page_exhaustion_defers_admission_until_pages_free(model):
    """A request the pool cannot cover waits in the pending queue — no
    error, no slot wasted — and is admitted when a retirement returns
    pages, decoding to exact parity."""
    context = model.config.max_seq_len
    rng = np.random.default_rng(61)
    page = 16
    pages_per_seq = -(-context // page)
    first = list(rng.integers(5, 197, size=30))
    second = list(rng.integers(5, 197, size=20))
    # Budget for exactly one worst-case sequence; both requests carry a
    # near-context token budget, so the second cannot reserve its page
    # quota until the first retires.
    engine = BatchedEngine(
        model, max_batch=4, kv_page_tokens=page, kv_pool_pages=pages_per_seq
    )
    a = engine.submit(GenerationRequest(first, context, eos_id=None))
    b = engine.submit(GenerationRequest(second, context, eos_id=None))
    engine.step()
    assert engine.n_active == 1, "only the first request fits the pool"
    assert engine.n_pending == 1
    stats = engine.kv_stats()
    assert stats["free_pages"] < engine._caches.pages_for(len(second) + context)
    results: dict[int, list[int]] = {}
    while engine.has_work:
        engine.step()
        results.update(engine.collect())
    assert results[a] == model.generate(first, context)
    assert results[b] == model.generate(second, context)
    assert engine.kv_stats()["pages_in_use"] == 0


def test_pool_too_small_for_any_sequence_is_rejected(model):
    with pytest.raises(GenerationError):
        BatchedEngine(model, max_batch=2, kv_page_tokens=16, kv_pool_pages=1)
    with pytest.raises(GenerationError):
        BatchedEngine(model, max_batch=2, kv_page_tokens=0)
    with pytest.raises(GenerationError):
        BatchedEngine(model, max_batch=2, kv_pool_pages=4)  # needs page size


def test_cancel_recycles_pages_immediately(model):
    """Cancelling an active sequence frees its pages and reservation the
    same call, unblocking a page-starved pending request."""
    context = model.config.max_seq_len
    rng = np.random.default_rng(67)
    page = 16
    pages_per_seq = -(-context // page)
    hog = list(rng.integers(5, 197, size=10))
    waiter = list(rng.integers(5, 197, size=12))
    engine = BatchedEngine(
        model, max_batch=4, kv_page_tokens=page, kv_pool_pages=pages_per_seq
    )
    hog_id = engine.submit(GenerationRequest(hog, context, eos_id=None))
    engine.step()
    in_use_before = engine.kv_stats()["pages_in_use"]
    assert in_use_before > 0
    waiter_id = engine.submit(GenerationRequest(waiter, 4, eos_id=None))
    engine.step()
    assert engine.n_pending == 1, "pool exhausted: waiter must queue"
    assert engine.cancel(hog_id)
    assert engine.kv_stats()["pages_in_use"] == 0
    assert engine.kv_stats()["reserved_pages"] == 0
    results: dict[int, list[int]] = {}
    while engine.has_work:
        engine.step()
        results.update(engine.collect())
    results.update(engine.collect())
    assert results[waiter_id] == model.generate(waiter, 4)
    full_hog = model.generate(hog, context)
    assert results[hog_id] == full_hog[: len(results[hog_id])]


def test_paged_memory_scales_with_live_tokens(model):
    """The KV-memory regression floor (also a ci.sh leg): an engine
    provisioned wide but serving staggered arrivals must hold several
    times less KV memory paged than the dense slabs it replaces, at
    identical tokens."""
    rng = np.random.default_rng(71)
    max_batch = 16
    prompts = [
        list(rng.integers(5, 197, size=int(rng.integers(40, 70))))
        for _ in range(12)
    ]

    def staggered(engine):
        results: dict[int, list[int]] = {}
        ids = []
        peak_resident = 0
        pending = list(prompts)
        while pending or engine.has_work:
            if pending:
                ids.append(
                    engine.submit(GenerationRequest(pending.pop(0), 6, eos_id=None))
                )
            for _ in range(4):
                engine.step()
                results.update(engine.collect())
            peak_resident = max(
                peak_resident, engine.kv_stats()["resident_kv_bytes"]
            )
        results.update(engine.collect())
        return [results[i] for i in ids], peak_resident

    dense_tokens, dense_resident = staggered(BatchedEngine(model, max_batch=max_batch))
    paged_tokens, paged_resident = staggered(
        BatchedEngine(model, max_batch=max_batch, kv_page_tokens=16)
    )
    assert paged_tokens == dense_tokens
    ratio = dense_resident / paged_resident
    assert ratio >= 2.0, (
        f"paged pool holds {paged_resident} bytes vs {dense_resident} dense "
        f"({ratio:.2f}x): memory no longer scales with live tokens"
    )


# -- float32 fused-attention fast path ---------------------------------------------


def test_f32_attention_fast_path_token_parity(model, ragged_prompts, monkeypatch):
    """REPRO_F32_ATTN=1 keeps the fused score pipeline in float32; greedy
    tokens must match the float64 default on both the sequential and the
    batched path (argmax margins dwarf the last-ulp drift)."""
    expected = _sequential(model, ragged_prompts, 14, eos_id=2)
    monkeypatch.setenv("REPRO_F32_ATTN", "1")
    got_seq = _sequential(model, ragged_prompts, 14, eos_id=2)
    got_batched = BatchedEngine(model, max_batch=4).generate(
        [GenerationRequest(p, 14, eos_id=2) for p in ragged_prompts]
    )
    assert got_seq == expected
    assert got_batched == expected


def test_f32_attention_keeps_scores_in_float32(model, monkeypatch):
    """The fast path must actually avoid the float64 promotion (the
    default path keeps it, bitwise-pinning recorded outputs)."""
    import repro.nn.transformer as tr

    def logits_dtype():
        caches = [{"k": None, "v": None} for _ in model.blocks]
        out = model._forward_numpy(
            np.asarray([[5, 6, 7]], dtype=np.int64), caches
        )
        return out.dtype

    monkeypatch.delenv("REPRO_F32_ATTN", raising=False)
    assert logits_dtype() == np.float64
    monkeypatch.setenv("REPRO_F32_ATTN", "1")
    assert tr._f32_fused_attention()
    assert logits_dtype() == np.float32


def test_cancel_mid_parked_fleet_keeps_neighbors_intact(model):
    """Cancelling the middle of the parked block compacts the partial
    slabs; both neighbours must still decode to sequential parity."""
    rng = np.random.default_rng(43)
    prompts = [list(rng.integers(5, 197, size=30)) for _ in range(3)]
    engine = BatchedEngine(
        model, max_batch=5, prefill_chunk_tokens=4, prefill_concurrency=3
    )
    engine.submit(GenerationRequest(list(rng.integers(5, 197, size=4)), 50))
    engine.step()
    ids = [engine.submit(GenerationRequest(p, 6, eos_id=2)) for p in prompts]
    engine.step()
    assert engine.n_prefilling == 3
    assert engine.cancel(ids[1])
    assert engine.n_prefilling == 2
    results: dict[int, list[int]] = {}
    while engine.has_work:
        engine.step()
        results.update(engine.collect())
    assert results[ids[0]] == model.generate(prompts[0], 6, eos_id=2)
    assert results[ids[2]] == model.generate(prompts[2], 6, eos_id=2)
    assert results[ids[1]] == []


# -- KV-backend compaction contract ------------------------------------------------


def _write_tokens(caches, slot: int, values: np.ndarray) -> None:
    """Write per-token K/V rows (value v at token t) into ``slot``."""
    n = len(values)
    if isinstance(caches, PagedKVCaches):
        caches.ensure(slot, n)
        cols = caches._token_cols(slot, 0, n)
        for layer in range(len(caches.k)):
            caches.k[layer][:, cols, :] = values[None, :, None]
            caches.v[layer][:, cols, :] = values[None, :, None]
    else:
        for layer in range(len(caches.k)):
            caches.k[layer][slot, :, :n] = values[None, :, None]
            caches.v[layer][slot, :, :n] = values[None, :, None]
    caches.lengths[slot] = n


def _read_tokens(caches, slot: int, n: int) -> np.ndarray:
    if isinstance(caches, PagedKVCaches):
        cols = caches._token_cols(slot, 0, n)
        return caches.k[0][0, cols, 0].copy()
    return caches.k[0][slot, 0, :n, 0].copy()


@pytest.mark.parametrize("paged", [False, True])
def test_move_prefix_contract_updates_lengths(model, paged):
    """Both backends must satisfy one compaction contract: after
    ``move_prefix(src, dst, n)`` the dst holds the n-token prefix AND
    ``lengths[dst] == n`` — callers never patch lengths afterwards."""
    caches = (
        PagedKVCaches(model, max_batch=4, page_tokens=8)
        if paged
        else SlotKVCaches(model, max_batch=4)
    )
    values = np.arange(1.0, 11.0, dtype=np.float32)
    _write_tokens(caches, 1, values)
    caches.lengths[0] = 999  # stale junk the move must overwrite
    caches.move_prefix(1, 0, 10)
    assert caches.lengths[0] == 10
    assert np.array_equal(_read_tokens(caches, 0, 10), values)


@pytest.mark.parametrize("paged", [False, True])
def test_permute_prefixes_contract_updates_lengths(model, paged):
    """``permute_prefixes(base, order, lengths)`` must record each moved
    row's length in the cache on both backends."""
    caches = (
        PagedKVCaches(model, max_batch=4, page_tokens=8)
        if paged
        else SlotKVCaches(model, max_batch=4)
    )
    rows = {1: np.arange(1.0, 6.0, dtype=np.float32),
            2: np.arange(10.0, 22.0, dtype=np.float32),
            3: np.arange(30.0, 33.0, dtype=np.float32)}
    for slot, values in rows.items():
        _write_tokens(caches, slot, values)
    order = [2, 0, 1]  # parked row base+2 completes first
    lengths = [len(rows[1 + i]) for i in order]
    caches.permute_prefixes(1, order, lengths)
    for j, i in enumerate(order):
        values = rows[1 + i]
        assert caches.lengths[1 + j] == len(values)
        assert np.array_equal(_read_tokens(caches, 1 + j, len(values)), values)


def test_token_cols_indexes_only_touched_pages(model):
    """_token_cols must be O(stop - start): a decode-step range on a long
    row may only touch the pages overlapping it."""
    caches = PagedKVCaches(model, max_batch=2, page_tokens=8)
    caches.ensure(0, 70)
    table = caches.tables[0]
    cols = caches._token_cols(0, 61, 63)
    expected = [table[61 // 8] * 8 + 61 % 8, table[62 // 8] * 8 + 62 % 8]
    assert cols.tolist() == expected
    # Cross-page range, and a full-prefix range, stay correct too.
    assert caches._token_cols(0, 7, 9).tolist() == [
        table[0] * 8 + 7, table[1] * 8
    ]
    naive = [table[t // 8] * 8 + t % 8 for t in range(70)]
    assert caches._token_cols(0, 0, 70).tolist() == naive
    # The column map for a suffix touches only the suffix's pages: its
    # size bounds the work done, independent of the prefix length.
    assert len(caches._token_cols(0, 64, 70)) == 6


# -- paged accounting guards -------------------------------------------------------


def test_unreserve_below_zero_raises(model):
    caches = PagedKVCaches(model, max_batch=2, page_tokens=8)
    assert caches.try_reserve(3)
    caches.unreserve(3)
    with pytest.raises(GenerationError, match="accounting bug"):
        caches.unreserve(1)


def test_double_release_raises_instead_of_corrupting(model):
    """A page released more often than referenced must raise the typed
    accounting error, not silently drive pages_in_use negative."""
    caches = PagedKVCaches(model, max_batch=2, page_tokens=8)
    caches.ensure(0, 8)
    # Simulate the accounting bug: two tables alias one page.
    caches.tables[1] = list(caches.tables[0])
    caches.release(0)
    with pytest.raises(GenerationError, match="accounting bug"):
        caches.release(1)


# -- radix prefix cache ------------------------------------------------------------


def _prefix_engine(model, **kwargs):
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("kv_page_tokens", 8)
    return BatchedEngine(model, kv_prefix_cache=True, **kwargs)


def test_prefix_cache_requires_paged_pool(model):
    with pytest.raises(GenerationError, match="kv_page_tokens"):
        BatchedEngine(model, kv_prefix_cache=True)


@pytest.mark.parametrize("chunk", [None, 5])
def test_prefix_cache_hits_and_token_parity(model, chunk):
    """Template-sharing prompts must hit the radix index, skip shared
    prefill work, and still decode token-for-token sequentially."""
    rng = np.random.default_rng(11)
    template = [int(t) for t in rng.integers(5, 197, size=40)]
    prompts = [
        template + [int(t) for t in rng.integers(5, 197, size=5)]
        for _ in range(5)
    ]
    expected = [model.generate(p, 12, eos_id=2) for p in prompts]
    engine = _prefix_engine(
        model, prefill_chunk_tokens=chunk, prefill_concurrency=4
    )
    got = [
        engine.generate([GenerationRequest(p, 12, eos_id=2)])[0]
        for p in prompts
    ]
    assert got == expected
    pc = engine.kv_stats()["prefix_cache"]
    assert pc["hits"] >= 4
    assert pc["shared_tokens"] >= 4 * 40
    stats = engine.kv_stats()
    assert stats["pages_in_use"] == 0 and stats["reserved_pages"] == 0
    assert pc["shared_pinned_pages"] == 0


def test_prefix_cache_copy_on_write_boundary_page(model):
    """An unaligned shared prefix partially shares its boundary page; the
    first write past the shared tokens must CoW exactly that page and
    leave the cached original intact for later matches."""
    rng = np.random.default_rng(13)
    template = [int(t) for t in rng.integers(5, 197, size=43)]  # 5 pages + 3
    # A 5-token suffix makes each prompt exactly 6 full pages, so the
    # boundary page (template[40:43] + suffix[:5]) gets registered and a
    # later prompt can partially share it up to the divergence point.
    prompts = [
        template + [int(t) for t in rng.integers(5, 197, size=5)]
        for _ in range(4)
    ]
    expected = [model.generate(p, 10, eos_id=2) for p in prompts]
    engine = _prefix_engine(model)
    got = [
        engine.generate([GenerationRequest(p, 10, eos_id=2)])[0]
        for p in prompts
    ]
    assert got == expected
    pc = engine.kv_stats()["prefix_cache"]
    assert pc["cow_copies"] >= 1
    stats = engine.kv_stats()
    assert stats["pages_in_use"] == 0 and stats["reserved_pages"] == 0


def test_prefix_cache_shared_admission_fits_small_pool(model):
    """Two template-sharing requests must fit a pool too small for two
    private copies: admission charges only the unshared suffix."""
    rng = np.random.default_rng(17)
    template = [int(t) for t in rng.integers(5, 197, size=48)]  # 6 pages
    # pages_per_seq = ceil(80 / 8) = 10; pool of 12 cannot hold two
    # private 7+ page sequences, but can hold one + a shared suffix.
    engine = _prefix_engine(model, max_batch=2, kv_pool_pages=12)
    warm = template + [7]
    engine.generate([GenerationRequest(warm, 4, eos_id=2)])
    prompts = [template + [9], template + [11]]
    expected = [model.generate(p, 4, eos_id=2) for p in prompts]
    ids = [engine.submit(GenerationRequest(p, 4, eos_id=2)) for p in prompts]
    engine.step()
    # Sharing let both enter the fleet in one step; without it the pool
    # could only cover one.
    assert engine.n_active + engine.n_prefilling == 2
    results: dict[int, list[int]] = {}
    while engine.has_work:
        engine.step()
        results.update(engine.collect())
    assert [results[i] for i in ids] == expected


def test_prefix_cache_evicts_lru_pages_under_pressure(model):
    """Distinct prompts on a tiny pool must recycle cached pages through
    LRU eviction instead of failing allocation."""
    engine = _prefix_engine(model, max_batch=2, kv_pool_pages=11)
    for i in range(6):
        rng = np.random.default_rng(100 + i)
        p = [int(t) for t in rng.integers(5, 197, size=50)]
        assert (
            engine.generate([GenerationRequest(p, 6, eos_id=2)])[0]
            == model.generate(p, 6, eos_id=2)
        )
    stats = engine.kv_stats()
    assert stats["prefix_cache"]["evicted_pages"] > 0
    assert stats["pages_in_use"] == 0 and stats["reserved_pages"] == 0


def test_prefix_cache_cancel_mid_prefill_releases_pins(model):
    """Cancelling a parked shared-prefix request must return its borrowed
    pages and pins — nothing may stay pinned after the trace drains."""
    rng = np.random.default_rng(19)
    template = [int(t) for t in rng.integers(5, 197, size=40)]
    engine = _prefix_engine(
        model, prefill_chunk_tokens=4, prefill_concurrency=2
    )
    engine.generate([GenerationRequest(template + [8], 4, eos_id=2)])
    # Occupy a decode slot so the shared arrival parks mid-prefill.
    engine.submit(GenerationRequest(list(rng.integers(5, 197, size=6)), 40))
    engine.step()
    # 12 unshared tokens at chunk 4 keep the victim parked for several
    # steps after its 40-token shared skip.
    suffix = [int(t) for t in rng.integers(5, 197, size=12)]
    victim = engine.submit(GenerationRequest(template + suffix, 30))
    engine.step()
    assert engine.n_prefilling == 1
    assert engine.cancel(victim)
    while engine.has_work:
        engine.step()
    engine.collect()
    stats = engine.kv_stats()
    assert stats["pages_in_use"] == 0 and stats["reserved_pages"] == 0
    assert stats["prefix_cache"]["shared_pinned_pages"] == 0


def test_clear_prefix_cache_returns_pages_to_free_list(model):
    rng = np.random.default_rng(23)
    template = [int(t) for t in rng.integers(5, 197, size=32)]
    engine = _prefix_engine(model)
    for suffix in ([5], [7], [9]):
        engine.generate([GenerationRequest(template + suffix, 4, eos_id=2)])
    stats = engine.kv_stats()
    assert stats["prefix_cache"]["cached_pages"] > 0
    freed = engine.clear_prefix_cache()
    assert freed == stats["prefix_cache"]["cached_pages"]
    cleared = engine.kv_stats()
    assert cleared["prefix_cache"]["cached_pages"] == 0
    assert cleared["free_list_pages"] == cleared["allocated_pages"]
    # The next identical prompt re-prefills (cold) and re-registers.
    engine.generate([GenerationRequest(template + [5], 4, eos_id=2)])
    assert engine.kv_stats()["prefix_cache"]["cached_pages"] > 0
