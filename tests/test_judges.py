"""Tests for the four judges and the swap protocol."""

import numpy as np
import pytest

from repro.data.defects import build_pair
from repro.data.instruction_pair import InstructionPair
from repro.errors import JudgeError
from repro.judges import (
    ChatGPTJudge,
    GPT4Judge,
    HumanPanel,
    PandaLMJudge,
    Verdict,
    compare_with_swap,
    evaluate_model_on_testset,
    win_rates,
)
from repro.judges.protocol import merge_swapped
from repro.textgen.responses import detokenize, ideal_response, terse_response
from repro.textgen.tasks import TaskInstance, sample_instance


@pytest.fixture()
def instance():
    return TaskInstance("add_numbers", {"a": 3, "b": 4})


def _pair(instance, response_tokens):
    from repro.textgen.tasks import render_instruction
    tokens, _ = render_instruction(instance)
    return InstructionPair(
        instruction=detokenize(tokens),
        response=detokenize(response_tokens),
        provenance=instance,
    )


# -- ChatGPT judge -----------------------------------------------------------


def test_chatgpt_prefers_ideal_over_terse(instance, rng):
    judge = ChatGPTJudge(noise_sigma=0.0)
    good = judge.rate(_pair(instance, ideal_response(instance)), rng)
    plain = judge.rate(_pair(instance, terse_response(instance)), rng)
    assert good.score > plain.score
    assert good.score >= 4.5
    assert plain.score < 4.5


def test_chatgpt_score_bounds(small_dataset, rng):
    judge = ChatGPTJudge()
    ratings = judge.rate_dataset(small_dataset, rng)
    assert all(0.0 <= r <= 5.0 for r in ratings)


def test_chatgpt_fig4_calibration():
    # The "before" distribution must reproduce Fig. 4(a): mean near 3.95
    # and a minority (~17.7%) of pairs at or above 4.5.
    from repro.data import generate_dataset
    ds = generate_dataset(np.random.default_rng(12), 2000)
    judge = ChatGPTJudge()
    ratings = judge.rate_dataset(ds, np.random.default_rng(0))
    mean = float(np.mean(ratings))
    high = judge.high_quality_fraction(ratings)
    assert 3.7 < mean < 4.2
    assert 0.10 < high < 0.26


def test_chatgpt_rationale_mentions_violations(instance, rng):
    judge = ChatGPTJudge()
    pair = build_pair(instance, (), ("resp_terse",), rng, polite=False)
    rating = judge.rate(pair, rng)
    assert "richness" in rating.rationale


# -- PandaLM judge -------------------------------------------------------------


def test_pandalm_clear_gap_is_decisive(instance, rng):
    judge = PandaLMJudge(noise_sigma=0.5)
    good = _pair(instance, ideal_response(instance))
    bad = _pair(instance, ["9", "."])
    verdict = compare_with_swap(judge, good.instruction, good, bad, rng)
    assert verdict is Verdict.WIN


def test_pandalm_identical_candidates_tie(instance, rng):
    judge = PandaLMJudge(noise_sigma=0.0)
    a = _pair(instance, ideal_response(instance))
    b = _pair(instance, ideal_response(instance))
    assert compare_with_swap(judge, a.instruction, a, b, rng) is Verdict.TIE


def test_pandalm_position_bias_cancelled_by_swap(instance):
    # With a huge position bias but equal quality, single-order judgements
    # contradict each other and the protocol resolves them to a tie.
    judge = PandaLMJudge(noise_sigma=0.0, position_bias=50.0)
    a = _pair(instance, ideal_response(instance))
    b = _pair(instance, ideal_response(instance))
    rng = np.random.default_rng(0)
    first = judge.judge_single_order(a.instruction, a, b, rng)
    assert first.verdict is Verdict.WIN  # biased
    merged = compare_with_swap(judge, a.instruction, a, b, rng)
    assert merged is Verdict.TIE


def test_pandalm_rejects_mismatched_instructions(instance, rng):
    judge = PandaLMJudge()
    a = _pair(instance, ideal_response(instance))
    other = InstructionPair(instruction="different", response="x")
    with pytest.raises(JudgeError):
        judge.judge_single_order(a.instruction, a, other, rng)


# -- GPT-4 judge -----------------------------------------------------------------


def test_gpt4_scores_are_bounded(instance, rng):
    judge = GPT4Judge()
    a = _pair(instance, ideal_response(instance))
    b = _pair(instance, terse_response(instance))
    judgement = judge.judge_single_order(a.instruction, a, b, rng)
    assert 0.0 <= judgement.score_first <= 10.0
    assert 0.0 <= judgement.score_second <= 10.0
    assert judgement.verdict in (Verdict.WIN, Verdict.TIE)


def test_pandalm_agrees_with_gpt4_mostly(rng):
    # PandaLM reaches ~88% agreement with GPT-4 in the paper.
    pandalm, gpt4 = PandaLMJudge(), GPT4Judge()
    agree = total = 0
    sample_rng = np.random.default_rng(5)
    for _ in range(120):
        instance = sample_instance(sample_rng)
        good = _pair(instance, ideal_response(instance))
        bad = build_pair(instance, (), ("resp_terse",), sample_rng, polite=False)
        bad = InstructionPair(
            instruction=good.instruction, response=bad.response,
            provenance=instance,
        )
        v1 = compare_with_swap(pandalm, good.instruction, good, bad, rng)
        v2 = compare_with_swap(gpt4, good.instruction, good, bad, rng)
        agree += v1 is v2
        total += 1
    assert agree / total > 0.7


# -- swap merging ---------------------------------------------------------------


@pytest.mark.parametrize("first,swapped,expected", [
    (Verdict.WIN, Verdict.LOSE, Verdict.WIN),    # consistent (swapped view)
    (Verdict.WIN, Verdict.WIN, Verdict.TIE),     # conflict -> tie
    (Verdict.WIN, Verdict.TIE, Verdict.WIN),     # win + tie -> win
    (Verdict.LOSE, Verdict.TIE, Verdict.LOSE),   # lose + tie -> lose
    (Verdict.TIE, Verdict.TIE, Verdict.TIE),
])
def test_merge_swapped_table(first, swapped, expected):
    assert merge_swapped(first, swapped) is expected


# -- win rates -----------------------------------------------------------------------


def test_win_rate_formulas():
    verdicts = [Verdict.WIN] * 5 + [Verdict.TIE] * 3 + [Verdict.LOSE] * 2
    summary = win_rates(verdicts)
    assert summary.wr1 == pytest.approx((5 + 1.5) / 10)
    assert summary.wr2 == pytest.approx(5 / 7)
    assert summary.qs == pytest.approx(8 / 10)
    assert summary.total == 10


def test_win_rate_degenerate_cases():
    all_ties = win_rates([Verdict.TIE] * 4)
    assert all_ties.wr2 == 0.0
    assert all_ties.qs == 1.0
    empty = win_rates([])
    assert empty.wr1 == 0.0


def test_evaluate_model_on_testset_validates(rng):
    judge = PandaLMJudge()
    with pytest.raises(JudgeError):
        evaluate_model_on_testset(judge, [], [InstructionPair("a", "b")], rng)


# -- human panel -------------------------------------------------------------------


def test_human_panel_rates_all_raters(instance, rng):
    panel = HumanPanel()
    scores = panel.rate_response(_pair(instance, ideal_response(instance)), rng)
    assert set(scores) == {"R1", "R2", "R3"}
    assert all(0 <= v <= 100 for v in scores.values())


def test_human_panel_prefers_better_responses(instance):
    panel = HumanPanel()
    rows_good = [
        panel.rate_response(_pair(instance, ideal_response(instance)),
                            np.random.default_rng(i))
        for i in range(20)
    ]
    rows_bad = [
        panel.rate_response(_pair(instance, ["9", "."]),
                            np.random.default_rng(i))
        for i in range(20)
    ]
    avg_good = HumanPanel.average_by_rater(rows_good)["Avg."]
    avg_bad = HumanPanel.average_by_rater(rows_bad)["Avg."]
    assert avg_good > avg_bad + 10


def test_human_average_by_rater_empty():
    assert HumanPanel.average_by_rater([]) == {}
