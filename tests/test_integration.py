"""CI-scale integration tests: the full chain wired together.

These run the real pipeline end-to-end at the ``ci`` scale preset; the
tiny budgets make models incompetent, so assertions target *mechanics*
(shapes, counts, invariants), not model quality — that is what the
benchmark harness measures at the ``bench`` scale.
"""

import numpy as np
import pytest

from repro.config import get_scale
from repro.judges import ChatGPTJudge, HumanPanel, PandaLMJudge
from repro.pipeline import Workbench


@pytest.fixture(scope="module")
def bench(tmp_path_factory):
    return Workbench(
        scale=get_scale("ci"), seed=3,
        cache_dir=tmp_path_factory.mktemp("ci-artifacts"),
    )


def test_campaign_feeds_coach_training(bench):
    campaign = bench.campaign()
    assert campaign.records
    assert campaign.instruction_revised_count <= len(campaign.records)
    coach = bench.coach(alpha=0.5)
    assert coach.model is not None
    assert 0 < len(coach.trained_instructions) <= len(campaign.records)


def test_revised_dataset_is_parallel(bench):
    original = bench.alpaca_dataset()
    revised, stats = bench.coachlm_revised_dataset(alpha=0.5)
    assert len(revised) == len(original)
    assert stats is None or stats.total == len(original)


def test_model_zoo_builds_and_evaluates(bench):
    summary = bench.evaluate("alpaca", "vicuna80")
    assert summary.total == len(bench.testset("vicuna80"))
    assert 0.0 <= summary.wr1 <= 1.0
    assert 0.0 <= summary.qs <= 1.0


def test_cached_responses_are_reused(bench):
    first = bench.model_responses("alpaca", "vicuna80")
    second = bench.model_responses("alpaca", "vicuna80")
    assert [p.response for p in first] == [p.response for p in second]


def test_judges_run_over_real_generations(bench, rng):
    responses = bench.model_responses("alpaca", "vicuna80")
    chatgpt = ChatGPTJudge()
    ratings = [chatgpt.rate(p, rng).score for p in responses[:5]]
    assert all(0 <= r <= 5 for r in ratings)
    panel = HumanPanel()
    scores = panel.rate_response(responses[0], rng)
    assert set(scores) == {"R1", "R2", "R3"}


def test_table9_pipeline_slice(bench):
    """Two models, one test set — the Table IX machinery end to end."""
    judge = PandaLMJudge()
    rows = {}
    for key in ("alpaca", "alpaca-coachlm"):
        rows[key] = bench.evaluate(key, "vicuna80", judge)
    assert set(rows) == {"alpaca", "alpaca-coachlm"}
    for summary in rows.values():
        assert summary.wins + summary.ties + summary.losses == summary.total


def test_backbone_caching_roundtrip(bench):
    a = bench.backbone("llama-sim")
    fresh = Workbench(
        scale=get_scale("ci"), seed=3, cache_dir=bench.cache.root.parent,
    )
    fresh.cache = bench.cache
    b = fresh.backbone("llama-sim")
    for (_, x), (_, y) in zip(
        sorted(a.state_dict().items()), sorted(b.state_dict().items())
    ):
        assert np.array_equal(x, y)
