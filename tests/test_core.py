"""Tests for the CoachLM core: selection, training, postprocess, facade."""

import numpy as np
import pytest

from repro.core import (
    CoachLM,
    RevisionOutcome,
    clean_revised_tokens,
    revision_statistics,
    select_by_alpha,
    validate_revision,
)
from repro.core.training import CoachTrainingConfig, records_to_examples, train_coach_model
from repro.data import InstructionDataset, generate_dataset
from repro.data.defects import build_pair
from repro.data.instruction_pair import InstructionPair, Origin
from repro.errors import ConfigError, ModelError
from repro.experts import ExpertReviser, GROUP_A
from repro.experts.revision import RevisionRecord
from repro.nn import TransformerConfig, TransformerLM
from repro.textgen.tasks import sample_instance


def _make_records(n: int, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    reviser = ExpertReviser(context_add_rate=0.0)
    records = []
    i = 0
    while len(records) < n and i < n * 20:
        i += 1
        instance = sample_instance(rng)
        try:
            pair = build_pair(
                instance, (), ("resp_terse",), rng, polite=False,
                pair_id=f"rec-{i}",
            )
        except Exception:
            continue
        record = reviser.revise(pair, rng, GROUP_A[0], "qa")
        if record is not None:
            records.append(record)
    return records


# -- selection -----------------------------------------------------------------


def test_select_by_alpha_bounds():
    records = _make_records(10)
    assert select_by_alpha(records, 0.0) == []
    assert len(select_by_alpha(records, 1.0)) == 10
    assert len(select_by_alpha(records, 0.5)) == 5


def test_select_by_alpha_orders_by_distance():
    records = _make_records(10)
    selected = select_by_alpha(records, 0.4)
    cutoff = min(r.edit_distance for r in selected)
    rest = [r for r in records if r not in selected]
    assert all(r.edit_distance <= cutoff for r in rest)


def test_select_by_alpha_validates():
    with pytest.raises(ConfigError):
        select_by_alpha([], 1.5)


def test_select_by_alpha_deterministic_ties():
    records = _make_records(8)
    a = [r.original.pair_id for r in select_by_alpha(records, 0.5)]
    b = [r.original.pair_id for r in select_by_alpha(records, 0.5)]
    assert a == b


# -- coach training ---------------------------------------------------------------


@pytest.fixture(scope="module")
def micro_backbone(tokenizer):
    cfg = TransformerConfig(vocab_size=tokenizer.vocab_size, d_model=32,
                            n_layers=1, n_heads=4, max_seq_len=160)
    return TransformerLM(cfg, np.random.default_rng(0))


def test_records_to_examples_skips_overlong(tokenizer):
    records = _make_records(5)
    examples = records_to_examples(tokenizer, records, max_seq_len=10)
    assert examples == []
    examples = records_to_examples(tokenizer, records, max_seq_len=160)
    assert len(examples) == 5


def test_train_coach_model_requires_records(micro_backbone, tokenizer, rng):
    with pytest.raises(ModelError):
        train_coach_model(micro_backbone, tokenizer, [], rng)


def test_train_coach_model_returns_merged(micro_backbone, tokenizer, rng):
    records = _make_records(6)
    model, stats = train_coach_model(
        micro_backbone, tokenizer, records, rng,
        CoachTrainingConfig(epochs=1, batch_size=4),
    )
    assert stats.step_losses
    from repro.nn.lora import LoRALinear
    assert not any(
        isinstance(b.attn.qkv, LoRALinear) for b in model.blocks
    )
    # Backbone untouched and trainable params restored after merge.
    assert model.trainable_parameters()


def test_coachlm_alpha_zero_uses_raw_backbone(micro_backbone, tokenizer, rng):
    coach = CoachLM.train(micro_backbone, tokenizer, _make_records(4), rng,
                          alpha=0.0)
    assert coach.trained_instructions == frozenset()


# -- post-processing --------------------------------------------------------------


def test_clean_revised_tokens_strips_garble():
    assert clean_revised_tokens(["red", "zq1", "fox"]) == ["red", "fox"]


def test_clean_revised_tokens_collapses_repeats():
    assert clean_revised_tokens(["red", "red", "fox"]) == ["red", "fox"]


def test_clean_revised_tokens_trims_tail_loops():
    tokens = ["the", "fox", "runs", ".", "runs", ".", "runs", "."]
    cleaned = clean_revised_tokens(tokens)
    assert cleaned == ["the", "fox", "runs", "."]


def test_validate_revision_rules():
    assert validate_revision(["add", "3"], ["7", "."])
    assert not validate_revision([], ["7", "."])
    assert not validate_revision(["add", "3"], ["7"])
    assert not validate_revision(["x"] * 100, ["7", "."])


# -- facade --------------------------------------------------------------------------


def test_revise_pair_leakage_skip(micro_backbone, tokenizer):
    coach = CoachLM(micro_backbone, tokenizer,
                    trained_instructions=frozenset({"p-1"}))
    pair = InstructionPair("add 3 and 4", "7 .", pair_id="p-1")
    revised, outcome = coach.revise_pair(pair)
    assert outcome is RevisionOutcome.LEAKAGE_SKIPPED
    assert revised is pair


def test_revise_pair_prompt_too_long(micro_backbone, tokenizer):
    coach = CoachLM(micro_backbone, tokenizer)
    pair = InstructionPair(" ".join(["red"] * 200), "7 .", pair_id="p-2")
    revised, outcome = coach.revise_pair(pair)
    assert outcome is RevisionOutcome.PROMPT_TOO_LONG


def test_revise_pair_invalid_output_falls_back(micro_backbone, tokenizer):
    # An untrained backbone cannot produce the coach format: the pipeline
    # must fall back to the original pair, reproducing the paper's ~1.3%
    # invalid-output replacement policy.
    coach = CoachLM(micro_backbone, tokenizer, copy_bias=0.0)
    pair = InstructionPair("add 3 and 4", "7 .", pair_id="p-3")
    revised, outcome = coach.revise_pair(pair)
    if outcome is RevisionOutcome.INVALID_OUTPUT:
        assert revised is pair
    else:
        assert outcome in (
            RevisionOutcome.REVISED, RevisionOutcome.UNCHANGED
        )


def test_revise_dataset_preserves_order_and_ids(micro_backbone, tokenizer):
    coach = CoachLM(micro_backbone, tokenizer)
    ds = generate_dataset(np.random.default_rng(1), 12)
    revised, stats = coach.revise_dataset(ds)
    assert len(revised) == len(ds)
    assert [p.pair_id for p in revised] == [p.pair_id for p in ds]
    assert stats.total == 12


def test_induction_followers_prefers_bigram():
    followers = dict(CoachLM._induction_followers(
        [10, 11, 12, 10, 11, 13], [10, 11]
    ))
    assert followers[12] == 1.0  # bigram match (10, 11) -> 12
    assert followers[13] == 1.0  # bigram match at the second site


def test_revision_stats_fractions():
    from repro.core.coachlm import RevisionStats
    stats = RevisionStats()
    for _ in range(3):
        stats.record(RevisionOutcome.REVISED)
    stats.record(RevisionOutcome.INVALID_OUTPUT)
    assert stats.fraction(RevisionOutcome.REVISED) == pytest.approx(0.75)


# -- Table VII statistics ----------------------------------------------------------


def test_revision_statistics_known_values():
    original = InstructionDataset([
        InstructionPair("a b", "x y", pair_id="1"),
        InstructionPair("c d", "z w", pair_id="2"),
    ])
    revised = InstructionDataset([
        InstructionPair("a b", "x y q", pair_id="1"),       # +1 word
        InstructionPair("c d e", "z w", pair_id="2"),        # +1 instr word
    ])
    stats = revision_statistics(original, revised)
    assert stats.response_edit_distance == pytest.approx(0.5)
    assert stats.instruction_edit_distance == pytest.approx(0.5)
    assert stats.responses_changed == 1
    assert stats.instructions_changed == 1
    rows = stats.rows()
    assert rows[0]["dataset"] == "Original"


def test_revision_statistics_validates_parallel():
    from repro.errors import DatasetError
    a = InstructionDataset([InstructionPair("x", "y")])
    b = InstructionDataset([])
    with pytest.raises(DatasetError):
        revision_statistics(a, b)
