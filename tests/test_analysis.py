"""Tests for histograms, linear fits and table rendering."""

import pytest

from repro.analysis import (
    LinearFit,
    RatingHistogram,
    build_rating_histogram,
    fit_line,
    format_table,
)
from repro.errors import ReproError


def test_histogram_counts_and_mean():
    hist = build_rating_histogram([4.5, 4.5, 3.0, 2.0], bin_width=0.5)
    assert hist.total == 4
    assert hist.mean == pytest.approx(3.5)
    assert hist.high_quality_fraction == pytest.approx(0.5)


def test_histogram_empty_raises():
    with pytest.raises(ReproError):
        build_rating_histogram([])


def test_histogram_bad_width_raises():
    with pytest.raises(ReproError):
        build_rating_histogram([1.0], bin_width=0)


def test_histogram_render_contains_stats():
    hist = build_rating_histogram([5.0, 4.0], bin_width=1.0)
    text = hist.render(title="demo")
    assert "demo" in text
    assert "mean=4.50" in text


def test_fit_line_exact():
    fit = fit_line([0, 1, 2, 3], [1, 3, 5, 7])
    assert fit.slope == pytest.approx(2.0)
    assert fit.intercept == pytest.approx(1.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.predict(10) == pytest.approx(21.0)
    assert fit.solve_for_y(21.0) == pytest.approx(10.0)


def test_fit_line_r_squared_below_one_with_noise():
    fit = fit_line([0, 1, 2, 3], [1, 3, 4.5, 7.5])
    assert 0.9 < fit.r_squared < 1.0


def test_fit_line_validations():
    with pytest.raises(ReproError):
        fit_line([1], [2])
    with pytest.raises(ReproError):
        fit_line([1, 2], [3])
    flat = LinearFit(slope=0.0, intercept=1.0, r_squared=1.0)
    with pytest.raises(ReproError):
        flat.solve_for_y(5.0)


def test_format_table_alignment():
    text = format_table(
        ["model", "WR1"],
        [["alpaca", "48.0%"], ["alpaca-coachlm", "67.7%"]],
        title="Table IX",
    )
    lines = text.splitlines()
    assert lines[0] == "Table IX"
    assert "alpaca-coachlm" in text
    header_cols = lines[1].index("WR1")
    assert lines[4].index("67.7%") == header_cols
