"""Network-fault fuzz: client + journal + front-end under random faults.

Every scenario builds a fresh revision service behind a seeded
:class:`~repro.serving.faults.FaultyProxy` and drives the full dataset
through :class:`~repro.serving.httpclient.RevisionHTTPClient` under a
random :class:`NetworkFaultPlan` — connection resets mid-response,
truncated bodies, slow-loris stalls, 503 bursts — with a crash-safe
:class:`RunJournal` underneath.  Some scenarios additionally ``SIGKILL``
the client process mid-run (a forked child) and resume from its journal.

Invariants asserted for every schedule:

* **Exactly-once resolution** — every pair ends with exactly one
  terminal result, and the server's ``duplicate_results`` stays 0.
* **Token parity** — final texts and outcomes match the offline
  ``coach.revise_pair`` reference, and the server's engine decoded
  exactly the clean-run token count: at-least-once wire retries never
  become at-least-twice decodes (the dedup cache absorbs them).
* **Bounded give-up** — a request that spends its retry budget fails
  with the typed :class:`RetryBudgetExceededError`; the journal lets
  the next round finish the tail without redoing the finished prefix.

Scenarios are generated from ``seed = REPRO_FUZZ_SEED + index``; a
failure prints the exact one-scenario reproduction command.  The CI leg
(``REPRO_FUZZ_NETWORK=on``) runs the full budget
(``REPRO_NETWORK_SCENARIOS``, default 30); a plain pytest run keeps a
4-scenario smoke so the harness never rots.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.config import ServingConfig
from repro.core.coachlm import CoachLM
from repro.data import generate_dataset
from repro.errors import RetryBudgetExceededError
from repro.llm.tokenizer import build_tokenizer
from repro.nn import TransformerConfig, TransformerLM
from repro.serving import (
    NetworkFaultPlan,
    FaultyProxy,
    RevisionHTTPClient,
    RevisionHTTPFrontend,
    RevisionServer,
    RunJournal,
    ServingMetrics,
    dataset_fingerprint,
)

_NETWORK_ON = os.environ.get("REPRO_FUZZ_NETWORK", "") in ("1", "on", "true")
_N_SCENARIOS = int(
    os.environ.get("REPRO_NETWORK_SCENARIOS", "30" if _NETWORK_ON else "4")
)
MASTER_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20240311"))

#: At most this many journal-resumed rounds through the faulty proxy
#: before the final round goes direct — guarantees termination.
_MAX_FAULTY_ROUNDS = 3


@pytest.fixture(scope="module")
def coach():
    tokenizer = build_tokenizer()
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=32,
        n_layers=1,
        n_heads=4,
        max_seq_len=192,
    )
    model = TransformerLM(config, np.random.default_rng(9))
    return CoachLM(model, tokenizer)


@pytest.fixture(scope="module")
def pairs():
    return list(generate_dataset(np.random.default_rng(77), 8))


@pytest.fixture(scope="module")
def reference(coach, pairs):
    return [coach.revise_pair(pair) for pair in pairs]


@pytest.fixture(scope="module")
def clean_engine_tokens(coach, pairs):
    """Decode tokens a clean served run spends — the exactly-once bar."""
    server = RevisionServer(coach, ServingConfig(max_batch=4))
    with RevisionHTTPFrontend(server) as frontend:
        client = RevisionHTTPClient(frontend.address, timeout_s=30.0)
        client.revise_pairs(pairs)
    return server.metrics.engine_tokens


def _kill_child_midrun(proxy_address, pairs, journal_path, seed, kill_after):
    """Fork a client child that SIGKILLs itself after k journaled DONEs."""
    pid = os.fork()
    if pid == 0:
        try:
            original = RunJournal.record_done
            state = {"n": 0}

            def killing_record_done(self, *args, **kwargs):
                original(self, *args, **kwargs)
                state["n"] += 1
                if state["n"] >= kill_after:
                    os.kill(os.getpid(), signal.SIGKILL)

            RunJournal.record_done = killing_record_done
            client = RevisionHTTPClient(
                proxy_address,
                timeout_s=1.0,
                max_attempts=8,
                backoff_base_s=0.005,
                backoff_cap_s=0.05,
                seed=seed,
            )
            with RunJournal(journal_path) as journal:
                client.revise_pairs(pairs, journal=journal)
        except BaseException:
            pass
        finally:
            os._exit(0)
    os.waitpid(pid, 0)


@pytest.mark.parametrize("scenario_index", range(_N_SCENARIOS))
def test_network_fault_schedule_preserves_invariants(
    scenario_index, coach, pairs, reference, clean_engine_tokens, tmp_path
):
    seed = MASTER_SEED + scenario_index
    repro_hint = (
        f"reproduce with: REPRO_FUZZ_SEED={seed} REPRO_NETWORK_SCENARIOS=1 "
        "python -m pytest tests/test_fuzz_network.py -q"
    )
    rng = np.random.default_rng(seed)
    plan = NetworkFaultPlan.from_seed(
        seed,
        n_connections=int(rng.integers(6, 28)),
        p_fault=float(rng.uniform(0.2, 0.6)),
        max_after_bytes=int(rng.integers(50, 700)),
        stall_s=2.0,
        retry_after_s=0.02,
    )
    kill_midrun = scenario_index % 4 == 3
    journal_path = tmp_path / f"net-{seed}.jsonl"
    metrics = ServingMetrics()
    give_ups = 0

    server = RevisionServer(coach, ServingConfig(max_batch=4))
    with RevisionHTTPFrontend(server) as frontend:
        host, port = frontend.httpd.server_address[:2]
        with FaultyProxy(host, port, plan) as proxy:
            if kill_midrun:
                _kill_child_midrun(
                    proxy.address, pairs, journal_path, seed,
                    kill_after=1 + int(rng.integers(0, len(pairs) - 1)),
                )
            client = RevisionHTTPClient(
                proxy.address,
                timeout_s=1.0,
                max_attempts=8,
                backoff_base_s=0.005,
                backoff_cap_s=0.05,
                metrics=metrics,
                seed=seed,
            )
            results = None
            for _round in range(_MAX_FAULTY_ROUNDS):
                try:
                    with RunJournal(journal_path) as journal:
                        results = client.revise_pairs(pairs, journal=journal)
                    break
                except RetryBudgetExceededError:
                    # Typed give-up: the journal holds the finished
                    # prefix; the next round resumes, never redoes.
                    give_ups += 1
        if results is None:
            # Pathological schedule: finish the tail on a clean path,
            # still resuming from the same journal.
            direct = RevisionHTTPClient(
                frontend.address, timeout_s=30.0, metrics=metrics, seed=seed
            )
            with RunJournal(journal_path) as journal:
                results = direct.revise_pairs(pairs, journal=journal)

        # -- exactly-once, parity, bounded give-up -----------------------------
        assert len(results) == len(pairs), repro_hint
        assert all(result is not None for result in results), repro_hint
        got = [
            (r.pair.instruction, r.pair.response, r.outcome) for r in results
        ]
        want = [
            (p.instruction, p.response, o.value) for p, o in reference
        ]
        assert got == want, repro_hint
        assert server.metrics.duplicate_results == 0, repro_hint
        # At-least-once retries never became at-least-twice decodes:
        # the server spent exactly the clean run's decode tokens.
        assert server.metrics.engine_tokens == clean_engine_tokens, repro_hint
        # Give-up is bounded by the round budget and always typed.
        assert give_ups <= _MAX_FAULTY_ROUNDS, repro_hint
        assert metrics.gave_up == give_ups, repro_hint
        # The journal holds every pair exactly once at the end.
        with RunJournal(journal_path) as journal:
            replay = journal.open_run(
                client._journal_hash("http_revise", None),
                dataset_fingerprint(pairs),
            )
        assert replay.pairs_skipped == len(pairs), repro_hint
        assert not replay.interrupted, repro_hint
