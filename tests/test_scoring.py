"""Tests for the teacher-forced scoring engine and repro.scoring.

Three contracts are pinned here.  **Bitwise parity**: every per-token
logprob from :meth:`BatchedEngine.score` is bit-for-bit identical to the
sequential :meth:`TransformerLM.sequence_logprobs` reference, across
ragged lengths, dense slabs and every paged KV size — batching lives at
the intake layer, never in the arithmetic.  **Zero KV footprint**: score
jobs occupy no slot, page or reservation, so mixed score/revise traffic
leaks nothing.  **Key-space isolation**: a ``score`` and a ``revise`` of
the same content are different computations and must never dedup or
cache-hit onto each other (the directed kind-collision regression).
"""

from __future__ import annotations

import json
import math
import urllib.request
from collections import Counter

import numpy as np
import pytest

from repro.config import ServingConfig
from repro.core.coachlm import CoachLM, RevisionOutcome
from repro.data import generate_dataset
from repro.data.instruction_pair import InstructionPair
from repro.errors import GenerationError, ScoringError
from repro.nn import (
    BatchedEngine,
    GenerationRequest,
    ScoringRequest,
    SequenceScore,
    TransformerConfig,
    TransformerLM,
)
from repro.quality import PERPLEXITY_DIMENSION, CriteriaScorer
from repro.scoring import (
    PairIFD,
    conditioned_request,
    dataset_ifd,
    pair_ifd,
    rank_by_ifd,
    review_revision,
    score_pair_ifd,
    select_top_k,
    self_review_revise,
    unconditioned_request,
)
from repro.serving import (
    CachedRevision,
    CachedScore,
    OUTCOME_SCORED,
    RevisionHTTPFrontend,
    RevisionLRUCache,
    RevisionServer,
    SOURCE_CACHE,
    SOURCE_DEDUP,
    SOURCE_ENGINE,
    revision_key,
    score_key,
)

PAGE_SIZES = (1, 3, 16, 64)


@pytest.fixture(scope="module")
def engine_model():
    config = TransformerConfig(
        vocab_size=131, d_model=32, n_layers=2, n_heads=4, max_seq_len=64
    )
    return TransformerLM(config, np.random.default_rng(1729))


@pytest.fixture(scope="module")
def coach(tokenizer):
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=32,
        n_layers=1,
        n_heads=4,
        max_seq_len=192,
    )
    model = TransformerLM(config, np.random.default_rng(9))
    return CoachLM(model, tokenizer)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(np.random.default_rng(77), 10)


def _ragged_requests(rng: np.random.Generator, n: int, context: int):
    requests = []
    for _ in range(n):
        n_prompt = int(rng.integers(1, context - 8))
        n_completion = int(rng.integers(1, context - n_prompt))
        requests.append(
            ScoringRequest(
                prompt_ids=[int(t) for t in rng.integers(3, 131, size=n_prompt)],
                completion_ids=[
                    int(t) for t in rng.integers(3, 131, size=n_completion)
                ],
            )
        )
    return requests


# -- sequential reference --------------------------------------------------------


def test_sequence_logprobs_shape_and_finiteness(engine_model):
    logprobs = engine_model.sequence_logprobs([5, 6, 7], [8, 9])
    assert logprobs.shape == (2,)
    assert np.all(np.isfinite(logprobs))
    assert np.all(logprobs <= 0.0)


def test_sequence_logprobs_validation(engine_model):
    with pytest.raises(GenerationError):
        engine_model.sequence_logprobs([], [1, 2])
    with pytest.raises(GenerationError):
        engine_model.sequence_logprobs([1, 2], [])
    context = engine_model.config.max_seq_len
    with pytest.raises(GenerationError):
        engine_model.sequence_logprobs(list(range(1, context)), [1, 2, 3])


def test_sequence_score_derived_quantities():
    logprobs = np.array([-0.5, -1.5, -1.0])
    score = SequenceScore(token_logprobs=logprobs)
    assert score.n_tokens == 3
    assert score.sum_logprob == pytest.approx(-3.0)
    assert list(score.token_nll) == pytest.approx([0.5, 1.5, 1.0])
    assert score.mean_nll == pytest.approx(1.0)
    assert score.perplexity == pytest.approx(math.e)


# -- engine parity ----------------------------------------------------------------


@pytest.mark.parametrize("kv_page_tokens", (None,) + PAGE_SIZES)
def test_engine_score_bitwise_parity(engine_model, kv_page_tokens):
    """Batched scoring is bit-for-bit the sequential reference — on the
    dense backend and at every page size, including one-token pages."""
    rng = np.random.default_rng(42)
    requests = _ragged_requests(rng, 24, engine_model.config.max_seq_len)
    engine = BatchedEngine(
        engine_model, max_batch=16, kv_page_tokens=kv_page_tokens
    )
    scores = engine.score(requests)
    assert len(scores) == len(requests)
    for request, score in zip(requests, scores):
        expected = engine_model.sequence_logprobs(
            request.prompt_ids, request.completion_ids
        )
        assert score.token_logprobs.tobytes() == expected.tobytes(), (
            "batched scoring diverged bitwise from sequence_logprobs"
        )


def test_engine_score_requires_no_kv_state(engine_model):
    """Pure scoring traffic allocates no KV slab, slot, page or
    reservation — the engine stays stateless."""
    engine = BatchedEngine(engine_model, max_batch=4, kv_page_tokens=8)
    engine.score(_ragged_requests(np.random.default_rng(7), 9, 64))
    stats = engine.kv_stats()
    assert stats["pages_in_use"] == 0
    assert stats["reserved_pages"] == 0
    assert stats["resident_kv_bytes"] == 0


def test_engine_mixed_score_and_generate_traffic(engine_model):
    """Scores and decodes through one submit/step/collect stream: decode
    tokens match model.generate, scores match sequence_logprobs, and the
    paged pool drains back to zero."""
    engine = BatchedEngine(engine_model, max_batch=3, kv_page_tokens=3)
    rng = np.random.default_rng(11)
    score_reqs = _ragged_requests(rng, 5, 64)
    gen_reqs = [
        GenerationRequest(
            [int(t) for t in rng.integers(3, 131, size=int(rng.integers(1, 20)))],
            max_new_tokens=int(rng.integers(1, 10)),
            eos_id=2,
        )
        for _ in range(4)
    ]
    score_ids = {engine.submit_score(r): r for r in score_reqs}
    gen_ids = {engine.submit(r): r for r in gen_reqs}
    done: dict[int, object] = {}
    guard = 0
    while engine.has_work:
        engine.step()
        done.update(engine.collect())
        guard += 1
        assert guard < 5000
    assert set(done) == set(score_ids) | set(gen_ids)
    for seq_id, request in score_ids.items():
        expected = engine_model.sequence_logprobs(
            request.prompt_ids, request.completion_ids
        )
        assert done[seq_id].token_logprobs.tobytes() == expected.tobytes()
    for seq_id, request in gen_ids.items():
        assert done[seq_id] == engine_model.generate(
            request.prompt_ids, request.max_new_tokens, eos_id=request.eos_id
        )
    stats = engine.kv_stats()
    assert stats["pages_in_use"] == 0
    assert stats["reserved_pages"] == 0


def test_engine_score_cancel_and_validation(engine_model):
    engine = BatchedEngine(engine_model, max_batch=2)
    seq_id = engine.submit_score(ScoringRequest([5, 6], [7]))
    engine.cancel(seq_id)
    engine.step()
    assert engine.collect()[seq_id] is None
    with pytest.raises(GenerationError):
        engine.submit_score(ScoringRequest([], [7]))
    with pytest.raises(GenerationError):
        engine.submit_score(ScoringRequest([5], []))
    with pytest.raises(GenerationError):
        engine.submit_score(ScoringRequest(list(range(1, 64)), [1, 2, 3]))


# -- IFD --------------------------------------------------------------------------


def test_dataset_ifd_matches_sequential(coach, tokenizer, dataset):
    pairs = list(dataset)
    verdicts = dataset_ifd(coach.model, tokenizer, pairs, batch_size=4)
    assert len(verdicts) == len(pairs)
    for pair, verdict in zip(pairs, verdicts):
        assert verdict == score_pair_ifd(coach.model, tokenizer, pair)
        assert verdict.n_tokens > 0
        assert verdict.response_perplexity == pytest.approx(
            math.exp(verdict.conditioned_nll)
        )


def test_dataset_ifd_skips_unscoreable(coach, tokenizer, dataset):
    pairs = list(dataset)[:3]
    pairs[1] = InstructionPair(
        instruction="summarize the text : " + "alpha beta " * 120,
        response="gamma",
    )
    verdicts = dataset_ifd(coach.model, tokenizer, pairs, batch_size=4)
    assert verdicts[1] is None
    assert verdicts[0] is not None and verdicts[2] is not None
    with pytest.raises(GenerationError):
        score_pair_ifd(coach.model, tokenizer, pairs[1])


def test_pair_ifd_degenerate_unconditioned_pins_zero():
    easy = SequenceScore(token_logprobs=np.array([0.0, 0.0]))
    cond = SequenceScore(token_logprobs=np.array([-1.0, -2.0]))
    verdict = pair_ifd(cond, easy)
    assert verdict.ifd == 0.0
    assert verdict.unconditioned_nll == 0.0


def test_pair_ifd_roundtrips_as_dict(coach, tokenizer, dataset):
    verdict = score_pair_ifd(coach.model, tokenizer, dataset[0])
    assert PairIFD.from_dict(verdict.as_dict()) == verdict
    assert json.loads(json.dumps(verdict.as_dict())) == verdict.as_dict()


# -- selection --------------------------------------------------------------------


def _verdict(ifd: float) -> PairIFD:
    return PairIFD(
        conditioned_nll=ifd, unconditioned_nll=1.0, ifd=ifd,
        response_perplexity=math.exp(ifd), n_tokens=4,
    )


def test_rank_by_ifd_hardest_first_nones_last():
    scores = [_verdict(0.5), None, _verdict(1.2), _verdict(0.9), None]
    assert rank_by_ifd(scores) == [2, 3, 0, 1, 4]


def test_rank_by_ifd_is_stable_on_ties():
    scores = [_verdict(1.0), _verdict(1.0), _verdict(1.0)]
    assert rank_by_ifd(scores) == [0, 1, 2]


def test_select_top_k():
    scores = [_verdict(0.5), None, _verdict(1.2), _verdict(0.9)]
    selected, rest = select_top_k(scores, 2)
    assert selected == [2, 3]
    assert rest == [0, 1]
    selected, rest = select_top_k(scores, 99)
    assert selected == [2, 3, 0]     # only scoreable pairs are selectable
    assert rest == [1]
    with pytest.raises(ValueError):
        select_top_k(scores, -1)


# -- self-review ------------------------------------------------------------------


def test_review_revision_decisions():
    before = _verdict(1.0)
    assert review_revision(before, _verdict(0.8)).accepted
    assert review_revision(before, _verdict(0.8)).reason in ("perplexity", "ifd")
    rejected = review_revision(before, _verdict(1.1))
    assert not rejected.accepted and rejected.reason == "no_improvement"
    unscoreable = review_revision(before, None)
    assert not unscoreable.accepted and unscoreable.reason == "unscoreable"


def test_self_review_revise_never_worsens(coach, tokenizer, dataset):
    for pair in list(dataset)[:4]:
        baseline = score_pair_ifd(coach.model, tokenizer, pair)
        result = self_review_revise(coach, pair)
        # The loop's invariant: the returned pair is never worse than the
        # original on both review axes at once.
        if result.improved:
            assert (
                result.score.response_perplexity < baseline.response_perplexity
                or result.score.ifd < baseline.ifd
            )
        else:
            assert result.pair is pair
            assert result.score == baseline
        for decision in result.decisions[:-1]:
            assert decision.accepted   # only the last round may reject


def test_self_review_requires_scoreable_original(coach):
    too_long = InstructionPair(
        instruction="summarize the text : " + "alpha beta " * 120,
        response="gamma",
    )
    with pytest.raises(GenerationError):
        self_review_revise(coach, too_long)
    with pytest.raises(ValueError):
        self_review_revise(coach, InstructionPair("a", "b"), max_rounds=0)


# -- quality: perplexity dimension ------------------------------------------------


def test_perplexity_dimension_not_in_core_ten():
    from repro.quality import DIMENSIONS

    assert PERPLEXITY_DIMENSION.name == "perplexity"
    assert len(DIMENSIONS) == 10
    assert all(d.name != "perplexity" for d in DIMENSIONS)


def test_scorer_without_backing_is_unchanged(dataset):
    report = CriteriaScorer(strict_context=False).score_response(dataset[0])
    assert all(f.dimension != "perplexity" for f in report.findings)


def test_scorer_with_backing_appends_perplexity_finding(coach, tokenizer, dataset):
    scorer = CriteriaScorer(
        strict_context=False,
        perplexity_model=coach.model,
        perplexity_tokenizer=tokenizer,
        perplexity_threshold=1e9,   # generous: the finding must pass
    )
    report = scorer.score_response(dataset[0])
    finding = next(f for f in report.findings if f.dimension == "perplexity")
    assert finding.satisfied
    strict = CriteriaScorer(
        strict_context=False,
        perplexity_model=coach.model,
        perplexity_tokenizer=tokenizer,
        perplexity_threshold=1.0 + 1e-9,    # nothing beats ~1.0 ppl
    )
    baseline = CriteriaScorer(strict_context=False).score_response(dataset[0])
    worse = strict.score_response(dataset[0])
    violated = next(f for f in worse.findings if f.dimension == "perplexity")
    assert not violated.satisfied
    assert worse.score < baseline.score     # one more basic violation


def test_scorer_perplexity_config_validation(coach, tokenizer):
    with pytest.raises(ScoringError):
        CriteriaScorer(perplexity_model=coach.model)    # tokenizer missing
    with pytest.raises(ScoringError):
        CriteriaScorer(
            perplexity_model=coach.model,
            perplexity_tokenizer=tokenizer,
            perplexity_threshold=1.0,
        )


def test_scorer_unscoreable_pair_passes_perplexity(coach, tokenizer):
    scorer = CriteriaScorer(
        strict_context=False,
        perplexity_model=coach.model,
        perplexity_tokenizer=tokenizer,
    )
    too_long = InstructionPair(
        instruction="summarize the text : " + "alpha beta " * 120,
        response="gamma",
    )
    report = scorer.score_response(too_long)
    finding = next(f for f in report.findings if f.dimension == "perplexity")
    assert finding.satisfied and "unscoreable" in finding.note


# -- CoachLM selection + self-review ----------------------------------------------


def test_revise_dataset_top_k_selection(coach, tokenizer, dataset):
    revised, stats = coach.revise_dataset(dataset, revise_top_k=3)
    assert stats.outcomes[RevisionOutcome.NOT_SELECTED.value] == len(dataset) - 3
    verdicts = dataset_ifd(coach.model, tokenizer, list(dataset))
    selected, _ = select_top_k(verdicts, 3)
    full, _ = coach.revise_dataset(dataset)
    for i, (pair, got, exp) in enumerate(zip(dataset, revised, full)):
        if i in selected:
            # Selected pairs get exactly the full-revision treatment.
            assert (got.instruction, got.response) == (
                exp.instruction, exp.response
            )
        else:
            # Unselected pairs pass through untouched.
            assert (got.instruction, got.response) == (
                pair.instruction, pair.response
            )


def test_revise_dataset_self_review_never_keeps_rejected(coach, tokenizer, dataset):
    revised, stats = coach.revise_dataset(dataset, self_review=True)
    assert len(revised) == len(dataset)
    n_reviewed = stats.outcomes.get(
        RevisionOutcome.REVISED.value, 0
    ) + stats.outcomes.get(RevisionOutcome.REVIEW_REJECTED.value, 0)
    for pair, got in zip(dataset, revised):
        before = score_pair_ifd(coach.model, tokenizer, pair)
        after = score_pair_ifd(coach.model, tokenizer, got)
        if (got.instruction, got.response) != (pair.instruction, pair.response):
            # Anything kept by the review loop actually improved.
            assert (
                after.response_perplexity < before.response_perplexity
                or after.ifd < before.ifd
            )
    # Review outcomes only exist where a revision was attempted and scored.
    assert n_reviewed <= len(dataset)


# -- serving: kind-namespaced key-space (satellite regression) --------------------


def test_score_and_revise_keys_never_collide(coach, dataset):
    """The directed kind-collision regression: same content, different
    request kind → different key, no cross-kind dedup or cache hit."""
    pair = dataset[0]
    assert score_key(pair) != revision_key(
        pair, coach.max_new_tokens, coach.copy_bias
    )
    with RevisionServer(coach, ServingConfig(max_batch=2)) as server:
        scored = server.score(pair, timeout=60.0)
        assert scored.outcome == OUTCOME_SCORED
        assert scored.source == SOURCE_ENGINE
        # A revise of the byte-identical content must go to the engine,
        # not be served from the score entry (and vice versa).
        revised = server.revise(pair, timeout=60.0)
        assert revised.source == SOURCE_ENGINE
        assert revised.score is None
        again = server.score(pair, timeout=60.0)
        assert again.source == SOURCE_CACHE
        assert again.score == scored.score


def test_score_cache_entries_not_persisted(dataset):
    cache = RevisionLRUCache(capacity=8)
    cache.put("rev-key", CachedRevision("i", "r", "revised"))
    cache.put("score-key", CachedScore({"ifd": 1.0}, OUTCOME_SCORED))
    rows = cache.export_entries()
    assert [row[0] for row in rows] == ["rev-key"]
    fresh = RevisionLRUCache(capacity=8)
    assert fresh.import_entries(rows) == 1


def test_server_score_parity_and_dedup(coach, tokenizer, dataset):
    pair = dataset[1]
    expected = score_pair_ifd(coach.model, tokenizer, pair).as_dict()
    server = RevisionServer(coach, ServingConfig(max_batch=2))
    futures = [server.submit_score(pair) for _ in range(3)]
    assert server.queue.depth == 1   # one leader, two dedup followers
    with server:
        results = [future.result(timeout=60.0) for future in futures]
    assert Counter(r.source for r in results) == {
        SOURCE_ENGINE: 1, SOURCE_DEDUP: 2,
    }
    for result in results:
        assert result.outcome == OUTCOME_SCORED
        assert result.score == expected
        assert result.pair.response == pair.response    # scoring never rewrites


def test_server_score_too_long_pair(coach):
    too_long = InstructionPair(
        instruction="summarize the text : " + "alpha beta " * 120,
        response="gamma",
    )
    with RevisionServer(coach, ServingConfig(max_batch=2)) as server:
        result = server.score(too_long, timeout=60.0)
        assert result.outcome == RevisionOutcome.PROMPT_TOO_LONG.value
        assert result.score is None
        # The unscoreable verdict is itself cacheable.
        again = server.score(too_long, timeout=60.0)
    assert again.source == SOURCE_CACHE
    assert again.outcome == RevisionOutcome.PROMPT_TOO_LONG.value


def test_http_score_endpoint(coach, tokenizer, dataset):
    server = RevisionServer(coach, ServingConfig(max_batch=4))
    pair = dataset[2]
    expected = score_pair_ifd(coach.model, tokenizer, pair).as_dict()
    with RevisionHTTPFrontend(server) as frontend:
        body = json.dumps(
            {"instruction": pair.instruction, "response": pair.response}
        ).encode()
        request = urllib.request.Request(
            frontend.address + "/score",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            blob = json.load(response)
        assert blob["outcome"] == OUTCOME_SCORED
        assert blob["source"] == SOURCE_ENGINE
        for field in (
            "conditioned_nll", "unconditioned_nll", "ifd",
            "response_perplexity", "n_tokens",
        ):
            assert blob[field] == expected[field]
        assert blob["latency_s"] >= 0

        long_body = json.dumps({
            "instruction": "summarize the text : " + "alpha beta " * 120,
            "response": "gamma",
        }).encode()
        request = urllib.request.Request(
            frontend.address + "/score", data=long_body, method="POST"
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            unscoreable = json.load(response)
        assert unscoreable["outcome"] == RevisionOutcome.PROMPT_TOO_LONG.value
        assert unscoreable["ifd"] is None
