"""Property tests for the token-level noise operators."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.textgen import grammar, vocabulary as V

_words = st.lists(
    st.sampled_from(V.COLORS + V.OBJECTS + ("the", "a", "near")),
    min_size=1, max_size=12,
)


def _rng():
    return np.random.default_rng(0)


@given(_words)
@settings(max_examples=50, deadline=None)
def test_inject_noise_adds_exactly_n(tokens):
    out = grammar.inject_noise(tokens, _rng(), count=2)
    assert len(out) == len(tokens) + 2
    assert sum(t in V.NOISE_TOKENS for t in out) >= 2


@given(_words)
@settings(max_examples=50, deadline=None)
def test_strip_noise_inverts_injection(tokens):
    noisy = grammar.inject_noise(tokens, _rng(), count=3)
    assert grammar.strip_noise(noisy) == [
        t for t in tokens if t not in V.NOISE_TOKENS
    ]


@given(_words)
@settings(max_examples=50, deadline=None)
def test_truncate_shortens(tokens):
    if len(tokens) > 1:
        out = grammar.truncate(tokens, _rng(), min_keep=1)
        assert 1 <= len(out) < len(tokens) or out == tokens[:1]


@given(_words)
@settings(max_examples=50, deadline=None)
def test_duplicate_word_adds_adjacent_repeat(tokens):
    out = grammar.duplicate_word(tokens, _rng())
    assert len(out) == len(tokens) + 1
    assert any(a == b for a, b in zip(out, out[1:]))


def test_fix_typos_is_idempotent():
    tokens = ["the", "qick", "blu", "fox"]
    fixed = grammar.fix_typos(tokens)
    assert fixed == ["the", "quick", "blue", "fox"]
    assert grammar.fix_typos(fixed) == fixed


def test_inject_typos_uses_known_forms():
    tokens = ["the", "quick", "blue", "fox"]
    out = grammar.inject_typos(tokens, _rng(), max_typos=2)
    assert any(t in V.TYPO_MAP for t in out)


def test_inject_typos_falls_back_to_duplicate():
    tokens = ["fox", "dog"]  # no typo forms exist
    out = grammar.inject_typos(tokens, _rng())
    assert len(out) == 3


def test_dedupe_adjacent():
    assert grammar.dedupe_adjacent(["a", "a", "b", "b", "a"]) == ["a", "b", "a"]


def test_drop_and_restore_terminal_period():
    tokens = ["red", "."]
    dropped = grammar.drop_terminal_period(tokens)
    assert dropped == ["red"]
    assert grammar.ensure_terminal_period(dropped) == tokens


def test_shuffle_span_changes_order():
    tokens = ["a", "b", "c", "d", "e"]
    out = grammar.shuffle_span(tokens, _rng(), span=3)
    assert sorted(out) == sorted(tokens)
    assert out != tokens


def test_operators_do_not_mutate_input():
    tokens = ["the", "red", "fox", "."]
    snapshot = list(tokens)
    grammar.inject_noise(tokens, _rng())
    grammar.truncate(tokens, _rng())
    grammar.duplicate_word(tokens, _rng())
    grammar.drop_terminal_period(tokens)
    assert tokens == snapshot
