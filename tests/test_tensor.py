"""Gradient checks and behaviour tests for the autograd tensor."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.tensor import Tensor, no_grad


def _gradcheck(build, shapes, eps=1e-3, tol=5e-2, seed=0):
    """Finite-difference check of d(loss)/d(inputs[0]) at a few entries."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(0, 1, size=s).astype(np.float32) for s in shapes]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    loss = build(*tensors)
    loss.backward()
    target = tensors[0]
    flat_index = rng.integers(0, target.data.size)
    idx = np.unravel_index(flat_index, target.data.shape)
    analytic = target.grad[idx]

    plus = [a.copy() for a in arrays]
    plus[0][idx] += eps
    minus = [a.copy() for a in arrays]
    minus[0][idx] -= eps
    with no_grad():
        l_plus = build(*[Tensor(a) for a in plus]).item()
        l_minus = build(*[Tensor(a) for a in minus]).item()
    numeric = (l_plus - l_minus) / (2 * eps)
    assert analytic == pytest.approx(numeric, abs=tol, rel=tol), (
        f"analytic={analytic} numeric={numeric}"
    )


def test_grad_add_broadcast():
    _gradcheck(lambda a, b: ((a + b) * (a + b)).sum(), [(3, 4), (4,)])


def test_grad_mul():
    _gradcheck(lambda a, b: (a * b).sum(), [(3, 4), (3, 4)])


def test_grad_matmul():
    _gradcheck(lambda a, b: a.matmul(b).sum(), [(3, 4), (4, 5)])


def test_grad_matmul_batched():
    _gradcheck(lambda a, b: a.matmul(b).sum(), [(2, 3, 4), (2, 4, 5)])


def test_grad_softmax():
    _gradcheck(lambda a: (a.softmax() * a.softmax()).sum(), [(3, 6)])


def test_grad_gelu():
    _gradcheck(lambda a: a.gelu().sum(), [(4, 5)])


def test_grad_layernorm():
    def build(x, g, b):
        return (x.layer_norm(g, b) * x.layer_norm(g, b)).sum()
    _gradcheck(build, [(3, 8), (8,), (8,)])


def test_grad_embedding():
    idx = np.array([[0, 2], [1, 2]])
    _gradcheck(lambda w: w.embedding(idx).sum(), [(4, 6)])


def test_grad_getitem_slice():
    _gradcheck(lambda a: (a[1:] * a[1:]).sum(), [(4, 3)])


def test_grad_reshape_transpose():
    _gradcheck(
        lambda a: (a.reshape(6, 2).transpose() * 2.0).sum(), [(3, 4)]
    )


def test_grad_pow():
    _gradcheck(lambda a: a.pow(2.0).sum(), [(3, 3)])


def test_grad_mean():
    _gradcheck(lambda a: a.mean(), [(5, 5)])


def test_grad_cross_entropy():
    targets = np.array([1, 3, 0])
    mask = np.array([1.0, 1.0, 0.0], dtype=np.float32)
    _gradcheck(lambda a: a.cross_entropy(targets, mask), [(3, 5)])


def test_cross_entropy_requires_2d():
    t = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
    with pytest.raises(ModelError):
        t.cross_entropy(np.zeros((2, 3)))


def test_cross_entropy_masked_value():
    logits = Tensor(np.zeros((2, 4), dtype=np.float32))
    loss_all = logits.cross_entropy(np.array([0, 1])).item()
    loss_half = logits.cross_entropy(
        np.array([0, 1]), np.array([1.0, 0.0], dtype=np.float32)
    ).item()
    assert loss_all == pytest.approx(np.log(4), abs=1e-5)
    assert loss_half == pytest.approx(np.log(4), abs=1e-5)


def test_backward_requires_scalar():
    t = Tensor(np.ones((2, 2)), requires_grad=True)
    with pytest.raises(ModelError):
        (t * 2).backward()


def test_no_grad_disables_tape():
    with no_grad():
        t = Tensor(np.ones(3), requires_grad=True)
        out = t * 2
    assert not t.requires_grad
    assert not out.requires_grad


def test_grad_accumulates_across_uses():
    t = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    loss = (t + t).sum()
    loss.backward()
    assert np.allclose(t.grad, 2.0)


def test_division_by_scalar():
    t = Tensor(np.full(3, 6.0, dtype=np.float32), requires_grad=True)
    out = (t / 2.0).sum()
    out.backward()
    assert out.item() == pytest.approx(9.0)
    assert np.allclose(t.grad, 0.5)
