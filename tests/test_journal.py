"""Directed resume-determinism tests for the crash-safe run journal.

The contract under test (``docs/resilience.md``): a revision run killed
at *any* point — mid-pair, between fsyncs, mid-append — resumes from its
:class:`~repro.serving.journal.RunJournal` and produces a final dataset
**byte-identical** to an uninterrupted run, without re-decoding any pair
the journal already holds as ``DONE`` (pinned via the engine's
``total_generated_tokens`` counter, not via trust in the scheduler).

Kill points use a real ``SIGKILL`` against a forked child: the child
revises with a sabotaged journal that kills the process after the k-th
durable record (or mid-append, torn), the parent reaps it and resumes.
"""

from __future__ import annotations

import json
import os
import signal

import numpy as np
import pytest

from repro.core.coachlm import CoachLM
from repro.data import generate_dataset
from repro.errors import JournalError, JournalMismatchError
from repro.llm.tokenizer import build_tokenizer
from repro.nn import BatchedEngine, TransformerConfig, TransformerLM
from repro.serving import RunJournal, dataset_fingerprint
from repro.serving.journal import _encode


@pytest.fixture(scope="module")
def coach():
    tokenizer = build_tokenizer()
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=32,
        n_layers=1,
        n_heads=4,
        max_seq_len=192,
    )
    model = TransformerLM(config, np.random.default_rng(9))
    return CoachLM(model, tokenizer)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(np.random.default_rng(77), 10)


@pytest.fixture(scope="module")
def reference(coach, dataset):
    """The uninterrupted run every resumed run must byte-match."""
    revised, stats = coach.revise_dataset(dataset, batch_size=4)
    return revised, stats


def _bytes_of(dataset_obj, tmp_path, name):
    path = tmp_path / name
    dataset_obj.save_jsonl(path)
    return path.read_bytes()


@pytest.fixture()
def engine_spy(monkeypatch):
    """Collect every BatchedEngine built, to read token counters after."""
    engines = []
    original = BatchedEngine.__init__

    def spy(self, *args, **kwargs):
        original(self, *args, **kwargs)
        engines.append(self)

    monkeypatch.setattr(BatchedEngine, "__init__", spy)
    return engines


def _decoded_tokens(engines) -> int:
    return sum(engine.total_generated_tokens for engine in engines)


def _run_child_killed_after(coach, dataset, journal_path, kill_after_dones):
    """Fork; the child revises and SIGKILLs itself after k DONE records.

    Returns the child's wait status.  The offline revision path is
    single-threaded, so forking mid-test is safe; the child never
    returns from this function (SIGKILL, or ``os._exit`` as a backstop).
    """
    pid = os.fork()
    if pid == 0:
        try:
            original = RunJournal.record_done
            state = {"n": 0}

            def killing_record_done(self, *args, **kwargs):
                original(self, *args, **kwargs)
                state["n"] += 1
                if state["n"] >= kill_after_dones:
                    os.kill(os.getpid(), signal.SIGKILL)

            RunJournal.record_done = killing_record_done
            with RunJournal(journal_path) as journal:
                coach.revise_dataset(dataset, batch_size=4, journal=journal)
        finally:
            # Only reached when the kill point was never hit — still die
            # hard so the parent's control flow stays uniform.
            os._exit(0)
    _, status = os.waitpid(pid, 0)
    return status


def test_journaled_run_matches_plain_run(coach, dataset, reference, tmp_path):
    """Journaling is observationally free: same bytes, same stats."""
    ref_revised, ref_stats = reference
    with RunJournal(tmp_path / "run.jsonl") as journal:
        revised, stats = coach.revise_dataset(
            dataset, batch_size=4, journal=journal
        )
    assert _bytes_of(revised, tmp_path, "a.jsonl") == _bytes_of(
        ref_revised, tmp_path, "b.jsonl"
    )
    assert stats.outcomes == ref_stats.outcomes


@pytest.mark.parametrize("kill_after", [1, 3, 7])
def test_sigkill_mid_run_resumes_byte_identical(
    coach, dataset, reference, tmp_path, engine_spy, kill_after
):
    """SIGKILL after k durable records → resume byte-matches, and the
    journaled-DONE pairs are never re-decoded (engine token counter)."""
    ref_revised, ref_stats = reference
    journal_path = tmp_path / "run.jsonl"
    status = _run_child_killed_after(coach, dataset, journal_path, kill_after)
    assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL

    # Tokens already journaled by the killed child:
    journaled_tokens = 0
    with open(journal_path, "rb") as fh:
        for line in fh:
            record = json.loads(line)
            if record.get("type") == "done":
                journaled_tokens += record.get("generated_tokens", 0)

    with RunJournal(journal_path) as journal:
        resumed, stats = coach.revise_dataset(
            dataset, batch_size=4, journal=journal
        )
        replay = journal.replay
    assert replay.pairs_skipped >= kill_after
    assert _bytes_of(resumed, tmp_path, "resumed.jsonl") == _bytes_of(
        ref_revised, tmp_path, "ref.jsonl"
    )
    assert stats.outcomes == ref_stats.outcomes
    # The resumed run decoded only the tail: its engine produced exactly
    # the full run's tokens minus what the journal already held.
    with RunJournal(tmp_path / "clean.jsonl") as journal:
        coach.revise_dataset(dataset, batch_size=4, journal=journal)
    resumed_tokens = engine_spy[0].total_generated_tokens
    clean_tokens = engine_spy[1].total_generated_tokens
    assert resumed_tokens == clean_tokens - journaled_tokens
    assert journaled_tokens > 0


def test_kill_mid_append_leaves_replayable_torn_tail(
    coach, dataset, reference, tmp_path
):
    """A process dying *inside* the append (bytes written, no newline,
    no fsync) leaves a torn tail that replay truncates, not a crash."""
    ref_revised, _ = reference
    journal_path = tmp_path / "run.jsonl"

    pid = os.fork()
    if pid == 0:
        try:
            original = RunJournal._append
            state = {"n": 0}

            def torn_append(self, payload):
                state["n"] += 1
                if state["n"] == 5:  # header + submitted + 3 records
                    blob = _encode(payload)
                    self._fh.write(blob[: len(blob) // 2])  # no newline
                    self._fh.flush()
                    os.kill(os.getpid(), signal.SIGKILL)
                original(self, payload)

            RunJournal._append = torn_append
            with RunJournal(journal_path) as journal:
                coach.revise_dataset(dataset, batch_size=4, journal=journal)
        finally:
            os._exit(0)
    _, status = os.waitpid(pid, 0)
    assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL

    size_before = journal_path.stat().st_size
    with RunJournal(journal_path) as journal:
        resumed, _ = coach.revise_dataset(
            dataset, batch_size=4, journal=journal
        )
        replay = journal.replay
    assert replay.torn_tail
    assert replay.truncated_bytes > 0
    assert replay.records_replayed == 4
    assert journal_path.stat().st_size > size_before - replay.truncated_bytes
    assert _bytes_of(resumed, tmp_path, "resumed.jsonl") == _bytes_of(
        ref_revised, tmp_path, "ref.jsonl"
    )


def test_corrupt_middle_record_truncates_everything_after(tmp_path):
    """Replay never trusts bytes past the first damaged record, even
    when valid-looking records follow it."""
    path = tmp_path / "run.jsonl"
    header = _encode({
        "type": "header", "version": 1, "config": "c", "fingerprint": "f"
    })
    good = _encode({
        "type": "done", "index": 0, "instruction": "a", "response": "b",
        "outcome": "revised", "generated_tokens": 3,
    })
    bad = b'{"type": "done", "index": 1, "crc": 12345}\n'  # wrong CRC
    later = _encode({
        "type": "done", "index": 2, "instruction": "x", "response": "y",
        "outcome": "revised", "generated_tokens": 2,
    })
    path.write_bytes(header + good + bad + later)
    with RunJournal(path) as journal:
        replay = journal.open_run("c", "f")
    assert replay.torn_tail
    assert set(replay.completed) == {0}
    assert path.read_bytes() == header + good


def test_mismatched_journal_refuses_to_resume(coach, dataset, tmp_path):
    journal_path = tmp_path / "run.jsonl"
    with RunJournal(journal_path) as journal:
        coach.revise_dataset(dataset, batch_size=4, journal=journal)
    other = generate_dataset(np.random.default_rng(5), 10)
    with pytest.raises(JournalMismatchError):
        with RunJournal(journal_path) as journal:
            coach.revise_dataset(other, batch_size=4, journal=journal)
    # The guard is typed and does not destroy the journal.
    assert journal_path.stat().st_size > 0


def test_failed_records_are_retried_on_resume(coach, dataset, tmp_path):
    """FAILED is terminal for one incarnation only: the resume redoes it."""
    journal_path = tmp_path / "run.jsonl"
    with RunJournal(journal_path) as journal:
        coach.revise_dataset(dataset, batch_size=4, journal=journal)
        journal.record_failed(2, "injected: worker lost")
    with RunJournal(journal_path) as journal:
        replay = journal.open_run(
            coach.revision_run_hash(), dataset_fingerprint(list(dataset))
        )
    assert 2 not in replay.completed
    assert replay.pairs_skipped == len(dataset) - 1


def test_append_requires_open_run(tmp_path):
    journal = RunJournal(tmp_path / "run.jsonl")
    with pytest.raises(JournalError):
        journal.record_failed(0, "never opened")


def test_fingerprint_covers_order_and_text(dataset):
    pairs = list(dataset)
    assert dataset_fingerprint(pairs) == dataset_fingerprint(list(pairs))
    assert dataset_fingerprint(pairs) != dataset_fingerprint(pairs[::-1])
    mutated = [pairs[0].with_text(
        pairs[0].instruction + " x", pairs[0].response, pairs[0].origin
    )] + pairs[1:]
    assert dataset_fingerprint(pairs) != dataset_fingerprint(mutated)
    assert dataset_fingerprint(pairs) != dataset_fingerprint(pairs[:-1])


def test_self_review_resume_is_byte_identical(coach, dataset, tmp_path):
    """With self-review the terminal state lands post-review; a resumed
    run must neither re-decode nor re-review journaled pairs."""
    ref, _ = coach.revise_dataset(dataset, batch_size=4, self_review=True)
    journal_path = tmp_path / "run.jsonl"
    with RunJournal(journal_path) as journal:
        first, _ = coach.revise_dataset(
            dataset, batch_size=4, self_review=True, journal=journal
        )
    with RunJournal(journal_path) as journal:
        resumed, _ = coach.revise_dataset(
            dataset, batch_size=4, self_review=True, journal=journal
        )
        assert journal.replay.pairs_skipped == len(dataset)
    assert _bytes_of(first, tmp_path, "a.jsonl") == _bytes_of(
        ref, tmp_path, "b.jsonl"
    )
    assert _bytes_of(resumed, tmp_path, "c.jsonl") == _bytes_of(
        ref, tmp_path, "d.jsonl"
    )
