"""Smoke tests for the runnable examples (the cheap ones).

The model-training examples (quickstart, data_cleaning_pipeline) are
exercised by the benchmark suite through the same library calls; here we
run the analysis-only examples end to end.
"""

import runpy
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run(name: str, capsys) -> str:
    sys.argv = [name]
    runpy.run_path(str(_EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_regenerate_all_prints_index(capsys):
    out = _run("regenerate_all.py", capsys)
    assert "table9" in out
    assert "fig5" in out
    assert "benchmarks/" in out


def test_dataset_quality_report_runs(capsys):
    out = _run("dataset_quality_report.py", capsys)
    assert "mean response score" in out
    assert "ChatGPT-sim accuracy ratings" in out


@pytest.mark.slow
def test_alpha_selection_study_runs(capsys):
    out = _run("alpha_selection_study.py", capsys)
    assert "expert revision dataset R" in out
    assert "alpha" in out


def test_online_revision_service_runs(capsys):
    out = _run("online_revision_service.py", capsys)
    assert "revision service listening on http://" in out
    assert "latency p50" in out
    assert "engine tokens/sec" in out
    # The duplicate request must be served from the cache.
    assert "source=cache" in out


@pytest.mark.slow
def test_data_selection_runs(capsys):
    out = _run("data_selection.py", capsys)
    assert "IFD before revision" in out
    assert "hardest pairs for revision" in out
    assert "quality delta on the selected pairs" in out
    assert "every kept revision improved perplexity or IFD" in out


def test_examples_exist():
    names = {p.name for p in _EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py", "data_cleaning_pipeline.py",
        "dataset_quality_report.py", "alpha_selection_study.py",
        "regenerate_all.py", "online_revision_service.py",
        "data_selection.py",
    } <= names
