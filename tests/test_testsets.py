"""Tests for the four instruction-following test sets (Table VI)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.testsets import (
    build_coachlm150,
    build_pandalm170,
    build_selfinstruct252,
    build_testset,
    build_vicuna80,
)
from repro.textgen.responses import ResponseGrade


@pytest.fixture(scope="module")
def sets():
    rng = np.random.default_rng(0)
    return {
        "coachlm150": build_coachlm150(rng),
        "pandalm170": build_pandalm170(rng),
        "vicuna80": build_vicuna80(rng),
        "selfinstruct252": build_selfinstruct252(rng),
    }


def test_sizes_match_table6(sets):
    assert len(sets["coachlm150"]) == 150
    assert len(sets["pandalm170"]) == 170
    assert len(sets["vicuna80"]) == 80
    assert len(sets["selfinstruct252"]) == 252


def test_category_counts_match_table6(sets):
    assert sets["coachlm150"].n_categories == 42
    assert sets["pandalm170"].n_categories == 11
    assert sets["vicuna80"].n_categories == 9
    assert sets["selfinstruct252"].n_categories == 15


def test_reference_grades(sets):
    assert sets["coachlm150"].reference_grade is ResponseGrade.HUMAN
    assert sets["pandalm170"].reference_grade is ResponseGrade.CHATGPT
    assert sets["vicuna80"].reference_grade is ResponseGrade.ORACLE
    assert sets["selfinstruct252"].reference_grade is ResponseGrade.HUMAN_PLAIN


def test_references_answer_their_instructions(sets):
    for ts in sets.values():
        for item in ts.items[:20]:
            assert item.reference.instruction == item.instruction
            assert item.reference.provenance == item.provenance
            assert item.reference.response


def test_reference_difficulty_ordering(sets):
    """Bard references must be the strongest, ChatGPT the weakest."""
    from repro.quality import CriteriaScorer
    scorer = CriteriaScorer()

    def mean_quality(ts):
        return float(np.mean(
            [scorer.score_response(i.reference).score for i in ts.items]
        ))

    q = {name: mean_quality(ts) for name, ts in sets.items()}
    assert q["vicuna80"] > q["coachlm150"] > q["pandalm170"]


def test_build_testset_by_name_and_size():
    ts = build_testset("vicuna80", np.random.default_rng(1), size=10)
    assert len(ts) == 10
    with pytest.raises(ConfigError):
        build_testset("nope", np.random.default_rng(1))


def test_testsets_are_deterministic():
    a = build_vicuna80(np.random.default_rng(9))
    b = build_vicuna80(np.random.default_rng(9))
    assert [i.instruction for i in a.items] == [i.instruction for i in b.items]
