"""Shared fixtures for the test suite (everything at CI scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import get_scale
from repro.data import generate_dataset
from repro.llm import build_tokenizer


@pytest.fixture(scope="session")
def tokenizer():
    return build_tokenizer()


@pytest.fixture(scope="session")
def ci_scale():
    return get_scale("ci")


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_dataset():
    """A 300-pair ALPACA52K simulacrum shared across read-only tests."""
    return generate_dataset(np.random.default_rng(99), 300)
