"""Cross-cutting property tests on pipeline invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.postprocess import clean_revised_tokens, validate_revision
from repro.data.defects import (
    CONSTANT_ANSWER_CATEGORIES,
    NUMERIC_ANSWER_CATEGORIES,
    build_pair,
)
from repro.judges import Verdict, win_rates
from repro.judges.protocol import merge_swapped
from repro.quality import CriteriaScorer
from repro.textgen import vocabulary as V
from repro.textgen.tasks import CATEGORY_IDS, sample_instance

_scorer = CriteriaScorer()

_RESPONSE_DEFECTS = st.sets(
    st.sampled_from([
        "resp_terse", "resp_truncated", "resp_noisy", "resp_bad_layout",
        "resp_machine_tone", "resp_unsafe", "resp_empty",
    ]),
    max_size=2,
)


@given(
    category=st.sampled_from(CATEGORY_IDS),
    defects=_RESPONSE_DEFECTS,
    seed=st.integers(0, 10**6),
)
@settings(max_examples=120, deadline=None)
def test_scorer_respects_level_caps(category, defects, seed):
    """Red-line ≤ 40; any basic violation ≤ 80; scores within [0, 100]."""
    rng = np.random.default_rng(seed)
    instance = sample_instance(rng, category)
    pair = build_pair(instance, (), tuple(sorted(defects)), rng,
                      polite=bool(seed % 2))
    report = _scorer.score_response(pair)
    assert 0.0 <= report.score <= 100.0
    if report.violated("safety"):
        assert report.score <= 40.0
    basic = ("correctness", "relevance", "comprehensiveness", "readability")
    if any(report.violated(d) for d in basic) and report.satisfied("safety"):
        assert report.score <= 80.0


@given(
    category=st.sampled_from(sorted(
        set(CATEGORY_IDS) - CONSTANT_ANSWER_CATEGORIES
    )),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=60, deadline=None)
def test_clean_pairs_never_score_below_80(category, seed):
    rng = np.random.default_rng(seed)
    instance = sample_instance(rng, category)
    pair = build_pair(instance, (), (), rng, polite=True)
    assert _scorer.score_response(pair).score >= 80.0


@given(st.lists(st.sampled_from(list(Verdict)), max_size=60))
@settings(max_examples=80, deadline=None)
def test_win_rate_identities(verdicts):
    s = win_rates(verdicts)
    assert 0.0 <= s.wr1 <= 1.0
    assert 0.0 <= s.wr2 <= 1.0
    assert 0.0 <= s.qs <= 1.0
    # QS counts ties fully, WR1 half: QS - WR1 == ties / (2 n).
    if s.total:
        assert s.qs - s.wr1 == pytest.approx(s.ties / (2 * s.total))
    # WR1 is between the tie-free rate scaled and QS.
    assert s.wr1 <= s.qs


@given(st.sampled_from(list(Verdict)), st.sampled_from(list(Verdict)))
@settings(max_examples=25, deadline=None)
def test_merge_swapped_is_candidate_reference_antisymmetric(a, b):
    """Swapping candidate and reference flips the merged verdict."""
    merged = merge_swapped(a, b)
    flipped = merge_swapped(b, a)
    assert merged is flipped.flipped()


_token_lists = st.lists(
    st.sampled_from(list(V.COLORS) + list(V.NOISE_TOKENS) + [".", "because"]),
    max_size=12,
)


@given(_token_lists)
@settings(max_examples=80, deadline=None)
def test_clean_revised_tokens_idempotent(tokens):
    once = clean_revised_tokens(tokens)
    assert clean_revised_tokens(once) == once


@given(_token_lists)
@settings(max_examples=80, deadline=None)
def test_clean_revised_tokens_removes_all_noise(tokens):
    cleaned = clean_revised_tokens(tokens)
    assert not any(t in V.NOISE_TOKENS for t in cleaned)


@given(_token_lists, _token_lists)
@settings(max_examples=60, deadline=None)
def test_validate_revision_never_crashes(a, b):
    assert validate_revision(a, b) in (True, False)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_expert_revision_is_improving(seed):
    """Whenever the expert revises, the revised response scores >= original."""
    from repro.experts import ExpertReviser, GROUP_A
    rng = np.random.default_rng(seed)
    instance = sample_instance(rng)
    defect = ("resp_terse",) if instance.category_id not in \
        NUMERIC_ANSWER_CATEGORIES else ("resp_miscalculation",)
    pair = build_pair(instance, (), defect, rng, polite=False,
                      pair_id=f"p-{seed}")
    record = ExpertReviser(context_add_rate=0.0).revise(
        pair, rng, GROUP_A[0], "qa"
    )
    if record is None:
        return
    before = _scorer.score_response(record.original).score
    after = _scorer.score_response(record.revised).score
    assert after >= before
