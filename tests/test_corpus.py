"""Tests for the pre-training corpus builder."""

import numpy as np

from repro.textgen.corpus import build_pretrain_corpus
from repro.textgen import vocabulary as V


def test_corpus_is_deterministic():
    a = build_pretrain_corpus(np.random.default_rng(7), 300)
    b = build_pretrain_corpus(np.random.default_rng(7), 300)
    assert a == b


def test_corpus_size_roughly_requested():
    corpus = build_pretrain_corpus(np.random.default_rng(0), 800)
    assert 700 <= len(corpus) <= 1100


def test_corpus_contains_knowledge_base():
    corpus = build_pretrain_corpus(np.random.default_rng(0), 400)
    texts = {" ".join(s) for s in corpus}
    assert "the sky is blue ." in texts
    assert "3 and 4 make 7 ." in texts
    assert any("lives at the" in t for t in texts)


def test_corpus_contains_all_drill_kinds():
    corpus = build_pretrain_corpus(np.random.default_rng(1), 900)
    texts = [" ".join(s) for s in corpus]
    assert any("repeat :" in t for t in texts), "echo drills"
    assert any("revised :" in t for t in texts), "cleanup drills"
    assert any(
        "revised instruction :" in t and "revised response :" in t
        for t in texts
    ), "pair-revision drills"
    assert any(
        t.startswith("instruction :") and "revised" not in t for t in texts
    ), "q&a format exposure"


def test_pair_revision_drills_repair_surface_only():
    """Drills must demonstrate surface cleanup, not expert-style expansion."""
    corpus = build_pretrain_corpus(np.random.default_rng(2), 900)
    for sentence in corpus:
        text = " ".join(sentence)
        if "revised instruction :" not in text:
            continue
        # The revised response never introduces an explanation that the
        # original lacked: coach tuning owns that behaviour.
        original = text.split("revised instruction :")[0]
        revised = text.split("revised response :")[-1]
        if "because" in revised:
            assert "because" in original


def test_template_words_present():
    corpus = build_pretrain_corpus(np.random.default_rng(3), 300)
    words = {t for s in corpus for t in s}
    for template_word in ("please", "improve", "quality", "revised",
                          "instruction", "response"):
        assert template_word in words


def test_corpus_vocab_closed_under_tokenizer():
    from repro.llm import build_tokenizer
    tokenizer = build_tokenizer()
    corpus = build_pretrain_corpus(np.random.default_rng(4), 400)
    unk = tokenizer.specials.unk
    for sentence in corpus:
        ids = tokenizer.encode(" ".join(sentence))
        assert unk not in ids, sentence
