"""Repo-root pytest plumbing: marker registration lives in pytest.ini;
this file wires the ``--runslow`` gate and auto-marks the benchmark
harness so tier-1 stays fast and selectable.

* ``slow``-marked tests are skipped unless ``--runslow`` is passed —
  they cover end-to-end example scripts whose value is integration, not
  fast regression signal.
* Everything under ``benchmarks/`` is auto-marked ``bench`` so
  ``-m "not bench"`` runs the unit/fuzz tiers alone (what
  ``scripts/ci.sh`` does).
"""

from __future__ import annotations

from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).parent / "benchmarks"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow (long-running end-to-end checks)",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to include")
    run_slow = config.getoption("--runslow")
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.bench)
        if "slow" in item.keywords and not run_slow:
            item.add_marker(skip_slow)
