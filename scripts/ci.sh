#!/usr/bin/env bash
# Tier-1 CI gate: the fast unit/parity suites plus the randomized
# differential-parity fuzz harness at a fixed, reproducible seed budget
# — run three times: with the per-scenario KV-backend draw, with every
# scenario forced onto the paged KV pool, and with the radix prefix
# cache forced on over the paged pool (same seeds throughout, so the
# forced legs differentially replay known-good traces) — plus the
# KV-memory regression floor (paged resident bytes must undercut dense
# slabs >= 2x under staggered load).
#
#   scripts/ci.sh            # tier-1 + fuzz legs (fixed seeds, ~40s)
#   scripts/ci.sh --runslow  # also run the slow end-to-end example tests
#
# The benchmark harness (pytest -m bench) is intentionally excluded: it
# regenerates BENCH_*.json artifacts and runs for minutes.  Fuzz knobs:
#   REPRO_FUZZ_SEED       master seed (scenario i uses seed + i)
#   REPRO_FUZZ_SCENARIOS  scenario budget (CI default below)
#   REPRO_FUZZ_PAGED      auto | on | off (the legs below pin it)
#   REPRO_FUZZ_PREFIX     auto | on | off (radix prefix cache draw)
#   REPRO_FUZZ_PREEMPT    auto | on | off (priority + preempt/resume draw)
# A fuzz failure prints the exact one-scenario reproduction command.
#
# The fleet leg runs the seeded fault-injection harness
# (tests/test_fuzz_fleet.py) at its full CI scenario budget under a hard
# timeout — a supervision bug whose symptom is "hangs forever" must fail
# the gate, not stall it.  Knobs:
#   REPRO_FUZZ_FAULTS     on (set below) unlocks the full budget
#   REPRO_FLEET_SCENARIOS seeded FaultPlan count (CI default 40)
#   REPRO_FLEET_TIMEOUT_S wall-clock guard for the whole leg (default 300)
#
# The scoring leg runs the mixed score/generate-traffic parity fuzz
# (tests/test_fuzz_scoring.py) at its full CI budget, also under a hard
# timeout: every scoring job must stay bitwise-identical to the
# sequential teacher-forced reference with generation traffic and
# cancellations interleaved.  Knobs:
#   REPRO_FUZZ_SCORING     on (set below) unlocks the full budget
#   REPRO_SCORING_TIMEOUT_S wall-clock guard for the leg (default 300)
#
# The network leg runs the network-fault fuzz (tests/test_fuzz_network.py):
# the retrying HTTP client + crash-safe run journal driven through a
# seeded faulty TCP proxy (resets, truncations, stalls, 503 bursts,
# SIGKILLed client processes), asserting exactly-once resolution with
# token parity against the offline coach.  Knobs:
#   REPRO_FUZZ_NETWORK      on (set below) unlocks the full budget
#   REPRO_NETWORK_SCENARIOS seeded NetworkFaultPlan count (CI default 30)
#   REPRO_NETWORK_TIMEOUT_S wall-clock guard for the leg (default 600)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== hygiene: no compiled artifacts in the index =="
if git ls-files | grep -E '(^|/)__pycache__/|\.pyc$'; then
    echo "error: tracked bytecode artifacts found (see list above);" \
         "git rm --cached them — __pycache__/ and *.pyc are gitignored" >&2
    exit 1
fi

echo "== tier-1: unit + parity suites =="
python -m pytest tests -q -m "not bench" "$@"

echo "== fuzz: randomized differential parity (fixed seed budget) =="
REPRO_FUZZ_SEED="${REPRO_FUZZ_SEED:-20240311}" \
REPRO_FUZZ_SCENARIOS="${REPRO_FUZZ_SCENARIOS:-80}" \
python -m pytest tests/test_fuzz_parity.py -q

echo "== fuzz: paged KV pool forced on (same fixed seeds) =="
REPRO_FUZZ_PAGED=on \
REPRO_FUZZ_SEED="${REPRO_FUZZ_SEED:-20240311}" \
REPRO_FUZZ_SCENARIOS="${REPRO_FUZZ_SCENARIOS:-80}" \
python -m pytest tests/test_fuzz_parity.py -q

echo "== fuzz: radix prefix cache forced on over paged pool (same seeds) =="
REPRO_FUZZ_PAGED=on \
REPRO_FUZZ_PREFIX=on \
REPRO_FUZZ_SEED="${REPRO_FUZZ_SEED:-20240311}" \
REPRO_FUZZ_SCENARIOS="${REPRO_FUZZ_SCENARIOS:-80}" \
python -m pytest tests/test_fuzz_parity.py -q

echo "== fuzz: preemptive decode eviction forced on over paged pool (same seeds) =="
timeout --signal=TERM --kill-after=30 "${REPRO_PREEMPT_TIMEOUT_S:-300}" \
    env REPRO_FUZZ_PAGED=on \
    REPRO_FUZZ_PREEMPT=on \
    REPRO_FUZZ_SEED="${REPRO_FUZZ_SEED:-20240311}" \
    REPRO_FUZZ_SCENARIOS="${REPRO_FUZZ_SCENARIOS:-80}" \
    python -m pytest tests/test_fuzz_parity.py -q

echo "== KV-memory regression floor (paged vs dense resident bytes) =="
python -m pytest tests/test_decoding.py -q -k paged_memory_scales

echo "== fleet: seeded fault-injection fuzz (crash/hang/drop/torn-cache) =="
timeout --signal=TERM --kill-after=30 "${REPRO_FLEET_TIMEOUT_S:-300}" \
    env REPRO_FUZZ_FAULTS=on \
    REPRO_FLEET_SCENARIOS="${REPRO_FLEET_SCENARIOS:-40}" \
    python -m pytest tests/test_fuzz_fleet.py -q

echo "== scoring: mixed score/generate-traffic bitwise-parity fuzz =="
timeout --signal=TERM --kill-after=30 "${REPRO_SCORING_TIMEOUT_S:-300}" \
    env REPRO_FUZZ_SCORING=on \
    REPRO_FUZZ_SEED="${REPRO_FUZZ_SEED:-20240311}" \
    python -m pytest tests/test_fuzz_scoring.py -q

echo "== network: fault-injected HTTP client + run-journal fuzz =="
timeout --signal=TERM --kill-after=30 "${REPRO_NETWORK_TIMEOUT_S:-600}" \
    env REPRO_FUZZ_NETWORK=on \
    REPRO_NETWORK_SCENARIOS="${REPRO_NETWORK_SCENARIOS:-30}" \
    REPRO_FUZZ_SEED="${REPRO_FUZZ_SEED:-20240311}" \
    python -m pytest tests/test_fuzz_network.py -q
