"""The Fig. 6 data-management platform simulator (Section IV-A)."""

from .annotators import AnnotatorTimeModel, AnnotatorWorkforce
from .platform import (
    CleaningBatchReport,
    DataManagementPlatform,
    InferenceThroughput,
    measure_inference_throughput,
)

__all__ = [
    "AnnotatorTimeModel",
    "AnnotatorWorkforce",
    "DataManagementPlatform",
    "CleaningBatchReport",
    "InferenceThroughput",
    "measure_inference_throughput",
]
