"""Human annotator workforce with a per-defect time model.

The paper's deployment claim is a throughput claim: before CoachLM the
platform's annotators produced ~80 accepted pairs per person-day; with
CoachLM's revisions as a precursor, ~100 (net +15-20% after deducting
annotator proficiency gains).  We model annotator time explicitly:

    time(pair) = review_minutes + Σ fix_minutes(violated dimension)

so throughput *emerges* from the residual defect load reaching the
annotators — which is exactly what the CoachLM precursor reduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.instruction_pair import InstructionPair
from ..quality.scorer import CriteriaScorer

MINUTES_PER_PERSON_DAY = 8 * 60.0


@dataclass(frozen=True)
class AnnotatorTimeModel:
    """Minutes spent per pair, by activity.

    Defaults are calibrated so raw user-case batches land near the paper's
    ~80 pairs/person-day baseline.
    """

    review_minutes: float = 2.0
    fix_minutes: dict[str, float] = field(default_factory=lambda: {
        "safety": 4.0,
        "correctness": 4.0,
        "relevance": 3.5,
        "comprehensiveness": 3.0,
        "richness": 2.5,
        "readability": 1.5,
        "humanization": 1.5,
        "feasibility": 3.0,
    })

    def minutes_for_pair(
        self, pair: InstructionPair, scorer: CriteriaScorer
    ) -> float:
        report = scorer.score_pair(pair)
        minutes = self.review_minutes
        for violation in report.response.violations:
            minutes += self.fix_minutes.get(violation, 2.0)
        for violation in report.instruction.violations:
            if violation in ("feasibility", "readability"):
                minutes += self.fix_minutes.get(violation, 2.0)
        return minutes


@dataclass
class WorkforceReport:
    """Result of one annotation batch."""

    pairs_processed: int
    total_minutes: float
    per_pair_minutes: list[float]

    @property
    def person_days(self) -> float:
        return self.total_minutes / MINUTES_PER_PERSON_DAY

    @property
    def pairs_per_person_day(self) -> float:
        if self.total_minutes == 0:
            return 0.0
        return self.pairs_processed / self.person_days


class AnnotatorWorkforce:
    """A pool of annotators cleaning instruction pairs.

    ``proficiency_gain`` models the learning effect the paper deducts when
    isolating CoachLM's net contribution: annotators on a later batch work
    a few percent faster regardless of tooling.
    """

    def __init__(
        self,
        time_model: AnnotatorTimeModel | None = None,
        scorer: CriteriaScorer | None = None,
        proficiency_gain: float = 0.0,
    ):
        self.time_model = time_model or AnnotatorTimeModel()
        self.scorer = scorer or CriteriaScorer()
        self.proficiency_gain = proficiency_gain

    def process_batch(self, pairs: list[InstructionPair]) -> WorkforceReport:
        """Clean a batch; returns the time accounting."""
        per_pair = [
            self.time_model.minutes_for_pair(pair, self.scorer)
            * (1.0 - self.proficiency_gain)
            for pair in pairs
        ]
        return WorkforceReport(
            pairs_processed=len(pairs),
            total_minutes=float(np.sum(per_pair)),
            per_pair_minutes=per_pair,
        )
