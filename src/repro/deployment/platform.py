"""The LLM data-management platform of Fig. 6.

Pipeline stages, mirroring the figure:

1. **intake** — online user cases arrive (noisy instructions, LLM-generated
   responses): the ``USER_CASE_PROFILE`` corpus;
2. **rule-based scripts** — parse/clean raw cases (surface fixes only);
3. **CoachLM precursor** (the integration this paper adds) — automatic
   revisions before any human touches the data;
4. **human annotators** — final cleaning to acceptance criteria, with the
   per-defect time model of :mod:`repro.deployment.annotators`.

Comparing stage-4 throughput with and without stage 3 reproduces the
paper's 80 → ~100 pairs/person-day result; a real wall-clock measurement
of CoachLM inference reproduces the samples/second figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.coachlm import CoachLM
from ..data.alpaca_generator import USER_CASE_PROFILE, generate_dataset, rule_clean
from ..data.dataset import InstructionDataset
from ..quality.scorer import CriteriaScorer
from .annotators import AnnotatorWorkforce, WorkforceReport


@dataclass(frozen=True)
class CleaningBatchReport:
    """Throughput accounting of one cleaning batch."""

    batch_size: int
    with_coachlm: bool
    workforce: WorkforceReport
    mean_quality_in: float
    mean_quality_out_of_coach: float | None

    @property
    def pairs_per_person_day(self) -> float:
        return self.workforce.pairs_per_person_day


@dataclass(frozen=True)
class InferenceThroughput:
    """Measured CoachLM inference speed (paper: 1.19 samples/s on an A100)."""

    samples: int
    seconds: float

    @property
    def samples_per_second(self) -> float:
        if self.seconds == 0:
            return 0.0
        return self.samples / self.seconds


class DataManagementPlatform:
    """End-to-end simulator of the Fig. 6 platform."""

    def __init__(
        self,
        coach: CoachLM | None = None,
        workforce: AnnotatorWorkforce | None = None,
        scorer: CriteriaScorer | None = None,
    ):
        self.coach = coach
        self.workforce = workforce or AnnotatorWorkforce()
        self.scorer = scorer or CriteriaScorer()

    def intake(
        self, rng: np.random.Generator, n_cases: int
    ) -> InstructionDataset:
        """Collect raw online user cases."""
        return generate_dataset(rng, n_cases, USER_CASE_PROFILE, name="user-cases")

    def rule_based_cleaning(
        self, raw: InstructionDataset
    ) -> InstructionDataset:
        """The platform's pre-existing scripts: surface cleanup only."""
        return rule_clean(raw)

    def run_cleaning_batch(
        self,
        rng: np.random.Generator,
        n_cases: int,
        use_coachlm: bool,
    ) -> CleaningBatchReport:
        """Process one batch end-to-end and account annotator time."""
        raw = self.intake(rng, n_cases)
        parsed = self.rule_based_cleaning(raw)
        quality_in = float(np.mean(
            [self.scorer.score_response(p).score for p in parsed]
        ))

        coach_quality = None
        to_annotate = parsed
        if use_coachlm:
            if self.coach is None:
                raise ValueError("platform has no CoachLM attached")
            to_annotate, _ = self.coach.revise_dataset(parsed)
            coach_quality = float(np.mean(
                [self.scorer.score_response(p).score for p in to_annotate]
            ))

        report = self.workforce.process_batch(list(to_annotate))
        return CleaningBatchReport(
            batch_size=n_cases,
            with_coachlm=use_coachlm,
            workforce=report,
            mean_quality_in=quality_in,
            mean_quality_out_of_coach=coach_quality,
        )

    @staticmethod
    def net_improvement(
        baseline: CleaningBatchReport,
        with_coach: CleaningBatchReport,
        proficiency_share: float = 0.25,
    ) -> float:
        """Net throughput gain attributable to CoachLM.

        The paper deducts the efficiency brought by annotators' growing
        proficiency before crediting CoachLM with the remaining 15-20%;
        ``proficiency_share`` is the fraction of the raw gain deducted.
        """
        raw_gain = (
            with_coach.pairs_per_person_day / baseline.pairs_per_person_day
        ) - 1.0
        return raw_gain * (1.0 - proficiency_share)


def measure_inference_throughput(
    coach: CoachLM, dataset: InstructionDataset, max_samples: int = 64
) -> InferenceThroughput:
    """Wall-clock CoachLM revision throughput on this machine."""
    pairs = list(dataset)[:max_samples]
    start = time.perf_counter()
    for pair in pairs:
        coach.revise_pair(pair)
    elapsed = time.perf_counter() - start
    return InferenceThroughput(samples=len(pairs), seconds=elapsed)
