"""The LLM data-management platform of Fig. 6.

Pipeline stages, mirroring the figure:

1. **intake** — online user cases arrive (noisy instructions, LLM-generated
   responses): the ``USER_CASE_PROFILE`` corpus;
2. **rule-based scripts** — parse/clean raw cases (surface fixes only);
3. **CoachLM precursor** (the integration this paper adds) — automatic
   revisions before any human touches the data;
4. **human annotators** — final cleaning to acceptance criteria, with the
   per-defect time model of :mod:`repro.deployment.annotators`.

Comparing stage-4 throughput with and without stage 3 reproduces the
paper's 80 → ~100 pairs/person-day result; a real wall-clock measurement
of CoachLM inference reproduces the samples/second figure.

When a :class:`~repro.serving.server.RevisionServer` is attached, the
CoachLM stage routes through it via the in-process client — the same
admission control, dedup cache and streaming scheduler that serve
external HTTP traffic — instead of calling
:meth:`CoachLM.revise_dataset` directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.coachlm import CoachLM
from ..data.alpaca_generator import USER_CASE_PROFILE, generate_dataset, rule_clean
from ..data.dataset import InstructionDataset
from ..quality.scorer import CriteriaScorer
from .annotators import AnnotatorWorkforce, WorkforceReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..serving.server import RevisionServer


@dataclass(frozen=True)
class CleaningBatchReport:
    """Throughput accounting of one cleaning batch."""

    batch_size: int
    with_coachlm: bool
    workforce: WorkforceReport
    mean_quality_in: float
    mean_quality_out_of_coach: float | None

    @property
    def pairs_per_person_day(self) -> float:
        return self.workforce.pairs_per_person_day


@dataclass(frozen=True)
class InferenceThroughput:
    """Measured CoachLM inference speed (paper: 1.19 samples/s on an A100).

    ``seconds`` must come from a monotonic timer
    (:func:`time.perf_counter`), never ``time.time()``: wall-clock
    adjustments (NTP, DST) could otherwise make throughput negative or
    arbitrarily inflated.
    """

    samples: int
    seconds: float

    @property
    def samples_per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.samples / self.seconds


class DataManagementPlatform:
    """End-to-end simulator of the Fig. 6 platform.

    The CoachLM precursor stage runs through ``server`` (the online
    revision service) when one is attached, and falls back to the
    in-process ``coach`` otherwise.
    """

    def __init__(
        self,
        coach: CoachLM | None = None,
        workforce: AnnotatorWorkforce | None = None,
        scorer: CriteriaScorer | None = None,
        server: "RevisionServer | None" = None,
    ):
        if coach is None and server is not None:
            coach = server.coach
        self.coach = coach
        self.server = server
        self.workforce = workforce or AnnotatorWorkforce()
        self.scorer = scorer or CriteriaScorer()

    def intake(
        self, rng: np.random.Generator, n_cases: int
    ) -> InstructionDataset:
        """Collect raw online user cases."""
        return generate_dataset(rng, n_cases, USER_CASE_PROFILE, name="user-cases")

    def rule_based_cleaning(
        self, raw: InstructionDataset
    ) -> InstructionDataset:
        """The platform's pre-existing scripts: surface cleanup only."""
        return rule_clean(raw)

    def run_cleaning_batch(
        self,
        rng: np.random.Generator,
        n_cases: int,
        use_coachlm: bool,
    ) -> CleaningBatchReport:
        """Process one batch end-to-end and account annotator time."""
        raw = self.intake(rng, n_cases)
        parsed = self.rule_based_cleaning(raw)
        quality_in = float(np.mean(
            [self.scorer.score_response(p).score for p in parsed]
        ))

        coach_quality = None
        to_annotate = parsed
        if use_coachlm:
            to_annotate, _ = self._coach_revise(parsed)
            coach_quality = float(np.mean(
                [self.scorer.score_response(p).score for p in to_annotate]
            ))

        report = self.workforce.process_batch(list(to_annotate))
        return CleaningBatchReport(
            batch_size=n_cases,
            with_coachlm=use_coachlm,
            workforce=report,
            mean_quality_in=quality_in,
            mean_quality_out_of_coach=coach_quality,
        )

    def _coach_revise(self, parsed: InstructionDataset):
        """Stage 3: through the online service when attached, else direct."""
        if self.server is not None:
            from ..serving.client import InProcessRevisionClient

            return InProcessRevisionClient(self.server).revise_dataset(parsed)
        if self.coach is None:
            raise ValueError("platform has no CoachLM attached")
        return self.coach.revise_dataset(parsed)

    @staticmethod
    def net_improvement(
        baseline: CleaningBatchReport,
        with_coach: CleaningBatchReport,
        proficiency_share: float = 0.25,
    ) -> float:
        """Net throughput gain attributable to CoachLM.

        The paper deducts the efficiency brought by annotators' growing
        proficiency before crediting CoachLM with the remaining 15-20%;
        ``proficiency_share`` is the fraction of the raw gain deducted.
        """
        raw_gain = (
            with_coach.pairs_per_person_day / baseline.pairs_per_person_day
        ) - 1.0
        return raw_gain * (1.0 - proficiency_share)


def measure_inference_throughput(
    coach: CoachLM,
    dataset: InstructionDataset,
    max_samples: int = 64,
    batch_size: int | None = None,
) -> InferenceThroughput:
    """Wall-clock CoachLM revision throughput on this machine.

    Timed with :func:`time.perf_counter` — a monotonic clock — so system
    clock adjustments can never produce negative elapsed time.
    ``batch_size`` routes the measurement through the batched engine
    (:meth:`CoachLM.revise_dataset`); ``None`` keeps the sequential
    per-pair path the paper's 1.19 samples/s figure corresponds to.
    """
    pairs = list(dataset)[:max_samples]
    start = time.perf_counter()
    if batch_size is None:
        for pair in pairs:
            coach.revise_pair(pair)
    else:
        coach.revise_dataset(
            InstructionDataset(pairs, name=dataset.name), batch_size=batch_size
        )
    elapsed = time.perf_counter() - start
    return InferenceThroughput(samples=len(pairs), seconds=elapsed)
