"""Neural-network modules: parameter containers over the autograd tensor."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ModelError
from .tensor import Tensor


class Module:
    """Base class: parameter discovery, state dicts, gradient zeroing."""

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}" if not prefix else f"{prefix}.{name}"
            if isinstance(value, Tensor):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}")

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def trainable_parameters(self) -> list[Tensor]:
        return [p for p in self.parameters() if p.requires_grad]

    def n_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def freeze(self) -> None:
        """Stop gradients through every parameter (LoRA base freezing)."""
        for p in self.parameters():
            p.requires_grad = False

    def unfreeze(self) -> None:
        for p in self.parameters():
            p.requires_grad = True

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ModelError(
                f"state dict mismatch: missing={sorted(missing)[:3]} "
                f"unexpected={sorted(unexpected)[:3]}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ModelError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            p.data = state[name].astype(np.float32).copy()


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` with W of shape (out, in)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Tensor(
            rng.uniform(-scale, scale, size=(out_features, in_features)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def __call__(self, x: Tensor) -> Tensor:
        # Flatten batch dims so the matmul is a single 2-D BLAS gemm
        # (numpy's batched 3-D matmul is ~3x slower on this path).
        batch_shape = x.shape[:-1]
        if len(batch_shape) > 1:
            x = x.reshape(-1, self.in_features)
        out = x.matmul(self.weight.transpose())
        if self.bias is not None:
            out = out + self.bias
        if len(batch_shape) > 1:
            out = out.reshape(*batch_shape, self.out_features)
        return out

    def forward_numpy(self, x: np.ndarray) -> np.ndarray:
        """Fast inference path bypassing the tape."""
        batch_shape = x.shape[:-1]
        out = x.reshape(-1, self.in_features) @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out.reshape(*batch_shape, self.out_features)


class Embedding(Module):
    """Token-id → vector lookup table."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        self.weight = Tensor(
            rng.normal(0.0, 0.02, size=(num_embeddings, dim)), requires_grad=True
        )
        self.num_embeddings = num_embeddings
        self.dim = dim

    def __call__(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise ModelError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        return self.weight.embedding(indices)

    def forward_numpy(self, indices: np.ndarray) -> np.ndarray:
        return self.weight.data[np.asarray(indices)]


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)
        self.eps = eps

    def __call__(self, x: Tensor) -> Tensor:
        return x.layer_norm(self.gamma, self.beta, eps=self.eps)

    def forward_numpy(self, x: np.ndarray) -> np.ndarray:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        xhat = (x - mu) / np.sqrt(var + self.eps)
        return xhat * self.gamma.data + self.beta.data
