"""A from-scratch neural-network substrate on numpy.

The paper fine-tunes 6-7B parameter LLMs with LoRA on A100 GPUs; this
environment has neither the weights nor the hardware, so we implement the
whole stack at laptop scale (DESIGN.md §2):

* :mod:`repro.nn.tensor` — reverse-mode autograd over numpy arrays;
* :mod:`repro.nn.modules` — Module/Linear/Embedding/LayerNorm;
* :mod:`repro.nn.transformer` — a decoder-only transformer LM with causal
  attention, an autograd training path and a fast numpy inference path
  with KV caching;
* :mod:`repro.nn.decoding` — batched decoding engine: ragged batched
  prefill (one forward pass admits a whole fleet of uneven prompts),
  chunked prefill/decode interleaving for streaming late-joins (one
  unified mixed-length ragged forward per step), dense slot KV slabs or
  a paged KV pool (fixed-size pages, block tables, memory that scales
  with live tokens), continuous batching with slot retirement/refill,
  per-sequence logit biases, and in-engine seeded top-k sampling;
* :mod:`repro.nn.lora` — Low-Rank Adaptation [Hu et al. 2021] with
  freeze/merge semantics, as the paper uses for coach instruction tuning;
* :mod:`repro.nn.optim` — Adam, LR schedules, gradient clipping;
* :mod:`repro.nn.trainer` — masked-loss training on (prompt, completion)
  sequences: exactly Eq. (1) of the paper, maximising the likelihood of
  RESPONSE tokens conditioned on the INSTRUCTION.
"""

from .tensor import Tensor, no_grad
from .modules import Embedding, LayerNorm, Linear, Module
from .transformer import TransformerConfig, TransformerLM
from .decoding import (
    BatchedEngine,
    GenerationRequest,
    InductionCopyBias,
    PagedKVCaches,
    ScoringRequest,
    SequenceScore,
    SlotKVCaches,
)
from .lora import LoRALinear, apply_lora, lora_parameters, merge_lora
from .optim import Adam, clip_grad_norm, cosine_schedule
from .trainer import LMTrainer, TrainExample, TrainStats

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "TransformerConfig",
    "TransformerLM",
    "BatchedEngine",
    "GenerationRequest",
    "InductionCopyBias",
    "PagedKVCaches",
    "ScoringRequest",
    "SequenceScore",
    "SlotKVCaches",
    "LoRALinear",
    "apply_lora",
    "merge_lora",
    "lora_parameters",
    "Adam",
    "clip_grad_norm",
    "cosine_schedule",
    "LMTrainer",
    "TrainExample",
    "TrainStats",
]
