"""Minimal reverse-mode autograd over numpy arrays.

A :class:`Tensor` wraps a float32 numpy array and records the operations
applied to it; :meth:`Tensor.backward` walks the tape in reverse
topological order.  Only the operations the transformer needs are
implemented, each with a broadcasting-aware gradient.

The design deliberately favours explicitness over generality (one class,
plain closures, no graph compilation) — the guide's "explicit is better
than implicit" applied to autograd.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

from ..errors import ModelError

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (inference/eval paths)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _sum_to_shape(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce a broadcasted gradient back to the original operand shape."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with a gradient tape."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
    ):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[], None] | None = None
        self._parents = _parents

    # -- helpers ---------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            if grad.dtype != np.float32:
                grad = grad.astype(np.float32)
            self.grad = grad
        else:
            self.grad = self.grad + grad

    @staticmethod
    def _lift(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...]) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=parents if requires else ())
        return out

    # -- arithmetic -------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out = self._make(self.data + other.data, (self, other))
        if out.requires_grad:
            def backward():
                if self.requires_grad:
                    self._accumulate(_sum_to_shape(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_sum_to_shape(out.grad, other.shape))
            out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make(-self.data, (self,))
        if out.requires_grad:
            def backward():
                self._accumulate(-out.grad)
            out._backward = backward
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out = self._make(self.data * other.data, (self, other))
        if out.requires_grad:
            def backward():
                if self.requires_grad:
                    self._accumulate(_sum_to_shape(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_sum_to_shape(out.grad * self.data, other.shape))
            out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        if not isinstance(other, Tensor):
            return self * (1.0 / np.asarray(other, dtype=np.float32))
        return self * other.pow(-1.0)

    @staticmethod
    def _fast_pow(x: np.ndarray, exponent: float) -> np.ndarray:
        # numpy's float `power` is an order of magnitude slower than
        # repeated multiplication for the small exponents we use.
        if exponent == 2.0:
            return x * x
        if exponent == 3.0:
            return x * x * x
        if exponent == -1.0:
            return 1.0 / x
        if exponent == -2.0:
            return 1.0 / (x * x)
        if exponent == 0.5:
            return np.sqrt(x)
        return np.power(x, exponent)

    def pow(self, exponent: float) -> "Tensor":
        out = self._make(self._fast_pow(self.data, exponent), (self,))
        if out.requires_grad:
            def backward():
                self._accumulate(
                    _sum_to_shape(
                        out.grad * exponent * self._fast_pow(self.data, exponent - 1.0),
                        self.shape,
                    )
                )
            out._backward = backward
        return out

    def matmul(self, other: "Tensor") -> "Tensor":
        """Batched matrix multiply (numpy ``@`` semantics)."""
        other = self._lift(other)
        out = self._make(self.data @ other.data, (self, other))
        if out.requires_grad:
            def backward():
                if self.requires_grad:
                    grad = out.grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_sum_to_shape(grad, self.shape))
                if other.requires_grad:
                    grad = np.swapaxes(self.data, -1, -2) @ out.grad
                    other._accumulate(_sum_to_shape(grad, other.shape))
            out._backward = backward
        return out

    __matmul__ = matmul

    # -- shape ops --------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        original = self.shape
        out = self._make(self.data.reshape(shape), (self,))
        if out.requires_grad:
            def backward():
                self._accumulate(out.grad.reshape(original))
            out._backward = backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = tuple(np.argsort(axes))
        out = self._make(self.data.transpose(axes), (self,))
        if out.requires_grad:
            def backward():
                self._accumulate(out.grad.transpose(inverse))
            out._backward = backward
        return out

    def __getitem__(self, key) -> "Tensor":
        out = self._make(self.data[key], (self,))
        if out.requires_grad:
            basic = isinstance(key, (int, slice)) or (
                isinstance(key, tuple)
                and all(isinstance(k, (int, slice)) for k in key)
            )
            def backward():
                grad = np.zeros_like(self.data)
                if basic:
                    # Basic indexing selects each element at most once, so a
                    # plain slice-add avoids the slow np.add.at scatter.
                    grad[key] += out.grad
                else:
                    np.add.at(grad, key, out.grad)
                self._accumulate(grad)
            out._backward = backward
        return out

    # -- reductions -------------------------------------------------------------
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            def backward():
                grad = out.grad
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis)
                self._accumulate(np.broadcast_to(grad, self.shape).copy())
            out._backward = backward
        return out

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- nonlinearities -----------------------------------------------------------
    def gelu(self) -> "Tensor":
        """Tanh-approximated GELU."""
        x = self.data
        c = np.float32(np.sqrt(2.0 / np.pi))
        x_sq = x * x
        t = np.tanh(c * (x + 0.044715 * (x_sq * x)))
        out = self._make(0.5 * x * (1.0 + t), (self,))
        if out.requires_grad:
            def backward():
                dt = (1.0 - t * t) * c * (1.0 + 3 * 0.044715 * x_sq)
                local = 0.5 * (1.0 + t) + 0.5 * x * dt
                self._accumulate(out.grad * local)
            out._backward = backward
        return out

    def softmax(self) -> "Tensor":
        """Numerically stable softmax over the last axis."""
        shifted = self.data - self.data.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=-1, keepdims=True)
        out = self._make(probs, (self,))
        if out.requires_grad:
            def backward():
                g = out.grad
                dot = (g * probs).sum(axis=-1, keepdims=True)
                self._accumulate(probs * (g - dot))
            out._backward = backward
        return out

    def layer_norm(self, gamma: "Tensor", beta: "Tensor", eps: float = 1e-5) -> "Tensor":
        """Layer normalisation over the last axis with affine parameters."""
        x = self.data
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + eps)
        xhat = (x - mu) * inv
        out = self._make(xhat * gamma.data + beta.data, (self, gamma, beta))
        if out.requires_grad:
            def backward():
                g = out.grad
                if gamma.requires_grad:
                    gamma._accumulate(
                        _sum_to_shape(g * xhat, gamma.shape)
                    )
                if beta.requires_grad:
                    beta._accumulate(_sum_to_shape(g, beta.shape))
                if self.requires_grad:
                    n = x.shape[-1]
                    gx = g * gamma.data
                    dx = (
                        gx
                        - gx.mean(axis=-1, keepdims=True)
                        - xhat * (gx * xhat).mean(axis=-1, keepdims=True)
                    ) * inv
                    self._accumulate(dx)
            out._backward = backward
        return out

    # -- sparse ops -----------------------------------------------------------------
    def embedding(self, indices: np.ndarray) -> "Tensor":
        """Row gather: ``self`` is a (V, D) table, indices are integers."""
        indices = np.asarray(indices)
        out = self._make(self.data[indices], (self,))
        if out.requires_grad:
            def backward():
                flat_idx = indices.reshape(-1)
                flat_grad = out.grad.reshape(len(flat_idx), -1)
                vocab = self.data.shape[0]
                if flat_idx.size * vocab <= 4_000_000:
                    # Scatter-add via a one-hot gemm: much faster than
                    # np.add.at for the table sizes we use.
                    one_hot = np.zeros((flat_idx.size, vocab), dtype=np.float32)
                    one_hot[np.arange(flat_idx.size), flat_idx] = 1.0
                    grad = one_hot.T @ flat_grad
                else:
                    grad = np.zeros_like(self.data)
                    np.add.at(grad, flat_idx, flat_grad)
                self._accumulate(grad)
            out._backward = backward
        return out

    def cross_entropy(
        self,
        targets: np.ndarray,
        loss_mask: np.ndarray | None = None,
    ) -> "Tensor":
        """Masked token-level cross entropy.

        ``self`` holds logits of shape (N, V); ``targets`` integer ids of
        shape (N,); ``loss_mask`` float weights of shape (N,) — the Eq. (1)
        mask restricting the loss to RESPONSE tokens.
        """
        if self.ndim != 2:
            raise ModelError(f"cross_entropy expects (N, V) logits, got {self.shape}")
        targets = np.asarray(targets, dtype=np.int64)
        n, v = self.shape
        if loss_mask is None:
            loss_mask = np.ones(n, dtype=np.float32)
        loss_mask = np.asarray(loss_mask, dtype=np.float32)

        shifted = self.data - self.data.max(axis=-1, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=-1))
        token_loss = logsumexp - shifted[np.arange(n), targets]
        denom = max(float(loss_mask.sum()), 1.0)
        value = float((token_loss * loss_mask).sum() / denom)

        out = self._make(np.float32(value), (self,))
        if out.requires_grad:
            probs = np.exp(shifted) / np.exp(shifted).sum(axis=-1, keepdims=True)
            def backward():
                grad = probs.copy()
                grad[np.arange(n), targets] -= 1.0
                grad *= (loss_mask / denom)[:, None]
                self._accumulate(grad * out.grad)
            out._backward = backward
        return out

    # -- backward pass --------------------------------------------------------------
    def backward(self) -> None:
        """Back-propagate from a scalar output."""
        if self.data.size != 1:
            raise ModelError("backward() requires a scalar tensor")
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self.grad = np.ones_like(self.data)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"
