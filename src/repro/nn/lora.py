"""Low-Rank Adaptation (LoRA) [Hu et al., ICLR 2022].

The paper adapts its backbone LLMs with LoRA ("to efficiently adapt the
backbone LLMs, we employed LoRA, a partial fine-tuning technique" —
Section III-A3).  A :class:`LoRALinear` wraps a frozen base
:class:`~repro.nn.modules.Linear` with a trainable low-rank update:

    y = x Wᵀ + b  +  (x Aᵀ) Bᵀ · (α / r)

``A`` is Gaussian-initialised, ``B`` starts at zero, so adaptation begins
as an exact no-op.  :func:`merge_lora` folds ``BA`` back into the base
weight for zero-overhead deployment inference.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .modules import Linear, Module
from .tensor import Tensor
from .transformer import TransformerLM


class LoRALinear(Module):
    """A frozen Linear plus a trainable low-rank residual."""

    def __init__(self, base: Linear, rank: int, alpha: float,
                 rng: np.random.Generator):
        if rank <= 0:
            raise ModelError(f"LoRA rank must be positive, got {rank}")
        base.freeze()
        self.base = base
        self.rank = rank
        self.alpha = float(alpha)
        self.scaling = self.alpha / rank
        self.lora_a = Tensor(
            rng.normal(0.0, 0.02, size=(rank, base.in_features)),
            requires_grad=True,
        )
        self.lora_b = Tensor(
            np.zeros((base.out_features, rank)), requires_grad=True
        )

    def __call__(self, x: Tensor) -> Tensor:
        out = self.base(x)
        update = x.matmul(self.lora_a.transpose()).matmul(self.lora_b.transpose())
        return out + update * self.scaling

    def forward_numpy(self, x: np.ndarray) -> np.ndarray:
        out = self.base.forward_numpy(x)
        update = (x @ self.lora_a.data.T) @ self.lora_b.data.T
        return out + update * self.scaling

    @property
    def in_features(self) -> int:
        return self.base.in_features

    @property
    def out_features(self) -> int:
        return self.base.out_features

    @property
    def weight(self) -> Tensor:  # pragma: no cover - convenience alias
        return self.base.weight

    @property
    def bias(self):
        return self.base.bias

    def merged_linear(self) -> Linear:
        """Fold the low-rank update into a plain Linear."""
        merged = Linear(
            self.base.in_features, self.base.out_features,
            np.random.default_rng(0), bias=self.base.bias is not None,
        )
        merged.weight.data = (
            self.base.weight.data + self.scaling * (self.lora_b.data @ self.lora_a.data)
        ).astype(np.float32)
        if self.base.bias is not None:
            merged.bias.data = self.base.bias.data.copy()
        merged.unfreeze()
        return merged


_TARGET_ATTRS = (("attn", "qkv"), ("attn", "proj"), ("mlp", "fc_in"), ("mlp", "fc_out"))


def apply_lora(
    model: TransformerLM, rank: int, alpha: float, rng: np.random.Generator
) -> TransformerLM:
    """Wrap every attention/MLP Linear of ``model`` with LoRA adapters.

    The base model is frozen in place (embeddings, LayerNorms and the LM
    head included); only adapter parameters remain trainable.
    """
    model.freeze()
    for block in model.blocks:
        for owner_name, attr in _TARGET_ATTRS:
            owner = getattr(block, owner_name)
            layer = getattr(owner, attr)
            if isinstance(layer, LoRALinear):
                raise ModelError("model already has LoRA adapters applied")
            setattr(owner, attr, LoRALinear(layer, rank, alpha, rng))
    return model


def merge_lora(model: TransformerLM) -> TransformerLM:
    """Replace every LoRALinear with its merged plain Linear, unfreezing."""
    for block in model.blocks:
        for owner_name, attr in _TARGET_ATTRS:
            owner = getattr(block, owner_name)
            layer = getattr(owner, attr)
            if isinstance(layer, LoRALinear):
                setattr(owner, attr, layer.merged_linear())
    model.unfreeze()
    return model


def lora_parameters(model: TransformerLM) -> list[Tensor]:
    """All trainable adapter parameters of a LoRA-wrapped model."""
    params: list[Tensor] = []
    for name, p in model.named_parameters():
        if "lora_a" in name or "lora_b" in name:
            params.append(p)
    if not params:
        raise ModelError("model has no LoRA adapters")
    return params
