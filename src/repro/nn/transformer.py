"""A decoder-only transformer language model.

Pre-LN GPT-style architecture: token + learned position embeddings, blocks
of causal multi-head self-attention and a GELU MLP, final LayerNorm, and a
vocabulary head.  Two forward paths:

* the **autograd path** (`forward`, `loss`) used for pre-training, coach
  instruction tuning and downstream instruction tuning;
* the **numpy inference path** (`generate`) with a per-layer KV cache for
  fast greedy/top-k decoding (verified against the autograd path in the
  test suite).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..errors import GenerationError, ModelError
from .modules import Embedding, LayerNorm, Linear, Module
from .tensor import Tensor


def _f32_fused_attention() -> bool:
    """Opt-in float32 fast path for the *fused* sequential attention.

    The fused (non-ragged) score pipeline historically multiplies by a
    Python-float scale, which under NumPy 2 promotes every score
    temporary to float64 — twice the memory traffic of the decode hot
    path's hottest tensors.  ``REPRO_F32_ATTN=1`` keeps the pipeline in
    float32 instead (matching the ragged attention core, which is
    float32 already).  The default stays the float64 path so recorded
    outputs remain bitwise stable; greedy *tokens* are identical either
    way (argmax margins dwarf the last-ulp drift), which the test suite
    pins.  Read per call so tests can toggle it via the environment.
    """
    return os.environ.get("REPRO_F32_ATTN", "") == "1"


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyper-parameters of one tiny LM."""

    vocab_size: int
    d_model: int = 64
    n_layers: int = 2
    n_heads: int = 4
    max_seq_len: int = 192
    mlp_ratio: int = 4
    #: Share the token-embedding matrix with the LM head.  Tying improves
    #: small-model copying substantially (the logit geometry matches the
    #: input embedding geometry), which the coach's copy-and-edit task
    #: depends on.
    tie_embeddings: bool = True

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads:
            raise ModelError(
                f"d_model={self.d_model} not divisible by n_heads={self.n_heads}"
            )

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads


class SelfAttention(Module):
    """Causal multi-head self-attention."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        self.config = config
        self.qkv = Linear(config.d_model, 3 * config.d_model, rng)
        self.proj = Linear(config.d_model, config.d_model, rng)

    def __call__(self, x: Tensor, causal_mask: np.ndarray) -> Tensor:
        b, t, d = x.shape
        cfg = self.config
        qkv = self.qkv(x)  # (B, T, 3D)
        qkv = qkv.reshape(b, t, 3, cfg.n_heads, cfg.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, Dh)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scale = 1.0 / np.sqrt(cfg.head_dim)
        scores = q.matmul(k.transpose(0, 1, 3, 2)) * scale  # (B, H, T, T)
        scores = scores + Tensor(causal_mask[:t, :t])
        attn = scores.softmax()
        out = attn.matmul(v)  # (B, H, T, Dh)
        out = out.transpose(0, 2, 1, 3).reshape(b, t, d)
        return self.proj(out)

    def forward_numpy(
        self,
        x: np.ndarray,
        cache,
        key_mask: np.ndarray | None = None,
        causal_mask: np.ndarray | None = None,
        pad_lens: np.ndarray | None = None,
        key_lens: np.ndarray | None = None,
        pack_spans: np.ndarray | None = None,
    ) -> np.ndarray:
        """Inference path; ``cache`` holds accumulated K/V per layer.

        ``cache`` is either the legacy per-layer dict (K/V grown by
        concatenation) or any object with an ``update(k, v)`` method that
        stores the new K/V and returns the full (k, v) to attend over —
        the batched engine passes pre-allocated slot caches this way.
        ``key_mask`` is an optional additive mask broadcastable to
        ``(B, H, T, Tk)`` (0 for valid keys, ``-1e9`` for padded slots);
        the engine uses it to hide stale columns of ragged slot caches.
        ``causal_mask`` is an optional precomputed full
        ``(max_seq_len, max_seq_len)`` upper-triangular additive mask;
        when large enough it is *sliced* instead of rebuilding ``np.triu``
        on every call, and the ``t == 1`` decode case skips the causal
        term entirely (a single query may attend to every cached key).
        ``pad_lens`` marks ``x`` as a right-aligned ragged prefill batch
        (one left-pad width per row): the attention core then runs per
        row over each sequence's valid ``[pad:, pad:]`` slice.  This
        keeps every attention temporary at the cache-friendly
        single-sequence size — a fused ``(B, H, T, T)`` prefill score
        tensor runs tens of megabytes and turns the softmax pipeline
        memory-bound — and spends zero FLOPs on pad columns, while the
        projection GEMMs around it (the bulk of the arithmetic) stay
        batched.  ``key_lens`` (only together with ``pad_lens``) marks a
        ragged *chunk continuation* batch: each row's queries are a
        right-aligned prompt chunk while its keys are the row's full
        left-aligned cache prefix of ``key_lens[row]`` columns — the
        multi-slot chunked-prefill forward, where every mid-admission
        prompt advances one chunk against its own history.  ``pack_spans``
        marks ``x`` as a *packed varlen* batch instead — one row whose
        token axis is the concatenation of every sequence's new tokens,
        sequence ``i`` owning ``[pack_spans[i], pack_spans[i+1])`` — the
        engine's unified mixed-length step forward, where decode rows
        (one token) and chunk rows (many) share one pass with **zero**
        pad positions entering any projection GEMM; the cache adapter's
        ``update`` then returns per-row key/value *prefixes* (each row's
        whole written history) rather than stacked arrays.  Masked/padded
        scores contribute exactly ``0.0`` weight after softmax in all
        paths; a batched row's logits still differ from a lone-sequence
        forward in the last ulp or two because BLAS kernel selection (and
        with it accumulation order) varies with GEMM shapes.  Greedy
        argmax margins are many orders of magnitude wider, so token
        choices are unaffected — the engine's parity suite pins this.
        """
        b, t, d = x.shape
        cfg = self.config
        qkv = self.qkv.forward_numpy(x).reshape(b, t, 3, cfg.n_heads, cfg.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scale = 1.0 / np.sqrt(cfg.head_dim)
        if pack_spans is not None:
            if pad_lens is not None:
                raise GenerationError(
                    "pack_spans is exclusive with pad_lens: the packed "
                    "varlen path derives its extents from the spans"
                )
            ones_k, ones_v, keys, vals = cache.update(k, v)
            out = self._packed_attention(
                q, ones_k, ones_v, keys, vals, scale, causal_mask, key_mask,
                pack_spans,
            )
            out = out.transpose(0, 2, 1, 3).reshape(b, t, d)
            return self.proj.forward_numpy(out)
        if cache is not None:
            if isinstance(cache, dict):
                if cache.get("k") is not None:
                    k = np.concatenate([cache["k"], k], axis=2)
                    v = np.concatenate([cache["v"], v], axis=2)
                cache["k"], cache["v"] = k, v
            else:
                k, v = cache.update(k, v)
        if pad_lens is not None:
            if key_mask is not None:
                raise GenerationError(
                    "pad_lens and key_mask are mutually exclusive: the "
                    "ragged per-row path never reads key_mask"
                )
            out = self._ragged_attention(
                q, k, v, scale, causal_mask, pad_lens, key_lens
            )
            out = out.transpose(0, 2, 1, 3).reshape(b, t, d)
            return self.proj.forward_numpy(out)
        if key_lens is not None:
            raise GenerationError(
                "key_lens requires pad_lens: it only qualifies the ragged "
                "chunk-continuation path"
            )
        scores = q @ np.swapaxes(k, -1, -2)  # (B, H, T, Tk)
        if _f32_fused_attention():
            scores *= np.float32(scale)   # stays float32 end to end
        else:
            scores = scores * scale       # float64 promotion — the
            # bitwise-pinned default (see _f32_fused_attention)
        t_k = k.shape[2]
        # Causal mask: query position i (offset by cached length) may attend
        # to key positions <= i.  For t == 1 the mask is identically zero,
        # so the add is skipped on the decode hot path.
        if t > 1:
            scores = scores + self._causal_slice(causal_mask, t, t_k)
        if key_mask is not None:
            scores = scores + key_mask
        scores -= scores.max(axis=-1, keepdims=True)
        probs = np.exp(scores)
        probs /= probs.sum(axis=-1, keepdims=True)
        out = probs @ v
        out = out.transpose(0, 2, 1, 3).reshape(b, t, d)
        return self.proj.forward_numpy(out)

    @staticmethod
    def _causal_slice(
        causal_mask: np.ndarray | None, t: int, t_k: int
    ) -> np.ndarray:
        """The ``(t, t_k)`` additive causal mask, sliced from the cached
        full-context triangle when available instead of rebuilt."""
        offset = t_k - t
        if (
            causal_mask is not None
            and causal_mask.shape[0] >= t_k
            and causal_mask.shape[1] >= t_k
        ):
            return causal_mask[offset : offset + t, :t_k]
        return np.triu(np.full((t, t_k), -1e9, dtype=np.float32), k=offset + 1)

    def _ragged_attention(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        scale: float,
        causal_mask: np.ndarray | None,
        pad_lens: np.ndarray,
        key_lens: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-row attention core of a right-aligned ragged batch.

        Each row attends with lone-sequence shapes and temporaries, so
        the score tensors stay cache-resident and pad columns cost
        nothing.  Two key layouts share the pipeline:

        * ``key_lens is None`` — plain ragged prefill: row ``row``'s keys
          are its own valid suffix ``k[row, :, pad:, :]`` (the fresh
          right-aligned batch; queries start at position 0).
        * ``key_lens`` given — ragged chunk continuation: keys are the
          row's *left-aligned* cache prefix ``k[row, :, :key_lens[row], :]``
          (slot slab columns the adapter extended with this chunk's K/V).
          The chunk starts at global position ``key_lens[row] - valid``,
          which is exactly the offset of the ``(valid, t_k)`` causal
          slice, so every query token attends to keys at positions
          ``<= its own``.

        The pipeline is kept in float32 with in-place updates (a
        ``np.float64`` scale scalar would promote every score temporary
        to float64 under NumPy 2 — twice the memory traffic of the
        hottest tensors in prefill).  Pad rows are left at zero: they
        feed only their own dead residual lanes and are never read.
        """
        b, n_heads, t, head_dim = q.shape
        scale32 = np.float32(scale)
        out = np.zeros((b, n_heads, t, head_dim), dtype=np.float32)
        for row in range(b):
            pad = int(pad_lens[row])
            valid = t - pad
            if key_lens is None:
                t_k = valid
                keys, vals = k[row, :, pad:, :], v[row, :, pad:, :]
            else:
                t_k = int(key_lens[row])
                keys, vals = k[row, :, :t_k, :], v[row, :, :t_k, :]
            scores = q[row, :, pad:, :] @ np.swapaxes(keys, -1, -2)
            scores *= scale32
            if valid > 1:
                scores += self._causal_slice(causal_mask, valid, t_k)
            scores -= scores.max(axis=-1, keepdims=True)
            np.exp(scores, out=scores)
            scores /= scores.sum(axis=-1, keepdims=True)
            out[row, :, pad:, :] = scores @ vals
        return out

    def _packed_attention(
        self,
        q: np.ndarray,
        ones_k: np.ndarray | None,
        ones_v: np.ndarray | None,
        keys: list[np.ndarray],
        vals: list[np.ndarray],
        scale: float,
        causal_mask: np.ndarray | None,
        key_mask: np.ndarray | None,
        spans: np.ndarray,
    ) -> np.ndarray:
        """Attention core of a packed varlen batch.

        ``q`` is ``(1, H, T_total, Dh)`` with row ``i``'s query tokens at
        ``[spans[i], spans[i+1])``.  The leading rows are *single-token*
        (decode-shaped): their keys arrive stacked as ``ones_k``/
        ``ones_v`` — ``(n_ones, H, view, Dh)`` with ``key_mask`` hiding
        each row's columns past its own length — and the whole block
        runs one fused masked attention, exactly the decode fast path's
        shape.  The remaining *chunk* rows run per row over their exact
        ``keys[j]``/``vals[j]`` prefixes (slab views dense, page gathers
        paged) — no pad column anywhere, and each chunk's causal slice
        starts at its global offset ``t_k - valid``.
        """
        _, n_heads, t_total, head_dim = q.shape
        scale32 = np.float32(scale)
        out = np.empty((1, n_heads, t_total, head_dim), dtype=np.float32)
        ones = 0 if ones_k is None else ones_k.shape[0]
        if ones:
            q_ones = q[0, :, spans[:ones], :][:, :, None, :]  # (n1, H, 1, Dh)
            scores = q_ones @ np.swapaxes(ones_k, -1, -2)
            scores *= scale32
            if key_mask is not None:
                scores += key_mask
            scores -= scores.max(axis=-1, keepdims=True)
            np.exp(scores, out=scores)
            scores /= scores.sum(axis=-1, keepdims=True)
            out[0, :, spans[:ones], :] = (scores @ ones_v)[:, :, 0, :]
        for row in range(ones, len(spans) - 1):
            s, e = int(spans[row]), int(spans[row + 1])
            valid = e - s
            k_row, v_row = keys[row - ones], vals[row - ones]
            scores = q[0, :, s:e, :] @ np.swapaxes(k_row, -1, -2)
            scores *= scale32
            if valid > 1:
                scores += self._causal_slice(causal_mask, valid, k_row.shape[1])
            scores -= scores.max(axis=-1, keepdims=True)
            np.exp(scores, out=scores)
            scores /= scores.sum(axis=-1, keepdims=True)
            out[0, :, s:e, :] = scores @ v_row
        return out


class MLP(Module):
    """Two-layer GELU feed-forward block."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        hidden = config.mlp_ratio * config.d_model
        self.fc_in = Linear(config.d_model, hidden, rng)
        self.fc_out = Linear(hidden, config.d_model, rng)

    def __call__(self, x: Tensor) -> Tensor:
        return self.fc_out(self.fc_in(x).gelu())

    def forward_numpy(self, x: np.ndarray) -> np.ndarray:
        h = self.fc_in.forward_numpy(x)
        c = np.float32(np.sqrt(2.0 / np.pi))
        h = 0.5 * h * (1.0 + np.tanh(c * (h + 0.044715 * (h * h * h))))
        return self.fc_out.forward_numpy(h)


class Block(Module):
    """Pre-LN transformer block."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        self.ln1 = LayerNorm(config.d_model)
        self.attn = SelfAttention(config, rng)
        self.ln2 = LayerNorm(config.d_model)
        self.mlp = MLP(config, rng)

    def __call__(self, x: Tensor, causal_mask: np.ndarray) -> Tensor:
        x = x + self.attn(self.ln1(x), causal_mask)
        x = x + self.mlp(self.ln2(x))
        return x

    def forward_numpy(
        self,
        x: np.ndarray,
        cache,
        key_mask: np.ndarray | None = None,
        causal_mask: np.ndarray | None = None,
        pad_lens: np.ndarray | None = None,
        key_lens: np.ndarray | None = None,
        pack_spans: np.ndarray | None = None,
    ) -> np.ndarray:
        x = x + self.attn.forward_numpy(
            self.ln1.forward_numpy(x), cache, key_mask, causal_mask, pad_lens,
            key_lens, pack_spans,
        )
        x = x + self.mlp.forward_numpy(self.ln2.forward_numpy(x))
        return x


class TransformerLM(Module):
    """Decoder-only LM with training and cached-inference paths."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        self.config = config
        self.tok_emb = Embedding(config.vocab_size, config.d_model, rng)
        self.pos_emb = Embedding(config.max_seq_len, config.d_model, rng)
        self.blocks = [Block(config, rng) for _ in range(config.n_layers)]
        self.ln_f = LayerNorm(config.d_model)
        self.head = (
            None if config.tie_embeddings
            else Linear(config.d_model, config.vocab_size, rng, bias=False)
        )
        self._causal_mask = np.triu(
            np.full((config.max_seq_len, config.max_seq_len), -1e9, dtype=np.float32),
            k=1,
        )

    # -- training path -----------------------------------------------------------
    def forward(self, idx: np.ndarray) -> Tensor:
        """Logits for a batch of token ids (B, T) → Tensor (B, T, V)."""
        idx = np.asarray(idx)
        b, t = idx.shape
        if t > self.config.max_seq_len:
            raise ModelError(
                f"sequence length {t} exceeds context {self.config.max_seq_len}"
            )
        positions = np.arange(t)
        x = self.tok_emb(idx) + self.pos_emb(positions)
        for block in self.blocks:
            x = block(x, self._causal_mask)
        x = self.ln_f(x)
        if self.head is None:
            return x.reshape(b * t, self.config.d_model).matmul(
                self.tok_emb.weight.transpose()
            ).reshape(b, t, self.config.vocab_size)
        return self.head(x)

    def loss(
        self,
        idx: np.ndarray,
        targets: np.ndarray,
        loss_mask: np.ndarray,
    ) -> Tensor:
        """Masked next-token loss — Eq. (1): P(RESPONSE | INSTRUCTION)."""
        logits = self.forward(idx)
        b, t, v = logits.shape
        return logits.reshape(b * t, v).cross_entropy(
            np.asarray(targets).reshape(b * t),
            np.asarray(loss_mask, dtype=np.float32).reshape(b * t),
        )

    # -- inference path ------------------------------------------------------------
    def _forward_numpy(
        self,
        idx: np.ndarray,
        caches: list | None,
        position_offset: int | np.ndarray = 0,
        key_mask: np.ndarray | None = None,
        pad_lens: np.ndarray | None = None,
        key_lens: np.ndarray | None = None,
        pack_spans: np.ndarray | None = None,
        token_positions: np.ndarray | None = None,
        last_only: bool = False,
        logit_positions: np.ndarray | None = None,
    ) -> np.ndarray:
        """Inference forward.

        ``position_offset`` is a scalar (all rows share one offset — the
        legacy single-sequence path) or a ``(B,)`` array of per-sequence
        offsets (the batched engine decodes rows at different depths; a
        right-aligned ragged prefill batch passes *negative* offsets so
        each prompt's real tokens land on positions ``0..len-1``, and the
        resulting negative pad-row positions are clamped to 0 — pad rows
        are never attended to and never read).  ``token_positions``
        instead gives every token's position explicitly, same shape as
        ``idx`` — required by the packed varlen layout (``pack_spans``),
        where one row concatenates many sequences at unrelated depths.
        ``key_mask``, ``pad_lens``, ``key_lens`` and ``pack_spans`` are
        forwarded to every attention layer (see
        :meth:`SelfAttention.forward_numpy`).  ``last_only`` restricts
        the final norm + vocabulary projection to the last position of
        each row — prefill only consumes last-token logits, and the head
        GEMM over a whole prompt is otherwise the single largest matmul
        of the forward; the return value is then ``(B, 1, V)``, except
        with ``pack_spans`` where each packed sequence's last token is
        gathered instead: ``(1, n_rows, V)``.  ``logit_positions``
        generalises ``last_only`` for teacher-forced scoring: an index
        array gathering exactly the token positions whose logits are
        consumed before the final norm + head, so the full-vocab GEMM
        runs only over scored positions; the return value is then
        ``(B, len(logit_positions), V)``.
        """
        if logit_positions is not None and (last_only or pack_spans is not None):
            raise GenerationError(
                "logit_positions is exclusive with last_only/pack_spans"
            )
        idx = np.asarray(idx)
        b, t = idx.shape
        if token_positions is not None:
            positions = token_positions
            last_position = int(token_positions.max()) if t else 0
        else:
            offsets = np.asarray(position_offset, dtype=np.int64)
            if offsets.ndim == 0:
                positions = np.arange(int(offsets), int(offsets) + t)
                last_position = int(offsets) + t - 1
            else:
                if offsets.shape != (b,):
                    raise GenerationError(
                        f"position_offset shape {offsets.shape} != ({b},)"
                    )
                positions = np.maximum(offsets[:, None] + np.arange(t)[None, :], 0)
                last_position = int(offsets.max()) + t - 1
        if last_position >= self.config.max_seq_len:
            raise GenerationError(
                f"position {last_position} exceeds context "
                f"{self.config.max_seq_len}"
            )
        x = self.tok_emb.forward_numpy(idx) + self.pos_emb.forward_numpy(positions)
        for i, block in enumerate(self.blocks):
            x = block.forward_numpy(
                x,
                caches[i] if caches is not None else None,
                key_mask,
                self._causal_mask,
                pad_lens,
                key_lens,
                pack_spans,
            )
        if last_only:
            if pack_spans is not None:
                x = x[:, pack_spans[1:] - 1, :]
            else:
                x = x[:, -1:, :]
        elif logit_positions is not None:
            x = x[:, logit_positions, :]
        x = self.ln_f.forward_numpy(x)
        if self.head is None:
            return x @ self.tok_emb.weight.data.T
        return self.head.forward_numpy(x)

    def generate(
        self,
        prompt_ids: list[int],
        max_new_tokens: int,
        eos_id: int | None = None,
        top_k: int | None = None,
        rng: np.random.Generator | None = None,
        logit_bias: np.ndarray | None = None,
    ) -> list[int]:
        """Decode a continuation of ``prompt_ids`` with a KV cache.

        Greedy decoding by default ("the beam size for decoding was set to
        one for all models" — Section III-A3); pass ``top_k`` and ``rng``
        for stochastic sampling.  ``logit_bias`` is an optional (V,) array
        added to every step's logits — used by CoachLM's copy-biased
        decoding (a pointer-network-style stand-in for the reliable
        long-span copying a billion-parameter model has natively).
        """
        if not prompt_ids:
            raise GenerationError("prompt must contain at least one token")
        if top_k is not None and rng is None:
            raise GenerationError("top_k sampling requires an rng")
        if logit_bias is not None and logit_bias.shape != (self.config.vocab_size,):
            raise GenerationError(
                f"logit_bias must have shape ({self.config.vocab_size},)"
            )
        budget = self.config.max_seq_len - len(prompt_ids)
        max_new_tokens = min(max_new_tokens, budget)
        if max_new_tokens <= 0:
            return []

        caches: list[dict] = [{"k": None, "v": None} for _ in self.blocks]
        idx = np.asarray([prompt_ids], dtype=np.int64)
        logits = self._forward_numpy(idx, caches)[:, -1, :]
        produced: list[int] = []
        offset = len(prompt_ids)
        for _ in range(max_new_tokens):
            step_logits = logits[0]
            if logit_bias is not None:
                step_logits = step_logits + logit_bias
            if top_k is not None:
                token = _sample_top_k(step_logits, top_k, rng)
            else:
                token = int(step_logits.argmax())
            produced.append(token)
            if eos_id is not None and token == eos_id:
                break
            logits = self._forward_numpy(
                np.asarray([[token]], dtype=np.int64), caches, position_offset=offset
            )[:, -1, :]
            offset += 1
        return produced

    def logits_numpy(self, idx: np.ndarray) -> np.ndarray:
        """Full-sequence logits on the inference path (no cache)."""
        return self._forward_numpy(np.asarray(idx), caches=None)

    def sequence_logprobs(
        self, prompt_ids: list[int], completion_ids: list[int]
    ) -> np.ndarray:
        """Teacher-forced per-token log P(completion | prompt), float64 ``(S,)``.

        One cache-free forward over ``prompt + completion`` at the
        lone-sequence ``(1, T)`` shape; ``logit_positions`` restricts the
        final norm + full-vocab head to exactly the ``len(completion)``
        positions that *predict* a completion token (position ``i``
        predicts token ``i + 1``), so the head GEMM never touches the
        prompt interior.  Entry ``j`` is ``log P(completion[j] |
        prompt + completion[:j])`` under a numerically stable float64
        log-softmax.

        This is the sequential scoring **reference**:
        :meth:`BatchedEngine.score` routes every scoring job through this
        exact method (batching happens at the scheduling layer, never
        inside a trunk GEMM), because BLAS kernel selection varies with
        GEMM shapes — a batched row's logits differ from a lone-sequence
        forward in the last ulp, which greedy decoding shrugs off but a
        bitwise-pinned score must not.
        """
        if not prompt_ids:
            raise GenerationError("scoring needs a non-empty prompt")
        if not completion_ids:
            raise GenerationError("scoring needs a non-empty completion")
        tokens = list(prompt_ids) + list(completion_ids)
        if len(tokens) > self.config.max_seq_len:
            raise GenerationError(
                f"sequence length {len(tokens)} exceeds context "
                f"{self.config.max_seq_len}"
            )
        idx = np.asarray([tokens], dtype=np.int64)
        positions = np.arange(len(prompt_ids) - 1, len(tokens) - 1)
        logits = self._forward_numpy(idx, caches=None, logit_positions=positions)
        targets = np.asarray(completion_ids, dtype=np.int64)
        return _token_logprobs(logits[0], targets)

    def clone(self) -> "TransformerLM":
        """Deep copy: same config, copied weights, fresh tape."""
        twin = TransformerLM(self.config, np.random.default_rng(0))
        twin.load_state_dict(self.state_dict())
        return twin


def _token_logprobs(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Stable log-softmax gather: ``log P(targets[i])`` from ``logits[i]``.

    Promotes to float64 before the reduction so the summed sequence
    logprob (and the perplexity derived from it) is reproducible to the
    last bit regardless of the float32 logits' dynamic range.
    """
    logits = np.asarray(logits, dtype=np.float64)
    m = logits.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(logits - m).sum(axis=-1)) + m[..., 0]
    rows = np.arange(logits.shape[0])
    return logits[rows, targets] - lse


def _sample_top_k(logits: np.ndarray, k: int, rng: np.random.Generator) -> int:
    k = min(k, logits.shape[-1])
    top = np.argpartition(logits, -k)[-k:]
    top_logits = logits[top] - logits[top].max()
    probs = np.exp(top_logits)
    probs /= probs.sum()
    return int(top[rng.choice(k, p=probs)])
