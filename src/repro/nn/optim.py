"""Optimisation: Adam, gradient clipping, learning-rate schedules."""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..errors import ModelError
from .tensor import Tensor


class Adam:
    """Adam optimiser [Kingma & Ba 2015] with bias correction."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if not params:
            raise ModelError("Adam received an empty parameter list")
        self.params = params
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        """Apply one update using each parameter's accumulated gradient."""
        self.t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self.t
        bias2 = 1.0 - b2**self.t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = b1 * self._m[i] + (1.0 - b1) * grad
            self._v[i] = b2 * self._v[i] + (1.0 - b2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm


def cosine_schedule(
    base_lr: float, total_steps: int, warmup_steps: int = 0, min_lr: float = 0.0
) -> Callable[[int], float]:
    """Cosine decay with optional linear warmup; returns ``lr(step)``."""
    if total_steps <= 0:
        raise ModelError("total_steps must be positive")

    def lr_at(step: int) -> float:
        if warmup_steps and step < warmup_steps:
            return base_lr * (step + 1) / warmup_steps
        progress = (step - warmup_steps) / max(1, total_steps - warmup_steps)
        progress = min(max(progress, 0.0), 1.0)
        return min_lr + 0.5 * (base_lr - min_lr) * (1.0 + math.cos(math.pi * progress))

    return lr_at
