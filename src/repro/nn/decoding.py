"""Batched greedy decoding engine over :class:`TransformerLM`.

Inference engine
----------------

The sequential path (:meth:`TransformerLM.generate`) spends one full
forward pass per token per sequence; on the numpy backend every decode
step is a handful of tiny GEMMs whose cost is dominated by per-call
overhead.  This module amortises that overhead across a *fleet* of
sequences — the shape of both heavy stages of the pipeline (Eq. (2)
dataset revision over the whole ALPACA52K simulacrum, and Table IX test
set response generation):

* **Per-sequence prefill.**  Prompts are ragged; each is prefilled
  individually with exactly the shapes of the sequential path, so
  prefill is bit-for-bit identical to :meth:`TransformerLM.generate`
  (same GEMM shapes → same BLAS kernels → same floats) and no prompt
  padding is ever computed.  The first generated token therefore always
  matches the sequential path exactly.
* **Batched decode.**  All active sequences advance one token per
  forward pass through shared pre-allocated slot KV caches
  (:class:`SlotKVCaches`).  Attention over ragged cache lengths uses an
  additive key mask; masked scores underflow to exactly ``0.0`` after
  softmax, so padded slots contribute nothing to the float sums.
* **Continuous batching.**  A sequence that hits EOS (or its token
  budget) retires immediately; its slot is refilled from the pending
  queue, or the batch is compacted (swap-with-last) so stragglers never
  pay for dead slots.
* **Streaming intake.**  The same machinery is exposed incrementally —
  ``submit()`` enqueues a request at any time, ``step()`` advances the
  fleet one token, ``collect()`` drains finished results — so callers
  serving requests that arrive over time (:mod:`repro.serving`) can slip
  new work into retiring slots mid-flight; ``generate()`` is the
  run-to-completion loop layered on top.
* **Per-sequence logit bias.**  Each request carries an optional static
  ``(V,)`` bias — together they form the batch's ``(B, V)`` bias matrix —
  plus an optional per-step hook for dynamic biases
  (:class:`InductionCopyBias` implements CoachLM's copy-assist with a
  prompt index precomputed once instead of an O(prompt) scan per step).

Decoding is greedy (the paper sets beam size to one for all models);
stochastic top-k sampling stays on the sequential path.  Batched GEMMs
round differently from single-row GEMMs at the last ulp, so logits are
not bit-identical across batch sizes — but greedy argmax margins are
many orders of magnitude wider, and the test suite pins token-for-token
parity with the sequential path on every edge case (ragged prompts,
EOS at different steps, prompt-too-long, per-sequence biases).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import DEFAULT_GEN_BATCH_SIZE
from ..errors import GenerationError
from .transformer import TransformerLM

#: Additive mask value for invalid key slots (matches the causal mask).
_NEG_INF = np.float32(-1e9)


@dataclass
class GenerationRequest:
    """One sequence to decode: prompt, budget and per-sequence biases.

    ``logit_bias`` is a static ``(V,)`` array added to every step's
    logits; it is normalised to float32 (the model's compute dtype) so
    every step — including the first — applies the identical bias.
    ``step_bias`` is called as ``step_bias(produced, logits_row)``
    before each argmax and may add dynamic bias in place (it sees the
    tokens produced *so far*, i.e. it is a no-op opportunity on the first
    token when ``produced`` is empty).
    """

    prompt_ids: list[int]
    max_new_tokens: int
    eos_id: int | None = None
    logit_bias: np.ndarray | None = None
    step_bias: Callable[[list[int], np.ndarray], None] | None = None

    def __post_init__(self) -> None:
        if self.logit_bias is not None and self.logit_bias.dtype != np.float32:
            self.logit_bias = self.logit_bias.astype(np.float32)


class InductionCopyBias:
    """Precomputed induction-head bias: suffix-match followers of a prompt.

    Reproduces :meth:`CoachLM._induction_followers` exactly — at each
    step the token following a prompt span that matches the last one or
    two produced tokens gets a logit bonus (bigram match earns
    ``strength``, unigram match half) — but from an index built once per
    prompt instead of an O(len(prompt)) Python scan per step.

    The index stores, per last-token, the unique unigram followers, and
    per (second, last) bigram, the bigram followers plus the unigram
    followers *not* covered by the bigram — so each follower receives a
    single add of exactly the strength the sequential scan would use
    (bigram ⊃ unigram positions, max semantics).
    """

    def __init__(
        self,
        prompt: list[int],
        strength: float,
        blocked: frozenset[int] = frozenset(),
    ):
        uni: dict[int, set[int]] = {}
        bi: dict[tuple[int, int], set[int]] = {}
        n = len(prompt)
        for i in range(n - 1):
            follower = prompt[i + 1]
            if follower in blocked:
                continue
            uni.setdefault(prompt[i], set()).add(follower)
            if i > 0:
                bi.setdefault((prompt[i - 1], prompt[i]), set()).add(follower)
        self._full = np.float32(strength * 1.0)
        self._half = np.float32(strength * 0.5)
        self._uni: dict[int, np.ndarray] = {
            tok: np.fromiter(sorted(fs), dtype=np.int64) for tok, fs in uni.items()
        }
        # Per bigram key: (full-strength followers, leftover half-strength).
        self._bi: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        for key, fs in bi.items():
            rest = uni.get(key[1], set()) - fs
            self._bi[key] = (
                np.fromiter(sorted(fs), dtype=np.int64),
                np.fromiter(sorted(rest), dtype=np.int64),
            )

    def __call__(self, produced: list[int], logits_row: np.ndarray) -> None:
        if not produced:
            return
        last = produced[-1]
        if len(produced) >= 2:
            hit = self._bi.get((produced[-2], last))
            if hit is not None:
                full, rest = hit
                logits_row[full] += self._full
                if rest.size:
                    logits_row[rest] += self._half
                return
        followers = self._uni.get(last)
        if followers is not None:
            logits_row[followers] += self._half


class SlotKVCaches:
    """Pre-allocated per-layer K/V slabs with per-slot lengths.

    Layout is ``(max_batch, n_heads, capacity, head_dim)`` per layer,
    left-aligned: slot ``b`` owns columns ``[0, lengths[b])``.  Unlike the
    legacy concat cache this never reallocates, and refilling a retired
    slot simply overwrites from column zero (stale columns beyond the new
    length are hidden by the key mask).
    """

    def __init__(self, model: TransformerLM, max_batch: int):
        cfg = model.config
        shape = (max_batch, cfg.n_heads, cfg.max_seq_len, cfg.head_dim)
        self.k = [np.zeros(shape, dtype=np.float32) for _ in model.blocks]
        self.v = [np.zeros(shape, dtype=np.float32) for _ in model.blocks]
        self.lengths = np.zeros(max_batch, dtype=np.int64)
        self.max_batch = max_batch

    def prefill_adapters(self, slot: int) -> list["_PrefillSlot"]:
        return [_PrefillSlot(self, layer, slot) for layer in range(len(self.k))]

    def step_adapters(self, n_active: int, view_len: int) -> list["_StepSlot"]:
        return [
            _StepSlot(self, layer, n_active, view_len)
            for layer in range(len(self.k))
        ]

    def move(self, src: int, dst: int) -> None:
        """Copy slot ``src`` over slot ``dst`` (batch compaction)."""
        for layer in range(len(self.k)):
            self.k[layer][dst] = self.k[layer][src]
            self.v[layer][dst] = self.v[layer][src]
        self.lengths[dst] = self.lengths[src]


class _PrefillSlot:
    """Cache adapter for single-sequence prefill into one slot.

    Returns the fresh K/V unchanged so prefill attention is exactly the
    legacy empty-cache path (bitwise), while copying them into the slab.
    """

    __slots__ = ("caches", "layer", "slot")

    def __init__(self, caches: SlotKVCaches, layer: int, slot: int):
        self.caches = caches
        self.layer = layer
        self.slot = slot

    def update(self, k: np.ndarray, v: np.ndarray):
        t = k.shape[2]
        self.caches.k[self.layer][self.slot, :, :t] = k[0]
        self.caches.v[self.layer][self.slot, :, :t] = v[0]
        return k, v


class _StepSlot:
    """Cache adapter for one batched decode step over the active slots."""

    __slots__ = ("caches", "layer", "n_active", "view_len")

    def __init__(self, caches: SlotKVCaches, layer: int, n_active: int, view_len: int):
        self.caches = caches
        self.layer = layer
        self.n_active = n_active
        self.view_len = view_len

    def update(self, k: np.ndarray, v: np.ndarray):
        c = self.caches
        n = self.n_active
        rows = np.arange(n)
        write_at = c.lengths[:n]
        c.k[self.layer][rows, :, write_at] = k[:, :, 0, :]
        c.v[self.layer][rows, :, write_at] = v[:, :, 0, :]
        return (
            c.k[self.layer][:n, :, : self.view_len],
            c.v[self.layer][:n, :, : self.view_len],
        )


@dataclass
class _SlotState:
    """Decode-time state of one occupied slot."""

    seq_id: int                     #: engine-wide id assigned at submit()
    request: GenerationRequest
    budget: int
    produced: list[int] = field(default_factory=list)


class BatchedEngine:
    """Continuous-batching greedy decoder over a :class:`TransformerLM`.

    See the module docstring for the architecture.  The engine can be
    driven two ways:

    * **Run to completion** — :meth:`generate` consumes a list of
      :class:`GenerationRequest` and returns the produced token lists in
      input order; results are token-for-token identical to calling
      :meth:`TransformerLM.generate` (greedy) per request.
    * **Streaming** — :meth:`submit` enqueues one request and returns its
      sequence id, :meth:`step` advances the whole fleet one token
      (admitting pending requests into free slots first, so a request
      submitted mid-flight joins the batch as soon as a slot retires
      instead of waiting for the batch to drain), and :meth:`collect`
      pops finished ``{seq_id: tokens}`` results.  This is the substrate
      of the online revision service (:mod:`repro.serving`).

    The slot KV slabs are allocated lazily on first use and reused across
    drains: a refilled slot overwrites from column zero and the key mask
    hides stale columns, so results never depend on slot history.  The
    engine is not thread-safe; a single driver (e.g. the serving worker
    thread) must own all ``submit``/``step``/``collect`` calls, and
    :meth:`generate` must not be interleaved with an external
    :meth:`collect`.
    """

    def __init__(self, model: TransformerLM, max_batch: int = DEFAULT_GEN_BATCH_SIZE):
        if max_batch < 1:
            raise GenerationError(f"max_batch must be >= 1, got {max_batch}")
        self.model = model
        self.max_batch = max_batch
        self._caches: SlotKVCaches | None = None
        self._bias: np.ndarray | None = None
        self._slots: list[_SlotState | None] = [None] * max_batch
        self._n_active = 0
        self._pending: deque[tuple[int, GenerationRequest]] = deque()
        self._finished: dict[int, list[int]] = {}
        self._next_id = 0

    # -- request intake ----------------------------------------------------------
    def _validate(self, request: GenerationRequest) -> None:
        if not request.prompt_ids:
            raise GenerationError("prompt must contain at least one token")
        vocab = self.model.config.vocab_size
        if request.logit_bias is not None and request.logit_bias.shape != (vocab,):
            raise GenerationError(f"logit_bias must have shape ({vocab},)")

    def submit(self, request: GenerationRequest) -> int:
        """Enqueue one request; returns its sequence id.

        The request is admitted into a KV slot by a later :meth:`step` —
        immediately if a slot is free, otherwise as soon as one retires.
        """
        self._validate(request)
        seq_id = self._next_id
        self._next_id += 1
        self._pending.append((seq_id, request))
        return seq_id

    @property
    def n_active(self) -> int:
        """Sequences currently decoding in KV slots."""
        return self._n_active

    @property
    def n_pending(self) -> int:
        """Submitted sequences not yet admitted into a slot."""
        return len(self._pending)

    @property
    def free_capacity(self) -> int:
        """Slots the engine can absorb before submissions queue behind others."""
        return self.max_batch - self._n_active - len(self._pending)

    @property
    def has_work(self) -> bool:
        return bool(self._pending) or self._n_active > 0

    @staticmethod
    def _first_token(
        state: _SlotState, logits_row: np.ndarray, bias_row: np.ndarray
    ) -> bool:
        """Apply biases, argmax, record; return True when finished."""
        request = state.request
        step = logits_row
        if request.logit_bias is not None or request.step_bias is not None:
            step = step + bias_row
            if request.step_bias is not None:
                request.step_bias(state.produced, step)
        token = int(step.argmax())
        state.produced.append(token)
        return (
            request.eos_id is not None and token == request.eos_id
        ) or len(state.produced) >= state.budget

    def _ensure_state(self) -> None:
        if self._caches is None:
            self._caches = SlotKVCaches(self.model, self.max_batch)
            self._bias = np.zeros(
                (self.max_batch, self.model.config.vocab_size), dtype=np.float32
            )

    def _fill(self, slot: int) -> bool:
        """Prefill the next viable pending request into ``slot``."""
        context = self.model.config.max_seq_len
        caches, bias = self._caches, self._bias
        while self._pending:
            seq_id, request = self._pending.popleft()
            budget = min(request.max_new_tokens, context - len(request.prompt_ids))
            if budget <= 0:
                self._finished[seq_id] = []
                continue
            state = _SlotState(seq_id, request, budget)
            bias[slot] = (
                request.logit_bias if request.logit_bias is not None else 0.0
            )
            logits = self.model._forward_numpy(
                np.asarray([request.prompt_ids], dtype=np.int64),
                caches.prefill_adapters(slot),
            )[:, -1, :]
            caches.lengths[slot] = len(request.prompt_ids)
            if self._first_token(state, logits[0], bias[slot]):
                self._finished[seq_id] = state.produced
                continue
            self._slots[slot] = state
            return True
        return False

    # -- streaming loop ----------------------------------------------------------
    def step(self) -> int:
        """Admit pending requests, then advance every active slot one token.

        Returns the number of sequences that finished during this call
        (prefill-time instant finishes included); a no-op when idle.
        """
        if not self.has_work:
            return 0
        self._ensure_state()
        before = len(self._finished)
        while self._n_active < self.max_batch and self._pending:
            if self._fill(self._n_active):
                self._n_active += 1
        n_active = self._n_active
        if n_active == 0:
            return len(self._finished) - before

        # One batched decode step over the active slots.
        caches, bias, slots = self._caches, self._bias, self._slots
        last = np.asarray(
            [[slots[b].produced[-1]] for b in range(n_active)], dtype=np.int64
        )
        lengths = caches.lengths[:n_active]
        view_len = int(lengths.max()) + 1
        key_mask = np.where(
            np.arange(view_len)[None, :] <= lengths[:, None],
            np.float32(0.0),
            _NEG_INF,
        )[:, None, None, :]
        logits = self.model._forward_numpy(
            last,
            caches.step_adapters(n_active, view_len),
            position_offset=lengths.copy(),
            key_mask=key_mask,
        )[:, -1, :]
        caches.lengths[:n_active] += 1

        step = logits + bias[:n_active]
        finished: list[int] = []
        for b in range(n_active):
            state = slots[b]
            if state.request.step_bias is not None:
                state.request.step_bias(state.produced, step[b])
            token = int(step[b].argmax())
            state.produced.append(token)
            eos = state.request.eos_id
            if (eos is not None and token == eos) or len(
                state.produced
            ) >= state.budget:
                finished.append(b)

        # Retire finished slots; refill from pending or compact.
        for b in reversed(finished):
            state = slots[b]
            self._finished[state.seq_id] = state.produced
            if self._fill(b):
                continue
            tail = self._n_active - 1
            if b != tail:
                caches.move(tail, b)
                bias[b] = bias[tail]
                slots[b] = slots[tail]
            slots[tail] = None
            self._n_active -= 1

        return len(self._finished) - before

    def collect(self) -> dict[int, list[int]]:
        """Pop every finished result as ``{seq_id: produced tokens}``."""
        finished = self._finished
        self._finished = {}
        return finished

    # -- run to completion -------------------------------------------------------
    def generate(self, requests: list[GenerationRequest]) -> list[list[int]]:
        # Validate the whole list before enqueuing anything, so a bad
        # request cannot strand its predecessors in the pending queue.
        for request in requests:
            self._validate(request)
        ids = [self.submit(request) for request in requests]
        remaining = set(ids)
        while remaining - self._finished.keys():
            if self.step() == 0 and not self.has_work:
                raise GenerationError(
                    "engine drained without finishing all requests "
                    "(collect() called concurrently?)"
                )
        return [self._finished.pop(seq_id) for seq_id in ids]
