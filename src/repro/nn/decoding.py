"""Batched decoding engine over :class:`TransformerLM`.

Inference engine
----------------

The sequential path (:meth:`TransformerLM.generate`) spends one full
forward pass per token per sequence; on the numpy backend every decode
step is a handful of tiny GEMMs whose cost is dominated by per-call
overhead.  This module amortises that overhead across a *fleet* of
sequences — the shape of both heavy stages of the pipeline (Eq. (2)
dataset revision over the whole ALPACA52K simulacrum, and Table IX test
set response generation).

Engine phases
~~~~~~~~~~~~~

Every request moves through three phases; each :meth:`BatchedEngine.step`
runs them in order:

1. **Prefill** — pending prompts are admitted into free KV slots.  Up to
   ``max_batch`` ragged prompts are prefilled in **one** forward pass:
   prompts are *right-aligned* into a padded ``(B, T_max)`` batch, each
   row carries a negative ``position_offset`` so its real tokens sit on
   positions ``0..len-1``, and the attention core runs per row over each
   sequence's valid slice, so pad columns never enter any float sum and
   score temporaries stay cache-resident while the projection GEMMs
   around them stay batched.  Last-token logits agree with
   prefilling each prompt alone to within BLAS kernel-selection noise —
   an ulp or two, orders of magnitude inside greedy argmax margins — and
   the resulting *first tokens* are pinned bitwise-identical to the
   per-request path by the parity suite.  With ``prefill_chunk_tokens``
   set and a fleet already decoding, admission is *chunked* instead: up
   to ``prefill_concurrency`` pending prompts are parked past the decode
   fleet and **every** parked prompt advances by at most one fixed-size
   chunk per step, all chunks in **one** ragged forward (right-aligned
   uneven chunks, per-row position offsets, per-row key extents over
   each slot's written prefix).  A late-arriving long prompt therefore
   delays in-flight decode slots by a bounded chunk forward rather than
   a whole prompt-length forward (the serving path's latency lever), and
   a *burst* of late arrivals no longer serializes: all of them prefill
   concurrently instead of queueing behind a single admission slot.
   When every parked advance is exactly one token (chunk size 1, or
   chunk tails), the parked rows have the same shape as decode rows and
   ride along in the decode forward — no second model pass at all.
2. **Decode** — all active sequences advance one token per forward pass
   through shared pre-allocated slot KV caches (:class:`SlotKVCaches`);
   attention over ragged cache lengths uses an additive key mask.  Token
   selection is vectorised: one batched ``argmax`` plus vectorised
   EOS/budget masks, with per-row handling only for slots carrying a
   ``step_bias`` hook or a ``top_k`` sampler.
3. **Retire/refill** — a sequence that hits EOS (or its token budget)
   retires immediately; its slot is compacted away (swap-with-last) and
   refilled from the pending queue at the next step's prefill phase, so
   stragglers never pay for dead slots (continuous batching).

* **Streaming intake.**  The same machinery is exposed incrementally —
  ``submit()`` enqueues a request at any time, ``step()`` advances the
  fleet one token, ``collect()`` drains finished results — so callers
  serving requests that arrive over time (:mod:`repro.serving`) can slip
  new work into retiring slots mid-flight; ``generate()`` is the
  run-to-completion loop layered on top.
* **Per-sequence logit bias.**  Each request carries an optional static
  ``(V,)`` bias — together they form the batch's ``(B, V)`` bias matrix —
  plus an optional per-step hook for dynamic biases
  (:class:`InductionCopyBias` implements CoachLM's copy-assist with a
  prompt index precomputed once instead of an O(prompt) scan per step).
* **In-engine sampling.**  Decoding is greedy by default (the paper sets
  beam size to one for all models); a request may instead carry
  ``top_k`` plus its own seeded rng stream, reproducing
  :meth:`TransformerLM.generate`'s top-k sampling inside the batch — a
  request's draws depend only on its own rng, never on its batch-mates.

Batched decode GEMMs round differently from single-row GEMMs at the last
ulp, so decode logits are not bit-identical across batch sizes — but
greedy argmax margins are many orders of magnitude wider, and the test
suite pins token-for-token parity with the sequential path on every edge
case (ragged prompts, EOS at different steps, prompt-too-long,
per-sequence biases, chunked vs unchunked prefill, seeded top-k).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import DEFAULT_GEN_BATCH_SIZE
from ..errors import GenerationError
from .transformer import TransformerLM, _sample_top_k

#: Additive mask value for invalid key slots (matches the causal mask).
_NEG_INF = np.float32(-1e9)


@dataclass
class GenerationRequest:
    """One sequence to decode: prompt, budget and per-sequence biases.

    ``logit_bias`` is a static ``(V,)`` array added to every step's
    logits; it is normalised to float32 (the model's compute dtype) so
    every step — including the first — applies the identical bias.
    ``step_bias`` is called as ``step_bias(produced, logits_row)``
    before each argmax and may add dynamic bias in place (it sees the
    tokens produced *so far*, i.e. it is a no-op opportunity on the first
    token when ``produced`` is empty).

    ``top_k`` switches the request from greedy argmax to top-k sampling
    drawn from ``rng`` — the request's private generator stream, so its
    tokens match :meth:`TransformerLM.generate` under the same seed
    regardless of how the batch around it is composed.
    """

    prompt_ids: list[int]
    max_new_tokens: int
    eos_id: int | None = None
    logit_bias: np.ndarray | None = None
    step_bias: Callable[[list[int], np.ndarray], None] | None = None
    top_k: int | None = None
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if self.logit_bias is not None and self.logit_bias.dtype != np.float32:
            self.logit_bias = self.logit_bias.astype(np.float32)


class InductionCopyBias:
    """Precomputed induction-head bias: suffix-match followers of a prompt.

    Reproduces :meth:`CoachLM._induction_followers` exactly — at each
    step the token following a prompt span that matches the last one or
    two produced tokens gets a logit bonus (bigram match earns
    ``strength``, unigram match half) — but from an index built once per
    prompt instead of an O(len(prompt)) Python scan per step.

    The index stores, per last-token, the unique unigram followers, and
    per (second, last) bigram, the bigram followers plus the unigram
    followers *not* covered by the bigram — so each follower receives a
    single add of exactly the strength the sequential scan would use
    (bigram ⊃ unigram positions, max semantics).
    """

    def __init__(
        self,
        prompt: list[int],
        strength: float,
        blocked: frozenset[int] = frozenset(),
    ):
        uni: dict[int, set[int]] = {}
        bi: dict[tuple[int, int], set[int]] = {}
        n = len(prompt)
        for i in range(n - 1):
            follower = prompt[i + 1]
            if follower in blocked:
                continue
            uni.setdefault(prompt[i], set()).add(follower)
            if i > 0:
                bi.setdefault((prompt[i - 1], prompt[i]), set()).add(follower)
        self._full = np.float32(strength * 1.0)
        self._half = np.float32(strength * 0.5)
        self._uni: dict[int, np.ndarray] = {
            tok: np.fromiter(sorted(fs), dtype=np.int64) for tok, fs in uni.items()
        }
        # Per bigram key: (full-strength followers, leftover half-strength).
        self._bi: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        for key, fs in bi.items():
            rest = uni.get(key[1], set()) - fs
            self._bi[key] = (
                np.fromiter(sorted(fs), dtype=np.int64),
                np.fromiter(sorted(rest), dtype=np.int64),
            )

    def __call__(self, produced: list[int], logits_row: np.ndarray) -> None:
        if not produced:
            return
        last = produced[-1]
        if len(produced) >= 2:
            hit = self._bi.get((produced[-2], last))
            if hit is not None:
                full, rest = hit
                logits_row[full] += self._full
                if rest.size:
                    logits_row[rest] += self._half
                return
        followers = self._uni.get(last)
        if followers is not None:
            logits_row[followers] += self._half


class SlotKVCaches:
    """Pre-allocated per-layer K/V slabs with per-slot lengths.

    Layout is ``(max_batch, n_heads, capacity, head_dim)`` per layer,
    left-aligned: slot ``b`` owns columns ``[0, lengths[b])``.  Unlike the
    legacy concat cache this never reallocates, and refilling a retired
    slot simply overwrites from column zero (stale columns beyond the new
    length are hidden by the key mask).
    """

    def __init__(self, model: TransformerLM, max_batch: int):
        cfg = model.config
        shape = (max_batch, cfg.n_heads, cfg.max_seq_len, cfg.head_dim)
        self.k = [np.zeros(shape, dtype=np.float32) for _ in model.blocks]
        self.v = [np.zeros(shape, dtype=np.float32) for _ in model.blocks]
        self.lengths = np.zeros(max_batch, dtype=np.int64)
        self.max_batch = max_batch

    def ragged_prefill_adapters(
        self, slots: list[int], pads: np.ndarray
    ) -> list["_RaggedPrefillSlots"]:
        return [
            _RaggedPrefillSlots(self, layer, slots, pads)
            for layer in range(len(self.k))
        ]

    def ragged_chunk_adapters(
        self, base: int, starts: np.ndarray, ends: np.ndarray, pads: np.ndarray
    ) -> list["_RaggedChunkSlots"]:
        return [
            _RaggedChunkSlots(self, layer, base, starts, ends, pads)
            for layer in range(len(self.k))
        ]

    def step_adapters(self, n_active: int, view_len: int) -> list["_StepSlot"]:
        return [
            _StepSlot(self, layer, n_active, view_len)
            for layer in range(len(self.k))
        ]

    def move(self, src: int, dst: int) -> None:
        """Copy slot ``src`` over slot ``dst`` (batch compaction)."""
        for layer in range(len(self.k)):
            self.k[layer][dst] = self.k[layer][src]
            self.v[layer][dst] = self.v[layer][src]
        self.lengths[dst] = self.lengths[src]

    def move_prefix(self, src: int, dst: int, length: int) -> None:
        """Copy only columns ``[0, length)`` of slot ``src`` over ``dst``.

        Used to shift a partially prefilled (parked) slot, whose columns
        beyond ``length`` hold no data worth a full-capacity copy.
        """
        for layer in range(len(self.k)):
            self.k[layer][dst, :, :length] = self.k[layer][src, :, :length]
            self.v[layer][dst, :, :length] = self.v[layer][src, :, :length]

    def permute_prefixes(
        self, base: int, order: list[int], lengths: list[int]
    ) -> None:
        """Rearrange parked rows so ``base + order[j]`` lands on ``base + j``.

        Copies only each row's ``lengths[j]``-column prefix (the written
        part of a parked partial slab).  Used when parked prompts finish
        prefill out of submission order: completed rows must become the
        next contiguous decode slots, so the slab block is permuted to
        completed-first before they are installed.
        """
        for layer in range(len(self.k)):
            for slab in (self.k[layer], self.v[layer]):
                blocks = [
                    slab[base + i, :, :n].copy()
                    for i, n in zip(order, lengths)
                ]
                for j, (block, n) in enumerate(zip(blocks, lengths)):
                    slab[base + j, :, :n] = block


class _RaggedPrefillSlots:
    """Cache adapter for one ragged right-aligned prefill batch.

    Returns the fresh right-aligned K/V unchanged (attention sees exactly
    the batch it computed, with pads hidden by the key mask) while
    scattering each row's valid ``[pad:, :]`` suffix into its slot's
    left-aligned slab columns ``[0, len)`` for the decode phase.
    """

    __slots__ = ("caches", "layer", "slots", "pads")

    def __init__(
        self, caches: SlotKVCaches, layer: int, slots: list[int], pads: np.ndarray
    ):
        self.caches = caches
        self.layer = layer
        self.slots = slots
        self.pads = pads

    def update(self, k: np.ndarray, v: np.ndarray):
        t = k.shape[2]
        for row, slot in enumerate(self.slots):
            pad = int(self.pads[row])
            self.caches.k[self.layer][slot, :, : t - pad] = k[row, :, pad:]
            self.caches.v[self.layer][slot, :, : t - pad] = v[row, :, pad:]
        return k, v


class _RaggedChunkSlots:
    """Cache adapter for one ragged chunk-continuation batch.

    Row ``i`` is the parked slot ``base + i`` advancing its prompt by a
    right-aligned chunk spanning slab columns ``[starts[i], ends[i])``:
    the chunk's valid K/V suffix (past the ``pads[i]`` left-pad) lands in
    those columns, and the returned view covers every parked row's whole
    written prefix — chunk queries attend over all keys prefilled so far,
    with the per-row ``key_lens`` of the attention core hiding the
    columns beyond each row's own end.
    """

    __slots__ = ("caches", "layer", "base", "starts", "ends", "pads")

    def __init__(
        self,
        caches: SlotKVCaches,
        layer: int,
        base: int,
        starts: np.ndarray,
        ends: np.ndarray,
        pads: np.ndarray,
    ):
        self.caches = caches
        self.layer = layer
        self.base = base
        self.starts = starts
        self.ends = ends
        self.pads = pads

    def update(self, k: np.ndarray, v: np.ndarray):
        c = self.caches
        view = int(self.ends.max())
        n = k.shape[0]
        for row in range(n):
            slot = self.base + row
            start = int(self.starts[row])
            end = int(self.ends[row])
            pad = int(self.pads[row])
            c.k[self.layer][slot, :, start:end] = k[row, :, pad:]
            c.v[self.layer][slot, :, start:end] = v[row, :, pad:]
        return (
            c.k[self.layer][self.base : self.base + n, :, :view],
            c.v[self.layer][self.base : self.base + n, :, :view],
        )


class _StepSlot:
    """Cache adapter for one batched decode step over the active slots."""

    __slots__ = ("caches", "layer", "n_active", "view_len")

    def __init__(self, caches: SlotKVCaches, layer: int, n_active: int, view_len: int):
        self.caches = caches
        self.layer = layer
        self.n_active = n_active
        self.view_len = view_len

    def update(self, k: np.ndarray, v: np.ndarray):
        c = self.caches
        n = self.n_active
        rows = np.arange(n)
        write_at = c.lengths[:n]
        c.k[self.layer][rows, :, write_at] = k[:, :, 0, :]
        c.v[self.layer][rows, :, write_at] = v[:, :, 0, :]
        return (
            c.k[self.layer][:n, :, : self.view_len],
            c.v[self.layer][:n, :, : self.view_len],
        )


@dataclass
class _SlotState:
    """Decode-time state of one occupied slot."""

    seq_id: int                     #: engine-wide id assigned at submit()
    request: GenerationRequest
    budget: int
    produced: list[int] = field(default_factory=list)
    prefilled: int = 0              #: prompt tokens written (chunked admission)


class BatchedEngine:
    """Continuous-batching decoder over a :class:`TransformerLM`.

    See the module docstring for the architecture (the prefill → decode →
    retire/refill phase loop).  The engine can be driven two ways:

    * **Run to completion** — :meth:`generate` consumes a list of
      :class:`GenerationRequest` and returns the produced token lists in
      input order; results are token-for-token identical to calling
      :meth:`TransformerLM.generate` per request (greedy, or seeded
      top-k).
    * **Streaming** — :meth:`submit` enqueues one request and returns its
      sequence id, :meth:`step` advances the whole fleet one token
      (admitting pending requests into free slots first, so a request
      submitted mid-flight joins the batch as soon as a slot retires
      instead of waiting for the batch to drain), and :meth:`collect`
      pops finished ``{seq_id: tokens}`` results.  This is the substrate
      of the online revision service (:mod:`repro.serving`).

    ``prefill_chunk_tokens`` bounds how much prefill work a single
    :meth:`step` may do while other slots are decoding: each refill
    prompt advances by at most one chunk per step, so in-flight decodes
    are never stalled behind a whole prompt-length forward.  Up to
    ``prefill_concurrency`` refill prompts advance *concurrently* —
    parked contiguously past the decode fleet, all chunks in one ragged
    forward per step — so a burst of late arrivals prefills together
    instead of serializing behind a single admission slot; the stall
    bound a step pays is one ragged chunk forward, whatever the burst
    size.  When the fleet is idle there is nothing to stall and
    admission always uses the full ragged batched prefill.

    :meth:`cancel` abandons a submitted sequence in any state — queued,
    mid-prefill, or decoding — finishing it with the tokens produced so
    far (a prefix of what the run-to-completion decode would have
    produced).  The serving scheduler uses it to expire deadline-missed
    jobs without spending further engine work on them.

    The slot KV slabs are allocated lazily on first use and reused across
    drains: a refilled slot overwrites from column zero and the key mask
    hides stale columns, so results never depend on slot history.  The
    engine is not thread-safe; a single driver (e.g. the serving worker
    thread) must own all ``submit``/``step``/``collect`` calls, and
    :meth:`generate` must not be interleaved with an external
    :meth:`collect`.
    """

    def __init__(
        self,
        model: TransformerLM,
        max_batch: int = DEFAULT_GEN_BATCH_SIZE,
        prefill_chunk_tokens: int | None = None,
        prefill_concurrency: int = 1,
    ):
        if max_batch < 1:
            raise GenerationError(f"max_batch must be >= 1, got {max_batch}")
        if prefill_chunk_tokens is not None and prefill_chunk_tokens < 1:
            raise GenerationError(
                f"prefill_chunk_tokens must be >= 1, got {prefill_chunk_tokens}"
            )
        if prefill_concurrency < 1:
            raise GenerationError(
                f"prefill_concurrency must be >= 1, got {prefill_concurrency}"
            )
        self.model = model
        self.max_batch = max_batch
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self.prefill_concurrency = prefill_concurrency
        self._caches: SlotKVCaches | None = None
        self._bias: np.ndarray | None = None
        self._slots: list[_SlotState | None] = [None] * max_batch
        self._n_active = 0
        self._pending: deque[tuple[int, GenerationRequest]] = deque()
        self._finished: dict[int, list[int]] = {}
        self._next_id = 0
        #: Mid-prefill requests (chunked admission), parked contiguously
        #: at slots ``self._n_active ..`` — just past the decode fleet.
        self._prefilling: list[_SlotState] = []
        # Vectorised decode bookkeeping, maintained per occupied slot.
        self._eos = np.full(max_batch, -1, dtype=np.int64)
        self._budget = np.zeros(max_batch, dtype=np.int64)
        self._count = np.zeros(max_batch, dtype=np.int64)
        #: Active slots carrying a step_bias hook / a top_k sampler; the
        #: decode loop takes the pure-vectorised path when both are zero.
        self._n_hooked = 0
        self._n_sampled = 0

    # -- request intake ----------------------------------------------------------
    def _validate(self, request: GenerationRequest) -> None:
        if not request.prompt_ids:
            raise GenerationError("prompt must contain at least one token")
        vocab = self.model.config.vocab_size
        if request.logit_bias is not None and request.logit_bias.shape != (vocab,):
            raise GenerationError(f"logit_bias must have shape ({vocab},)")
        if request.top_k is not None:
            if request.top_k < 1:
                raise GenerationError(f"top_k must be >= 1, got {request.top_k}")
            if request.rng is None:
                raise GenerationError("top_k sampling requires an rng")

    def submit(self, request: GenerationRequest) -> int:
        """Enqueue one request; returns its sequence id.

        The request is admitted into a KV slot by a later :meth:`step` —
        immediately if a slot is free, otherwise as soon as one retires.
        """
        self._validate(request)
        seq_id = self._next_id
        self._next_id += 1
        self._pending.append((seq_id, request))
        return seq_id

    def cancel(self, seq_id: int) -> bool:
        """Abandon one submitted sequence; returns True when it was live.

        The sequence finishes immediately with whatever tokens it has
        produced so far — an empty list while still queued or mid-prefill,
        a prefix of the full decode once active — and its slot (queue
        entry, parked partial slab, or KV slot) is reclaimed.  Unknown or
        already-finished ids return False and change nothing.
        """
        if seq_id in self._finished:
            return False
        for i, (sid, _request) in enumerate(self._pending):
            if sid == seq_id:
                del self._pending[i]
                self._finished[seq_id] = []
                return True
        for i, state in enumerate(self._prefilling):
            if state.seq_id == seq_id:
                # Close the gap so the parked block stays contiguous:
                # every later parked row shifts down by one.
                base = self._n_active
                for j in range(i + 1, len(self._prefilling)):
                    self._caches.move_prefix(
                        base + j, base + j - 1, self._prefilling[j].prefilled
                    )
                del self._prefilling[i]
                self._finished[seq_id] = []
                return True
        for slot in range(self._n_active):
            if self._slots[slot].seq_id == seq_id:
                old_base = self._n_active
                self._retire(slot)
                self._shift_parked(old_base)
                return True
        return False

    @property
    def n_active(self) -> int:
        """Sequences currently decoding in KV slots."""
        return self._n_active

    @property
    def n_prefilling(self) -> int:
        """Sequences mid-way through chunked prompt prefill."""
        return len(self._prefilling)

    @property
    def n_pending(self) -> int:
        """Submitted sequences not yet admitted into a slot."""
        return len(self._pending)

    @property
    def free_capacity(self) -> int:
        """Slots the engine can absorb before submissions queue behind others."""
        return (
            self.max_batch
            - self._n_active
            - self.n_prefilling
            - len(self._pending)
        )

    @property
    def has_work(self) -> bool:
        return (
            bool(self._pending)
            or self._n_active > 0
            or bool(self._prefilling)
        )

    # -- slot bookkeeping --------------------------------------------------------
    def _ensure_state(self) -> None:
        if self._caches is None:
            self._caches = SlotKVCaches(self.model, self.max_batch)
            self._bias = np.zeros(
                (self.max_batch, self.model.config.vocab_size), dtype=np.float32
            )

    def _install(self, slot: int, state: _SlotState) -> None:
        """Occupy ``slot`` with a fully prefilled sequence."""
        request = state.request
        self._slots[slot] = state
        self._bias[slot] = (
            request.logit_bias if request.logit_bias is not None else 0.0
        )
        self._eos[slot] = -1 if request.eos_id is None else request.eos_id
        self._budget[slot] = state.budget
        self._count[slot] = 0
        if request.step_bias is not None:
            self._n_hooked += 1
        if request.top_k is not None:
            self._n_sampled += 1

    def _retire(self, slot: int) -> None:
        """Finish ``slot``'s sequence and compact the fleet (swap-with-last)."""
        state = self._slots[slot]
        self._finished[state.seq_id] = state.produced
        if state.request.step_bias is not None:
            self._n_hooked -= 1
        if state.request.top_k is not None:
            self._n_sampled -= 1
        caches = self._caches
        tail = self._n_active - 1
        if slot != tail:
            caches.move(tail, slot)
            self._bias[slot] = self._bias[tail]
            self._eos[slot] = self._eos[tail]
            self._budget[slot] = self._budget[tail]
            self._count[slot] = self._count[tail]
            self._slots[slot] = self._slots[tail]
        self._slots[tail] = None
        self._n_active -= 1

    def _choose_token(self, request: GenerationRequest, logits_row: np.ndarray) -> int:
        if request.top_k is not None:
            return _sample_top_k(logits_row, request.top_k, request.rng)
        return int(logits_row.argmax())

    def _first_token(self, state: _SlotState, logits_row: np.ndarray, slot: int) -> bool:
        """Apply biases, select, record; return True when finished."""
        request = state.request
        step = logits_row
        if request.logit_bias is not None or request.step_bias is not None:
            step = step + self._bias[slot]
            if request.step_bias is not None:
                request.step_bias(state.produced, step)
        token = self._choose_token(request, step)
        state.produced.append(token)
        self._count[slot] = 1
        return (
            request.eos_id is not None and token == request.eos_id
        ) or len(state.produced) >= state.budget

    # -- prefill phase -----------------------------------------------------------
    def _pop_viable(self) -> _SlotState | None:
        """Pop the next pending request with a positive token budget."""
        context = self.model.config.max_seq_len
        while self._pending:
            seq_id, request = self._pending.popleft()
            budget = min(request.max_new_tokens, context - len(request.prompt_ids))
            if budget <= 0:
                self._finished[seq_id] = []
                continue
            return _SlotState(seq_id, request, budget)
        return None

    def _ragged_prefill(
        self, states: list[_SlotState], slots: list[int]
    ) -> np.ndarray:
        """One right-aligned ragged forward; returns ``(B, V)`` last-token logits.

        Writes each sequence's K/V into its slot slab and sets the slot
        lengths.  The projection GEMMs run fused over the whole padded
        batch; the attention core runs per row over each sequence's valid
        slice (see :meth:`SelfAttention._ragged_attention`), so pad
        columns never enter any float sum and score temporaries stay
        cache-resident.  Each row's last-token logits agree with a lone
        prefill of that prompt to within BLAS kernel-selection noise (an
        ulp or two — far inside greedy argmax margins), and the *first
        tokens* are pinned identical to the per-request path by the
        parity suite.
        """
        caches = self._caches
        prompts = [state.request.prompt_ids for state in states]
        t_max = max(len(prompt) for prompt in prompts)
        n = len(prompts)
        idx = np.zeros((n, t_max), dtype=np.int64)
        pads = np.empty(n, dtype=np.int64)
        for row, prompt in enumerate(prompts):
            pads[row] = t_max - len(prompt)
            idx[row, pads[row]:] = prompt
        logits = self.model._forward_numpy(
            idx,
            caches.ragged_prefill_adapters(slots, pads),
            position_offset=-pads,
            pad_lens=pads,
            last_only=True,
        )[:, -1, :]
        for row, slot in enumerate(slots):
            caches.lengths[slot] = len(prompts[row])
        return logits

    def _batch_admit(self) -> bool:
        """Prefill up to the free slot count of pending prompts in one pass.

        Returns True when at least one sequence was admitted (it may also
        have finished instantly on its first token and retired).
        """
        states: list[_SlotState] = []
        while self._pending and self._n_active + len(states) < self.max_batch:
            state = self._pop_viable()
            if state is None:
                break
            states.append(state)
        if not states:
            return False
        slots = list(range(self._n_active, self._n_active + len(states)))
        logits = self._ragged_prefill(states, slots)
        finished: list[int] = []
        for row, (state, slot) in enumerate(zip(states, slots)):
            self._install(slot, state)
            self._n_active += 1
            if self._first_token(state, logits[row], slot):
                finished.append(slot)
        for slot in reversed(finished):
            self._retire(slot)
        return True

    def _chunk_admit(self, chunk: int) -> list[_SlotState]:
        """Advance every parked prompt by at most one chunk (late-join path).

        Up to ``prefill_concurrency`` prompts prefill concurrently,
        parked contiguously at slots ``n_active ..``; each call costs the
        in-flight decode slots one *ragged* chunk forward — bounded by
        ``chunk`` query tokens per row — instead of a whole prompt-length
        forward per admission.  When every row's advance is a single
        token (the shape of a decode row), no forward runs here at all:
        the parked states are returned for :meth:`step` to fold into the
        decode forward as extra rows.
        """
        limit = min(self.prefill_concurrency, self.max_batch - self._n_active)
        while len(self._prefilling) < limit:
            state = self._pop_viable()
            if state is None:
                break
            self._prefilling.append(state)
        parked = self._prefilling
        if not parked:
            return []
        prompts = [state.request.prompt_ids for state in parked]
        if self._n_active == 0:
            # The fleet emptied mid-prefill: nothing left to stall, so
            # finish every remainder in one ragged forward instead of
            # trickling them out chunk by chunk.
            ends = [len(prompt) for prompt in prompts]
        else:
            ends = [
                min(state.prefilled + chunk, len(prompt))
                for state, prompt in zip(parked, prompts)
            ]
            if all(
                end - state.prefilled == 1
                for end, state in zip(ends, parked)
            ):
                return list(parked)
        starts = np.asarray(
            [state.prefilled for state in parked], dtype=np.int64
        )
        key_lens = np.asarray(ends, dtype=np.int64)
        widths = key_lens - starts
        pads = int(widths.max()) - widths
        n = len(parked)
        idx = np.zeros((n, int(widths.max())), dtype=np.int64)
        for row in range(n):
            idx[row, pads[row]:] = prompts[row][starts[row] : ends[row]]
        logits = self.model._forward_numpy(
            idx,
            self._caches.ragged_chunk_adapters(
                self._n_active, starts, key_lens, pads
            ),
            position_offset=starts - pads,
            pad_lens=pads,
            key_lens=key_lens,
            last_only=True,
        )[:, -1, :]
        for state, end in zip(parked, ends):
            state.prefilled = end
        self._promote_parked(list(logits))
        return []

    def _promote_parked(self, logits_rows: list[np.ndarray]) -> None:
        """Move fully prefilled parked prompts into the decode fleet.

        ``logits_rows`` align with ``self._prefilling`` and carry each
        row's last-token logits from the forward that just advanced it.
        Completed rows must become the next contiguous decode slots, so
        when they finished out of park order the slab block is permuted
        completed-first; instant first-token finishes retire immediately
        (shifting the still-parked rows down over the freed slots).
        """
        parked = self._prefilling
        completed = [
            i for i, state in enumerate(parked)
            if state.prefilled == len(state.request.prompt_ids)
        ]
        if not completed:
            return
        remaining = [
            i for i, state in enumerate(parked)
            if state.prefilled < len(state.request.prompt_ids)
        ]
        base = self._n_active
        order = completed + remaining
        if order != list(range(len(parked))):
            self._caches.permute_prefixes(
                base, order, [parked[i].prefilled for i in order]
            )
        finished_slots: list[int] = []
        for j, i in enumerate(completed):
            state = parked[i]
            slot = base + j
            self._caches.lengths[slot] = state.prefilled
            self._install(slot, state)
            self._n_active += 1
            if self._first_token(state, logits_rows[i], slot):
                finished_slots.append(slot)
        self._prefilling = [parked[i] for i in remaining]
        if finished_slots:
            parked_base = self._n_active
            for slot in reversed(finished_slots):
                self._retire(slot)
            self._shift_parked(parked_base)

    def _shift_parked(self, old_base: int) -> None:
        """Shift the parked partial slabs down to follow a shrunk fleet."""
        if old_base == self._n_active:
            return
        for i, state in enumerate(self._prefilling):
            self._caches.move_prefix(
                old_base + i, self._n_active + i, state.prefilled
            )

    def _admit(self) -> list[_SlotState]:
        """Prefill phase: move pending work into KV slots.

        Without chunking — or with an idle fleet, where there is nothing
        to stall — all free slots are filled by ragged batched prefill;
        with chunking and in-flight decodes, every parked prompt (up to
        ``prefill_concurrency``) advances at most one chunk per step.
        Returns the parked states to fold into this step's decode forward
        when their advances all degenerate to single tokens.
        """
        chunk = self.prefill_chunk_tokens
        if chunk is not None and (self._n_active > 0 or self._prefilling):
            return self._chunk_admit(chunk)
        while self._pending and self._n_active < self.max_batch:
            if not self._batch_admit():
                break
        return []

    # -- streaming loop ----------------------------------------------------------
    def step(self) -> int:
        """Run one engine round: prefill, decode, retire.

        Returns the number of sequences that finished during this call
        (prefill-time instant finishes included); a no-op when idle.
        """
        if not self.has_work:
            return 0
        self._ensure_state()
        before = len(self._finished)
        merged = self._admit()
        n_active = self._n_active
        n_rows = n_active + len(merged)
        if n_rows == 0:
            return len(self._finished) - before

        # One batched decode step over the active slots.  When the parked
        # chunk advances all degenerated to single tokens, the parked
        # rows ride along as extra rows of this same forward — a chunk
        # row feeding its next prompt token at depth ``prefilled`` is
        # shape-identical to a decode row feeding its last produced token
        # at depth ``lengths[b]``.
        caches, slots = self._caches, self._slots
        last = np.empty((n_rows, 1), dtype=np.int64)
        for b in range(n_active):
            last[b, 0] = slots[b].produced[-1]
        for i, state in enumerate(merged):
            last[n_active + i, 0] = state.request.prompt_ids[state.prefilled]
            caches.lengths[n_active + i] = state.prefilled
        lengths = caches.lengths[:n_rows]
        view_len = int(lengths.max()) + 1
        key_mask = np.where(
            np.arange(view_len)[None, :] <= lengths[:, None],
            np.float32(0.0),
            _NEG_INF,
        )[:, None, None, :]
        logits = self.model._forward_numpy(
            last,
            caches.step_adapters(n_rows, view_len),
            position_offset=lengths.copy(),
            key_mask=key_mask,
        )[:, -1, :]
        caches.lengths[:n_rows] += 1
        for state in merged:
            state.prefilled += 1

        step = logits[:n_active] + self._bias[:n_active]
        sampled: list[int] = []
        if self._n_hooked or self._n_sampled:
            # Per-row handling only for slots that need it: dynamic bias
            # hooks mutate their row in place before selection; sampled
            # rows are collected for the batched top-k pass below.
            for b in range(n_active):
                request = slots[b].request
                if request.step_bias is not None:
                    request.step_bias(slots[b].produced, step[b])
                if request.top_k is not None:
                    sampled.append(b)
        tokens = step.argmax(axis=-1)
        for b in sampled:
            # The exact sampler of TransformerLM.generate, fed from the
            # request's private rng stream: draw-for-draw parity with the
            # sequential path holds by construction, whatever the batch.
            request = slots[b].request
            tokens[b] = _sample_top_k(step[b], request.top_k, request.rng)
        for b in range(n_active):
            slots[b].produced.append(int(tokens[b]))
        self._count[:n_active] += 1
        finished_mask = (tokens == self._eos[:n_active]) | (
            self._count[:n_active] >= self._budget[:n_active]
        )
        retired = np.flatnonzero(finished_mask).tolist()
        for b in reversed(retired):
            self._retire(b)
        if retired:
            # The mid-prefill sequences stay parked just past the fleet:
            # shift their partial KV down over the rows compaction freed —
            # one prefix copy per parked row, however many slots retired
            # (n_active was the parked base before the retire loop).
            self._shift_parked(n_active)
        if merged:
            # Merged rows that consumed their last prompt token join the
            # fleet now, selecting their first tokens from this forward's
            # logits (identical rows to a dedicated chunk forward's).
            self._promote_parked(
                [logits[n_active + i] for i in range(len(merged))]
            )
        if retired and self.prefill_chunk_tokens is None:
            # Refill freed slots within the same step (the scheduler's
            # late-join contract): pending work is prefilled now and
            # decodes from the very next step.  With chunking enabled the
            # refill waits for the next step's prefill phase instead — a
            # second _admit here would advance the parked prompt a second
            # chunk and break the one-chunk-per-step stall bound.
            self._admit()
        return len(self._finished) - before

    def collect(self) -> dict[int, list[int]]:
        """Pop every finished result as ``{seq_id: produced tokens}``."""
        finished = self._finished
        self._finished = {}
        return finished

    # -- run to completion -------------------------------------------------------
    def generate(self, requests: list[GenerationRequest]) -> list[list[int]]:
        # Validate the whole list before enqueuing anything, so a bad
        # request cannot strand its predecessors in the pending queue.
        for request in requests:
            self._validate(request)
        ids = [self.submit(request) for request in requests]
        remaining = set(ids)
        while remaining - self._finished.keys():
            if self.step() == 0 and not self.has_work:
                raise GenerationError(
                    "engine drained without finishing all requests "
                    "(collect() called concurrently?)"
                )
        return [self._finished.pop(seq_id) for seq_id in ids]
