"""Batched decoding engine over :class:`TransformerLM`.

Inference engine
----------------

The sequential path (:meth:`TransformerLM.generate`) spends one full
forward pass per token per sequence; on the numpy backend every decode
step is a handful of tiny GEMMs whose cost is dominated by per-call
overhead.  This module amortises that overhead across a *fleet* of
sequences — the shape of both heavy stages of the pipeline (Eq. (2)
dataset revision over the whole ALPACA52K simulacrum, and Table IX test
set response generation).

Engine phases
~~~~~~~~~~~~~

Every request moves through three phases; each :meth:`BatchedEngine.step`
runs them in order:

1. **Prefill** — pending prompts are admitted into free KV slots.  Up to
   ``max_batch`` ragged prompts are prefilled in **one** forward pass:
   prompts are *right-aligned* into a padded ``(B, T_max)`` batch, each
   row carries a negative ``position_offset`` so its real tokens sit on
   positions ``0..len-1``, and the attention core runs per row over each
   sequence's valid slice, so pad columns never enter any float sum and
   score temporaries stay cache-resident while the projection GEMMs
   around them stay batched.  Last-token logits agree with
   prefilling each prompt alone to within BLAS kernel-selection noise —
   an ulp or two, orders of magnitude inside greedy argmax margins — and
   the resulting *first tokens* are pinned bitwise-identical to the
   per-request path by the parity suite.  With ``prefill_chunk_tokens``
   set and a fleet already decoding, admission is *chunked* instead: up
   to ``prefill_concurrency`` pending prompts are parked past the decode
   fleet and **every** parked prompt advances by at most one fixed-size
   chunk per step, all chunks in **one** ragged forward (right-aligned
   uneven chunks, per-row position offsets, per-row key extents over
   each slot's written prefix).  A late-arriving long prompt therefore
   delays in-flight decode slots by a bounded chunk forward rather than
   a whole prompt-length forward (the serving path's latency lever), and
   a *burst* of late arrivals no longer serializes: all of them prefill
   concurrently instead of queueing behind a single admission slot.
   When every parked advance is exactly one token (chunk size 1, or
   chunk tails), the parked rows have the same shape as decode rows and
   ride along in the decode forward — no second model pass at all.
2. **Decode** — all active sequences advance one token per forward pass
   through shared slot KV caches; attention over ragged cache lengths
   uses an additive key mask.  Token selection is vectorised: one
   batched ``argmax`` plus vectorised EOS/budget masks, with per-row
   handling only for slots carrying a ``step_bias`` hook or a ``top_k``
   sampler.  When parked chunk rows are advancing, the decode rows and
   the chunk rows ride **one unified mixed-length ragged forward**
   (``unified_step``, the default): a decode row is a one-token chunk at
   depth ``lengths[b]``, so both shapes share the per-row
   ``key_lens``-qualified attention core and the step never pays a
   second model pass, whatever the chunk size.
3. **Retire/refill** — a sequence that hits EOS (or its token budget)
   retires immediately; its slot is compacted away (swap-with-last) and
   refilled from the pending queue at the next step's prefill phase, so
   stragglers never pay for dead slots (continuous batching).

KV storage
~~~~~~~~~~

Two interchangeable cache backends sit behind the same adapter API:

* **Dense slabs** (:class:`SlotKVCaches`, the default) — one
  pre-allocated ``(max_batch, n_heads, max_seq_len, head_dim)`` slab per
  layer per K/V.  Simple and copy-free (adapters return slab views),
  but resident memory is ``max_batch × max_seq_len`` whatever the fleet
  actually holds, and compaction copies slab prefixes.
* **Paged pool** (:class:`PagedKVCaches`, ``kv_page_tokens``) — K/V
  live in fixed-size *pages* (``kv_page_tokens`` tokens each) drawn
  from one shared free list; each slot owns a *block table* of page
  ids shared by every layer.  Pages are allocated on demand as prefill
  and decode write tokens and return to the free list on retire or
  cancel, so resident memory scales with **live tokens**, not with
  ``max_batch × max_seq_len``; storage itself grows lazily in small
  extents up to ``kv_pool_pages``.  Compaction (``move`` /
  ``move_prefix`` / ``permute_prefixes``) degenerates to O(1) block
  -table moves instead of slab memcpys.  Admission reserves each
  sequence's worst-case page quota (``ceil((prompt+budget)/page)``) up
  front: when the pool cannot cover a request it simply stays pending
  until pages free up — deadlock-free because a lone sequence always
  fits (enforced at construction) — and the serving layer surfaces the
  shrinking ``free_pages`` headroom through ``/metrics`` before
  admission control starts returning 429s.  Attention reads gather each
  row's pages into a contiguous scratch prefix (one fancy-index per
  row per layer, reused buffers); the fresh-batch prefill path needs no
  gather at all.  Paged and dense decoding are token-for-token
  identical — pinned by the differential fuzz harness across page sizes
  {1, 3, 16, 64}.

* **Streaming intake.**  The same machinery is exposed incrementally —
  ``submit()`` enqueues a request at any time, ``step()`` advances the
  fleet one token, ``collect()`` drains finished results — so callers
  serving requests that arrive over time (:mod:`repro.serving`) can slip
  new work into retiring slots mid-flight; ``generate()`` is the
  run-to-completion loop layered on top.
* **Per-sequence logit bias.**  Each request carries an optional static
  ``(V,)`` bias — together they form the batch's ``(B, V)`` bias matrix —
  plus an optional per-step hook for dynamic biases
  (:class:`InductionCopyBias` implements CoachLM's copy-assist with a
  prompt index precomputed once instead of an O(prompt) scan per step).
* **In-engine sampling.**  Decoding is greedy by default (the paper sets
  beam size to one for all models); a request may instead carry
  ``top_k`` plus its own seeded rng stream, reproducing
  :meth:`TransformerLM.generate`'s top-k sampling inside the batch — a
  request's draws depend only on its own rng, never on its batch-mates.

Batched decode GEMMs round differently from single-row GEMMs at the last
ulp, so decode logits are not bit-identical across batch sizes — but
greedy argmax margins are many orders of magnitude wider, and the test
suite pins token-for-token parity with the sequential path on every edge
case (ragged prompts, EOS at different steps, prompt-too-long,
per-sequence biases, chunked vs unchunked prefill, seeded top-k).
"""

from __future__ import annotations

import heapq

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import DEFAULT_GEN_BATCH_SIZE
from ..errors import GenerationError
from .transformer import TransformerLM, _sample_top_k

#: Additive mask value for invalid key slots (matches the causal mask).
_NEG_INF = np.float32(-1e9)


@dataclass
class GenerationRequest:
    """One sequence to decode: prompt, budget and per-sequence biases.

    ``logit_bias`` is a static ``(V,)`` array added to every step's
    logits; it is normalised to float32 (the model's compute dtype) so
    every step — including the first — applies the identical bias.
    ``step_bias`` is called as ``step_bias(produced, logits_row)``
    before each argmax and may add dynamic bias in place (it sees the
    tokens produced *so far*, i.e. it is a no-op opportunity on the first
    token when ``produced`` is empty).

    ``top_k`` switches the request from greedy argmax to top-k sampling
    drawn from ``rng`` — the request's private generator stream, so its
    tokens match :meth:`TransformerLM.generate` under the same seed
    regardless of how the batch around it is composed.

    ``priority`` orders admission (lower value = more urgent, the same
    convention as the serving queue): the engine's pending queue pops
    the best ``(priority, seq_id)`` first, and under admission pressure
    a strictly-higher-priority request may preempt the lowest-priority
    active decode (see :meth:`BatchedEngine.preempt`).  Priorities never
    change a sequence's tokens — only *when* they are produced.
    """

    prompt_ids: list[int]
    max_new_tokens: int
    eos_id: int | None = None
    logit_bias: np.ndarray | None = None
    step_bias: Callable[[list[int], np.ndarray], None] | None = None
    top_k: int | None = None
    rng: np.random.Generator | None = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.logit_bias is not None and self.logit_bias.dtype != np.float32:
            self.logit_bias = self.logit_bias.astype(np.float32)


@dataclass
class ScoringRequest:
    """One teacher-forced scoring job: ``log P(completion | prompt)``.

    Unlike a :class:`GenerationRequest` the engine decodes nothing — it
    computes the completion's per-token logprobs under the model, with
    the prompt as conditioning context.  The data-selection workloads
    (IFD difficulty, perplexity gating) are built from pairs of these.
    """

    prompt_ids: list[int]
    completion_ids: list[int]


@dataclass(frozen=True)
class SequenceScore:
    """Teacher-forced score of one sequence: per-token logprobs + summaries.

    ``token_logprobs`` is the float64 ``(S,)`` array from
    :meth:`TransformerLM.sequence_logprobs` — entry ``j`` is
    ``log P(completion[j] | prompt + completion[:j])``.  Every derived
    quantity below is computed from it on demand, so two scores with
    bitwise-equal ``token_logprobs`` agree bitwise on all of them.
    """

    token_logprobs: np.ndarray

    @property
    def n_tokens(self) -> int:
        """Scored (completion) tokens."""
        return int(self.token_logprobs.shape[0])

    @property
    def sum_logprob(self) -> float:
        """``log P(completion | prompt)`` — the summed sequence logprob."""
        return float(self.token_logprobs.sum())

    @property
    def token_nll(self) -> np.ndarray:
        """Per-token negative log-likelihoods, float64 ``(S,)``."""
        return -self.token_logprobs

    @property
    def mean_nll(self) -> float:
        """Mean per-token NLL (the cross-entropy of the completion)."""
        return float(-self.token_logprobs.mean())

    @property
    def perplexity(self) -> float:
        """``exp(mean_nll)`` — the conventional perplexity."""
        return float(np.exp(-self.token_logprobs.mean()))


class InductionCopyBias:
    """Precomputed induction-head bias: suffix-match followers of a prompt.

    Reproduces :meth:`CoachLM._induction_followers` exactly — at each
    step the token following a prompt span that matches the last one or
    two produced tokens gets a logit bonus (bigram match earns
    ``strength``, unigram match half) — but from an index built once per
    prompt instead of an O(len(prompt)) Python scan per step.

    The index stores, per last-token, the unique unigram followers, and
    per (second, last) bigram, the bigram followers plus the unigram
    followers *not* covered by the bigram — so each follower receives a
    single add of exactly the strength the sequential scan would use
    (bigram ⊃ unigram positions, max semantics).
    """

    def __init__(
        self,
        prompt: list[int],
        strength: float,
        blocked: frozenset[int] = frozenset(),
    ):
        uni: dict[int, set[int]] = {}
        bi: dict[tuple[int, int], set[int]] = {}
        n = len(prompt)
        for i in range(n - 1):
            follower = prompt[i + 1]
            if follower in blocked:
                continue
            uni.setdefault(prompt[i], set()).add(follower)
            if i > 0:
                bi.setdefault((prompt[i - 1], prompt[i]), set()).add(follower)
        self._full = np.float32(strength * 1.0)
        self._half = np.float32(strength * 0.5)
        self._uni: dict[int, np.ndarray] = {
            tok: np.fromiter(sorted(fs), dtype=np.int64) for tok, fs in uni.items()
        }
        # Per bigram key: (full-strength followers, leftover half-strength).
        self._bi: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        for key, fs in bi.items():
            rest = uni.get(key[1], set()) - fs
            self._bi[key] = (
                np.fromiter(sorted(fs), dtype=np.int64),
                np.fromiter(sorted(rest), dtype=np.int64),
            )

    def __call__(self, produced: list[int], logits_row: np.ndarray) -> None:
        if not produced:
            return
        last = produced[-1]
        if len(produced) >= 2:
            hit = self._bi.get((produced[-2], last))
            if hit is not None:
                full, rest = hit
                logits_row[full] += self._full
                if rest.size:
                    logits_row[rest] += self._half
                return
        followers = self._uni.get(last)
        if followers is not None:
            logits_row[followers] += self._half


class SlotKVCaches:
    """Pre-allocated per-layer K/V slabs with per-slot lengths.

    Layout is ``(max_batch, n_heads, capacity, head_dim)`` per layer,
    left-aligned: slot ``b`` owns columns ``[0, lengths[b])``.  Unlike the
    legacy concat cache this never reallocates, and refilling a retired
    slot simply overwrites from column zero (stale columns beyond the new
    length are hidden by the key mask).
    """

    def __init__(self, model: TransformerLM, max_batch: int):
        cfg = model.config
        shape = (max_batch, cfg.n_heads, cfg.max_seq_len, cfg.head_dim)
        self.k = [np.zeros(shape, dtype=np.float32) for _ in model.blocks]
        self.v = [np.zeros(shape, dtype=np.float32) for _ in model.blocks]
        self.lengths = np.zeros(max_batch, dtype=np.int64)
        self.max_batch = max_batch

    # -- page-pool protocol (dense slabs hold every token up front) ------------
    def pages_for(self, tokens: int) -> int:
        """Dense slabs are not paged: every admission costs zero pages."""
        return 0

    def try_reserve(self, n_pages: int) -> bool:
        return True

    def unreserve(self, n_pages: int) -> None:
        pass

    def admit_shared(
        self, prompt_ids: list[int], total_pages: int
    ) -> tuple[int, int, list[int]] | None:
        """Dense admission: no pages, no sharing — always admits with an
        empty shared prefix.  (See :meth:`PagedKVCaches.admit_shared`.)"""
        return 0, 0, []

    def attach_prefix(self, slot: int, pages: list[int], matched: int) -> None:
        raise GenerationError("dense KV slabs cannot attach shared pages")

    def register_prefix(self, slot: int, prompt_ids: list[int]) -> None:
        """Dense slabs have no prefix index: nothing to register."""

    def clear_prefix_cache(self) -> int:
        return 0

    def release(self, slot: int) -> None:
        """Nothing to free: a refill overwrites from column zero and the
        key mask hides stale columns."""

    # -- preemption (dense fallback: copy-out / copy-in) -----------------------
    def detach_slot(self, slot: int) -> tuple:
        """Copy ``slot``'s written K/V prefix out into private buffers.

        The dense twin of the paged backend's O(1) block-table detach:
        a preempted sequence's resident KV is copied aside so the slot
        can be compacted away, and copied back at resume
        (:meth:`restore_slot`).  Returns an opaque payload.
        """
        length = int(self.lengths[slot])
        ks = [self.k[layer][slot, :, :length].copy() for layer in range(len(self.k))]
        vs = [self.v[layer][slot, :, :length].copy() for layer in range(len(self.v))]
        return ks, vs

    def restore_slot(self, slot: int, payload: tuple, length: int) -> None:
        """Copy a detached sequence's K/V back into ``slot`` (resume)."""
        ks, vs = payload
        for layer in range(len(self.k)):
            self.k[layer][slot, :, :length] = ks[layer]
            self.v[layer][slot, :, :length] = vs[layer]
        self.lengths[slot] = length

    def stats(self) -> dict:
        """Occupancy/residency counters (shape-compatible with the pool's)."""
        slab = self.k[0]
        resident = 2 * len(self.k) * slab.nbytes
        return {
            "paged": False,
            "kv_page_tokens": None,
            "total_pages": None,
            "free_pages": None,
            "reserved_pages": None,
            "pages_in_use": None,
            "peak_pages_in_use": None,
            "allocated_pages": None,
            "free_list_pages": None,
            "resident_kv_bytes": resident,
            "peak_resident_kv_bytes": resident,
        }

    def ragged_prefill_adapters(
        self, slots: list[int], pads: np.ndarray, lens: list[int]
    ) -> list["_RaggedPrefillSlots"]:
        return [
            _RaggedPrefillSlots(self, layer, slots, pads)
            for layer in range(len(self.k))
        ]

    def ragged_chunk_adapters(
        self, base: int, starts: np.ndarray, ends: np.ndarray, pads: np.ndarray
    ) -> list["_RaggedChunkSlots"]:
        return [
            _RaggedChunkSlots(self, layer, base, starts, ends, pads)
            for layer in range(len(self.k))
        ]

    def packed_adapters(
        self, starts: np.ndarray, ends: np.ndarray, spans: np.ndarray,
        n_ones: int,
    ) -> list["_PackedSlots"]:
        """Adapters for one unified packed varlen forward over slots
        ``0 .. len(starts)``: row ``i``'s new tokens occupy the packed
        token axis ``[spans[i], spans[i+1])`` and land in slab columns
        ``[starts[i], ends[i])``; attention reads each row's whole
        written prefix as a copy-free slab view.  The first ``n_ones``
        rows are single-token (decode-shaped) and are scattered with one
        fancy-index store instead of a per-row loop."""
        return [
            _PackedSlots(self, layer, starts, ends, spans, n_ones)
            for layer in range(len(self.k))
        ]

    def step_adapters(self, n_active: int, view_len: int) -> list["_StepSlot"]:
        return [
            _StepSlot(self, layer, n_active, view_len)
            for layer in range(len(self.k))
        ]

    def move(self, src: int, dst: int) -> None:
        """Copy slot ``src`` over slot ``dst`` (batch compaction).

        Only the written ``lengths[src]``-column prefix moves: columns
        beyond it hold stale data the key mask hides anyway, and at
        serving scale the full-capacity copy dominated retire cost.
        """
        length = int(self.lengths[src])
        for layer in range(len(self.k)):
            self.k[layer][dst, :, :length] = self.k[layer][src, :, :length]
            self.v[layer][dst, :, :length] = self.v[layer][src, :, :length]
        self.lengths[dst] = self.lengths[src]

    def move_prefix(self, src: int, dst: int, length: int) -> None:
        """Copy only columns ``[0, length)`` of slot ``src`` over ``dst``.

        Used to shift a partially prefilled (parked) slot, whose columns
        beyond ``length`` hold no data worth a full-capacity copy.

        Compaction contract (both backends): after the move, ``dst``
        holds exactly the ``length``-token prefix and ``lengths[dst] ==
        length`` — callers must not have to patch lengths afterwards.
        """
        for layer in range(len(self.k)):
            self.k[layer][dst, :, :length] = self.k[layer][src, :, :length]
            self.v[layer][dst, :, :length] = self.v[layer][src, :, :length]
        self.lengths[dst] = length

    def permute_prefixes(
        self, base: int, order: list[int], lengths: list[int]
    ) -> None:
        """Rearrange parked rows so ``base + order[j]`` lands on ``base + j``.

        Copies only each row's ``lengths[j]``-column prefix (the written
        part of a parked partial slab).  Used when parked prompts finish
        prefill out of submission order: completed rows must become the
        next contiguous decode slots, so the slab block is permuted to
        completed-first before they are installed.

        Compaction contract (both backends): row ``base + j`` ends up
        holding order ``order[j]``'s prefix with ``lengths[base + j] ==
        lengths[j]`` recorded in the cache.
        """
        for layer in range(len(self.k)):
            for slab in (self.k[layer], self.v[layer]):
                blocks = [
                    slab[base + i, :, :n].copy()
                    for i, n in zip(order, lengths)
                ]
                for j, (block, n) in enumerate(zip(blocks, lengths)):
                    slab[base + j, :, :n] = block
        for j, n in enumerate(lengths):
            self.lengths[base + j] = n


class _RaggedPrefillSlots:
    """Cache adapter for one ragged right-aligned prefill batch.

    Returns the fresh right-aligned K/V unchanged (attention sees exactly
    the batch it computed, with pads hidden by the key mask) while
    scattering each row's valid ``[pad:, :]`` suffix into its slot's
    left-aligned slab columns ``[0, len)`` for the decode phase.
    """

    __slots__ = ("caches", "layer", "slots", "pads")

    def __init__(
        self, caches: SlotKVCaches, layer: int, slots: list[int], pads: np.ndarray
    ):
        self.caches = caches
        self.layer = layer
        self.slots = slots
        self.pads = pads

    def update(self, k: np.ndarray, v: np.ndarray):
        t = k.shape[2]
        for row, slot in enumerate(self.slots):
            pad = int(self.pads[row])
            self.caches.k[self.layer][slot, :, : t - pad] = k[row, :, pad:]
            self.caches.v[self.layer][slot, :, : t - pad] = v[row, :, pad:]
        return k, v


class _RaggedChunkSlots:
    """Cache adapter for one ragged chunk-continuation batch.

    Row ``i`` is the parked slot ``base + i`` advancing its prompt by a
    right-aligned chunk spanning slab columns ``[starts[i], ends[i])``:
    the chunk's valid K/V suffix (past the ``pads[i]`` left-pad) lands in
    those columns, and the returned view covers every parked row's whole
    written prefix — chunk queries attend over all keys prefilled so far,
    with the per-row ``key_lens`` of the attention core hiding the
    columns beyond each row's own end.
    """

    __slots__ = ("caches", "layer", "base", "starts", "ends", "pads")

    def __init__(
        self,
        caches: SlotKVCaches,
        layer: int,
        base: int,
        starts: np.ndarray,
        ends: np.ndarray,
        pads: np.ndarray,
    ):
        self.caches = caches
        self.layer = layer
        self.base = base
        self.starts = starts
        self.ends = ends
        self.pads = pads

    def update(self, k: np.ndarray, v: np.ndarray):
        c = self.caches
        view = int(self.ends.max())
        n = k.shape[0]
        for row in range(n):
            slot = self.base + row
            start = int(self.starts[row])
            end = int(self.ends[row])
            pad = int(self.pads[row])
            c.k[self.layer][slot, :, start:end] = k[row, :, pad:]
            c.v[self.layer][slot, :, start:end] = v[row, :, pad:]
        return (
            c.k[self.layer][self.base : self.base + n, :, :view],
            c.v[self.layer][self.base : self.base + n, :, :view],
        )


class _PackedSlots:
    """Cache adapter for one packed varlen unified forward (dense slabs).

    ``update`` receives ``(1, H, T_total, Dh)`` — every row's new K/V
    concatenated on the token axis — and scatters row ``i``'s
    ``[spans[i], spans[i+1])`` segment into its slab columns
    ``[starts[i], ends[i])``.  The first ``n_ones`` (decode-shaped)
    rows come back as one stacked ``(n_ones, H, view, Dh)`` slab view
    for the fused masked sub-attention; each chunk row comes back as a
    view of its own whole written prefix (zero copies either way).
    """

    __slots__ = ("caches", "layer", "starts", "ends", "spans", "n_ones")

    def __init__(self, caches, layer, starts, ends, spans, n_ones):
        self.caches = caches
        self.layer = layer
        self.starts = starts
        self.ends = ends
        self.spans = spans
        self.n_ones = n_ones

    def update(self, k: np.ndarray, v: np.ndarray):
        sk = self.caches.k[self.layer]
        sv = self.caches.v[self.layer]
        spans, starts, ends = self.spans, self.starts, self.ends
        ones = self.n_ones
        ones_k = ones_v = None
        if ones:
            # Both sides put the row axis first: the combined (int, fancy)
            # index on k and the (fancy, :, fancy) slab index each
            # broadcast to (ones, H, Dh).
            rows = np.arange(ones)
            sk[rows, :, starts[:ones]] = k[0, :, spans[:ones], :]
            sv[rows, :, starts[:ones]] = v[0, :, spans[:ones], :]
            view = int(ends[:ones].max())
            ones_k = sk[:ones, :, :view]
            ones_v = sv[:ones, :, :view]
        keys, vals = [], []
        for row in range(ones, len(starts)):
            s, e = int(spans[row]), int(spans[row + 1])
            end = int(ends[row])
            sk[row, :, int(starts[row]) : end] = k[0, :, s:e]
            sv[row, :, int(starts[row]) : end] = v[0, :, s:e]
            keys.append(sk[row, :, :end])
            vals.append(sv[row, :, :end])
        return ones_k, ones_v, keys, vals


class _StepSlot:
    """Cache adapter for one batched decode step over the active slots."""

    __slots__ = ("caches", "layer", "n_active", "view_len")

    def __init__(self, caches: SlotKVCaches, layer: int, n_active: int, view_len: int):
        self.caches = caches
        self.layer = layer
        self.n_active = n_active
        self.view_len = view_len

    def update(self, k: np.ndarray, v: np.ndarray):
        c = self.caches
        n = self.n_active
        rows = np.arange(n)
        write_at = c.lengths[:n]
        c.k[self.layer][rows, :, write_at] = k[:, :, 0, :]
        c.v[self.layer][rows, :, write_at] = v[:, :, 0, :]
        return (
            c.k[self.layer][:n, :, : self.view_len],
            c.v[self.layer][:n, :, : self.view_len],
        )


class _RadixNode:
    """One full page of token ids in the prefix-cache radix index.

    The index is a trie at page granularity: each edge/node is the
    ``page_tokens``-length token tuple filling exactly one read-only page, so
    walking the trie from the root spells out a cached prompt prefix one
    page at a time.  ``page`` is the physical page holding that span's
    K/V; ``last_used`` is an LRU clock tick for eviction.
    """

    __slots__ = ("tokens", "page", "parent", "children", "last_used")

    def __init__(
        self,
        tokens: tuple[int, ...],
        page: int,
        parent: "_RadixNode | None",
    ):
        self.tokens = tokens
        self.page = page
        self.parent = parent
        self.children: dict[tuple[int, ...], _RadixNode] = {}
        self.last_used = 0


class PagedKVCaches:
    """Paged K/V pool: fixed-size pages, shared free list, block tables.

    Per layer the pool holds one ``(n_heads, capacity × page_tokens,
    head_dim)`` K and V array whose token axis is carved into pages of
    ``page_tokens`` columns; page ``p`` owns columns
    ``[p·page_tokens, (p+1)·page_tokens)``.  Slot ``b``'s *block table*
    (``tables[b]``, shared by every layer) lists the pages holding its
    tokens in order, so token ``t`` lives at column
    ``tables[b][t // page_tokens] · page_tokens + t % page_tokens``.

    Pages come from one free list shared by the whole fleet; storage
    grows lazily in :data:`_GROWTH_PAGES` extents up to ``max_pages``,
    so resident bytes track *live tokens* instead of
    ``max_batch × max_seq_len``.  The engine reserves each sequence's
    worst-case quota at admission (``pages_for(prompt + budget)``), so
    ``_alloc_page`` can never fail mid-decode; ``release`` returns a
    slot's pages, and the compaction hooks (``move`` / ``move_prefix`` /
    ``permute_prefixes``) are O(1) block-table moves — no K/V bytes are
    copied, which is the second structural win over dense slabs.

    Attention never reads the pages directly: a contiguous per-slot
    **mirror** — allocated lazily to the *live* fleet's peak rows × peak
    view, not to ``max_batch × max_seq_len`` — shadows each row's page
    prefix, so the hot decode path writes one column to pages + mirror
    and attends over copy-free mirror views exactly like dense slabs.
    The mirror is pure cache: ``_mirror_len[row]`` tracks its valid
    prefix, compaction invalidates moved rows instead of copying bytes,
    and the next step lazily re-gathers an invalidated row's
    ``[0, t_k)`` from its (moved) block table in one fancy-index pass.
    Both the page storage and the mirror count toward
    ``resident_kv_bytes``.
    """

    #: Minimum storage growth extent (pages).  Growth is geometric past
    #: it (≥50% headroom per grow, like the mirror), so cumulative
    #: grow-copies stay O(pool size) while small pools keep resident
    #: bytes tight to the live-token peak.
    _GROWTH_PAGES = 4

    def __init__(
        self,
        model: TransformerLM,
        max_batch: int,
        page_tokens: int,
        max_pages: int | None = None,
        prefix_cache: bool = False,
    ):
        cfg = model.config
        if page_tokens < 1:
            raise GenerationError(
                f"kv_page_tokens must be >= 1, got {page_tokens}"
            )
        self.page_tokens = page_tokens
        self.pages_per_seq = -(-cfg.max_seq_len // page_tokens)
        if max_pages is None:
            max_pages = max_batch * self.pages_per_seq
        if max_pages < self.pages_per_seq:
            raise GenerationError(
                f"kv_pool_pages={max_pages} cannot hold one full-context "
                f"sequence ({self.pages_per_seq} pages of {page_tokens} "
                "tokens): admission could deadlock"
            )
        self.max_pages = max_pages
        self.max_batch = max_batch
        self.max_seq_len = cfg.max_seq_len
        self.n_heads = cfg.n_heads
        self.head_dim = cfg.head_dim
        self.n_layers = len(model.blocks)
        self.lengths = np.zeros(max_batch, dtype=np.int64)
        self.tables: list[list[int]] = [[] for _ in range(max_batch)]
        empty = (cfg.n_heads, 0, cfg.head_dim)
        self.k = [np.zeros(empty, dtype=np.float32) for _ in model.blocks]
        self.v = [np.zeros(empty, dtype=np.float32) for _ in model.blocks]
        self._free: list[int] = []
        self._capacity = 0
        # Contiguous attention mirror (see class docstring): per-layer
        # (rows_cap, H, view_cap, Dh) planes grown to the live fleet.
        self.mk: list[np.ndarray] = []
        self.mv: list[np.ndarray] = []
        self._mirror_rows = 0
        self._mirror_view = 0
        self._mirror_len = np.zeros(max_batch, dtype=np.int64)
        self.reserved_pages = 0
        self.pages_in_use = 0
        self.peak_pages_in_use = 0
        self.peak_resident_bytes = 0
        # -- prefix cache (radix index over token-id prefixes) ---------------
        # ``_slot_refs[p]`` counts how many block tables reference page
        # ``p``; pages referenced by the index alone (slot_refs == 0 but
        # indexed) are *cached* — retained, evictable, and excluded from
        # ``pages_in_use``.  ``_pinned`` marks index pages currently
        # lent to live slots: they cannot be evicted and must be counted
        # against admission headroom alongside ``reserved_pages``.
        self.prefix_cache_enabled = bool(prefix_cache)
        self._slot_refs: list[int] = []
        self._prefix_root = _RadixNode((), -1, None) if prefix_cache else None
        self._page_nodes: dict[int, _RadixNode] = {}
        self._pinned: set[int] = set()
        self.shared_pinned = 0
        self.cached_pages = 0
        self._prefix_clock = 0
        self.prefix_lookups = 0
        self.prefix_hits = 0
        self.prefix_shared_tokens = 0
        self.prefix_cow_copies = 0
        self.prefix_inserted_pages = 0
        self.prefix_evicted_pages = 0

    # -- reservation (admission control) ---------------------------------------
    def pages_for(self, tokens: int) -> int:
        """Pages needed to hold ``tokens`` cache columns."""
        return max(0, -(-tokens // self.page_tokens))

    def try_reserve(self, n_pages: int) -> bool:
        """Reserve a sequence's worst-case quota; False when the pool is
        oversubscribed (the request then waits in the pending queue).

        Pages pinned by live shared prefixes count against the same
        headroom: they are unreclaimable until their borrowers retire.
        """
        if self.reserved_pages + self.shared_pinned + n_pages > self.max_pages:
            return False
        self.reserved_pages += n_pages
        return True

    def unreserve(self, n_pages: int) -> None:
        if n_pages > self.reserved_pages:
            raise GenerationError(
                f"KV page unreserve of {n_pages} would drive reserved_pages "
                f"({self.reserved_pages}) negative — engine accounting bug"
            )
        self.reserved_pages -= n_pages

    # -- prefix cache: lookup / admission / attach -------------------------------
    def match_prefix(
        self, prompt_ids: list[int]
    ) -> tuple[int, list[int]]:
        """Longest cached prefix of ``prompt_ids``: ``(matched, pages)``.

        Walks the radix index one full page at a time, then checks the
        divergence point's children for a *partial* boundary share (the
        first ``m < page_tokens`` tokens of some cached page) — the case
        copy-on-write exists for.  ``matched`` is capped at
        ``len(prompt_ids) - 1`` so every admitted prompt still prefills
        at least one token and the last-token logits come from a real
        forward pass.
        """
        if self._prefix_root is None:
            return 0, []
        self._prefix_clock += 1
        self.prefix_lookups += 1
        p = self.page_tokens
        limit = len(prompt_ids) - 1
        node = self._prefix_root
        pages: list[int] = []
        matched = 0
        while matched + p <= limit:
            key = tuple(prompt_ids[matched : matched + p])
            child = node.children.get(key)
            if child is None:
                break
            child.last_used = self._prefix_clock
            pages.append(child.page)
            matched += p
            node = child
        remaining = prompt_ids[matched:limit]
        best_child, best_lcp = None, 0
        if remaining:
            for key, child in node.children.items():
                lcp = 0
                for a, b in zip(key, remaining):
                    if a != b:
                        break
                    lcp += 1
                if lcp > best_lcp:
                    best_lcp, best_child = lcp, child
        if best_child is not None:
            best_child.last_used = self._prefix_clock
            pages.append(best_child.page)
            matched += best_lcp
        if matched:
            self.prefix_hits += 1
            self.prefix_shared_tokens += matched
        return matched, pages

    def admit_shared(
        self, prompt_ids: list[int], total_pages: int
    ) -> tuple[int, int, list[int]] | None:
        """Admission with prefix sharing: match, reserve, pin — atomically.

        ``total_pages`` is the sequence's worst-case quota
        (``pages_for(prompt + budget)``).  Full shared pages are lent
        from the index, so only ``total_pages - matched // page_tokens``
        is charged against the pool (a partially shared boundary page
        stays in the quota: its first write copy-on-writes into a fresh
        page the quota must cover).  Returns ``(quota, matched, pages)``
        on success — the caller must attach ``pages`` to the admitted
        slot via :meth:`attach_prefix` — or ``None`` to defer.
        """
        matched, pages = self.match_prefix(prompt_ids)
        if matched:
            quota = total_pages - matched // self.page_tokens
            newly_pinned = sum(1 for q in pages if q not in self._pinned)
            if (
                self.reserved_pages + self.shared_pinned
                + quota + newly_pinned
            ) <= self.max_pages:
                self.reserved_pages += quota
                for q in pages:
                    self._pin(q)
                return quota, matched, pages
            # Shared admission does not fit (pins outweigh the saved
            # quota); fall through and try a plain unshared reservation
            # so the request is never worse off than without the cache.
            self.prefix_hits -= 1
            self.prefix_shared_tokens -= matched
        if not self.try_reserve(total_pages):
            return None
        return total_pages, 0, []

    def attach_prefix(self, slot: int, pages: list[int], matched: int) -> None:
        """Link the shared pages as ``slot``'s block-table prefix.

        Each page gains one slot reference; cached-only pages re-enter
        ``pages_in_use``.  The slot's mirror is invalidated so the next
        forward lazily gathers the shared prefix from the pages.
        """
        if self.tables[slot]:
            raise GenerationError(
                f"slot {slot} already holds pages — engine accounting bug"
            )
        for q in pages:
            refs = self._slot_refs[q]
            self._slot_refs[q] = refs + 1
            if refs == 0:
                self.pages_in_use += 1
                self.cached_pages -= 1
        self.tables[slot] = list(pages)
        self._mirror_len[slot] = 0
        self.peak_pages_in_use = max(self.peak_pages_in_use, self.pages_in_use)

    def _pin(self, page: int) -> None:
        if page not in self._pinned:
            self._pinned.add(page)
            self.shared_pinned += 1

    def _unpin(self, page: int) -> None:
        if page in self._pinned:
            self._pinned.remove(page)
            self.shared_pinned -= 1

    # -- page lifecycle --------------------------------------------------------
    def _grow(self, min_pages: int) -> None:
        new_cap = min(
            self.max_pages,
            max(
                min_pages,
                self._capacity + max(self._GROWTH_PAGES, self._capacity // 2),
            ),
        )
        if new_cap <= self._capacity:
            raise GenerationError(
                "KV page pool exhausted beyond its reservations "
                f"({self._capacity}/{self.max_pages} pages) — engine "
                "accounting bug"
            )
        extra = (new_cap - self._capacity) * self.page_tokens
        pad = np.zeros((self.n_heads, extra, self.head_dim), dtype=np.float32)
        self.k = [np.concatenate([k, pad], axis=1) for k in self.k]
        self.v = [np.concatenate([v, pad], axis=1) for v in self.v]
        self._free.extend(range(self._capacity, new_cap))
        self._slot_refs.extend(0 for _ in range(self._capacity, new_cap))
        self._capacity = new_cap
        self.peak_resident_bytes = max(
            self.peak_resident_bytes, self.resident_bytes()
        )

    def _alloc_page(self) -> int:
        """Pop a free page, evicting cached index pages / growing storage
        as needed.  Reservation accounting guarantees this cannot fail
        for a correctly admitted sequence."""
        if not self._free:
            if self._capacity >= self.max_pages:
                self._evict_cached_pages(1)
            if not self._free:
                self._grow(self._capacity + 1)
        return self._free.pop()

    def _drop_slot_ref(self, page: int) -> None:
        """One block table stopped referencing ``page``: free it when no
        slot holds it, or demote it to cached if the index retains it."""
        refs = self._slot_refs[page] - 1
        if refs < 0:
            raise GenerationError(
                f"KV page {page} released more times than referenced — "
                "engine accounting bug"
            )
        self._slot_refs[page] = refs
        if refs == 0:
            self.pages_in_use -= 1
            if self.pages_in_use < 0:
                raise GenerationError(
                    "KV pages_in_use went negative — engine accounting bug"
                )
            self._unpin(page)
            if page in self._page_nodes:
                self.cached_pages += 1
            else:
                self._free.append(page)

    def ensure(self, slot: int, n_tokens: int) -> None:
        """Extend ``slot``'s block table to cover ``n_tokens`` columns."""
        table = self.tables[slot]
        while len(table) * self.page_tokens < n_tokens:
            page = self._alloc_page()
            self._slot_refs[page] = 1
            table.append(page)
            self.pages_in_use += 1
        self.peak_pages_in_use = max(self.peak_pages_in_use, self.pages_in_use)

    def release(self, slot: int) -> None:
        """Drop ``slot``'s reference on every page of its block table.

        A page returns to the free list when its last slot reference
        drops *and* the prefix index does not retain it; indexed pages
        linger as evictable cache instead.  Raises
        :class:`GenerationError` if accounting would go negative (a
        double release).
        """
        table = self.tables[slot]
        if table:
            self.tables[slot] = []
            for page in table:
                self._drop_slot_ref(page)
        self._mirror_len[slot] = 0

    # -- preemption: O(1) block-table detach / reattach --------------------------
    def detach_table(self, slot: int) -> list[int]:
        """Detach ``slot``'s block table for a preempted sequence.

        The pages keep their slot references (they stay in
        ``pages_in_use``; shared prefix pages stay pinned), so the
        detached sequence's resident KV survives while its slot is
        compacted away and reused.  Reattach with :meth:`attach_table`.
        """
        table = self.tables[slot]
        self.tables[slot] = []
        self.lengths[slot] = 0
        self._mirror_len[slot] = 0
        return table

    def attach_table(self, slot: int, table: list[int], length: int) -> None:
        """Reattach a detached block table to ``slot`` (resume).

        The mirror is left invalid; the next forward's catch-up gather
        rebuilds the row's contiguous prefix from the pages lazily —
        the same path a compaction-moved row takes.
        """
        if self.tables[slot]:
            raise GenerationError(
                f"slot {slot} already holds pages — engine accounting bug"
            )
        self.tables[slot] = table
        self.lengths[slot] = length
        self._mirror_len[slot] = 0

    def drop_table(self, table: list[int]) -> None:
        """Drop the slot references of a detached table (a preempted
        sequence was cancelled, or demoted to cold re-prefill)."""
        for page in table:
            self._drop_slot_ref(page)

    # -- compaction: O(1) block-table moves ------------------------------------
    # No K/V byte moves anywhere below: tables are relinked and the
    # affected mirror rows are invalidated — the next step re-gathers a
    # moved row's prefix lazily, instead of every compaction paying a
    # slab copy up front (the dense path's cost).
    def move(self, src: int, dst: int) -> None:
        self.release(dst)
        self.tables[dst] = self.tables[src]
        self.tables[src] = []
        self.lengths[dst] = self.lengths[src]
        self._mirror_len[src] = 0

    def move_prefix(self, src: int, dst: int, length: int) -> None:
        # Same compaction contract as the dense backend: dst ends up
        # holding exactly the length-token prefix with lengths[dst]
        # recorded — callers never patch lengths after a move.
        self.release(dst)
        self.tables[dst] = self.tables[src]
        self.tables[src] = []
        self.lengths[dst] = length
        self._mirror_len[src] = 0

    def permute_prefixes(
        self, base: int, order: list[int], lengths: list[int]
    ) -> None:
        # Contract twin of SlotKVCaches.permute_prefixes: row base + j
        # receives order[j]'s table *and* its recorded length.
        block = [self.tables[base + i] for i in order]
        for j, (table, n) in enumerate(zip(block, lengths)):
            self.tables[base + j] = table
            self.lengths[base + j] = n
        self._mirror_len[base : base + len(order)] = 0

    # -- column addressing -----------------------------------------------------
    def _token_cols(self, slot: int, start: int, stop: int) -> np.ndarray:
        """Storage columns of ``slot``'s tokens ``[start, stop)``.

        Indexes only the pages overlapping ``[start, stop)`` — O(stop −
        start), not O(stop) — so mirror catch-up gathers on long rows
        don't rebuild the whole prefix's column map.
        """
        p = self.page_tokens
        first = start // p
        pages = np.asarray(
            self.tables[slot][first : -(-stop // p)], dtype=np.int64
        )
        cols = (pages[:, None] * p + np.arange(p, dtype=np.int64)[None, :])
        return cols.ravel()[start - first * p : stop - first * p]

    # -- prefix cache: copy-on-write / registration / eviction -------------------
    def _prepare_write(self, slot: int, start: int, stop: int) -> None:
        """Make columns ``[start, stop)`` of ``slot`` privately writable.

        Extends the block table to cover ``stop`` and copy-on-writes any
        page in the write range that is shared (referenced by another
        slot or retained by the prefix index).  With the prefix cache
        off this is exactly :meth:`ensure`.
        """
        self.ensure(slot, stop)
        if self._prefix_root is None:
            return
        p = self.page_tokens
        table = self.tables[slot]
        for i in range(start // p, -(-stop // p)):
            page = table[i]
            if self._slot_refs[page] > 1 or page in self._page_nodes:
                self._cow(slot, i)

    def _cow(self, slot: int, i: int) -> None:
        """Copy-on-write: give ``slot`` a private copy of its page ``i``.

        The page's K/V columns are copied for every layer, the block
        table swaps in the fresh page, and the shared page loses one
        slot reference.  Mirror rows stay valid: their *contents* are
        unchanged — only the backing storage column moved.
        """
        table = self.tables[slot]
        old = table[i]
        new = self._alloc_page()
        self._slot_refs[new] = 1
        self.pages_in_use += 1
        p = self.page_tokens
        src = slice(old * p, (old + 1) * p)
        dst = slice(new * p, (new + 1) * p)
        for layer in range(self.n_layers):
            self.k[layer][:, dst, :] = self.k[layer][:, src, :]
            self.v[layer][:, dst, :] = self.v[layer][:, src, :]
        table[i] = new
        self._drop_slot_ref(old)
        self.prefix_cow_copies += 1
        self.peak_pages_in_use = max(self.peak_pages_in_use, self.pages_in_use)

    def register_prefix(self, slot: int, prompt_ids: list[int]) -> None:
        """Index ``slot``'s fully prefilled prompt pages for reuse.

        Called once the whole prompt is resident in ``slot``'s pages.
        Only *full* prompt pages are inserted — a partial tail page will
        receive decode writes and must stay private.  Pages already
        indexed (the very nodes this prompt matched at admission) are
        left as-is; newly inserted pages stay in ``pages_in_use`` while
        the owning slot lives and become cached on its release.
        """
        if self._prefix_root is None:
            return
        p = self.page_tokens
        table = self.tables[slot]
        node = self._prefix_root
        self._prefix_clock += 1
        for i in range(len(prompt_ids) // p):
            key = tuple(prompt_ids[i * p : (i + 1) * p])
            child = node.children.get(key)
            if child is None:
                page = table[i]
                if page in self._page_nodes:
                    # Defensive: never alias one physical page under two
                    # index nodes (eviction would double-free it).
                    break
                child = _RadixNode(key, page, node)
                node.children[key] = child
                self._page_nodes[page] = child
                self.prefix_inserted_pages += 1
            child.last_used = self._prefix_clock
            node = child

    def _evict_cached_pages(self, n_needed: int) -> None:
        """Evict least-recently-used cached-only leaf pages to the free
        list until ``n_needed`` pages were freed or nothing evictable
        remains.  Pages referenced or pinned by live slots never move."""
        if self._prefix_root is None:
            return
        freed = 0
        while freed < n_needed:
            victim = None
            stack = list(self._prefix_root.children.values())
            while stack:
                n = stack.pop()
                if (
                    not n.children
                    and self._slot_refs[n.page] == 0
                    and n.page not in self._pinned
                    and (victim is None or n.last_used < victim.last_used)
                ):
                    victim = n
                stack.extend(n.children.values())
            if victim is None:
                return
            self._remove_node(victim)
            freed += 1

    def _remove_node(self, node: _RadixNode) -> None:
        """Unlink an index leaf whose page no slot references."""
        del node.parent.children[node.tokens]
        del self._page_nodes[node.page]
        self.cached_pages -= 1
        self._free.append(node.page)
        self.prefix_evicted_pages += 1

    def clear_prefix_cache(self) -> int:
        """Drop the whole radix index; returns pages freed immediately.

        Pages still referenced by live slots merely lose index
        retention — they free normally when their slots release.
        """
        if self._prefix_root is None:
            return 0
        freed = 0
        for page in list(self._page_nodes):
            if self._slot_refs[page] == 0:
                self.cached_pages -= 1
                self._free.append(page)
                freed += 1
        self._page_nodes.clear()
        self._prefix_root.children.clear()
        return freed

    def _ensure_mirror(self, n_rows: int, view: int) -> None:
        """Grow the mirror planes to cover ``n_rows`` slots × ``view`` columns.

        Growth is amortised (≥50% headroom per axis, capped at the
        engine's hard bounds) and content-preserving, so steady decode
        never reallocates and never invalidates.
        """
        if n_rows <= self._mirror_rows and view <= self._mirror_view:
            return
        rows_cap = self._mirror_rows
        view_cap = self._mirror_view
        if n_rows > rows_cap:
            rows_cap = min(self.max_batch, max(n_rows, rows_cap + rows_cap // 2 + 1))
        if view > view_cap:
            view_cap = min(
                self.max_seq_len, max(view, view_cap + max(32, view_cap // 2))
            )
        shape = (rows_cap, self.n_heads, view_cap, self.head_dim)
        old_k, old_v = self.mk, self.mv
        self.mk = [np.zeros(shape, dtype=np.float32) for _ in range(self.n_layers)]
        self.mv = [np.zeros(shape, dtype=np.float32) for _ in range(self.n_layers)]
        if old_k:
            r, w = self._mirror_rows, self._mirror_view
            for layer in range(self.n_layers):
                self.mk[layer][:r, :, :w] = old_k[layer]
                self.mv[layer][:r, :, :w] = old_v[layer]
        self._mirror_rows, self._mirror_view = rows_cap, view_cap
        self.peak_resident_bytes = max(
            self.peak_resident_bytes, self.resident_bytes()
        )

    def _mirror_plan(
        self, rows, starts, ends
    ) -> list[tuple[int, np.ndarray, int]]:
        """Mark each row's mirror valid through ``ends`` and return the
        catch-up gathers — ``(row, page_cols, have)`` for rows whose
        mirror lags behind this step's write start (rows invalidated by
        compaction, or parked rows shifted to new slots)."""
        catchups = []
        for row, start, end in zip(rows, starts, ends):
            row, start = int(row), int(start)
            have = int(self._mirror_len[row])
            if have < start:
                catchups.append((row, self._token_cols(row, have, start), have))
            self._mirror_len[row] = int(end)
        return catchups

    # -- adapters ----------------------------------------------------------------
    def ragged_prefill_adapters(
        self, slots: list[int], pads: np.ndarray, lens: list[int]
    ) -> list["_PagedPrefillSlots"]:
        for slot, n in zip(slots, lens):
            self.ensure(slot, n)
        self._ensure_mirror(max(slots) + 1, max(lens))
        write_cols = [
            self._token_cols(slot, 0, n) for slot, n in zip(slots, lens)
        ]
        for slot, n in zip(slots, lens):
            self._mirror_len[slot] = n
        return [
            _PagedPrefillSlots(self, layer, pads, slots, write_cols)
            for layer in range(self.n_layers)
        ]

    def ragged_chunk_adapters(
        self, base: int, starts: np.ndarray, ends: np.ndarray, pads: np.ndarray
    ) -> list["_PagedRaggedSlots"]:
        n = len(starts)
        for i in range(n):
            self._prepare_write(base + i, int(starts[i]), int(ends[i]))
        view = int(ends.max())
        self._ensure_mirror(base + n, view)
        write_cols = [
            self._token_cols(base + i, int(starts[i]), int(ends[i]))
            for i in range(n)
        ]
        catchups = self._mirror_plan(range(base, base + n), starts, ends)
        return [
            _PagedRaggedSlots(
                self, layer, base, starts, ends, pads, write_cols, catchups,
                view,
            )
            for layer in range(self.n_layers)
        ]

    def packed_adapters(
        self, starts: np.ndarray, ends: np.ndarray, spans: np.ndarray,
        n_ones: int,
    ) -> list["_PackedPagedSlots"]:
        n = len(starts)
        p = self.page_tokens
        for i in range(n):
            self._prepare_write(i, int(starts[i]), int(ends[i]))
        self._ensure_mirror(n, int(ends.max()))
        # The first n_ones rows write exactly one column each: collapse
        # their scatters into one fancy-index store per layer.
        one_cols = np.asarray(
            [
                self.tables[i][int(starts[i]) // p] * p + int(starts[i]) % p
                for i in range(n_ones)
            ],
            dtype=np.int64,
        )
        ones_view = int(ends[:n_ones].max()) if n_ones else 0
        write_cols = [
            self._token_cols(i, int(starts[i]), int(ends[i]))
            for i in range(n_ones, n)
        ]
        catchups = self._mirror_plan(range(n), starts, ends)
        return [
            _PackedPagedSlots(
                self, layer, spans, n_ones, one_cols, ones_view, starts, ends,
                write_cols, catchups,
            )
            for layer in range(self.n_layers)
        ]

    def step_adapters(self, n_active: int, view_len: int) -> list["_PagedStepSlots"]:
        write_cols = np.empty(n_active, dtype=np.int64)
        p = self.page_tokens
        starts = self.lengths[:n_active]
        for row in range(n_active):
            t = int(starts[row])
            self._prepare_write(row, t, t + 1)
            write_cols[row] = self.tables[row][t // p] * p + t % p
        self._ensure_mirror(n_active, view_len)
        catchups = self._mirror_plan(range(n_active), starts, starts + 1)
        return [
            _PagedStepSlots(
                self, layer, write_cols, starts.copy(), catchups, view_len
            )
            for layer in range(self.n_layers)
        ]

    # -- accounting --------------------------------------------------------------
    def resident_bytes(self) -> int:
        """Bytes of K/V page storage + attention mirror currently allocated."""
        storage = 2 * sum(k.nbytes for k in self.k)
        mirror = 2 * sum(m.nbytes for m in self.mk)
        return storage + mirror

    def stats(self) -> dict:
        stats = {
            "paged": True,
            "kv_page_tokens": self.page_tokens,
            "total_pages": self.max_pages,
            "free_pages": (
                self.max_pages - self.reserved_pages - self.shared_pinned
            ),
            "reserved_pages": self.reserved_pages,
            "pages_in_use": self.pages_in_use,
            "peak_pages_in_use": self.peak_pages_in_use,
            "allocated_pages": self._capacity,
            "free_list_pages": len(self._free),
            "resident_kv_bytes": self.resident_bytes(),
            "peak_resident_kv_bytes": max(
                self.peak_resident_bytes, self.resident_bytes()
            ),
        }
        if self.prefix_cache_enabled:
            stats["prefix_cache"] = {
                "cached_pages": self.cached_pages,
                "shared_pinned_pages": self.shared_pinned,
                "lookups": self.prefix_lookups,
                "hits": self.prefix_hits,
                "hit_rate": (
                    round(self.prefix_hits / self.prefix_lookups, 4)
                    if self.prefix_lookups
                    else 0.0
                ),
                "shared_tokens": self.prefix_shared_tokens,
                "cow_copies": self.prefix_cow_copies,
                "inserted_pages": self.prefix_inserted_pages,
                "evicted_pages": self.prefix_evicted_pages,
            }
        return stats


class _PagedPrefillSlots:
    """Paged twin of :class:`_RaggedPrefillSlots`: scatter each row's
    valid suffix into its block-table pages *and* its mirror row;
    attention sees the fresh right-aligned batch unchanged, so prefill
    itself needs no gather."""

    __slots__ = ("pool", "layer", "pads", "slots", "write_cols")

    def __init__(self, pool, layer, pads, slots, write_cols):
        self.pool = pool
        self.layer = layer
        self.pads = pads
        self.slots = slots
        self.write_cols = write_cols

    def update(self, k: np.ndarray, v: np.ndarray):
        pool = self.pool
        pk, pv = pool.k[self.layer], pool.v[self.layer]
        mk, mv = pool.mk[self.layer], pool.mv[self.layer]
        for row, (slot, cols) in enumerate(zip(self.slots, self.write_cols)):
            pad = int(self.pads[row])
            pk[:, cols, :] = k[row, :, pad:, :]
            pv[:, cols, :] = v[row, :, pad:, :]
            mk[slot, :, : len(cols)] = k[row, :, pad:, :]
            mv[slot, :, : len(cols)] = v[row, :, pad:, :]
        return k, v


class _PagedRaggedSlots:
    """Paged chunk-continuation adapter (split-schedule path).

    Row ``i`` (slot ``base + i``) writes its chunk's valid suffix into
    page columns ``write_cols[i]`` and the matching mirror span; any
    row whose mirror lagged (compaction moved it) catches up from its
    pages first.  Attention receives the mirror block view — tails
    beyond each row's own ``key_lens`` are never read by the ragged
    per-row core.
    """

    __slots__ = (
        "pool", "layer", "base", "starts", "ends", "pads", "write_cols",
        "catchups", "view",
    )

    def __init__(self, pool, layer, base, starts, ends, pads, write_cols,
                 catchups, view):
        self.pool = pool
        self.layer = layer
        self.base = base
        self.starts = starts
        self.ends = ends
        self.pads = pads
        self.write_cols = write_cols
        self.catchups = catchups
        self.view = view

    def update(self, k: np.ndarray, v: np.ndarray):
        pool = self.pool
        pk, pv = pool.k[self.layer], pool.v[self.layer]
        mk, mv = pool.mk[self.layer], pool.mv[self.layer]
        for row, cols, have in self.catchups:
            mk[row, :, have : have + len(cols)] = pk[:, cols, :]
            mv[row, :, have : have + len(cols)] = pv[:, cols, :]
        base, n = self.base, k.shape[0]
        for row in range(n):
            wc = self.write_cols[row]
            pad = int(self.pads[row])
            start, end = int(self.starts[row]), int(self.ends[row])
            pk[:, wc, :] = k[row, :, pad:, :]
            pv[:, wc, :] = v[row, :, pad:, :]
            mk[base + row, :, start:end] = k[row, :, pad:, :]
            mv[base + row, :, start:end] = v[row, :, pad:, :]
        return (
            mk[base : base + n, :, : self.view],
            mv[base : base + n, :, : self.view],
        )


class _PackedPagedSlots:
    """Packed varlen unified-forward adapter over the paged pool.

    Row ``i``'s new K/V (packed segment ``[spans[i], spans[i+1])``)
    scatter into its block-table columns and its mirror row (lagging
    rows catch up from their pages first).  The fused decode
    sub-attention reads the stacked ``mirror[:n_ones, :, :view]`` view
    (stale columns past each row's length are hidden by the key mask,
    exactly the dense slab semantics); each chunk row reads its own
    exact-prefix mirror view — no copies anywhere on the steady path."""

    __slots__ = (
        "pool", "layer", "spans", "n_ones", "one_cols", "ones_view",
        "starts", "ends", "write_cols", "catchups",
    )

    def __init__(self, pool, layer, spans, n_ones, one_cols, ones_view,
                 starts, ends, write_cols, catchups):
        self.pool = pool
        self.layer = layer
        self.spans = spans
        self.n_ones = n_ones
        self.one_cols = one_cols
        self.ones_view = ones_view
        self.starts = starts
        self.ends = ends
        self.write_cols = write_cols
        self.catchups = catchups

    def update(self, k: np.ndarray, v: np.ndarray):
        pool = self.pool
        pk = pool.k[self.layer]
        pv = pool.v[self.layer]
        mk, mv = pool.mk[self.layer], pool.mv[self.layer]
        spans, ones = self.spans, self.n_ones
        for row, cols, have in self.catchups:
            mk[row, :, have : have + len(cols)] = pk[:, cols, :]
            mv[row, :, have : have + len(cols)] = pv[:, cols, :]
        ones_k = ones_v = None
        if ones:
            # k[0, :, fancy, :] broadcasts row-first to (ones, H, Dh);
            # the pool's in-place column index expects (H, ones, Dh),
            # while the mirror's (fancy, :, fancy) index is row-first.
            new_k = k[0, :, spans[:ones], :]
            new_v = v[0, :, spans[:ones], :]
            pk[:, self.one_cols, :] = new_k.transpose(1, 0, 2)
            pv[:, self.one_cols, :] = new_v.transpose(1, 0, 2)
            rows = np.arange(ones)
            mk[rows, :, self.starts[:ones]] = new_k
            mv[rows, :, self.starts[:ones]] = new_v
            ones_k = mk[:ones, :, : self.ones_view]
            ones_v = mv[:ones, :, : self.ones_view]
        keys, vals = [], []
        for row, wc in enumerate(self.write_cols, start=ones):
            s, e = int(spans[row]), int(spans[row + 1])
            start, end = int(self.starts[row]), int(self.ends[row])
            pk[:, wc, :] = k[0, :, s:e]
            pv[:, wc, :] = v[0, :, s:e]
            mk[row, :, start:end] = k[0, :, s:e]
            mv[row, :, start:end] = v[0, :, s:e]
            keys.append(mk[row, :, :end])
            vals.append(mv[row, :, :end])
        return ones_k, ones_v, keys, vals


class _PagedStepSlots:
    """Paged twin of :class:`_StepSlot` for the fused decode forward.

    All rows write their one new token to pages and mirror in a single
    fancy-index store each (lagging rows catch up from their pages
    first); attention reads the stacked ``mirror[:n, :, :view]`` view —
    zero copies on the steady decode path, with the key mask hiding
    stale columns exactly as on dense slabs."""

    __slots__ = ("pool", "layer", "write_cols", "write_at", "catchups",
                 "view_len")

    def __init__(self, pool, layer, write_cols, write_at, catchups, view_len):
        self.pool = pool
        self.layer = layer
        self.write_cols = write_cols
        self.write_at = write_at
        self.catchups = catchups
        self.view_len = view_len

    def update(self, k: np.ndarray, v: np.ndarray):
        pool = self.pool
        pk, pv = pool.k[self.layer], pool.v[self.layer]
        mk, mv = pool.mk[self.layer], pool.mv[self.layer]
        for row, cols, have in self.catchups:
            mk[row, :, have : have + len(cols)] = pk[:, cols, :]
            mv[row, :, have : have + len(cols)] = pv[:, cols, :]
        n = k.shape[0]
        new_k = k[:, :, 0, :]
        new_v = v[:, :, 0, :]
        pk[:, self.write_cols, :] = new_k.transpose(1, 0, 2)
        pv[:, self.write_cols, :] = new_v.transpose(1, 0, 2)
        rows = np.arange(n)
        mk[rows, :, self.write_at] = new_k
        mv[rows, :, self.write_at] = new_v
        return (
            mk[:n, :, : self.view_len],
            mv[:n, :, : self.view_len],
        )


@dataclass
class _SlotState:
    """Decode-time state of one occupied slot."""

    seq_id: int                     #: engine-wide id assigned at submit()
    request: GenerationRequest
    budget: int
    produced: list[int] = field(default_factory=list)
    prefilled: int = 0              #: prompt tokens written (chunked admission)
    page_quota: int = 0             #: pages reserved in the paged KV pool
    #: Pages borrowed from the prefix cache at admission, pending
    #: attachment to the parked slot (empty once attached / when unshared).
    shared_pages: list[int] = field(default_factory=list)
    #: Preemption state.  A preempted sequence re-enters admission with
    #: ``resume_ids`` as its *effective prompt* (original prompt + tokens
    #: produced so far) and ``prefilled`` pointing at its resident KV, so
    #: the parked-prefill machinery re-feeds exactly one token — the
    #: interrupted decode step — and nothing of the prompt is re-prefilled.
    resume_ids: list[int] | None = None
    #: Detached KV payload while suspended: a block table (paged) or the
    #: copied-out K/V buffers (dense); ``None`` once reattached or when
    #: the sequence was demoted to cold re-prefill.
    detached: tuple | None = None
    #: Pages to re-reserve at resume (the worst-case remainder the
    #: preemption released back to the pool).
    suspend_reserve: int = 0

    @property
    def feed_ids(self) -> list[int]:
        """Tokens the prefill machinery feeds for this sequence."""
        return self.resume_ids if self.resume_ids is not None else self.request.prompt_ids

    @property
    def sort_key(self) -> tuple[int, int]:
        """Admission order: best (priority, arrival) first."""
        return (self.request.priority, self.seq_id)


class BatchedEngine:
    """Continuous-batching decoder over a :class:`TransformerLM`.

    See the module docstring for the architecture (the prefill → decode →
    retire/refill phase loop).  The engine can be driven two ways:

    * **Run to completion** — :meth:`generate` consumes a list of
      :class:`GenerationRequest` and returns the produced token lists in
      input order; results are token-for-token identical to calling
      :meth:`TransformerLM.generate` per request (greedy, or seeded
      top-k).
    * **Streaming** — :meth:`submit` enqueues one request and returns its
      sequence id, :meth:`step` advances the whole fleet one token
      (admitting pending requests into free slots first, so a request
      submitted mid-flight joins the batch as soon as a slot retires
      instead of waiting for the batch to drain), and :meth:`collect`
      pops finished ``{seq_id: tokens}`` results.  This is the substrate
      of the online revision service (:mod:`repro.serving`).

    ``prefill_chunk_tokens`` bounds how much prefill work a single
    :meth:`step` may do while other slots are decoding: each refill
    prompt advances by at most one chunk per step, so in-flight decodes
    are never stalled behind a whole prompt-length forward.  Up to
    ``prefill_concurrency`` refill prompts advance *concurrently* —
    parked contiguously past the decode fleet, all chunks in one ragged
    forward per step — so a burst of late arrivals prefills together
    instead of serializing behind a single admission slot; the stall
    bound a step pays is one ragged chunk forward, whatever the burst
    size.  When the fleet is idle there is nothing to stall and
    admission always uses the full ragged batched prefill.

    :meth:`cancel` abandons a submitted sequence in any state — queued,
    mid-prefill, or decoding — finishing it with the tokens produced so
    far (a prefix of what the run-to-completion decode would have
    produced).  The serving scheduler uses it to expire deadline-missed
    jobs without spending further engine work on them.

    ``kv_page_tokens`` switches the KV backend from dense per-slot slabs
    to the paged pool (:class:`PagedKVCaches`): KV memory then scales
    with live tokens instead of ``max_batch × max_seq_len``, compaction
    becomes O(1) block-table moves, and admission additionally reserves
    each sequence's worst-case page quota against ``kv_pool_pages`` —
    a request the pool cannot cover simply waits in the pending queue
    until retirements free pages (see :meth:`kv_stats` for the headroom
    counters the serving layer exports).  Paged and dense decoding are
    token-for-token identical.

    ``kv_prefix_cache`` (paged pool only) adds vLLM/SGLang-style prefix
    sharing: a radix index over token-id prefixes maps previously
    prefilled prompt pages to refcounted read-only pages.  A matching
    admission borrows those pages, charges only its unshared suffix
    against the pool quota, and prefills from the first divergent token;
    the first write past a shared boundary copy-on-writes that one page
    (see ``docs/prefix_cache.md``).  Scheduling still never changes
    tokens: a shared prefix holds the same K/V values a fresh prefill
    would recompute, differing only by BLAS kernel-selection noise —
    the same ulp-level noise the chunked-prefill path already absorbs
    inside greedy argmax margins.

    ``unified_step`` (default) folds the parked chunk rows into the
    decode forward even at chunk > 1 — one mixed-length ragged pass per
    step instead of a chunk forward plus a decode forward.  ``False``
    restores the split two-forward schedule (the benchmark uses it to
    measure the merge win); tokens are identical either way.

    The slot KV caches are allocated lazily on first use and reused
    across drains: a refilled slot overwrites from column zero (dense;
    the key mask hides stale columns) or starts a fresh block table
    (paged), so results never depend on slot history.  The
    engine is not thread-safe; a single driver (e.g. the serving worker
    thread) must own all ``submit``/``step``/``collect`` calls, and
    :meth:`generate` must not be interleaved with an external
    :meth:`collect`.
    """

    def __init__(
        self,
        model: TransformerLM,
        max_batch: int = DEFAULT_GEN_BATCH_SIZE,
        prefill_chunk_tokens: int | None = None,
        prefill_concurrency: int = 1,
        kv_page_tokens: int | None = None,
        kv_pool_pages: int | None = None,
        kv_prefix_cache: bool = False,
        unified_step: bool = True,
        preemption: bool = True,
    ):
        if max_batch < 1:
            raise GenerationError(f"max_batch must be >= 1, got {max_batch}")
        if prefill_chunk_tokens is not None and prefill_chunk_tokens < 1:
            raise GenerationError(
                f"prefill_chunk_tokens must be >= 1, got {prefill_chunk_tokens}"
            )
        if prefill_concurrency < 1:
            raise GenerationError(
                f"prefill_concurrency must be >= 1, got {prefill_concurrency}"
            )
        if kv_page_tokens is not None and kv_page_tokens < 1:
            raise GenerationError(
                f"kv_page_tokens must be >= 1, got {kv_page_tokens}"
            )
        if kv_pool_pages is not None:
            if kv_page_tokens is None:
                raise GenerationError(
                    "kv_pool_pages requires kv_page_tokens (a paged cache)"
                )
            if kv_pool_pages < -(-model.config.max_seq_len // kv_page_tokens):
                raise GenerationError(
                    f"kv_pool_pages={kv_pool_pages} cannot hold one "
                    "full-context sequence: admission could deadlock"
                )
        if kv_prefix_cache and kv_page_tokens is None:
            raise GenerationError(
                "kv_prefix_cache requires kv_page_tokens (a paged KV cache)"
            )
        self.model = model
        self.max_batch = max_batch
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self.prefill_concurrency = prefill_concurrency
        self.kv_page_tokens = kv_page_tokens
        self.kv_pool_pages = kv_pool_pages
        self.kv_prefix_cache = kv_prefix_cache
        self.unified_step = unified_step
        self.preemption = preemption
        self._caches: SlotKVCaches | PagedKVCaches | None = None
        self._bias: np.ndarray | None = None
        self._slots: list[_SlotState | None] = [None] * max_batch
        self._n_active = 0
        #: Pending admission heap ordered by (priority, seq_id): the
        #: best (priority, arrival) entry admits first; within one
        #: priority class submission order is FIFO.
        self._pending: list[tuple[int, int, GenerationRequest]] = []
        #: Preempted sequences waiting to resume (detached KV parked in
        #: ``_SlotState.detached``); they compete with ``_pending`` for
        #: admission under the same (priority, seq_id) order.
        self._preempted: list[_SlotState] = []
        self._pending_scores: deque[tuple[int, ScoringRequest]] = deque()
        self._finished: dict[int, list[int] | SequenceScore | None] = {}
        self._next_id = 0
        #: Mid-prefill requests (chunked admission), parked contiguously
        #: at slots ``self._n_active ..`` — just past the decode fleet.
        self._prefilling: list[_SlotState] = []
        # Vectorised decode bookkeeping, maintained per occupied slot.
        self._eos = np.full(max_batch, -1, dtype=np.int64)
        self._budget = np.zeros(max_batch, dtype=np.int64)
        self._count = np.zeros(max_batch, dtype=np.int64)
        #: Active slots carrying a step_bias hook / a top_k sampler; the
        #: decode loop takes the pure-vectorised path when both are zero.
        self._n_hooked = 0
        self._n_sampled = 0
        #: Monotonic count of decode tokens produced by retired
        #: generation sequences — the observable the resume-determinism
        #: tests pin ("a journaled-DONE pair is never re-decoded").
        self.total_generated_tokens = 0
        #: Monotonic count of *prompt* tokens fed through a prefill
        #: forward.  A preempted-and-resumed sequence re-feeds only its
        #: last produced token (never a prompt position), so this stays
        #: at Σ len(prompt) however often sequences are preempted — the
        #: observable the zero-re-prefill tests pin.
        self.total_prompt_tokens_prefilled = 0
        # Preemption observability (exported under kv_stats()["preemption"]).
        self.preemptions = 0
        self.resumes = 0
        self.preempted_resident_tokens = 0
        self.stream_disconnects = 0

    # -- request intake ----------------------------------------------------------
    def _validate(self, request: GenerationRequest) -> None:
        if not request.prompt_ids:
            raise GenerationError("prompt must contain at least one token")
        vocab = self.model.config.vocab_size
        if request.logit_bias is not None and request.logit_bias.shape != (vocab,):
            raise GenerationError(f"logit_bias must have shape ({vocab},)")
        if request.top_k is not None:
            if request.top_k < 1:
                raise GenerationError(f"top_k must be >= 1, got {request.top_k}")
            if request.rng is None:
                raise GenerationError("top_k sampling requires an rng")

    def submit(self, request: GenerationRequest) -> int:
        """Enqueue one request; returns its sequence id.

        The request is admitted into a KV slot by a later :meth:`step` —
        immediately if a slot is free, otherwise as soon as one retires.
        """
        self._validate(request)
        seq_id = self._next_id
        self._next_id += 1
        heapq.heappush(self._pending, (request.priority, seq_id, request))
        return seq_id

    def _validate_score(self, request: ScoringRequest) -> None:
        if not request.prompt_ids:
            raise GenerationError("scoring needs a non-empty prompt")
        if not request.completion_ids:
            raise GenerationError("scoring needs a non-empty completion")
        total = len(request.prompt_ids) + len(request.completion_ids)
        if total > self.model.config.max_seq_len:
            raise GenerationError(
                f"sequence length {total} exceeds context "
                f"{self.model.config.max_seq_len}"
            )

    def submit_score(self, request: ScoringRequest) -> int:
        """Enqueue one teacher-forced scoring job; returns its sequence id.

        Scoring jobs share the engine's sequence-id space and streaming
        ``step``/``collect`` loop with generation requests, but occupy no
        KV slot and reserve no pages: each job is one cache-free forward
        at the lone-sequence shape (see :meth:`_score_admit`), so mixing
        score traffic into a decode fleet can never change a generated
        token.  :meth:`collect` yields the job's
        :class:`SequenceScore` in place of a token list.
        """
        self._validate_score(request)
        seq_id = self._next_id
        self._next_id += 1
        self._pending_scores.append((seq_id, request))
        return seq_id

    def cancel(self, seq_id: int) -> bool:
        """Abandon one submitted sequence; returns True when it was live.

        The sequence finishes immediately with whatever tokens it has
        produced so far — an empty list while still queued or mid-prefill,
        a prefix of the full decode once active — and its slot (queue
        entry, parked partial slab, or KV slot) is reclaimed.  Unknown or
        already-finished ids return False and change nothing.
        """
        if seq_id in self._finished:
            return False
        for i, (_pri, sid, _request) in enumerate(self._pending):
            if sid == seq_id:
                self._pending[i] = self._pending[-1]
                self._pending.pop()
                heapq.heapify(self._pending)
                self._finished[seq_id] = []
                return True
        for i, state in enumerate(self._preempted):
            if state.seq_id == seq_id:
                # A preempted sequence finishes with its tokens so far (a
                # prefix of the full decode); its suspended KV — detached
                # pages plus the kept share of its reservation — returns
                # to the pool immediately.
                del self._preempted[i]
                self._release_suspended(state)
                self._finished[seq_id] = list(state.produced)
                self.total_generated_tokens += len(state.produced)
                return True
        for i, (sid, _request) in enumerate(self._pending_scores):
            if sid == seq_id:
                # A cancelled scoring job yields no score at all (``None``)
                # — the scoring analogue of a queued generation's ``[]``.
                del self._pending_scores[i]
                self._finished[seq_id] = None
                return True
        for i, state in enumerate(self._prefilling):
            if state.seq_id == seq_id:
                # Close the gap so the parked block stays contiguous:
                # every later parked row shifts down by one.  The
                # cancelled row's pages (and its reserved quota) return
                # to the pool first — recycling is immediate, not
                # deferred to a later compaction.
                base = self._n_active
                self._caches.release(base + i)
                self._caches.unreserve(state.page_quota)
                for j in range(i + 1, len(self._prefilling)):
                    self._caches.move_prefix(
                        base + j, base + j - 1, self._prefilling[j].prefilled
                    )
                del self._prefilling[i]
                self._finished[seq_id] = []
                return True
        for slot in range(self._n_active):
            if self._slots[slot].seq_id == seq_id:
                old_base = self._n_active
                self._retire(slot)
                self._shift_parked(old_base)
                return True
        return False

    # -- preemption --------------------------------------------------------------
    def preempt(self, seq_id: int) -> bool:
        """Evict one *active* decode; it resumes later with identical tokens.

        The sequence's resident KV is detached — an O(1) block-table
        detach on the paged pool (pages stay allocated; the worst-case
        *unwritten* remainder of its reservation returns to the pool so
        a blocked arrival can use it), a copy-out on dense slabs — and
        its slot is compacted away for other work.  Resumption re-admits
        the sequence through the parked-prefill fleet with ``prefilled``
        pointing at its resident KV: only the last produced token is
        re-fed (the interrupted decode step), never a prompt token, so
        the preempted-and-resumed token stream is exactly the sequential
        one.  Returns ``False`` for ids that are not active decodes
        (queued, parked mid-prefill, already preempted, or finished).
        """
        for slot in range(self._n_active):
            if self._slots[slot].seq_id == seq_id:
                break
        else:
            return False
        state = self._slots[slot]
        caches = self._caches
        resident = int(caches.lengths[slot])
        if resident != len(state.request.prompt_ids) + len(state.produced) - 1:
            raise GenerationError(
                f"seq {seq_id}: resident KV {resident} disagrees with "
                "prompt + produced - 1 — engine accounting bug"
            )
        if isinstance(caches, PagedKVCaches):
            table = caches.detach_table(slot)
            total = caches.pages_for(len(state.request.prompt_ids) + state.budget)
            freeable = total - len(table)
            caches.unreserve(freeable)
            state.page_quota -= freeable
            state.suspend_reserve = freeable
            state.detached = ("paged", table)
        else:
            state.detached = ("dense", caches.detach_slot(slot))
            state.suspend_reserve = 0
        state.resume_ids = list(state.request.prompt_ids) + state.produced
        state.prefilled = resident
        if state.request.step_bias is not None:
            self._n_hooked -= 1
        if state.request.top_k is not None:
            self._n_sampled -= 1
        # Compact the fleet exactly like _retire, minus the finish: the
        # evicted slot's KV is already detached (paged: empty table, so
        # move()'s release(dst) is a no-op; dense: copied out above).
        old_base = self._n_active
        tail = self._n_active - 1
        if slot != tail:
            caches.move(tail, slot)
            self._bias[slot] = self._bias[tail]
            self._eos[slot] = self._eos[tail]
            self._budget[slot] = self._budget[tail]
            self._count[slot] = self._count[tail]
            self._slots[slot] = self._slots[tail]
        self._slots[tail] = None
        self._n_active -= 1
        self._shift_parked(old_base)
        self._preempted.append(state)
        self.preemptions += 1
        self.preempted_resident_tokens += resident
        return True

    def preempt_victim(self, than_priority: int) -> int | None:
        """Preempt the lowest-priority active decode *strictly* below
        ``than_priority`` (numerically greater); returns its seq id.

        The pressure valve the scheduler and the engine's own admission
        path use: equal priorities never preempt each other, so
        preemption only ever flows from a more urgent class to a less
        urgent one and cannot thrash.  ``None`` when no eligible victim
        exists (or preemption is disabled).
        """
        if not self.preemption:
            return None
        victim: _SlotState | None = None
        for slot in range(self._n_active):
            state = self._slots[slot]
            if state.request.priority > than_priority and (
                victim is None or state.sort_key > victim.sort_key
            ):
                victim = state
        if victim is None:
            return None
        self.preempt(victim.seq_id)
        return victim.seq_id

    def note_stream_disconnect(self) -> None:
        """Count one mid-stream client disconnect (serving observability)."""
        self.stream_disconnects += 1

    def produced_so_far(self, seq_id: int) -> list[int] | None:
        """Snapshot of a live sequence's tokens so far (streaming reads).

        Covers active, preempted and parked sequences; ``None`` for
        queued, finished or unknown ids.  Must be called from the
        engine-driving thread (between steps), like every other method.
        """
        for slot in range(self._n_active):
            state = self._slots[slot]
            if state is not None and state.seq_id == seq_id:
                return list(state.produced)
        for state in self._preempted:
            if state.seq_id == seq_id:
                return list(state.produced)
        for state in self._prefilling:
            if state.seq_id == seq_id:
                return list(state.produced)
        return None

    def _release_suspended(self, state: _SlotState) -> None:
        """Return a suspended sequence's KV + reservation to the pool."""
        if state.detached is not None and state.detached[0] == "paged":
            self._caches.drop_table(state.detached[1])
        state.detached = None
        if state.page_quota:
            self._caches.unreserve(state.page_quota)
            state.page_quota = 0
        state.suspend_reserve = 0

    def _demote_one_preempted(self) -> bool:
        """Liveness valve: demote one suspended sequence to cold re-prefill.

        With an undersized pool, the kept reservations of several
        suspended sequences can wedge admission (nothing fits while
        every suspended page stays covered).  Dropping the
        lowest-priority suspended sequence's pages and reservation
        frees real headroom; the sequence later re-prefills its prompt
        *plus its produced tokens* — teacher-forcing its own prefix —
        so its token stream is still exactly the sequential one, at the
        cost of recompute.  Never triggers while normal resume can make
        progress; returns ``False`` when nothing is demotable.
        """
        victim: _SlotState | None = None
        for state in self._preempted:
            if state.detached is not None and state.detached[0] == "paged" and (
                victim is None or state.sort_key > victim.sort_key
            ):
                victim = state
        if victim is None:
            return False
        self._release_suspended(victim)
        victim.prefilled = 0
        return True

    def _admit_resume(self, state: _SlotState) -> bool:
        """Re-reserve a preempted sequence's worst-case remainder.

        Warm resumes re-reserve only the remainder their preemption
        released; cold (demoted) resumes reserve the full quota afresh.
        When the pool cannot cover it, a strictly-lower-priority active
        decode is preempted to make room; with no victim left the
        resume stays blocked (``False``) until retirements free pages.
        """
        caches = self._caches
        if state.detached is None and state.prefilled == 0 and state.page_quota == 0:
            need = caches.pages_for(len(state.request.prompt_ids) + state.budget)
        else:
            need = state.suspend_reserve
        while not caches.try_reserve(need):
            if self.preempt_victim(state.request.priority) is None:
                return False
        state.page_quota += need
        state.suspend_reserve = 0
        self.resumes += 1
        return True

    @property
    def n_active(self) -> int:
        """Sequences currently decoding in KV slots."""
        return self._n_active

    @property
    def n_prefilling(self) -> int:
        """Sequences mid-way through chunked prompt prefill."""
        return len(self._prefilling)

    @property
    def n_pending(self) -> int:
        """Submitted sequences not yet admitted into a slot."""
        return len(self._pending)

    @property
    def n_pending_scores(self) -> int:
        """Scoring jobs waiting for a step's score phase."""
        return len(self._pending_scores)

    @property
    def free_capacity(self) -> int:
        """Slots the engine can absorb before submissions queue behind others."""
        return (
            self.max_batch
            - self._n_active
            - self.n_prefilling
            - len(self._pending)
        )

    @property
    def n_preempted(self) -> int:
        """Preempted sequences waiting to resume."""
        return len(self._preempted)

    @property
    def has_work(self) -> bool:
        return (
            bool(self._pending)
            or bool(self._pending_scores)
            or self._n_active > 0
            or bool(self._prefilling)
            or bool(self._preempted)
        )

    def kv_stats(self) -> dict:
        """Occupancy and KV-memory counters (the ``/metrics`` payload).

        Always includes the fleet occupancy; once the caches exist the
        backend's residency counters are merged in — for a paged pool
        that is the ``free_pages`` headroom operators watch to see
        admission pressure building before requests start queueing (and
        the server's bounded queue starts returning 429s).
        """
        stats: dict = {
            "max_batch": self.max_batch,
            "n_active": self._n_active,
            "n_prefilling": len(self._prefilling),
            "n_pending": len(self._pending),
            "n_pending_scores": len(self._pending_scores),
            "n_preempted": len(self._preempted),
            "free_slots": max(self.free_capacity, 0),
            "preemption": {
                "preemptions": self.preemptions,
                "resumes": self.resumes,
                "preempted_resident_tokens": self.preempted_resident_tokens,
                "stream_disconnects": self.stream_disconnects,
            },
        }
        caches = self._caches
        if caches is None:
            stats.update(
                paged=self.kv_page_tokens is not None,
                kv_page_tokens=self.kv_page_tokens,
                resident_kv_bytes=0,
            )
            if self.kv_page_tokens is not None:
                total = self.kv_pool_pages or self.max_batch * -(
                    -self.model.config.max_seq_len // self.kv_page_tokens
                )
                stats.update(
                    total_pages=total, free_pages=total, reserved_pages=0,
                    pages_in_use=0,
                )
        else:
            stats.update(caches.stats())
        return stats

    def clear_prefix_cache(self) -> int:
        """Drop every cached (unreferenced) prefix page; returns pages freed.

        Live slots keep their borrowed pages until they retire.  No-op
        on dense slabs, on a paged pool without the prefix cache, and
        before the caches are first allocated.
        """
        if self._caches is None:
            return 0
        return self._caches.clear_prefix_cache()

    # -- slot bookkeeping --------------------------------------------------------
    def _ensure_state(self) -> None:
        if self._caches is None:
            if self.kv_page_tokens is not None:
                self._caches = PagedKVCaches(
                    self.model, self.max_batch, self.kv_page_tokens,
                    self.kv_pool_pages,
                    prefix_cache=self.kv_prefix_cache,
                )
            else:
                self._caches = SlotKVCaches(self.model, self.max_batch)
            self._bias = np.zeros(
                (self.max_batch, self.model.config.vocab_size), dtype=np.float32
            )

    def _install(self, slot: int, state: _SlotState) -> None:
        """Occupy ``slot`` with a fully prefilled sequence."""
        request = state.request
        # The whole prompt is resident in the slot's cache now: offer its
        # full pages to the prefix index for reuse (no-op unless the
        # paged pool runs with the prefix cache enabled).
        self._caches.register_prefix(slot, request.prompt_ids)
        self._slots[slot] = state
        self._bias[slot] = (
            request.logit_bias if request.logit_bias is not None else 0.0
        )
        self._eos[slot] = -1 if request.eos_id is None else request.eos_id
        self._budget[slot] = state.budget
        self._count[slot] = 0
        if request.step_bias is not None:
            self._n_hooked += 1
        if request.top_k is not None:
            self._n_sampled += 1

    def _retire(self, slot: int) -> None:
        """Finish ``slot``'s sequence and compact the fleet (swap-with-last)."""
        state = self._slots[slot]
        self._finished[state.seq_id] = state.produced
        self.total_generated_tokens += len(state.produced)
        if state.request.step_bias is not None:
            self._n_hooked -= 1
        if state.request.top_k is not None:
            self._n_sampled -= 1
        caches = self._caches
        # Paged pool: the retiring sequence's pages and reserved quota go
        # back to the shared free list before compaction moves the tail's
        # block table over the freed slot.  (Dense slabs: both no-ops.)
        caches.release(slot)
        caches.unreserve(state.page_quota)
        tail = self._n_active - 1
        if slot != tail:
            caches.move(tail, slot)
            self._bias[slot] = self._bias[tail]
            self._eos[slot] = self._eos[tail]
            self._budget[slot] = self._budget[tail]
            self._count[slot] = self._count[tail]
            self._slots[slot] = self._slots[tail]
        self._slots[tail] = None
        self._n_active -= 1

    def _choose_token(self, request: GenerationRequest, logits_row: np.ndarray) -> int:
        if request.top_k is not None:
            return _sample_top_k(logits_row, request.top_k, request.rng)
        return int(logits_row.argmax())

    def _first_token(self, state: _SlotState, logits_row: np.ndarray, slot: int) -> bool:
        """Apply biases, select, record; return True when finished."""
        request = state.request
        step = logits_row
        if request.logit_bias is not None or request.step_bias is not None:
            step = step + self._bias[slot]
            if request.step_bias is not None:
                request.step_bias(state.produced, step)
        token = self._choose_token(request, step)
        state.produced.append(token)
        self._count[slot] = len(state.produced)
        return (
            request.eos_id is not None and token == request.eos_id
        ) or len(state.produced) >= state.budget

    # -- prefill phase -----------------------------------------------------------
    def _pop_viable(self) -> _SlotState | None:
        """Pop the best admissible sequence: resume a preempted one or
        admit a fresh request, whichever has the smaller ``(priority,
        seq_id)`` key.

        With a paged KV pool, admission also reserves the request's
        worst-case page quota (``ceil((prompt + budget) / page)``): when
        the pool cannot cover it, a strictly-lower-priority active
        decode is preempted to make room (:meth:`preempt_victim`);
        failing that the candidate stays queued/suspended in priority
        order and ``None`` is returned — retirements will free pages
        and a later step admits it.  A lone sequence always fits
        (enforced at pool construction) and the cold-demotion valve in
        :meth:`step` bounds suspended reservations, so this can never
        deadlock.

        With the prefix cache on, fresh admission first consults the
        radix index (:meth:`PagedKVCaches.admit_shared`): a hit charges
        only the unshared suffix against the pool and returns the state
        pre-advanced to the first divergent token (``prefilled ==
        matched``) carrying the borrowed pages to attach at parking.
        """
        context = self.model.config.max_seq_len
        while True:
            resume_i: int | None = None
            for i, suspended in enumerate(self._preempted):
                if (
                    resume_i is None
                    or suspended.sort_key < self._preempted[resume_i].sort_key
                ):
                    resume_i = i
            head = self._pending[0] if self._pending else None
            if resume_i is not None and (
                head is None
                or self._preempted[resume_i].sort_key < (head[0], head[1])
            ):
                state = self._preempted[resume_i]
                if not self._admit_resume(state):
                    return None
                # preempt_victim inside _admit_resume only appends
                # strictly-worse entries, so the index stays valid.
                del self._preempted[resume_i]
                return state
            if head is None:
                return None
            _priority, seq_id, request = head
            budget = min(request.max_new_tokens, context - len(request.prompt_ids))
            if budget <= 0:
                heapq.heappop(self._pending)
                self._finished[seq_id] = []
                continue
            total = self._caches.pages_for(len(request.prompt_ids) + budget)
            admitted = self._caches.admit_shared(request.prompt_ids, total)
            while admitted is None:
                if self.preempt_victim(request.priority) is None:
                    return None
                admitted = self._caches.admit_shared(request.prompt_ids, total)
            quota, matched, pages = admitted
            heapq.heappop(self._pending)
            state = _SlotState(seq_id, request, budget, page_quota=quota)
            if matched:
                state.prefilled = matched
                state.shared_pages = pages
            return state

    def _park(self, state: _SlotState) -> None:
        """Park ``state`` just past the decode fleet (contiguous block).

        A shared-prefix admission attaches its borrowed pages as the
        parked slot's block-table prefix here; the row then advances
        only its unshared suffix through the ordinary chunk machinery.
        A warm preempted resume reattaches its detached resident KV the
        same way — the parked row then has exactly one token left to
        feed (the interrupted decode step), so nothing is re-prefilled.
        """
        slot = self._n_active + len(self._prefilling)
        self._prefilling.append(state)
        if state.shared_pages:
            self._caches.attach_prefix(slot, state.shared_pages, state.prefilled)
            state.shared_pages = []
        if state.detached is not None:
            kind, payload = state.detached
            if kind == "paged":
                self._caches.attach_table(slot, payload, state.prefilled)
            else:
                self._caches.restore_slot(slot, payload, state.prefilled)
            state.detached = None

    def _ragged_prefill(
        self, states: list[_SlotState], slots: list[int]
    ) -> np.ndarray:
        """One right-aligned ragged forward; returns ``(B, V)`` last-token logits.

        Writes each sequence's K/V into its slot slab and sets the slot
        lengths.  The projection GEMMs run fused over the whole padded
        batch; the attention core runs per row over each sequence's valid
        slice (see :meth:`SelfAttention._ragged_attention`), so pad
        columns never enter any float sum and score temporaries stay
        cache-resident.  Each row's last-token logits agree with a lone
        prefill of that prompt to within BLAS kernel-selection noise (an
        ulp or two — far inside greedy argmax margins), and the *first
        tokens* are pinned identical to the per-request path by the
        parity suite.
        """
        caches = self._caches
        prompts = [state.feed_ids for state in states]
        for state in states:
            self.total_prompt_tokens_prefilled += min(
                len(state.feed_ids), len(state.request.prompt_ids)
            )
        t_max = max(len(prompt) for prompt in prompts)
        n = len(prompts)
        idx = np.zeros((n, t_max), dtype=np.int64)
        pads = np.empty(n, dtype=np.int64)
        for row, prompt in enumerate(prompts):
            pads[row] = t_max - len(prompt)
            idx[row, pads[row]:] = prompt
        logits = self.model._forward_numpy(
            idx,
            caches.ragged_prefill_adapters(
                slots, pads, [len(prompt) for prompt in prompts]
            ),
            position_offset=-pads,
            pad_lens=pads,
            last_only=True,
        )[:, -1, :]
        for row, slot in enumerate(slots):
            caches.lengths[slot] = len(prompts[row])
        return logits

    def _batch_admit(self, states: list[_SlotState]) -> None:
        """Prefill ``states`` into fresh slots in one ragged pass.

        Sequences may finish instantly on their first token and retire
        within the call.  Callers guarantee no parked rows exist yet
        (fresh prefill lands at ``self._n_active``, where a parked block
        would sit).
        """
        slots = list(range(self._n_active, self._n_active + len(states)))
        logits = self._ragged_prefill(states, slots)
        finished: list[int] = []
        for row, (state, slot) in enumerate(zip(states, slots)):
            self._install(slot, state)
            self._n_active += 1
            if self._first_token(state, logits[row], slot):
                finished.append(slot)
        for slot in reversed(finished):
            self._retire(slot)

    def _plan_chunks(self, chunk: int) -> list[tuple[_SlotState, int]]:
        """Park new arrivals and plan every parked prompt's next advance.

        Returns ``(state, end)`` per parked row: the row advances its
        prompt to ``end`` this step.  With in-flight decodes each
        advance is bounded by one ``chunk``; an idle fleet has nothing
        to stall, so every remainder finishes whole.
        """
        limit = min(self.prefill_concurrency, self.max_batch - self._n_active)
        while len(self._prefilling) < limit:
            state = self._pop_viable()
            if state is None:
                break
            self._park(state)
        parked = self._prefilling
        if not parked:
            return []
        if self._n_active == 0:
            ends = [len(state.feed_ids) for state in parked]
        else:
            ends = [
                min(state.prefilled + chunk, len(state.feed_ids))
                for state in parked
            ]
        return list(zip(parked, ends))

    def _chunk_admit(self, plan: list[tuple[_SlotState, int]]) -> list[_SlotState]:
        """Advance the parked fleet in a dedicated ragged chunk forward.

        The split-schedule (``unified_step=False``) late-join path: each
        step costs the in-flight decode slots one ragged chunk forward —
        bounded by ``chunk`` query tokens per row — *plus* the decode
        forward.  When every row's advance is a single token (the shape
        of a decode row), no forward runs here at all: the parked states
        are returned for :meth:`step` to fold into the decode forward as
        extra rows.
        """
        parked = self._prefilling
        if all(end - state.prefilled == 1 for state, end in plan):
            return list(parked)
        starts = np.asarray(
            [state.prefilled for state in parked], dtype=np.int64
        )
        key_lens = np.asarray([end for _, end in plan], dtype=np.int64)
        widths = key_lens - starts
        pads = int(widths.max()) - widths
        n = len(parked)
        idx = np.zeros((n, int(widths.max())), dtype=np.int64)
        for row, (state, end) in enumerate(plan):
            idx[row, pads[row]:] = state.feed_ids[starts[row]:end]
            self.total_prompt_tokens_prefilled += max(
                0, min(end, len(state.request.prompt_ids)) - int(starts[row])
            )
        logits = self.model._forward_numpy(
            idx,
            self._caches.ragged_chunk_adapters(
                self._n_active, starts, key_lens, pads
            ),
            position_offset=starts - pads,
            pad_lens=pads,
            key_lens=key_lens,
            last_only=True,
        )[:, -1, :]
        for state, end in plan:
            state.prefilled = end
        self._promote_parked(list(logits))
        return []

    def _promote_parked(self, logits_rows: list[np.ndarray]) -> None:
        """Move fully prefilled parked prompts into the decode fleet.

        ``logits_rows`` align with ``self._prefilling`` and carry each
        row's last-token logits from the forward that just advanced it.
        Completed rows must become the next contiguous decode slots, so
        when they finished out of park order the slab block is permuted
        completed-first; instant first-token finishes retire immediately
        (shifting the still-parked rows down over the freed slots).
        """
        parked = self._prefilling
        completed = [
            i for i, state in enumerate(parked)
            if state.prefilled == len(state.feed_ids)
        ]
        if not completed:
            return
        remaining = [
            i for i, state in enumerate(parked)
            if state.prefilled < len(state.feed_ids)
        ]
        base = self._n_active
        order = completed + remaining
        if order != list(range(len(parked))):
            self._caches.permute_prefixes(
                base, order, [parked[i].prefilled for i in order]
            )
        finished_slots: list[int] = []
        for j, i in enumerate(completed):
            state = parked[i]
            slot = base + j
            self._caches.lengths[slot] = state.prefilled
            self._install(slot, state)
            self._n_active += 1
            if self._first_token(state, logits_rows[i], slot):
                finished_slots.append(slot)
        self._prefilling = [parked[i] for i in remaining]
        if finished_slots:
            parked_base = self._n_active
            for slot in reversed(finished_slots):
                self._retire(slot)
            self._shift_parked(parked_base)

    def _shift_parked(self, old_base: int) -> None:
        """Shift the parked partial slabs down to follow a shrunk fleet."""
        if old_base == self._n_active:
            return
        for i, state in enumerate(self._prefilling):
            self._caches.move_prefix(
                old_base + i, self._n_active + i, state.prefilled
            )

    def _admit(self) -> list[tuple[_SlotState, int]]:
        """Prefill phase: move pending work into KV slots.

        Without chunking — or with an idle fleet, where there is nothing
        to stall — all free slots are filled by ragged batched prefill;
        with chunking and in-flight decodes, every parked prompt (up to
        ``prefill_concurrency``) advances at most one chunk per step.
        Returns the parked plan — ``(state, end)`` advances for
        :meth:`step` to ride in the unified forward.  In split-schedule
        mode chunk advances wider than one token instead run in their
        own forward here, and only single-token advances are returned
        (to fold into the decode forward).
        """
        chunk = self.prefill_chunk_tokens
        if chunk is not None and (self._n_active > 0 or self._prefilling):
            plan = self._plan_chunks(chunk)
            if not plan:
                return []
            if self.unified_step:
                return plan
            return [
                (state, state.prefilled + 1)
                for state in self._chunk_admit(plan)
            ]
        # Whole-prompt admission (unchunked, or chunked with an idle
        # fleet).  Fresh prompts batch into one ragged prefill; shared-
        # prefix admissions instead *park* past the decode fleet and
        # advance only their unshared suffix through the step's packed
        # forward.  Once any row is parked, later arrivals this pass park
        # too: a ragged prefill would land on the parked block's slots.
        shared: list[_SlotState] = []
        progress = True
        while progress:
            progress = False
            states: list[_SlotState] = []
            while (self._pending or self._preempted) and (
                self._n_active + len(self._prefilling)
                + len(shared) + len(states)
                < self.max_batch
            ):
                state = self._pop_viable()
                if state is None:
                    break
                if self._prefilling or state.prefilled or state.resume_ids is not None:
                    shared.append(state)
                else:
                    states.append(state)
            if states:
                self._batch_admit(states)
                progress = True
        for state in shared:
            self._park(state)
        if self._prefilling:
            return [
                (state, len(state.feed_ids))
                for state in self._prefilling
            ]
        return []

    def _unified_forward(
        self, plan: list[tuple[_SlotState, int]], n_active: int
    ) -> np.ndarray:
        """One packed mixed-length varlen forward over decode AND chunk rows.

        Row ``b < n_active`` contributes one query token (its last
        produced) at depth ``lengths[b]``; row ``n_active + i`` is a
        parked chunk advancing ``[prefilled, end)``.  All real tokens are
        concatenated on one packed axis (``pack_spans``) — no pad
        position ever enters a projection GEMM — and each row attends
        over its whole written prefix through the cache's slab views or
        block-table gathers.  Returns the ``(n_rows, V)`` last-token
        logits; slot lengths and parked progress are advanced in place.
        """
        caches, slots = self._caches, self._slots
        n_rows = n_active + len(plan)
        starts = np.empty(n_rows, dtype=np.int64)
        ends = np.empty(n_rows, dtype=np.int64)
        starts[:n_active] = caches.lengths[:n_active]
        ends[:n_active] = starts[:n_active] + 1
        for i, (state, end) in enumerate(plan):
            starts[n_active + i] = state.prefilled
            ends[n_active + i] = end
        spans = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(ends - starts, out=spans[1:])
        total = int(spans[-1])
        idx = np.empty((1, total), dtype=np.int64)
        positions = np.empty((1, total), dtype=np.int64)
        for b in range(n_active):
            idx[0, spans[b]] = slots[b].produced[-1]
            positions[0, spans[b]] = starts[b]
        for i, (state, end) in enumerate(plan):
            row = n_active + i
            s, e = int(spans[row]), int(spans[row + 1])
            idx[0, s:e] = state.feed_ids[starts[row]:end]
            positions[0, s:e] = np.arange(starts[row], end)
            self.total_prompt_tokens_prefilled += max(
                0, min(end, len(state.request.prompt_ids)) - int(starts[row])
            )
        key_mask = None
        if n_active:
            # The decode rows run as one fused masked sub-attention, so
            # they need the fused path's additive key mask over their
            # stacked view (column `starts[b]` is row b's new token).
            view_ones = int(ends[:n_active].max())
            key_mask = np.where(
                np.arange(view_ones)[None, :] <= starts[:n_active, None],
                np.float32(0.0),
                _NEG_INF,
            )[:, None, None, :]
        logits = self.model._forward_numpy(
            idx,
            caches.packed_adapters(starts, ends, spans, n_active),
            token_positions=positions,
            key_mask=key_mask,
            pack_spans=spans,
            last_only=True,
        )[0]
        caches.lengths[:n_active] += 1
        for state, end in plan:
            state.prefilled = end
        return logits

    def _fused_forward(
        self, plan: list[tuple[_SlotState, int]], n_active: int
    ) -> np.ndarray:
        """One fused decode forward; single-token chunk rows ride along.

        Every row feeds exactly one token, so the whole batch shares one
        ``(B, H, 1, Tk)`` attention with an additive key mask over the
        ragged cache lengths — a chunk row feeding its next prompt token
        at depth ``prefilled`` is shape-identical to a decode row feeding
        its last produced token at depth ``lengths[b]``.
        """
        caches, slots = self._caches, self._slots
        n_rows = n_active + len(plan)
        last = np.empty((n_rows, 1), dtype=np.int64)
        for b in range(n_active):
            last[b, 0] = slots[b].produced[-1]
        for i, (state, _end) in enumerate(plan):
            last[n_active + i, 0] = state.feed_ids[state.prefilled]
            caches.lengths[n_active + i] = state.prefilled
            if state.prefilled < len(state.request.prompt_ids):
                self.total_prompt_tokens_prefilled += 1
        lengths = caches.lengths[:n_rows]
        view_len = int(lengths.max()) + 1
        key_mask = np.where(
            np.arange(view_len)[None, :] <= lengths[:, None],
            np.float32(0.0),
            _NEG_INF,
        )[:, None, None, :]
        logits = self.model._forward_numpy(
            last,
            caches.step_adapters(n_rows, view_len),
            position_offset=lengths.copy(),
            key_mask=key_mask,
        )[:, -1, :]
        caches.lengths[:n_rows] += 1
        for state, _end in plan:
            state.prefilled += 1
        return logits

    # -- scoring phase -----------------------------------------------------------
    def _score_admit(self) -> None:
        """Run up to ``max_batch`` queued scoring jobs through the model.

        Each job is one cache-free forward at the lone-sequence ``(1, T)``
        shape via :meth:`TransformerLM.sequence_logprobs` — the
        bitwise-pinned sequential reference itself, because batched trunk
        GEMMs round differently from single-row GEMMs at the last ulp and
        a pinned *score* (unlike a greedy token) has no argmax margin to
        hide behind.  Batching therefore lives at this intake layer: a
        step scores at most ``max_batch`` jobs, so a scoring burst delays
        in-flight decodes by a bounded number of forwards per step, and
        score jobs touch no KV slot, no page, and no reservation — they
        cannot perturb the generation fleet they share the loop with.
        """
        for _ in range(min(self.max_batch, len(self._pending_scores))):
            seq_id, request = self._pending_scores.popleft()
            self._finished[seq_id] = SequenceScore(
                self.model.sequence_logprobs(
                    request.prompt_ids, request.completion_ids
                )
            )

    # -- streaming loop ----------------------------------------------------------
    def step(self) -> int:
        """Run one engine round: score, prefill, decode, retire.

        Returns the number of sequences that finished during this call
        (prefill-time instant finishes included); a no-op when idle.
        """
        if not self.has_work:
            return 0
        before = len(self._finished)
        if self._pending_scores:
            self._score_admit()
        if not (
            self._pending or self._preempted or self._n_active or self._prefilling
        ):
            # Pure scoring traffic: no KV state to allocate or advance.
            return len(self._finished) - before
        self._ensure_state()
        plan = self._admit()
        n_active = self._n_active
        n_rows = n_active + len(plan)
        if n_rows == 0:
            # Nothing admissible.  If suspended sequences exist, their
            # kept reservations may be what is wedging the pool (only
            # reachable with an undersized pool): demote the lowest-
            # priority one to a cold re-prefill and retry admission once
            # — repeated steps demote one at a time until something
            # fits, so the engine can never deadlock on its own state.
            if self._preempted and self._demote_one_preempted():
                plan = self._admit()
                n_active = self._n_active
                n_rows = n_active + len(plan)
            if n_rows == 0:
                return len(self._finished) - before

        # One model pass per step: when any parked advance is wider than
        # a single token the decode rows and the chunk rows share a
        # unified mixed-length ragged forward; otherwise every row is
        # one-token-shaped and the cheaper fused decode forward runs.
        caches, slots = self._caches, self._slots
        if any(end - state.prefilled > 1 for state, end in plan):
            logits = self._unified_forward(plan, n_active)
        else:
            logits = self._fused_forward(plan, n_active)

        step = logits[:n_active] + self._bias[:n_active]
        sampled: list[int] = []
        if self._n_hooked or self._n_sampled:
            # Per-row handling only for slots that need it: dynamic bias
            # hooks mutate their row in place before selection; sampled
            # rows are collected for the batched top-k pass below.
            for b in range(n_active):
                request = slots[b].request
                if request.step_bias is not None:
                    request.step_bias(slots[b].produced, step[b])
                if request.top_k is not None:
                    sampled.append(b)
        tokens = step.argmax(axis=-1)
        for b in sampled:
            # The exact sampler of TransformerLM.generate, fed from the
            # request's private rng stream: draw-for-draw parity with the
            # sequential path holds by construction, whatever the batch.
            request = slots[b].request
            tokens[b] = _sample_top_k(step[b], request.top_k, request.rng)
        for b in range(n_active):
            slots[b].produced.append(int(tokens[b]))
        self._count[:n_active] += 1
        finished_mask = (tokens == self._eos[:n_active]) | (
            self._count[:n_active] >= self._budget[:n_active]
        )
        retired = np.flatnonzero(finished_mask).tolist()
        for b in reversed(retired):
            self._retire(b)
        if retired:
            # The mid-prefill sequences stay parked just past the fleet:
            # shift their partial KV down over the rows compaction freed —
            # one prefix copy (dense) or table move (paged) per parked
            # row, however many slots retired (n_active was the parked
            # base before the retire loop).
            self._shift_parked(n_active)
        if plan:
            # Parked rows that consumed their last prompt token join the
            # fleet now, selecting their first tokens from this forward's
            # logits (identical rows to a dedicated chunk forward's).
            self._promote_parked(
                [logits[n_active + i] for i in range(len(plan))]
            )
        if retired and self.prefill_chunk_tokens is None:
            # Refill freed slots within the same step (the scheduler's
            # late-join contract): pending work is prefilled now and
            # decodes from the very next step.  With chunking enabled the
            # refill waits for the next step's prefill phase instead — a
            # second _admit here would advance the parked prompt a second
            # chunk and break the one-chunk-per-step stall bound.
            self._admit()
        return len(self._finished) - before

    def collect(self) -> dict[int, list[int] | SequenceScore | None]:
        """Pop every finished result keyed by sequence id.

        Generation requests yield their produced token list; scoring
        jobs yield a :class:`SequenceScore` (or ``None`` when cancelled
        before their score phase ran).
        """
        finished = self._finished
        self._finished = {}
        return finished

    # -- run to completion -------------------------------------------------------
    def generate(self, requests: list[GenerationRequest]) -> list[list[int]]:
        # Validate the whole list before enqueuing anything, so a bad
        # request cannot strand its predecessors in the pending queue.
        for request in requests:
            self._validate(request)
        ids = [self.submit(request) for request in requests]
        remaining = set(ids)
        while remaining - self._finished.keys():
            if self.step() == 0 and not self.has_work:
                raise GenerationError(
                    "engine drained without finishing all requests "
                    "(collect() called concurrently?)"
                )
        return [self._finished.pop(seq_id) for seq_id in ids]

    def score(self, requests: list[ScoringRequest]) -> list[SequenceScore]:
        """Teacher-force score every request and return results in order.

        The run-to-completion analogue of :meth:`generate` for scoring
        traffic: validates the whole list up front, enqueues everything,
        and drives :meth:`step` until every job has a
        :class:`SequenceScore`.  Safe to interleave with in-flight
        generation work — score jobs ride the same step loop without
        touching KV state.
        """
        for request in requests:
            self._validate_score(request)
        ids = [self.submit_score(request) for request in requests]
        remaining = set(ids)
        while remaining - self._finished.keys():
            if self.step() == 0 and not self.has_work:
                raise GenerationError(
                    "engine drained without finishing all scoring requests "
                    "(collect() called concurrently?)"
                )
        return [self._finished.pop(seq_id) for seq_id in ids]
