"""Batched decoding engine over :class:`TransformerLM`.

Inference engine
----------------

The sequential path (:meth:`TransformerLM.generate`) spends one full
forward pass per token per sequence; on the numpy backend every decode
step is a handful of tiny GEMMs whose cost is dominated by per-call
overhead.  This module amortises that overhead across a *fleet* of
sequences — the shape of both heavy stages of the pipeline (Eq. (2)
dataset revision over the whole ALPACA52K simulacrum, and Table IX test
set response generation).

Engine phases
~~~~~~~~~~~~~

Every request moves through three phases; each :meth:`BatchedEngine.step`
runs them in order:

1. **Prefill** — pending prompts are admitted into free KV slots.  Up to
   ``max_batch`` ragged prompts are prefilled in **one** forward pass:
   prompts are *right-aligned* into a padded ``(B, T_max)`` batch, each
   row carries a negative ``position_offset`` so its real tokens sit on
   positions ``0..len-1``, and the attention core runs per row over each
   sequence's valid slice, so pad columns never enter any float sum and
   score temporaries stay cache-resident while the projection GEMMs
   around them stay batched.  Last-token logits agree with
   prefilling each prompt alone to within BLAS kernel-selection noise —
   an ulp or two, orders of magnitude inside greedy argmax margins — and
   the resulting *first tokens* are pinned bitwise-identical to the
   per-request path by the parity suite.  With ``prefill_chunk_tokens``
   set and a fleet already decoding, admission is *chunked* instead: one
   prompt advances by at most one fixed-size chunk per step, so a
   late-arriving long prompt delays in-flight decode slots by a bounded
   chunk forward rather than a whole prompt-length forward (the serving
   path's latency lever).
2. **Decode** — all active sequences advance one token per forward pass
   through shared pre-allocated slot KV caches (:class:`SlotKVCaches`);
   attention over ragged cache lengths uses an additive key mask.  Token
   selection is vectorised: one batched ``argmax`` plus vectorised
   EOS/budget masks, with per-row handling only for slots carrying a
   ``step_bias`` hook or a ``top_k`` sampler.
3. **Retire/refill** — a sequence that hits EOS (or its token budget)
   retires immediately; its slot is compacted away (swap-with-last) and
   refilled from the pending queue at the next step's prefill phase, so
   stragglers never pay for dead slots (continuous batching).

* **Streaming intake.**  The same machinery is exposed incrementally —
  ``submit()`` enqueues a request at any time, ``step()`` advances the
  fleet one token, ``collect()`` drains finished results — so callers
  serving requests that arrive over time (:mod:`repro.serving`) can slip
  new work into retiring slots mid-flight; ``generate()`` is the
  run-to-completion loop layered on top.
* **Per-sequence logit bias.**  Each request carries an optional static
  ``(V,)`` bias — together they form the batch's ``(B, V)`` bias matrix —
  plus an optional per-step hook for dynamic biases
  (:class:`InductionCopyBias` implements CoachLM's copy-assist with a
  prompt index precomputed once instead of an O(prompt) scan per step).
* **In-engine sampling.**  Decoding is greedy by default (the paper sets
  beam size to one for all models); a request may instead carry
  ``top_k`` plus its own seeded rng stream, reproducing
  :meth:`TransformerLM.generate`'s top-k sampling inside the batch — a
  request's draws depend only on its own rng, never on its batch-mates.

Batched decode GEMMs round differently from single-row GEMMs at the last
ulp, so decode logits are not bit-identical across batch sizes — but
greedy argmax margins are many orders of magnitude wider, and the test
suite pins token-for-token parity with the sequential path on every edge
case (ragged prompts, EOS at different steps, prompt-too-long,
per-sequence biases, chunked vs unchunked prefill, seeded top-k).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import DEFAULT_GEN_BATCH_SIZE
from ..errors import GenerationError
from .transformer import TransformerLM, _sample_top_k

#: Additive mask value for invalid key slots (matches the causal mask).
_NEG_INF = np.float32(-1e9)


@dataclass
class GenerationRequest:
    """One sequence to decode: prompt, budget and per-sequence biases.

    ``logit_bias`` is a static ``(V,)`` array added to every step's
    logits; it is normalised to float32 (the model's compute dtype) so
    every step — including the first — applies the identical bias.
    ``step_bias`` is called as ``step_bias(produced, logits_row)``
    before each argmax and may add dynamic bias in place (it sees the
    tokens produced *so far*, i.e. it is a no-op opportunity on the first
    token when ``produced`` is empty).

    ``top_k`` switches the request from greedy argmax to top-k sampling
    drawn from ``rng`` — the request's private generator stream, so its
    tokens match :meth:`TransformerLM.generate` under the same seed
    regardless of how the batch around it is composed.
    """

    prompt_ids: list[int]
    max_new_tokens: int
    eos_id: int | None = None
    logit_bias: np.ndarray | None = None
    step_bias: Callable[[list[int], np.ndarray], None] | None = None
    top_k: int | None = None
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if self.logit_bias is not None and self.logit_bias.dtype != np.float32:
            self.logit_bias = self.logit_bias.astype(np.float32)


class InductionCopyBias:
    """Precomputed induction-head bias: suffix-match followers of a prompt.

    Reproduces :meth:`CoachLM._induction_followers` exactly — at each
    step the token following a prompt span that matches the last one or
    two produced tokens gets a logit bonus (bigram match earns
    ``strength``, unigram match half) — but from an index built once per
    prompt instead of an O(len(prompt)) Python scan per step.

    The index stores, per last-token, the unique unigram followers, and
    per (second, last) bigram, the bigram followers plus the unigram
    followers *not* covered by the bigram — so each follower receives a
    single add of exactly the strength the sequential scan would use
    (bigram ⊃ unigram positions, max semantics).
    """

    def __init__(
        self,
        prompt: list[int],
        strength: float,
        blocked: frozenset[int] = frozenset(),
    ):
        uni: dict[int, set[int]] = {}
        bi: dict[tuple[int, int], set[int]] = {}
        n = len(prompt)
        for i in range(n - 1):
            follower = prompt[i + 1]
            if follower in blocked:
                continue
            uni.setdefault(prompt[i], set()).add(follower)
            if i > 0:
                bi.setdefault((prompt[i - 1], prompt[i]), set()).add(follower)
        self._full = np.float32(strength * 1.0)
        self._half = np.float32(strength * 0.5)
        self._uni: dict[int, np.ndarray] = {
            tok: np.fromiter(sorted(fs), dtype=np.int64) for tok, fs in uni.items()
        }
        # Per bigram key: (full-strength followers, leftover half-strength).
        self._bi: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        for key, fs in bi.items():
            rest = uni.get(key[1], set()) - fs
            self._bi[key] = (
                np.fromiter(sorted(fs), dtype=np.int64),
                np.fromiter(sorted(rest), dtype=np.int64),
            )

    def __call__(self, produced: list[int], logits_row: np.ndarray) -> None:
        if not produced:
            return
        last = produced[-1]
        if len(produced) >= 2:
            hit = self._bi.get((produced[-2], last))
            if hit is not None:
                full, rest = hit
                logits_row[full] += self._full
                if rest.size:
                    logits_row[rest] += self._half
                return
        followers = self._uni.get(last)
        if followers is not None:
            logits_row[followers] += self._half


class SlotKVCaches:
    """Pre-allocated per-layer K/V slabs with per-slot lengths.

    Layout is ``(max_batch, n_heads, capacity, head_dim)`` per layer,
    left-aligned: slot ``b`` owns columns ``[0, lengths[b])``.  Unlike the
    legacy concat cache this never reallocates, and refilling a retired
    slot simply overwrites from column zero (stale columns beyond the new
    length are hidden by the key mask).
    """

    def __init__(self, model: TransformerLM, max_batch: int):
        cfg = model.config
        shape = (max_batch, cfg.n_heads, cfg.max_seq_len, cfg.head_dim)
        self.k = [np.zeros(shape, dtype=np.float32) for _ in model.blocks]
        self.v = [np.zeros(shape, dtype=np.float32) for _ in model.blocks]
        self.lengths = np.zeros(max_batch, dtype=np.int64)
        self.max_batch = max_batch

    def ragged_prefill_adapters(
        self, slots: list[int], pads: np.ndarray
    ) -> list["_RaggedPrefillSlots"]:
        return [
            _RaggedPrefillSlots(self, layer, slots, pads)
            for layer in range(len(self.k))
        ]

    def chunk_prefill_adapters(
        self, slot: int, start: int
    ) -> list["_ChunkPrefillSlot"]:
        return [
            _ChunkPrefillSlot(self, layer, slot, start)
            for layer in range(len(self.k))
        ]

    def step_adapters(self, n_active: int, view_len: int) -> list["_StepSlot"]:
        return [
            _StepSlot(self, layer, n_active, view_len)
            for layer in range(len(self.k))
        ]

    def move(self, src: int, dst: int) -> None:
        """Copy slot ``src`` over slot ``dst`` (batch compaction)."""
        for layer in range(len(self.k)):
            self.k[layer][dst] = self.k[layer][src]
            self.v[layer][dst] = self.v[layer][src]
        self.lengths[dst] = self.lengths[src]

    def move_prefix(self, src: int, dst: int, length: int) -> None:
        """Copy only columns ``[0, length)`` of slot ``src`` over ``dst``.

        Used to shift a partially prefilled (parked) slot, whose columns
        beyond ``length`` hold no data worth a full-capacity copy.
        """
        for layer in range(len(self.k)):
            self.k[layer][dst, :, :length] = self.k[layer][src, :, :length]
            self.v[layer][dst, :, :length] = self.v[layer][src, :, :length]


class _RaggedPrefillSlots:
    """Cache adapter for one ragged right-aligned prefill batch.

    Returns the fresh right-aligned K/V unchanged (attention sees exactly
    the batch it computed, with pads hidden by the key mask) while
    scattering each row's valid ``[pad:, :]`` suffix into its slot's
    left-aligned slab columns ``[0, len)`` for the decode phase.
    """

    __slots__ = ("caches", "layer", "slots", "pads")

    def __init__(
        self, caches: SlotKVCaches, layer: int, slots: list[int], pads: np.ndarray
    ):
        self.caches = caches
        self.layer = layer
        self.slots = slots
        self.pads = pads

    def update(self, k: np.ndarray, v: np.ndarray):
        t = k.shape[2]
        for row, slot in enumerate(self.slots):
            pad = int(self.pads[row])
            self.caches.k[self.layer][slot, :, : t - pad] = k[row, :, pad:]
            self.caches.v[self.layer][slot, :, : t - pad] = v[row, :, pad:]
        return k, v


class _ChunkPrefillSlot:
    """Cache adapter for one prompt chunk appended to a single slot.

    Writes the chunk's K/V into slab columns ``[start, start + t)`` and
    returns a view over the whole written prefix ``[0, start + t)`` —
    chunk queries attend over every key prefilled so far.
    """

    __slots__ = ("caches", "layer", "slot", "start")

    def __init__(self, caches: SlotKVCaches, layer: int, slot: int, start: int):
        self.caches = caches
        self.layer = layer
        self.slot = slot
        self.start = start

    def update(self, k: np.ndarray, v: np.ndarray):
        c = self.caches
        end = self.start + k.shape[2]
        c.k[self.layer][self.slot, :, self.start : end] = k[0]
        c.v[self.layer][self.slot, :, self.start : end] = v[0]
        return (
            c.k[self.layer][self.slot : self.slot + 1, :, :end],
            c.v[self.layer][self.slot : self.slot + 1, :, :end],
        )


class _StepSlot:
    """Cache adapter for one batched decode step over the active slots."""

    __slots__ = ("caches", "layer", "n_active", "view_len")

    def __init__(self, caches: SlotKVCaches, layer: int, n_active: int, view_len: int):
        self.caches = caches
        self.layer = layer
        self.n_active = n_active
        self.view_len = view_len

    def update(self, k: np.ndarray, v: np.ndarray):
        c = self.caches
        n = self.n_active
        rows = np.arange(n)
        write_at = c.lengths[:n]
        c.k[self.layer][rows, :, write_at] = k[:, :, 0, :]
        c.v[self.layer][rows, :, write_at] = v[:, :, 0, :]
        return (
            c.k[self.layer][:n, :, : self.view_len],
            c.v[self.layer][:n, :, : self.view_len],
        )


@dataclass
class _SlotState:
    """Decode-time state of one occupied slot."""

    seq_id: int                     #: engine-wide id assigned at submit()
    request: GenerationRequest
    budget: int
    produced: list[int] = field(default_factory=list)
    prefilled: int = 0              #: prompt tokens written (chunked admission)


class BatchedEngine:
    """Continuous-batching decoder over a :class:`TransformerLM`.

    See the module docstring for the architecture (the prefill → decode →
    retire/refill phase loop).  The engine can be driven two ways:

    * **Run to completion** — :meth:`generate` consumes a list of
      :class:`GenerationRequest` and returns the produced token lists in
      input order; results are token-for-token identical to calling
      :meth:`TransformerLM.generate` per request (greedy, or seeded
      top-k).
    * **Streaming** — :meth:`submit` enqueues one request and returns its
      sequence id, :meth:`step` advances the whole fleet one token
      (admitting pending requests into free slots first, so a request
      submitted mid-flight joins the batch as soon as a slot retires
      instead of waiting for the batch to drain), and :meth:`collect`
      pops finished ``{seq_id: tokens}`` results.  This is the substrate
      of the online revision service (:mod:`repro.serving`).

    ``prefill_chunk_tokens`` bounds how much prefill work a single
    :meth:`step` may do while other slots are decoding: a refill prompt
    advances by at most one chunk per step (one prompt at a time, parked
    one slot past the decode fleet), so in-flight decodes are never
    stalled behind a whole prompt-length forward.  When the fleet is idle
    there is nothing to stall and admission always uses the full ragged
    batched prefill.

    The slot KV slabs are allocated lazily on first use and reused across
    drains: a refilled slot overwrites from column zero and the key mask
    hides stale columns, so results never depend on slot history.  The
    engine is not thread-safe; a single driver (e.g. the serving worker
    thread) must own all ``submit``/``step``/``collect`` calls, and
    :meth:`generate` must not be interleaved with an external
    :meth:`collect`.
    """

    def __init__(
        self,
        model: TransformerLM,
        max_batch: int = DEFAULT_GEN_BATCH_SIZE,
        prefill_chunk_tokens: int | None = None,
    ):
        if max_batch < 1:
            raise GenerationError(f"max_batch must be >= 1, got {max_batch}")
        if prefill_chunk_tokens is not None and prefill_chunk_tokens < 1:
            raise GenerationError(
                f"prefill_chunk_tokens must be >= 1, got {prefill_chunk_tokens}"
            )
        self.model = model
        self.max_batch = max_batch
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self._caches: SlotKVCaches | None = None
        self._bias: np.ndarray | None = None
        self._slots: list[_SlotState | None] = [None] * max_batch
        self._n_active = 0
        self._pending: deque[tuple[int, GenerationRequest]] = deque()
        self._finished: dict[int, list[int]] = {}
        self._next_id = 0
        #: Mid-prefill request (chunked admission), parked at slot
        #: ``self._n_active`` — one past the decode fleet.
        self._prefilling: _SlotState | None = None
        # Vectorised decode bookkeeping, maintained per occupied slot.
        self._eos = np.full(max_batch, -1, dtype=np.int64)
        self._budget = np.zeros(max_batch, dtype=np.int64)
        self._count = np.zeros(max_batch, dtype=np.int64)
        #: Active slots carrying a step_bias hook / a top_k sampler; the
        #: decode loop takes the pure-vectorised path when both are zero.
        self._n_hooked = 0
        self._n_sampled = 0

    # -- request intake ----------------------------------------------------------
    def _validate(self, request: GenerationRequest) -> None:
        if not request.prompt_ids:
            raise GenerationError("prompt must contain at least one token")
        vocab = self.model.config.vocab_size
        if request.logit_bias is not None and request.logit_bias.shape != (vocab,):
            raise GenerationError(f"logit_bias must have shape ({vocab},)")
        if request.top_k is not None:
            if request.top_k < 1:
                raise GenerationError(f"top_k must be >= 1, got {request.top_k}")
            if request.rng is None:
                raise GenerationError("top_k sampling requires an rng")

    def submit(self, request: GenerationRequest) -> int:
        """Enqueue one request; returns its sequence id.

        The request is admitted into a KV slot by a later :meth:`step` —
        immediately if a slot is free, otherwise as soon as one retires.
        """
        self._validate(request)
        seq_id = self._next_id
        self._next_id += 1
        self._pending.append((seq_id, request))
        return seq_id

    @property
    def n_active(self) -> int:
        """Sequences currently decoding in KV slots."""
        return self._n_active

    @property
    def n_prefilling(self) -> int:
        """Sequences mid-way through chunked prompt prefill (0 or 1)."""
        return 0 if self._prefilling is None else 1

    @property
    def n_pending(self) -> int:
        """Submitted sequences not yet admitted into a slot."""
        return len(self._pending)

    @property
    def free_capacity(self) -> int:
        """Slots the engine can absorb before submissions queue behind others."""
        return (
            self.max_batch
            - self._n_active
            - self.n_prefilling
            - len(self._pending)
        )

    @property
    def has_work(self) -> bool:
        return (
            bool(self._pending)
            or self._n_active > 0
            or self._prefilling is not None
        )

    # -- slot bookkeeping --------------------------------------------------------
    def _ensure_state(self) -> None:
        if self._caches is None:
            self._caches = SlotKVCaches(self.model, self.max_batch)
            self._bias = np.zeros(
                (self.max_batch, self.model.config.vocab_size), dtype=np.float32
            )

    def _install(self, slot: int, state: _SlotState) -> None:
        """Occupy ``slot`` with a fully prefilled sequence."""
        request = state.request
        self._slots[slot] = state
        self._bias[slot] = (
            request.logit_bias if request.logit_bias is not None else 0.0
        )
        self._eos[slot] = -1 if request.eos_id is None else request.eos_id
        self._budget[slot] = state.budget
        self._count[slot] = 0
        if request.step_bias is not None:
            self._n_hooked += 1
        if request.top_k is not None:
            self._n_sampled += 1

    def _retire(self, slot: int) -> None:
        """Finish ``slot``'s sequence and compact the fleet (swap-with-last)."""
        state = self._slots[slot]
        self._finished[state.seq_id] = state.produced
        if state.request.step_bias is not None:
            self._n_hooked -= 1
        if state.request.top_k is not None:
            self._n_sampled -= 1
        caches = self._caches
        tail = self._n_active - 1
        if slot != tail:
            caches.move(tail, slot)
            self._bias[slot] = self._bias[tail]
            self._eos[slot] = self._eos[tail]
            self._budget[slot] = self._budget[tail]
            self._count[slot] = self._count[tail]
            self._slots[slot] = self._slots[tail]
        self._slots[tail] = None
        self._n_active -= 1

    def _choose_token(self, request: GenerationRequest, logits_row: np.ndarray) -> int:
        if request.top_k is not None:
            return _sample_top_k(logits_row, request.top_k, request.rng)
        return int(logits_row.argmax())

    def _first_token(self, state: _SlotState, logits_row: np.ndarray, slot: int) -> bool:
        """Apply biases, select, record; return True when finished."""
        request = state.request
        step = logits_row
        if request.logit_bias is not None or request.step_bias is not None:
            step = step + self._bias[slot]
            if request.step_bias is not None:
                request.step_bias(state.produced, step)
        token = self._choose_token(request, step)
        state.produced.append(token)
        self._count[slot] = 1
        return (
            request.eos_id is not None and token == request.eos_id
        ) or len(state.produced) >= state.budget

    # -- prefill phase -----------------------------------------------------------
    def _pop_viable(self) -> _SlotState | None:
        """Pop the next pending request with a positive token budget."""
        context = self.model.config.max_seq_len
        while self._pending:
            seq_id, request = self._pending.popleft()
            budget = min(request.max_new_tokens, context - len(request.prompt_ids))
            if budget <= 0:
                self._finished[seq_id] = []
                continue
            return _SlotState(seq_id, request, budget)
        return None

    def _ragged_prefill(
        self, states: list[_SlotState], slots: list[int]
    ) -> np.ndarray:
        """One right-aligned ragged forward; returns ``(B, V)`` last-token logits.

        Writes each sequence's K/V into its slot slab and sets the slot
        lengths.  The projection GEMMs run fused over the whole padded
        batch; the attention core runs per row over each sequence's valid
        slice (see :meth:`SelfAttention._ragged_attention`), so pad
        columns never enter any float sum and score temporaries stay
        cache-resident.  Each row's last-token logits agree with a lone
        prefill of that prompt to within BLAS kernel-selection noise (an
        ulp or two — far inside greedy argmax margins), and the *first
        tokens* are pinned identical to the per-request path by the
        parity suite.
        """
        caches = self._caches
        prompts = [state.request.prompt_ids for state in states]
        t_max = max(len(prompt) for prompt in prompts)
        n = len(prompts)
        idx = np.zeros((n, t_max), dtype=np.int64)
        pads = np.empty(n, dtype=np.int64)
        for row, prompt in enumerate(prompts):
            pads[row] = t_max - len(prompt)
            idx[row, pads[row]:] = prompt
        logits = self.model._forward_numpy(
            idx,
            caches.ragged_prefill_adapters(slots, pads),
            position_offset=-pads,
            pad_lens=pads,
            last_only=True,
        )[:, -1, :]
        for row, slot in enumerate(slots):
            caches.lengths[slot] = len(prompts[row])
        return logits

    def _batch_admit(self) -> bool:
        """Prefill up to the free slot count of pending prompts in one pass.

        Returns True when at least one sequence was admitted (it may also
        have finished instantly on its first token and retired).
        """
        states: list[_SlotState] = []
        while self._pending and self._n_active + len(states) < self.max_batch:
            state = self._pop_viable()
            if state is None:
                break
            states.append(state)
        if not states:
            return False
        slots = list(range(self._n_active, self._n_active + len(states)))
        logits = self._ragged_prefill(states, slots)
        finished: list[int] = []
        for row, (state, slot) in enumerate(zip(states, slots)):
            self._install(slot, state)
            self._n_active += 1
            if self._first_token(state, logits[row], slot):
                finished.append(slot)
        for slot in reversed(finished):
            self._retire(slot)
        return True

    def _chunk_admit(self, chunk: int) -> None:
        """Advance prompt prefill by at most one chunk (late-join path).

        One prompt prefills at a time, parked at slot ``n_active``; each
        call costs the in-flight decode slots at most a ``chunk``-token
        forward pass of latency instead of a whole prompt-length one.
        """
        if self._prefilling is None:
            if self._n_active >= self.max_batch:
                return
            self._prefilling = self._pop_viable()
            if self._prefilling is None:
                return
        state = self._prefilling
        slot = self._n_active
        prompt = state.request.prompt_ids
        start = state.prefilled
        if self._n_active == 0:
            # The fleet emptied mid-prefill: nothing left to stall, so
            # finish the whole remainder in one forward instead of
            # trickling it out chunk by chunk.
            end = len(prompt)
        else:
            end = min(start + chunk, len(prompt))
        logits = self.model._forward_numpy(
            np.asarray([prompt[start:end]], dtype=np.int64),
            self._caches.chunk_prefill_adapters(slot, start),
            position_offset=start,
            last_only=True,
        )[:, -1, :]
        state.prefilled = end
        if end < len(prompt):
            return
        # Prompt complete: first token, then join the decode fleet.
        self._caches.lengths[slot] = len(prompt)
        self._prefilling = None
        self._install(slot, state)
        self._n_active += 1
        if self._first_token(state, logits[0], slot):
            self._retire(slot)

    def _admit(self) -> None:
        """Prefill phase: move pending work into KV slots.

        Without chunking — or with an idle fleet, where there is nothing
        to stall — all free slots are filled by ragged batched prefill;
        with chunking and in-flight decodes, at most one chunk of one
        prompt advances per step.
        """
        chunk = self.prefill_chunk_tokens
        if chunk is not None and (self._n_active > 0 or self._prefilling is not None):
            self._chunk_admit(chunk)
            return
        while self._pending and self._n_active < self.max_batch:
            if not self._batch_admit():
                break

    # -- streaming loop ----------------------------------------------------------
    def step(self) -> int:
        """Run one engine round: prefill, decode, retire.

        Returns the number of sequences that finished during this call
        (prefill-time instant finishes included); a no-op when idle.
        """
        if not self.has_work:
            return 0
        self._ensure_state()
        before = len(self._finished)
        self._admit()
        n_active = self._n_active
        if n_active == 0:
            return len(self._finished) - before

        # One batched decode step over the active slots.
        caches, slots = self._caches, self._slots
        last = np.asarray(
            [[slots[b].produced[-1]] for b in range(n_active)], dtype=np.int64
        )
        lengths = caches.lengths[:n_active]
        view_len = int(lengths.max()) + 1
        key_mask = np.where(
            np.arange(view_len)[None, :] <= lengths[:, None],
            np.float32(0.0),
            _NEG_INF,
        )[:, None, None, :]
        logits = self.model._forward_numpy(
            last,
            caches.step_adapters(n_active, view_len),
            position_offset=lengths.copy(),
            key_mask=key_mask,
        )[:, -1, :]
        caches.lengths[:n_active] += 1

        step = logits + self._bias[:n_active]
        sampled: list[int] = []
        if self._n_hooked or self._n_sampled:
            # Per-row handling only for slots that need it: dynamic bias
            # hooks mutate their row in place before selection; sampled
            # rows are collected for the batched top-k pass below.
            for b in range(n_active):
                request = slots[b].request
                if request.step_bias is not None:
                    request.step_bias(slots[b].produced, step[b])
                if request.top_k is not None:
                    sampled.append(b)
        tokens = step.argmax(axis=-1)
        for b in sampled:
            # The exact sampler of TransformerLM.generate, fed from the
            # request's private rng stream: draw-for-draw parity with the
            # sequential path holds by construction, whatever the batch.
            request = slots[b].request
            tokens[b] = _sample_top_k(step[b], request.top_k, request.rng)
        for b in range(n_active):
            slots[b].produced.append(int(tokens[b]))
        self._count[:n_active] += 1
        finished_mask = (tokens == self._eos[:n_active]) | (
            self._count[:n_active] >= self._budget[:n_active]
        )
        retired = np.flatnonzero(finished_mask).tolist()
        for b in reversed(retired):
            self._retire(b)
        if retired and self._prefilling is not None:
            # The mid-prefill sequence stays parked one past the fleet:
            # shift its partial KV down over the rows compaction freed —
            # one prefix copy per step, however many slots retired
            # (n_active was the parked row before the retire loop).
            caches.move_prefix(
                n_active, self._n_active, self._prefilling.prefilled
            )
        if retired and self.prefill_chunk_tokens is None:
            # Refill freed slots within the same step (the scheduler's
            # late-join contract): pending work is prefilled now and
            # decodes from the very next step.  With chunking enabled the
            # refill waits for the next step's prefill phase instead — a
            # second _admit here would advance the parked prompt a second
            # chunk and break the one-chunk-per-step stall bound.
            self._admit()
        return len(self._finished) - before

    def collect(self) -> dict[int, list[int]]:
        """Pop every finished result as ``{seq_id: produced tokens}``."""
        finished = self._finished
        self._finished = {}
        return finished

    # -- run to completion -------------------------------------------------------
    def generate(self, requests: list[GenerationRequest]) -> list[list[int]]:
        # Validate the whole list before enqueuing anything, so a bad
        # request cannot strand its predecessors in the pending queue.
        for request in requests:
            self._validate(request)
        ids = [self.submit(request) for request in requests]
        remaining = set(ids)
        while remaining - self._finished.keys():
            if self.step() == 0 and not self.has_work:
                raise GenerationError(
                    "engine drained without finishing all requests "
                    "(collect() called concurrently?)"
                )
        return [self._finished.pop(seq_id) for seq_id in ids]
