"""Masked-loss LM training on (prompt, completion) sequences.

Implements the paper's Eq. (1): maximise the log-likelihood of RESPONSE
tokens conditioned on the INSTRUCTION.  Prompt tokens contribute no loss —
only positions whose *target* lies inside the completion are counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError
from .optim import Adam, clip_grad_norm
from .tensor import Tensor
from .transformer import TransformerLM


@dataclass(frozen=True)
class TrainExample:
    """One training sequence: full token ids plus the prompt length."""

    tokens: tuple[int, ...]
    prompt_len: int

    def __post_init__(self) -> None:
        if not 0 < self.prompt_len <= len(self.tokens):
            raise ModelError(
                f"prompt_len {self.prompt_len} invalid for sequence of "
                f"{len(self.tokens)} tokens"
            )


@dataclass
class TrainStats:
    """Loss trajectory of one training run."""

    step_losses: list[float] = field(default_factory=list)
    epochs_completed: int = 0

    @property
    def final_loss(self) -> float:
        if not self.step_losses:
            return float("nan")
        tail = self.step_losses[-10:]
        return float(np.mean(tail))

    @property
    def initial_loss(self) -> float:
        if not self.step_losses:
            return float("nan")
        head = self.step_losses[:10]
        return float(np.mean(head))


class LMTrainer:
    """Mini-batch Adam training of a TransformerLM.

    Parameters
    ----------
    model:
        The LM to train (possibly LoRA-wrapped).
    pad_id:
        Padding token id; padded positions never contribute loss.
    params:
        Parameter subset to optimise; defaults to all trainable parameters
        (for LoRA models that is exactly the adapters).
    """

    def __init__(
        self,
        model: TransformerLM,
        pad_id: int,
        lr: float = 1e-3,
        batch_size: int = 32,
        grad_clip: float = 1.0,
        params: list[Tensor] | None = None,
    ):
        self.model = model
        self.pad_id = pad_id
        self.batch_size = batch_size
        self.grad_clip = grad_clip
        params = params if params is not None else model.trainable_parameters()
        if not params:
            raise ModelError("no trainable parameters")
        self.optimizer = Adam(params, lr=lr)

    # -- batching -------------------------------------------------------------
    def _collate(
        self, batch: list[TrainExample]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Right-pad a batch and build inputs/targets/loss-mask arrays."""
        max_len = max(len(ex.tokens) for ex in batch)
        max_len = min(max_len, self.model.config.max_seq_len + 1)
        n = len(batch)
        tokens = np.full((n, max_len), self.pad_id, dtype=np.int64)
        prompt_lens = np.empty(n, dtype=np.int64)
        for i, ex in enumerate(batch):
            seq = ex.tokens[:max_len]
            tokens[i, : len(seq)] = seq
            prompt_lens[i] = ex.prompt_len
        inputs = tokens[:, :-1]
        targets = tokens[:, 1:]
        # Position i predicts token i+1: count it only when token i+1 falls
        # inside the completion and is not padding.
        positions = np.arange(1, max_len)[None, :]
        mask = (positions >= prompt_lens[:, None]) & (targets != self.pad_id)
        return inputs, targets, mask.astype(np.float32)

    def train(
        self,
        examples: list[TrainExample],
        epochs: int,
        rng: np.random.Generator,
        lr_schedule=None,
    ) -> TrainStats:
        """Run ``epochs`` passes over ``examples`` with per-epoch shuffling."""
        if not examples:
            raise ModelError("no training examples")
        stats = TrainStats()
        step = 0
        for _ in range(epochs):
            order = rng.permutation(len(examples))
            for start in range(0, len(examples), self.batch_size):
                batch = [examples[int(i)] for i in order[start : start + self.batch_size]]
                inputs, targets, mask = self._collate(batch)
                if mask.sum() == 0:
                    continue
                self.model.zero_grad()
                loss = self.model.loss(inputs, targets, mask)
                loss.backward()
                clip_grad_norm(self.optimizer.params, self.grad_clip)
                if lr_schedule is not None:
                    self.optimizer.lr = lr_schedule(step)
                self.optimizer.step()
                stats.step_losses.append(loss.item())
                step += 1
            stats.epochs_completed += 1
        return stats

    def evaluate(self, examples: list[TrainExample]) -> float:
        """Mean masked loss without updating weights."""
        if not examples:
            raise ModelError("no evaluation examples")
        losses: list[float] = []
        for start in range(0, len(examples), self.batch_size):
            batch = examples[start : start + self.batch_size]
            inputs, targets, mask = self._collate(batch)
            if mask.sum() == 0:
                continue
            logits = self.model.logits_numpy(inputs)
            b, t, v = logits.shape
            flat = logits.reshape(b * t, v)
            tgt = targets.reshape(b * t)
            m = mask.reshape(b * t)
            shifted = flat - flat.max(axis=-1, keepdims=True)
            logsumexp = np.log(np.exp(shifted).sum(axis=-1))
            token_loss = logsumexp - shifted[np.arange(b * t), tgt]
            losses.append(float((token_loss * m).sum() / max(m.sum(), 1.0)))
        return float(np.mean(losses))
