"""Edit-script backtrace and diff statistics.

Beyond the bare distance, the expert-campaign analytics (Table IV) and the
revision post-mortems want to know *what kind* of edits were made — how
many insertions vs deletions vs substitutions.  :func:`align` produces a
minimal edit script; :func:`diff_stats` summarises it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np


class EditOp(enum.Enum):
    MATCH = "match"
    SUBSTITUTE = "substitute"
    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class DiffStats:
    """Counts of each edit operation in a minimal edit script."""

    matches: int
    substitutions: int
    insertions: int
    deletions: int

    @property
    def distance(self) -> int:
        return self.substitutions + self.insertions + self.deletions

    @property
    def grew(self) -> bool:
        """True if the revision made the sequence longer on balance."""
        return self.insertions > self.deletions


def align(
    a: Sequence[Hashable], b: Sequence[Hashable]
) -> list[tuple[EditOp, int, int]]:
    """Minimal edit script transforming ``a`` into ``b``.

    Returns ``(op, i, j)`` triples where ``i``/``j`` index into ``a``/``b``
    (``-1`` for the side an insert/delete does not touch).  Ties are broken
    preferring match/substitute, then delete, then insert, which yields a
    deterministic script.
    """
    m, n = len(a), len(b)
    dp = np.zeros((m + 1, n + 1), dtype=np.int64)
    dp[:, 0] = np.arange(m + 1)
    dp[0, :] = np.arange(n + 1)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            dp[i, j] = min(
                dp[i - 1, j] + 1,
                dp[i, j - 1] + 1,
                dp[i - 1, j - 1] + cost,
            )

    script: list[tuple[EditOp, int, int]] = []
    i, j = m, n
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            cost = 0 if a[i - 1] == b[j - 1] else 1
            if dp[i, j] == dp[i - 1, j - 1] + cost:
                op = EditOp.MATCH if cost == 0 else EditOp.SUBSTITUTE
                script.append((op, i - 1, j - 1))
                i, j = i - 1, j - 1
                continue
        if i > 0 and dp[i, j] == dp[i - 1, j] + 1:
            script.append((EditOp.DELETE, i - 1, -1))
            i -= 1
            continue
        script.append((EditOp.INSERT, -1, j - 1))
        j -= 1
    script.reverse()
    return script


def diff_stats(a: Sequence[Hashable], b: Sequence[Hashable]) -> DiffStats:
    """Summarise the minimal edit script between two sequences."""
    counts = {op: 0 for op in EditOp}
    for op, _, _ in align(a, b):
        counts[op] += 1
    return DiffStats(
        matches=counts[EditOp.MATCH],
        substitutions=counts[EditOp.SUBSTITUTE],
        insertions=counts[EditOp.INSERT],
        deletions=counts[EditOp.DELETE],
    )
