"""Edit distances (Levenshtein) used throughout the pipeline.

The paper uses edit distance twice:

* **α-selection** (Section II-F2): the human-input ratio α keeps the top-α
  fraction of expert revision pairs by edit distance between the original
  and revised pair — distance measures *how much the expert changed*, i.e.
  how much revision signal the pair carries.
* **Table VII**: word-level edit distance between the original and the
  CoachLM-revised ALPACA52K dataset.
"""

from .levenshtein import (
    char_edit_distance,
    edit_distance,
    normalized_edit_distance,
    pair_edit_distance,
    word_edit_distance,
)
from .alignment import EditOp, align, diff_stats

__all__ = [
    "edit_distance",
    "char_edit_distance",
    "word_edit_distance",
    "normalized_edit_distance",
    "pair_edit_distance",
    "EditOp",
    "align",
    "diff_stats",
]
