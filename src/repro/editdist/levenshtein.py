"""Levenshtein edit distance over arbitrary token sequences.

Implements the classic dynamic program [Levenshtein 1966] with two-row
memory (O(min(m, n)) space) and an optional early-exit band.  The inner
loop is vectorised: deletion/substitution terms are elementwise over the
row, and the insertion term's prefix recurrence is solved with a running
``np.minimum.accumulate`` over offset-shifted values — the routine runs
over every pair in the Table VII statistics and α-selection, so the
per-cell Python loop was a measured hot spot.  Distances are defined
over sequences of hashable items, so the same routine serves both
character-level and word-level distance (the paper reports the latter in
Table VII and uses distance magnitude for α-selection).
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from ..data.instruction_pair import InstructionPair
from ..errors import ReproError


def edit_distance(
    a: Sequence[Hashable], b: Sequence[Hashable], *, max_distance: int | None = None
) -> int:
    """Minimum number of single-item insertions/deletions/substitutions.

    ``max_distance`` enables an early exit: once every cell of a DP row
    exceeds the bound, the true distance is known to exceed it and
    ``max_distance + 1`` is returned.
    """
    if max_distance is not None and max_distance < 0:
        raise ReproError(f"max_distance must be non-negative, got {max_distance}")
    # Ensure `b` is the shorter sequence: memory is O(len(b)).
    if len(b) > len(a):
        a, b = b, a
    if not b:
        dist = len(a)
        if max_distance is not None and dist > max_distance:
            return max_distance + 1
        return dist

    # Map items to integer codes so the per-row substitution costs are a
    # single vectorised comparison instead of a Python loop over `b`.
    codes: dict[Hashable, int] = {}
    b_codes = np.fromiter(
        (codes.setdefault(item, len(codes)) for item in b),
        dtype=np.int64,
        count=len(b),
    )
    n = len(b)
    previous = np.arange(n + 1, dtype=np.int64)
    offsets = np.arange(n + 1, dtype=np.int64)
    shifted = np.empty(n + 1, dtype=np.int64)
    current = np.empty(n + 1, dtype=np.int64)
    for i, item_a in enumerate(a, start=1):
        # Deletion/substitution terms have no intra-row dependency:
        #   t[j] = min(previous[j] + 1, previous[j - 1] + cost_j).
        shifted[0] = i
        np.minimum(
            previous[1:] + 1,
            previous[:-1] + (b_codes != codes.get(item_a, -1)),
            out=shifted[1:],
        )
        # The insertion term current[j - 1] + 1 is a prefix recurrence:
        #   current[j] = min over l <= j of (t[l] + j - l)
        # solved by a running minimum of (t - j) re-shifted by +j.
        shifted -= offsets
        np.minimum.accumulate(shifted, out=current)
        current += offsets
        if max_distance is not None and current.min() > max_distance:
            return max_distance + 1
        previous, current = current, previous
    dist = int(previous[n])
    if max_distance is not None and dist > max_distance:
        return max_distance + 1
    return dist


def char_edit_distance(a: str, b: str) -> int:
    """Character-level Levenshtein distance between two strings."""
    return edit_distance(a, b)


def word_edit_distance(a: str, b: str) -> int:
    """Word-level Levenshtein distance (whitespace tokenisation).

    This is the metric of Table VII ("Word-level Edit Distance").
    """
    return edit_distance(a.split(), b.split())


def normalized_edit_distance(a: Sequence[Hashable], b: Sequence[Hashable]) -> float:
    """Edit distance divided by the longer length; in [0, 1]."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return edit_distance(a, b) / longest


def pair_edit_distance(
    original: InstructionPair, revised: InstructionPair
) -> int:
    """Word-level edit distance between two versions of a pair.

    The paper measures the difference between an original pair ``x`` and
    its expert revision ``x_r`` to decide how much revision signal the
    sample carries (Section II-F2).  Instruction and response sides are
    summed.
    """
    return word_edit_distance(
        original.instruction, revised.instruction
    ) + word_edit_distance(original.response, revised.response)
