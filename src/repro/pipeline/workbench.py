"""The Workbench: every experiment stage, lazily built and disk-cached.

One :class:`Workbench` owns a scale preset and a master seed and can
produce every artifact the paper's evaluation needs — the ALPACA52K
simulacrum, the expert campaign, backbones, CoachLM at any α, revised
datasets, all twelve Table IX models, the four test sets, and judged win
rates — each deterministic in (scale, seed) and cached on disk.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from ..config import DEFAULT_SEED, ScaleConfig, get_scale
from ..core.coachlm import CoachLM, RevisionStats
from ..core.training import CoachTrainingConfig
from ..data.alpaca_generator import (
    ALPACA_PROFILE,
    CONVERSATION_PROFILE,
    PROPRIETARY_PROFILE,
    generate_dataset,
    rule_clean,
)
from ..data.dataset import InstructionDataset
from ..errors import ConfigError, PipelineError
from ..experts.workflow import CampaignResult, ExpertCampaign
from ..judges import ChatGPTJudge, PandaLMJudge, WinRateSummary, evaluate_model_on_testset
from ..llm.backbone import BACKBONES, build_backbone
from ..llm.generation import generate_responses
from ..llm.instruction_tuning import TuningRecipe, instruction_tune
from ..llm.tokenizer import WordTokenizer, build_tokenizer
from ..nn.transformer import TransformerConfig, TransformerLM
from ..testsets import TESTSET_BUILDERS, TestSet, build_testset
from .cache import ArtifactCache, config_hash

#: Table IX model inventory: (group, size label, tuning type).
MODEL_KEYS: dict[str, dict[str, str]] = {
    "llama2-13b-chat": {"group": "stronger", "size": "13B", "type": "RL-tuned"},
    "vicuna-13b": {"group": "stronger", "size": "13B", "type": "I-tuned"},
    "llama2-7b-chat": {"group": "stronger", "size": "7B", "type": "RL-tuned"},
    "chatglm-6b": {"group": "stronger", "size": "6B", "type": "RL-tuned"},
    "chatglm2-6b": {"group": "stronger", "size": "6B", "type": "RL-tuned"},
    "vicuna-7b": {"group": "baseline", "size": "7B", "type": "I-tuned"},
    "alpaca": {"group": "baseline", "size": "7B", "type": "I-tuned"},
    "alpaca-cleaned": {"group": "baseline", "size": "7B", "type": "I-tuned"},
    "alpaca-pandalm": {"group": "baseline", "size": "7B", "type": "I-tuned"},
    "alpagasus": {"group": "baseline", "size": "7B", "type": "I-tuned"},
    "alpaca-human": {"group": "baseline", "size": "7B", "type": "I-tuned"},
    "alpaca-coachlm": {"group": "baseline", "size": "7B", "type": "I-tuned"},
}

_DEFAULT_CACHE_DIR = ".artifacts"


class Workbench:
    """Deterministic, cached factory for every experiment artifact."""

    def __init__(
        self,
        scale: ScaleConfig | None = None,
        seed: int = DEFAULT_SEED,
        cache_dir: str | Path | None = None,
        cache_enabled: bool = True,
    ):
        self.scale = scale or get_scale()
        self.seed = seed
        root = Path(cache_dir or _DEFAULT_CACHE_DIR) / f"{self.scale.name}-{seed}"
        self.cache = ArtifactCache(root, enabled=cache_enabled)
        self.tokenizer: WordTokenizer = build_tokenizer()
        self._memo: dict[str, object] = {}

    # -- deterministic RNG derivation ------------------------------------------
    def rng(self, label: str) -> np.random.Generator:
        """A generator unique to (seed, label) — order-independent."""
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        return np.random.default_rng(
            np.frombuffer(digest[:16], dtype=np.uint64)
        )

    def _scale_key(self, extra: dict | None = None) -> str:
        payload = {
            "scale": self.scale.name,
            "dataset_size": self.scale.dataset_size,
            "expert_sample": self.scale.expert_sample_size,
            "pretrain": self.scale.pretrain_steps,
            "seed": self.seed,
        }
        if extra:
            payload.update(extra)
        return config_hash(payload)

    # -- stage 1: data -----------------------------------------------------------
    def alpaca_dataset(self) -> InstructionDataset:
        """The ALPACA52K simulacrum at this scale."""
        if "alpaca" in self._memo:
            return self._memo["alpaca"]  # type: ignore[return-value]
        key = self._scale_key()
        if self.cache.has_dataset("alpaca52k", key):
            ds = self.cache.load_dataset("alpaca52k", key, "alpaca52k-sim")
        else:
            ds = generate_dataset(
                self.rng("alpaca52k"), self.scale.dataset_size, ALPACA_PROFILE
            )
            self.cache.save_dataset("alpaca52k", key, ds)
        self._memo["alpaca"] = ds
        return ds

    def campaign(self) -> CampaignResult:
        """The expert revision campaign over the sampled subset."""
        if "campaign" in self._memo:
            return self._memo["campaign"]  # type: ignore[return-value]
        dataset = self.alpaca_dataset()
        sample = dataset.sample(
            min(self.scale.expert_sample_size, len(dataset)),
            self.rng("expert-sample"),
        )
        result = ExpertCampaign().run(sample, self.rng("expert-campaign"))
        self._memo["campaign"] = result
        return result

    # -- stage 2: backbones -------------------------------------------------------
    def backbone(self, name: str = "chatglm2-sim") -> TransformerLM:
        """A pre-trained (and possibly aligned) backbone, disk-cached."""
        memo_key = f"backbone:{name}"
        if memo_key in self._memo:
            return self._memo[memo_key]  # type: ignore[return-value]
        if name not in BACKBONES:
            raise ConfigError(f"unknown backbone {name!r}")
        spec = BACKBONES[name]
        key = self._scale_key({"backbone": name})
        dims = self.scale.large_model if spec.use_large else self.scale.base_model
        config = TransformerConfig(
            vocab_size=self.tokenizer.vocab_size,
            d_model=dims.d_model,
            n_layers=dims.n_layers,
            n_heads=dims.n_heads,
            max_seq_len=dims.max_seq_len,
        )
        if self.cache.has_weights("backbone", key):
            model = TransformerLM(config, np.random.default_rng(0))
            model.load_state_dict(self.cache.load_weights("backbone", key))
        else:
            model = build_backbone(
                spec, self.scale, self.tokenizer, self.rng(f"backbone-{name}")
            )
            self.cache.save_weights("backbone", key, model.state_dict())
        self._memo[memo_key] = model
        return model

    # -- stage 3: CoachLM -----------------------------------------------------------
    def coach_config(self) -> CoachTrainingConfig:
        return CoachTrainingConfig(
            epochs=max(self.scale.coach_epochs, 1),
            learning_rate=self.scale.coach_learning_rate,
            batch_size=8,
            lora_rank=self.scale.base_model.lora_rank,
            lora_alpha=2.0 * self.scale.base_model.lora_rank,
        )

    def coach(
        self, alpha: float = 0.3, backbone_name: str = "chatglm2-sim"
    ) -> CoachLM:
        """CoachLM trained at the given α from the given backbone."""
        memo_key = f"coach:{backbone_name}:{alpha}"
        if memo_key in self._memo:
            return self._memo[memo_key]  # type: ignore[return-value]
        backbone = self.backbone(backbone_name)
        key = self._scale_key({"coach_backbone": backbone_name, "alpha": alpha})
        # get_json reads a torn/corrupt meta blob as a miss (quarantining
        # it), so a writer that died mid-save just costs a retrain here.
        meta = (
            self.cache.get_json("coach-meta", key)
            if self.cache.has_weights("coach", key)
            else None
        )
        if meta is not None:
            model = backbone.clone()
            model.load_state_dict(self.cache.load_weights("coach", key))
            coach = CoachLM(
                model, self.tokenizer,
                trained_instructions=frozenset(meta["trained_ids"]),
            )
        else:
            coach = CoachLM.train(
                backbone,
                self.tokenizer,
                self.campaign().records,
                self.rng(f"coach-{backbone_name}-{alpha}"),
                alpha=alpha,
                config=self.coach_config(),
            )
            assert coach.model is not None
            self.cache.save_weights("coach", key, coach.model.state_dict())
            self.cache.save_json(
                "coach-meta", key,
                {"trained_ids": sorted(coach.trained_instructions)},
            )
        self._memo[memo_key] = coach
        return coach

    def coachlm_revised_dataset(
        self,
        alpha: float = 0.3,
        backbone_name: str = "chatglm2-sim",
        revise_top_k: int | None = None,
        self_review: bool = False,
    ) -> tuple[InstructionDataset, RevisionStats | None]:
        """The CoachLM-revised ALPACA52K simulacrum (Eq. (2)).

        ``revise_top_k`` restricts revision to the hardest pairs by IFD
        (see :mod:`repro.scoring.selection`); ``self_review`` adds the
        revise→score→re-revise acceptance loop.  Both knobs are part of
        the cache key, so selected and full revisions coexist on disk.

        The revision pass runs under a crash-safe
        :class:`~repro.serving.journal.RunJournal` kept next to the
        cache: a workbench killed mid-revision resumes from the pairs
        already journaled instead of re-decoding the whole dataset, and
        the journal is deleted once the finished dataset is safely in
        the artifact cache.
        """
        extra: dict = {"revised_by": backbone_name, "alpha": alpha}
        if revise_top_k is not None:
            extra["revise_top_k"] = revise_top_k
        if self_review:
            extra["self_review"] = True
        key = self._scale_key(extra)
        if self.cache.has_dataset("revised", key):
            stats = None
            blob = self.cache.get_json("revised-stats", key)
            if blob is not None:
                stats = RevisionStats(outcomes=dict(blob))  # type: ignore[arg-type]
            return (
                self.cache.load_dataset("revised", key, "alpaca52k-sim-coachlm"),
                stats,
            )
        from ..serving.journal import RunJournal

        coach = self.coach(alpha=alpha, backbone_name=backbone_name)
        journal_path = self.cache.root / f"revise-journal-{key}.jsonl"
        with RunJournal(journal_path) as journal:
            revised, stats = coach.revise_dataset(
                self.alpaca_dataset(),
                batch_size=self.scale.gen_batch_size,
                prefill_chunk_tokens=self.scale.prefill_chunk_tokens,
                prefill_concurrency=self.scale.prefill_concurrency,
                kv_page_tokens=self.scale.kv_page_tokens,
                revise_top_k=revise_top_k,
                self_review=self_review,
                journal=journal if self.cache.enabled else None,
            )
        self.cache.save_dataset("revised", key, revised)
        self.cache.save_json("revised-stats", key, stats.outcomes)
        # The finished dataset is durable in the cache now; the journal
        # has served its purpose.
        journal_path.unlink(missing_ok=True)
        return revised, stats

    def ifd_scores(
        self, alpha: float = 0.3, backbone_name: str = "chatglm2-sim"
    ) -> list:
        """IFD verdicts of the coach's model over the ALPACA52K simulacrum.

        One :class:`~repro.scoring.PairIFD` per pair (``None`` where the
        pair is unscoreable), aligned with :meth:`alpaca_dataset` order
        and JSON-cached — the selection stage behind ``revise_top_k``.
        """
        from ..scoring.ifd import PairIFD, dataset_ifd

        memo_key = f"ifd:{backbone_name}:{alpha}"
        if memo_key in self._memo:
            return self._memo[memo_key]  # type: ignore[return-value]
        key = self._scale_key({"ifd_by": backbone_name, "alpha": alpha})
        blob = self.cache.get_json("ifd", key)
        if blob is not None:
            verdicts = [
                PairIFD.from_dict(row) if row is not None else None
                for row in blob
            ]
        else:
            coach = self.coach(alpha=alpha, backbone_name=backbone_name)
            verdicts = dataset_ifd(
                coach.model,
                self.tokenizer,
                list(self.alpaca_dataset()),
                batch_size=self.scale.gen_batch_size,
                kv_page_tokens=self.scale.kv_page_tokens,
            )
            self.cache.save_json(
                "ifd", key,
                [v.as_dict() if v is not None else None for v in verdicts],
            )
        self._memo[memo_key] = verdicts
        return verdicts

    # -- stage 4: training datasets of every compared model ------------------------
    def training_dataset(self, variant: str) -> InstructionDataset:
        """The tuning corpus behind one Table IX model."""
        dataset = self.alpaca_dataset()
        if variant == "original":
            return dataset
        if variant == "cleaned":
            return rule_clean(dataset)
        if variant == "human":
            return self.campaign().merge_back(dataset)
        if variant == "coachlm":
            return self.coachlm_revised_dataset()[0]
        if variant == "alpagasus":
            judge = ChatGPTJudge()
            rng = self.rng("alpagasus-filter")
            keep = [
                pair for pair in dataset
                if judge.rate(pair, rng).score >= 4.5
            ]
            if not keep:
                raise PipelineError("AlpaGasus filter kept no pairs")
            return InstructionDataset(keep, name="alpagasus-9k-sim")
        if variant == "conversation":
            return generate_dataset(
                self.rng("conversations"), self.scale.dataset_size,
                CONVERSATION_PROFILE,
            )
        if variant == "proprietary":
            return generate_dataset(
                self.rng("proprietary"), self.scale.dataset_size,
                PROPRIETARY_PROFILE,
            )
        raise ConfigError(f"unknown training-data variant {variant!r}")

    # -- stage 5: the model zoo -----------------------------------------------------
    def _tuning_plan(self, model_key: str) -> tuple[str, str, TuningRecipe]:
        """(base backbone, data variant, recipe) for a Table IX model."""
        base = TuningRecipe(
            epochs=self.scale.finetune_epochs,
            batch_size=self.scale.batch_size,
            learning_rate=self.scale.learning_rate,
        )
        plans: dict[str, tuple[str, str, TuningRecipe]] = {
            "alpaca": ("llama-sim", "original", base),
            "alpaca-cleaned": ("llama-sim", "cleaned", base),
            "alpagasus": ("llama-sim", "alpagasus", base),
            "alpaca-human": ("llama-sim", "human", base),
            "alpaca-coachlm": ("llama-sim", "coachlm", base),
            # Alpaca-PandaLM is Alpaca with optimised hyper-parameters.
            "alpaca-pandalm": (
                "llama-sim", "original",
                TuningRecipe(
                    epochs=self.scale.finetune_epochs + 2,
                    batch_size=self.scale.batch_size,
                    learning_rate=self.scale.learning_rate * 1.3,
                ),
            ),
            "vicuna-7b": ("llama-sim", "conversation", base),
            "vicuna-13b": ("llama-13b-sim", "conversation", base),
            "llama2-7b-chat": (
                "llama-sim", "proprietary",
                TuningRecipe(
                    epochs=self.scale.finetune_epochs + 1,
                    batch_size=self.scale.batch_size,
                    learning_rate=self.scale.learning_rate,
                ),
            ),
            "llama2-13b-chat": (
                "llama-13b-sim", "proprietary",
                TuningRecipe(
                    epochs=self.scale.finetune_epochs + 1,
                    batch_size=self.scale.batch_size,
                    learning_rate=self.scale.learning_rate,
                ),
            ),
        }
        if model_key not in plans:
            raise ConfigError(f"no tuning plan for model {model_key!r}")
        return plans[model_key]

    def model(self, model_key: str) -> TransformerLM:
        """Build (or load) one of the twelve Table IX models."""
        memo_key = f"model:{model_key}"
        if memo_key in self._memo:
            return self._memo[memo_key]  # type: ignore[return-value]
        if model_key not in MODEL_KEYS:
            raise ConfigError(
                f"unknown model {model_key!r}; expected one of {sorted(MODEL_KEYS)}"
            )
        # The ChatGLM chat models are the aligned backbones themselves.
        if model_key == "chatglm-6b":
            model = self.backbone("chatglm-sim")
        elif model_key == "chatglm2-6b":
            model = self.backbone("chatglm2-sim")
        else:
            backbone_name, variant, recipe = self._tuning_plan(model_key)
            key = self._scale_key({"model": model_key})
            dims = (
                self.scale.large_model
                if BACKBONES[backbone_name].use_large
                else self.scale.base_model
            )
            config = TransformerConfig(
                vocab_size=self.tokenizer.vocab_size,
                d_model=dims.d_model,
                n_layers=dims.n_layers,
                n_heads=dims.n_heads,
                max_seq_len=dims.max_seq_len,
            )
            if self.cache.has_weights("model", key):
                model = TransformerLM(config, np.random.default_rng(0))
                model.load_state_dict(self.cache.load_weights("model", key))
            else:
                base_model = self.backbone(backbone_name)
                dataset = self.training_dataset(variant)
                model, _ = instruction_tune(
                    base_model, self.tokenizer, dataset,
                    self.rng(f"tune-{model_key}"), recipe,
                )
                self.cache.save_weights("model", key, model.state_dict())
        self._memo[memo_key] = model
        return model

    # -- stage 6: evaluation ------------------------------------------------------
    def testset(self, name: str) -> TestSet:
        memo_key = f"testset:{name}"
        if memo_key in self._memo:
            return self._memo[memo_key]  # type: ignore[return-value]
        size = None
        if self.scale.name == "ci":
            size = 20
        ts = build_testset(name, self.rng(f"testset-{name}"), size=size)
        self._memo[memo_key] = ts
        return ts

    def model_responses(
        self, model_key: str, testset_name: str, max_items: int | None = None
    ):
        """Cached generation of a model's responses on one test set.

        ``max_items`` caps the number of test items (benchmark wall-clock
        budgets on CPU); the cap is part of the cache key.  A cached
        response set that is *shorter* than ``n_items`` (e.g. written by
        an interrupted run) is treated as a miss and re-generated; a
        longer one is truncated.
        """
        testset = self.testset(testset_name)
        n_items = len(testset) if max_items is None else min(max_items, len(testset))
        key = self._scale_key({
            "responses": model_key, "testset": testset_name, "items": n_items,
        })
        if self.cache.has_dataset("responses", key):
            cached = self.cache.load_dataset(
                "responses", key, f"{model_key}@{testset_name}"
            )
            if len(cached) >= n_items:
                return list(cached)[:n_items]
        model = self.model(model_key)
        responses = generate_responses(
            model, self.tokenizer,
            testset.instructions[:n_items],
            testset.provenances[:n_items],
            max_new_tokens=self.scale.max_new_tokens,
            batch_size=self.scale.gen_batch_size,
            prefill_chunk_tokens=self.scale.prefill_chunk_tokens,
            prefill_concurrency=self.scale.prefill_concurrency,
            kv_page_tokens=self.scale.kv_page_tokens,
        )
        self.cache.save_dataset(
            "responses", key, InstructionDataset(responses, name="responses")
        )
        return responses

    def evaluate(
        self,
        model_key: str,
        testset_name: str,
        judge=None,
        max_items: int | None = None,
    ) -> WinRateSummary:
        """PandaLM win rates of one model against one test set's references."""
        judge = judge or PandaLMJudge()
        testset = self.testset(testset_name)
        candidates = self.model_responses(model_key, testset_name, max_items)
        references = testset.references[: len(candidates)]
        return evaluate_model_on_testset(
            judge, candidates, references,
            self.rng(f"judge-{model_key}-{testset_name}"),
        )
