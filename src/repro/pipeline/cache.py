"""On-disk artifact cache.

Benchmarks re-run the same expensive stages (backbone pre-training, model
tuning, dataset revision); the cache keys every artifact by a stable
content hash of its configuration, so a cold benchmark suite is paid once
per scale preset.  Everything is stored as plain files (npz for weights,
jsonl for datasets/records, json for summaries) — no pickling.

All writes are atomic: content lands in a sibling ``.tmp`` file that is
:func:`os.replace`-d over the final path, so concurrent workers (e.g.
serving processes sharing one artifact directory) can never observe a
half-written artifact — a reader sees either the old file or the new
one, and a crashed writer leaves at worst a stale ``.tmp``.

Multi-process hardening (the serving fleet persists its revision cache
here from several processes at once):

* every write takes a **per-key lockfile** (:func:`fcntl.flock` on a
  ``.lock`` sibling) around the write-and-rename, serialising racing
  writers of one key without coupling unrelated keys — the lock is
  advisory and crash-safe (the kernel drops it with the process, so a
  SIGKILLed writer never wedges the cache);
* :meth:`ArtifactCache.get_json` treats a cached blob that fails to
  parse (a torn write from a crashed process, a truncated disk) as a
  *miss*, quarantining the corrupt file aside (``.corrupt-<pid>``) so
  the caller recomputes and the evidence survives for debugging.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from ..data.dataset import InstructionDataset
from ..errors import PipelineError
from ..experts.revision import RevisionRecord

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


def config_hash(payload: dict) -> str:
    """Stable short hash of a JSON-serialisable configuration."""
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:12]


@contextlib.contextmanager
def _key_lock(path: Path) -> Iterator[None]:
    """Hold an advisory per-artifact lock for the duration of a write.

    Lives in a ``.lock`` sibling of the artifact (never the artifact
    itself: :func:`os.replace` swaps the inode, which would strand the
    lock on the orphaned old file).  Released automatically even on
    SIGKILL — flock dies with the file descriptor.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        os.close(fd)


def _atomic_write(path: Path, write: Callable[[Path], None]) -> None:
    """Run ``write`` against a unique ``.tmp`` sibling, then rename into place.

    The temp name is unique per call (:func:`tempfile.mkstemp`), so even
    without the lock two workers racing to save the same key each write
    their own file and the final artifact is whichever rename lands last
    — never a mixture.  The per-key lock additionally serialises the
    replace itself, so racing writers of one key land in a definite
    order.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        with _key_lock(path):
            write(tmp)
            os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


#: How long quarantined ``.corrupt-<pid>`` files stay inspectable before
#: construction-time pruning reclaims them (7 days).
DEFAULT_CORRUPT_RETENTION_S = 7 * 24 * 3600.0


class ArtifactCache:
    """A directory of cacheable experiment artifacts.

    Construction prunes quarantined ``.corrupt-<pid>`` files older than
    ``corrupt_retention_s`` — the quarantine exists so a torn write
    stays inspectable, not so a long-lived artifact directory slowly
    fills with debris from every crash ever injected into it.  Recent
    quarantines (and everything else) are left untouched.
    """

    def __init__(
        self,
        root: str | Path,
        enabled: bool = True,
        corrupt_retention_s: float = DEFAULT_CORRUPT_RETENTION_S,
    ):
        self.root = Path(root)
        self.enabled = enabled
        if enabled:
            self.root.mkdir(parents=True, exist_ok=True)
            self._prune_quarantine(corrupt_retention_s)

    def _prune_quarantine(self, retention_s: float) -> None:
        cutoff = time.time() - retention_s
        for path in self.root.glob("*.corrupt-*"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
            except OSError:
                # Raced with another pruner, or an unreadable entry —
                # pruning is best-effort housekeeping, never a failure.
                continue

    def _path(self, kind: str, key: str, suffix: str) -> Path:
        return self.root / f"{kind}-{key}{suffix}"

    def json_path(self, kind: str, key: str) -> Path:
        """Where a json blob for (kind, key) lives — for tooling and fault
        injection that must place bytes at the artifact's real location."""
        return self._path(kind, key, ".json")

    # -- model weights --------------------------------------------------------
    def has_weights(self, kind: str, key: str) -> bool:
        return self.enabled and self._path(kind, key, ".npz").exists()

    def save_weights(self, kind: str, key: str, state: dict[str, np.ndarray]) -> None:
        if not self.enabled:
            return

        def write(tmp: Path) -> None:
            # Write through a handle: np.savez would append ".npz" to a
            # bare tmp path and break the rename.
            with tmp.open("wb") as fh:
                np.savez(fh, **state)

        _atomic_write(self._path(kind, key, ".npz"), write)

    def load_weights(self, kind: str, key: str) -> dict[str, np.ndarray]:
        path = self._path(kind, key, ".npz")
        if not path.exists():
            raise PipelineError(f"no cached weights at {path}")
        with np.load(path) as blob:
            return {name: blob[name].copy() for name in blob.files}

    # -- datasets --------------------------------------------------------------
    def has_dataset(self, kind: str, key: str) -> bool:
        return self.enabled and self._path(kind, key, ".jsonl").exists()

    def save_dataset(self, kind: str, key: str, dataset: InstructionDataset) -> None:
        if not self.enabled:
            return
        _atomic_write(self._path(kind, key, ".jsonl"), dataset.save_jsonl)

    def load_dataset(self, kind: str, key: str, name: str) -> InstructionDataset:
        return InstructionDataset.load_jsonl(
            self._path(kind, key, ".jsonl"), name=name
        )

    # -- revision records ---------------------------------------------------------
    def has_records(self, kind: str, key: str) -> bool:
        return self.enabled and self._path(kind, key, ".records.jsonl").exists()

    def save_records(
        self, kind: str, key: str, records: list[RevisionRecord]
    ) -> None:
        if not self.enabled:
            return

        def write(tmp: Path) -> None:
            with tmp.open("w", encoding="utf-8") as fh:
                for record in records:
                    fh.write(json.dumps(record.to_json(), sort_keys=True))
                    fh.write("\n")

        _atomic_write(self._path(kind, key, ".records.jsonl"), write)

    def load_records(self, kind: str, key: str) -> list[RevisionRecord]:
        path = self._path(kind, key, ".records.jsonl")
        if not path.exists():
            raise PipelineError(f"no cached records at {path}")
        records: list[RevisionRecord] = []
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(RevisionRecord.from_json(json.loads(line)))
        return records

    # -- json blobs -------------------------------------------------------------------
    def has_json(self, kind: str, key: str) -> bool:
        return self.enabled and self._path(kind, key, ".json").exists()

    def save_json(self, kind: str, key: str, payload: object) -> None:
        if not self.enabled:
            return
        text = json.dumps(payload, sort_keys=True, indent=1)
        _atomic_write(
            self._path(kind, key, ".json"),
            lambda tmp: tmp.write_text(text, encoding="utf-8"),
        )

    def load_json(self, kind: str, key: str) -> object:
        path = self._path(kind, key, ".json")
        if not path.exists():
            raise PipelineError(f"no cached json at {path}")
        return json.loads(path.read_text(encoding="utf-8"))

    def get_json(self, kind: str, key: str) -> object | None:
        """Corruption-tolerant read: the blob, or ``None`` to recompute.

        ``None`` covers both a plain miss and a cached file that fails
        to parse — a torn write from a process that died mid-save, or a
        truncated volume.  A corrupt file is quarantined aside (renamed
        to ``.corrupt-<pid>``) so the key reads as a miss from then on
        and the bad bytes stay inspectable; the quarantine rename runs
        under the same per-key lock as writes, so it can never clobber a
        concurrent healthy re-save of the key.
        """
        if not self.enabled:
            return None
        path = self._path(kind, key, ".json")
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return None

    @staticmethod
    def _quarantine(path: Path) -> None:
        quarantined = path.with_name(f"{path.name}.corrupt-{os.getpid()}")
        with _key_lock(path):
            # Re-check under the lock: a writer may have replaced the
            # corrupt file with a healthy one since we read it.
            try:
                json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                pass  # still corrupt - quarantine it
            except FileNotFoundError:
                return  # already quarantined by another reader
            else:
                return  # healthy again - leave the re-save alone
            try:
                os.replace(path, quarantined)
            except FileNotFoundError:
                pass
