"""Experiment registry: every table/figure mapped to its bench target.

The DESIGN.md per-experiment index, in code — used by the benchmark
harness and by ``examples/regenerate_all.py`` to enumerate what exists.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    exp_id: str
    description: str
    modules: tuple[str, ...]
    bench_target: str


EXPERIMENTS: dict[str, Experiment] = {
    e.exp_id: e
    for e in (
        Experiment(
            "table1", "Expertise and grouping of involved language experts",
            ("repro.experts.profiles",),
            "benchmarks/test_bench_table1_experts.py",
        ),
        Experiment(
            "table2", "Human evaluation criteria for instruction-pair quality",
            ("repro.quality.dimensions",),
            "benchmarks/test_bench_table2_criteria.py",
        ),
        Experiment(
            "table3", "Distribution of the excluded instruction pairs",
            ("repro.experts.filtering", "repro.data.defects"),
            "benchmarks/test_bench_table3_filtering.py",
        ),
        Experiment(
            "table4", "Statistics of expert revisions on instruction pairs",
            ("repro.experts.revision", "repro.experts.workflow"),
            "benchmarks/test_bench_table4_revisions.py",
        ),
        Experiment(
            "table5", "Evaluation approaches utilised in the experiment",
            ("repro.judges",),
            "benchmarks/test_bench_table5_judges.py",
        ),
        Experiment(
            "table6", "Test sets on instruction-following ability of LLMs",
            ("repro.testsets.builders",),
            "benchmarks/test_bench_table6_testsets.py",
        ),
        Experiment(
            "table7", "Statistics of the CoachLM-revised ALPACA52K dataset",
            ("repro.core.stats", "repro.editdist"),
            "benchmarks/test_bench_table7_revision_stats.py",
        ),
        Experiment(
            "table8", "Human ratings on a subset of the CoachLM-revised dataset",
            ("repro.judges.human", "repro.core.coachlm"),
            "benchmarks/test_bench_table8_human_data.py",
        ),
        Experiment(
            "table9", "Win rates of LLMs against references on four test sets",
            ("repro.pipeline.workbench", "repro.judges.pandalm",
             "repro.judges.protocol"),
            "benchmarks/test_bench_table9_winrates.py",
        ),
        Experiment(
            "table10", "Human evaluation on Alpaca-CoachLM and Alpaca",
            ("repro.judges.human", "repro.llm.generation"),
            "benchmarks/test_bench_table10_human_llm.py",
        ),
        Experiment(
            "table11", "Performance of CoachLM with varying backbone models",
            ("repro.llm.backbone", "repro.core.training"),
            "benchmarks/test_bench_table11_backbones.py",
        ),
        Experiment(
            "fig4", "ChatGPT rating histogram before/after CoachLM revision",
            ("repro.judges.chatgpt", "repro.analysis.histogram"),
            "benchmarks/test_bench_fig4_chatgpt_hist.py",
        ),
        Experiment(
            "fig5", "Win rate vs human-input ratio α (CoachLM and Alpaca-human)",
            ("repro.core.selection", "repro.analysis.linear_fit"),
            "benchmarks/test_bench_fig5_alpha_sweep.py",
        ),
        Experiment(
            "fig6", "Deployment in an LLM data management system",
            ("repro.deployment",),
            "benchmarks/test_bench_fig6_deployment.py",
        ),
    )
}
