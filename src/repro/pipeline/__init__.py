"""Experiment orchestration: the workbench, artifact cache and registry."""

from .cache import ArtifactCache
from .workbench import MODEL_KEYS, Workbench
from .registry import EXPERIMENTS, Experiment

__all__ = ["ArtifactCache", "Workbench", "MODEL_KEYS", "EXPERIMENTS", "Experiment"]
