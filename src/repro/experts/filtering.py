"""Preliminary filtering — Table III of the paper.

Before the primary revision, group-A experts excluded 1088 of 6000 sampled
pairs whose key content was invalid, whose scene was overly professional,
whose rewrite workload was massive, which referenced unsupported
modalities, or which were unsafe.  The filter below detects the same five
classes *from pair text* (marker phrases and the unsafe span), never from
the generator's hidden labels.

Excluded pairs "still participated in subsequent LLM training for fair
comparison" — so the filter returns both partitions and the caller keeps
the excluded pairs in the tuning corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.dataset import InstructionDataset
from ..data.instruction_pair import InstructionPair
from ..textgen import vocabulary as V

#: Text markers for each Table III exclusion reason, checked in order.
_REASON_MARKERS: tuple[tuple[str, tuple[tuple[str, ...], ...]], ...] = (
    ("invalid_input", (("link",),)),
    ("beyond_expertise", (("chords",), ("scale",))),
    ("massive_workload", (("whole", "page"), ("rewrite", "the", "whole"))),
    ("multimodal", (("photo",), ("image",), ("video",))),
)

#: Paper ratios of the 1088 excluded pairs, for reporting alongside ours.
PAPER_TABLE3_RATIOS = {
    "invalid_input": 0.417,
    "beyond_expertise": 0.277,
    "massive_workload": 0.082,
    "multimodal": 0.065,
    "safety": 0.159,
}


@dataclass(frozen=True)
class FilterDecision:
    """Outcome of the preliminary filter for one pair."""

    pair: InstructionPair
    excluded: bool
    reason: str | None = None


def _contains_phrase(tokens: list[str], phrase: tuple[str, ...]) -> bool:
    n = len(phrase)
    return any(
        tuple(tokens[i : i + n]) == phrase for i in range(len(tokens) - n + 1)
    )


def classify_exclusion(pair: InstructionPair) -> str | None:
    """Return the Table III exclusion reason, or None if the pair is usable."""
    instr = pair.instruction_tokens
    resp = pair.response_tokens
    for reason, markers in _REASON_MARKERS:
        if any(_contains_phrase(instr, m) for m in markers):
            return reason
    unsafe = tuple(V.UNSAFE_PHRASE)
    unsafe_hits = sum(
        1 for i in range(len(resp))
        if tuple(resp[i : i + len(unsafe)]) == unsafe
    )
    if _contains_phrase(instr, unsafe) or unsafe_hits >= 2:
        # A single unsafe span is a revisable safety flaw (Table IV's
        # "mitigate safety issues" row); overtly toxic pairs (two or more
        # spans, or an unsafe request) are excluded outright.
        return "safety"
    return None


def preliminary_filter(
    dataset: InstructionDataset,
    retain_fraction: float = 0.0,
    rng=None,
) -> tuple[list[FilterDecision], list[FilterDecision]]:
    """Partition a dataset into (kept, excluded) with reasons.

    ``retain_fraction`` optionally keeps a small share of would-be-excluded
    pairs in the revision pool: the paper notes "a small proportion of such
    pairs were retained during the revision to ensure diversity".
    """
    kept: list[FilterDecision] = []
    excluded: list[FilterDecision] = []
    for pair in dataset:
        reason = classify_exclusion(pair)
        if reason is None:
            kept.append(FilterDecision(pair, excluded=False))
            continue
        if retain_fraction > 0.0 and rng is not None and rng.random() < retain_fraction:
            kept.append(FilterDecision(pair, excluded=False, reason=reason))
            continue
        excluded.append(FilterDecision(pair, excluded=True, reason=reason))
    return kept, excluded


def exclusion_distribution(
    excluded: list[FilterDecision],
) -> dict[str, float]:
    """Ratio of each exclusion reason among excluded pairs (Table III)."""
    if not excluded:
        return {}
    counts: dict[str, int] = {}
    for decision in excluded:
        assert decision.reason is not None
        counts[decision.reason] = counts.get(decision.reason, 0) + 1
    total = len(excluded)
    return {reason: count / total for reason, count in sorted(counts.items())}
