"""The end-to-end expert revision campaign (Section II-E) with costs.

Pipeline: preliminary filtering → expertise-based assignment → primary
revision → quality control — and the person-day accounting that the paper
totals at 129 person-days for 6k examined pairs.

Calibrated daily rates (pairs per expert per day):

* preliminary review: 150/day  → 6000 pairs ≈ 40 days
* primary revision:    35/day  → 2301 pairs ≈ 66 days
* quality control:    100/day  → 2301 pairs ≈ 23 days

Total ≈ 129 person-days, matching the paper's reported effort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import InstructionDataset
from ..data.instruction_pair import InstructionPair
from ..quality.scorer import CriteriaScorer
from .assignment import UnitAssignment, assign_units, unit_for_pair
from .filtering import FilterDecision, exclusion_distribution, preliminary_filter
from .profiles import GROUP_A, ExpertProfile
from .revision import ExpertReviser, RevisionRecord

REVIEW_RATE_PER_DAY = 150.0
REVISION_RATE_PER_DAY = 35.0
QC_RATE_PER_DAY = 100.0


@dataclass(frozen=True)
class CampaignCosts:
    """Person-day accounting of one campaign."""

    review_days: float
    revision_days: float
    qc_days: float

    @property
    def total_days(self) -> float:
        return self.review_days + self.revision_days + self.qc_days


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    examined: int
    kept: list[FilterDecision]
    excluded: list[FilterDecision]
    records: list[RevisionRecord]
    costs: CampaignCosts
    units: dict[str, UnitAssignment] = field(default_factory=dict)

    @property
    def revision_dataset(self) -> list[RevisionRecord]:
        """The expert revision dataset R = {(x, x_r)}."""
        return self.records

    @property
    def revised_pairs(self) -> InstructionDataset:
        return InstructionDataset(
            (r.revised for r in self.records), name="expert-revised"
        )

    @property
    def instruction_revised_count(self) -> int:
        return sum(1 for r in self.records if r.instruction_revised)

    def exclusion_distribution(self) -> dict[str, float]:
        """Table III: ratios of exclusion reasons."""
        return exclusion_distribution(self.excluded)

    def table4_response_distribution(self) -> dict[str, float]:
        """Table IV (response rows): primary revision-type ratios."""
        buckets = [r.response_bucket for r in self.records if r.response_bucket]
        if not buckets:
            return {}
        return {
            b: buckets.count(b) / len(buckets) for b in sorted(set(buckets))
        }

    def table4_instruction_distribution(self) -> dict[str, float]:
        """Table IV (instruction rows): primary revision-type ratios."""
        buckets = [r.instruction_bucket for r in self.records if r.instruction_bucket]
        if not buckets:
            return {}
        return {
            b: buckets.count(b) / len(buckets) for b in sorted(set(buckets))
        }

    def merge_back(self, dataset: InstructionDataset) -> InstructionDataset:
        """Merge revised pairs back into a full dataset by pair id.

        This is the construction of the paper's Alpaca-human training set:
        "the expert-revised subset was merged back into the ALPACA52K
        dataset".
        """
        replacements = {
            r.revised.pair_id: r.revised for r in self.records if r.revised.pair_id
        }
        return dataset.replace_pairs(replacements, name=f"{dataset.name}-human")


class ExpertCampaign:
    """Runs the full revision campaign over a sampled dataset."""

    def __init__(
        self,
        scorer: CriteriaScorer | None = None,
        experts: tuple[ExpertProfile, ...] = GROUP_A,
        retain_fraction: float = 0.02,
        context_add_rate: float = 0.06,
    ):
        self.scorer = scorer or CriteriaScorer()
        self.experts = experts
        self.retain_fraction = retain_fraction
        self.reviser = ExpertReviser(
            scorer=self.scorer, context_add_rate=context_add_rate
        )

    def run(
        self, sample: InstructionDataset, rng: np.random.Generator
    ) -> CampaignResult:
        """Filter, assign and revise ``sample``; returns the full result."""
        kept, excluded = preliminary_filter(
            sample, retain_fraction=self.retain_fraction, rng=rng
        )
        units = assign_units(self.experts)
        unit_counters = {task_class: 0 for task_class in units}

        records: list[RevisionRecord] = []
        for decision in kept:
            pair = decision.pair
            unit = unit_for_pair(pair, units)
            members = unit.members
            expert = members[unit_counters[unit.task_class] % len(members)]
            unit_counters[unit.task_class] += 1
            record = self.reviser.revise(pair, rng, expert, unit.task_class)
            if record is not None:
                records.append(record)

        costs = CampaignCosts(
            review_days=len(sample) / REVIEW_RATE_PER_DAY,
            revision_days=len(records) / REVISION_RATE_PER_DAY,
            qc_days=len(records) / QC_RATE_PER_DAY,
        )
        return CampaignResult(
            examined=len(sample),
            kept=kept,
            excluded=excluded,
            records=records,
            costs=costs,
            units=units,
        )
