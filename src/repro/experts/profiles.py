"""Expert profiles — Table I of the paper.

26 language experts in three non-overlapping groups:

====== ====================== ======= =======================
Group  Task                   Experts Average experience
====== ====================== ======= =======================
A      Revise pairs           17      11.29 years
B      Create test set        6       5.64 years
C      Evaluate CoachLM       3       12.57 years
====== ====================== ======= =======================

Experience values are synthetic but average to exactly the paper's
figures; group A's spread drives the expertise-based unit assignment
(Section II-E2: units average 9.4 / 11.2 / 13.1 years).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExpertProfile:
    """One language expert."""

    name: str
    group: str
    years_experience: float
    skills: tuple[str, ...] = (
        "translation", "localization", "proofreading", "editing",
        "copy-writing", "technical writing", "linguistic testing",
    )


def _make_group(group: str, years: list[float]) -> tuple[ExpertProfile, ...]:
    return tuple(
        ExpertProfile(name=f"expert-{group}{i + 1:02d}", group=group,
                      years_experience=float(y))
        for i, y in enumerate(years)
    )


#: Group A: 17 experts, average 11.29 years (sum 191.93).
GROUP_A = _make_group("A", [
    5.2, 6.1, 7.3, 8.0, 8.9, 9.5, 10.0, 10.4, 11.0, 11.3, 12.0, 12.6,
    13.2, 14.0, 15.3, 16.8, 20.33,
])

#: Group B: 6 experts, average 5.64 years (sum 33.84).
GROUP_B = _make_group("B", [3.5, 4.2, 5.0, 5.8, 6.9, 8.44])

#: Group C: 3 experts, average 12.57 years (sum 37.71).
GROUP_C = _make_group("C", [10.5, 12.5, 14.71])

GROUPS: dict[str, tuple[ExpertProfile, ...]] = {
    "A": GROUP_A, "B": GROUP_B, "C": GROUP_C,
}

GROUP_TASKS = {
    "A": "Revise Instruction Pairs",
    "B": "Create Test Set",
    "C": "Evaluate CoachLM",
}


def average_experience(group: tuple[ExpertProfile, ...]) -> float:
    return sum(e.years_experience for e in group) / len(group)


def group_profile_table() -> list[dict[str, object]]:
    """Rows of Table I: group, task, expert count, average experience."""
    return [
        {
            "group": name,
            "task": GROUP_TASKS[name],
            "number_of_experts": len(members),
            "average_years_of_experience": round(average_experience(members), 2),
        }
        for name, members in GROUPS.items()
    ]
