"""The simulated expert revision campaign (Sections II-C and II-E).

* :mod:`repro.experts.profiles` — the 26 language experts of Table I,
  split into groups A (revision), B (test-set creation), C (evaluation).
* :mod:`repro.experts.filtering` — the preliminary filter excluding
  Table III pairs (invalid input, beyond expertise, massive workload,
  multi-modal, safety).
* :mod:`repro.experts.assignment` — expertise-based assignment of pairs to
  the three group-A units by task difficulty class.
* :mod:`repro.experts.revision` — per-dimension revision operators that
  repair a pair until it scores ≥ 95 under the Table II rubric.
* :mod:`repro.experts.workflow` — the end-to-end campaign: filter, assign,
  revise, classify revisions into Table IV buckets, account person-days.
"""

from .profiles import (
    GROUP_A,
    GROUP_B,
    GROUP_C,
    ExpertProfile,
    group_profile_table,
)
from .filtering import FilterDecision, preliminary_filter
from .assignment import UNIT_CLASS_ORDER, UnitAssignment, assign_units
from .revision import ExpertReviser, RevisionRecord
from .workflow import CampaignCosts, CampaignResult, ExpertCampaign

__all__ = [
    "ExpertProfile",
    "GROUP_A",
    "GROUP_B",
    "GROUP_C",
    "group_profile_table",
    "FilterDecision",
    "preliminary_filter",
    "UnitAssignment",
    "UNIT_CLASS_ORDER",
    "assign_units",
    "ExpertReviser",
    "RevisionRecord",
    "ExpertCampaign",
    "CampaignCosts",
    "CampaignResult",
]
