"""Expert revision operators (Section II-E2).

An expert revises a flagged pair "making all necessary revisions,
regardless of the importance of the revised dimensions", until it scores
95+ under the Table II rubric.  The simulator reproduces this with oracle
knowledge of the task (the stand-in for the expert's own competence):

* a violated instruction is re-rendered cleanly from provenance;
* a flawed response is rewritten as the ideal rich + polite response;
* for a small share of otherwise-clean instructions the expert chooses to
  *diversify the context* — the paper's 7% Contextualization row.

Every revision is classified into the Table IV bucket of its primary
revision type, so the campaign can report the same distribution table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.instruction_pair import InstructionPair, Origin
from ..editdist import pair_edit_distance
from ..errors import ScoringError
from ..quality.scorer import CriteriaScorer, SideReport, analyze_response
from ..textgen.tasks import get_category, solve
from ..textgen import grammar
from ..textgen.responses import (
    contextualize_instruction,
    detokenize,
    has_context_marker,
    ideal_response,
)
from ..textgen.tasks import render_instruction
from .profiles import ExpertProfile

#: Table IV bucket names — response side.
BUCKET_EXPAND = "expand"
BUCKET_REWRITE = "rewrite_content"
BUCKET_LAYOUT_TONE = "adjust_layout_tone"
BUCKET_CALC = "fix_calculation"
BUCKET_SAFETY = "safety_other"

#: Table IV bucket names — instruction side.
BUCKET_I_READ = "instr_readability"
BUCKET_I_FEAS = "instr_feasibility"
BUCKET_I_CTX = "instr_contextualization"

#: Paper ratios for the response buckets (Table IV).
PAPER_TABLE4_RESPONSE = {
    BUCKET_EXPAND: 0.437,
    BUCKET_REWRITE: 0.245,
    BUCKET_LAYOUT_TONE: 0.233,
    BUCKET_CALC: 0.067,
    BUCKET_SAFETY: 0.019,
}

#: Paper ratios for the instruction buckets (Table IV).
PAPER_TABLE4_INSTRUCTION = {
    BUCKET_I_READ: 0.681,
    BUCKET_I_FEAS: 0.249,
    BUCKET_I_CTX: 0.070,
}

_NUMERIC = frozenset({
    "add_numbers", "subtract_numbers", "next_number", "count_items",
    "max_number", "min_number", "extract_number",
    "compare_bigger", "compare_smaller",
})


@dataclass(frozen=True)
class RevisionRecord:
    """One ``(x, x_r)`` element of the expert revision dataset R."""

    original: InstructionPair
    revised: InstructionPair
    expert: ExpertProfile
    task_class: str
    instruction_bucket: str | None
    response_bucket: str | None
    edit_distance: int

    @property
    def instruction_revised(self) -> bool:
        return self.original.instruction != self.revised.instruction

    @property
    def response_revised(self) -> bool:
        return self.original.response != self.revised.response

    def to_json(self) -> dict:
        return {
            "original": self.original.to_json(),
            "revised": self.revised.to_json(),
            "expert": self.expert.name,
            "expert_group": self.expert.group,
            "expert_years": self.expert.years_experience,
            "task_class": self.task_class,
            "instruction_bucket": self.instruction_bucket,
            "response_bucket": self.response_bucket,
            "edit_distance": self.edit_distance,
        }

    @staticmethod
    def from_json(blob: dict) -> "RevisionRecord":
        return RevisionRecord(
            original=InstructionPair.from_json(blob["original"]),
            revised=InstructionPair.from_json(blob["revised"]),
            expert=ExpertProfile(
                name=blob["expert"],
                group=blob["expert_group"],
                years_experience=blob["expert_years"],
            ),
            task_class=blob["task_class"],
            instruction_bucket=blob["instruction_bucket"],
            response_bucket=blob["response_bucket"],
            edit_distance=blob["edit_distance"],
        )


class ExpertReviser:
    """Applies expert revisions to flagged pairs.

    Parameters
    ----------
    scorer:
        The rubric scorer standing in for expert judgement.
    context_add_rate:
        Probability of choosing a context-diversification revision for a
        pair whose instruction is otherwise clean (calibrates Table IV's
        7% Contextualization row).
    """

    def __init__(
        self,
        scorer: CriteriaScorer | None = None,
        context_add_rate: float = 0.06,
    ):
        self.scorer = scorer or CriteriaScorer()
        self.context_add_rate = context_add_rate

    def revise(
        self,
        pair: InstructionPair,
        rng: np.random.Generator,
        expert: ExpertProfile,
        task_class: str,
    ) -> RevisionRecord | None:
        """Revise a pair if flagged; return None when no revision is needed."""
        report = self.scorer.score_pair(pair)
        if not report.needs_revision:
            return None

        instruction, instr_bucket = self._revise_instruction(pair, report.instruction, rng)
        response, resp_bucket = self._revise_response(pair, report.response)

        revised = pair.with_text(instruction, response, Origin.EXPERT_REVISED)
        if revised.instruction == pair.instruction and revised.response == pair.response:
            return None

        # Quality control by the unit owner: whenever an oracle exists to
        # verify it, a rewritten response must reach the 95 bar and a
        # repaired instruction must clear its basic dimensions.
        if pair.provenance is not None:
            check = self.scorer.score_pair(revised)
            if response != pair.response and check.response.score < 95.0:
                raise ScoringError(
                    f"expert revision failed quality control: response scored "
                    f"{check.response.score} for pair {pair.pair_id!r}"
                )
            if instruction != pair.instruction and any(
                v in ("feasibility", "readability")
                for v in check.instruction.violations
            ):
                raise ScoringError(
                    f"expert revision failed quality control: instruction "
                    f"still flawed for pair {pair.pair_id!r}"
                )

        return RevisionRecord(
            original=pair,
            revised=revised,
            expert=expert,
            task_class=task_class,
            instruction_bucket=instr_bucket,
            response_bucket=resp_bucket,
            edit_distance=pair_edit_distance(pair, revised),
        )

    # -- instruction side ----------------------------------------------------------
    def _revise_instruction(
        self,
        pair: InstructionPair,
        report: SideReport,
        rng: np.random.Generator,
    ) -> tuple[str, str | None]:
        violations = set(report.violations) & {"feasibility", "readability"}
        tokens = pair.instruction_tokens

        if violations:
            if pair.provenance is not None:
                clean, _ = render_instruction(pair.provenance)
                if has_context_marker(tokens):
                    clean = contextualize_instruction(clean, rng)
            else:
                # No oracle: repair the surface only (retained filter pairs).
                clean = grammar.dedupe_adjacent(
                    grammar.fix_typos(grammar.strip_noise(tokens))
                )
            bucket = BUCKET_I_FEAS if "feasibility" in violations else BUCKET_I_READ
            return detokenize(clean), bucket

        if (
            pair.provenance is not None
            and not has_context_marker(tokens)
            and rng.random() < self.context_add_rate
        ):
            enriched = contextualize_instruction(tokens, rng)
            return detokenize(enriched), BUCKET_I_CTX

        return pair.instruction, None

    # -- response side ----------------------------------------------------------------
    def _revise_response(
        self, pair: InstructionPair, report: SideReport
    ) -> tuple[str, str | None]:
        violations = set(report.violations)
        if not violations:
            return pair.response, None

        if pair.provenance is not None:
            revised = detokenize(ideal_response(pair.provenance))
        else:
            tokens = grammar.dedupe_adjacent(
                grammar.fix_typos(grammar.strip_noise(pair.response_tokens))
            )
            tokens = grammar.ensure_terminal_period(tokens) if tokens else tokens
            revised = detokenize(tokens)
        if revised == pair.response:
            return pair.response, None
        return revised, self._classify_response_bucket(pair, report, violations)

    def _classify_response_bucket(
        self,
        pair: InstructionPair,
        report: SideReport,
        violations: set[str],
    ) -> str:
        """Primary Table IV bucket of a response revision.

        Precedence mirrors how the paper's experts labelled revisions by
        their *primary* type: safety first, then semantic rewrites
        (wrong/irrelevant/garbled content), then expansion (terse or
        truncated content), then layout/tone adjustments.
        """
        if "safety" in violations:
            return BUCKET_SAFETY
        if not pair.response_tokens:
            return BUCKET_REWRITE

        analysis = analyze_response(pair)
        if "correctness" in violations:
            answer: list[str] = []
            if pair.provenance is not None:
                category = get_category(pair.provenance.category_id)
                if category.task_class != "creative":
                    answer, _ = solve(pair.provenance)
            if answer and list(analysis.core) == answer[: len(analysis.core)] \
                    and len(analysis.core) < len(answer):
                return BUCKET_EXPAND  # answer itself was truncated mid-way
            category_id = (
                pair.provenance.category_id if pair.provenance is not None else ""
            )
            if category_id in _NUMERIC:
                return BUCKET_CALC
            return BUCKET_REWRITE
        if "relevance" in violations:
            return BUCKET_REWRITE
        if analysis.typo_garble_flaws:
            return BUCKET_REWRITE
        if "richness" in violations:
            return BUCKET_EXPAND
        if "humanization" in violations:
            return BUCKET_LAYOUT_TONE
        if "comprehensiveness" in violations and analysis.because_cut \
                and not analysis.repeat_flaws:
            return BUCKET_EXPAND
        return BUCKET_LAYOUT_TONE
