"""Expertise-based assignment of pairs to expert units (Section II-E2).

The 17 group-A experts are split into three units by years of experience;
each unit owns one task-difficulty class:

* language tasks (objective answers) — least experienced unit (paper: 9.4y);
* Q&A — middle unit (11.2y);
* creative composition — most experienced unit (13.1y).

Each unit also has an *owner* (its most experienced member) responsible
for quality control of the unit's output.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PipelineError
from ..textgen.tasks import CLASS_CREATIVE, CLASS_LANGUAGE, CLASS_QA, get_category
from ..data.instruction_pair import InstructionPair
from .profiles import GROUP_A, ExpertProfile

#: Difficulty order: later classes demand more experienced units.
UNIT_CLASS_ORDER = (CLASS_LANGUAGE, CLASS_QA, CLASS_CREATIVE)


@dataclass(frozen=True)
class UnitAssignment:
    """One expert unit with its owned task class."""

    task_class: str
    members: tuple[ExpertProfile, ...]
    owner: ExpertProfile

    @property
    def average_experience(self) -> float:
        return sum(m.years_experience for m in self.members) / len(self.members)


def assign_units(
    experts: tuple[ExpertProfile, ...] = GROUP_A,
) -> dict[str, UnitAssignment]:
    """Split experts into three units by experience tertile.

    The unit sizes follow the paper's workload estimate: language tasks are
    the most numerous, so the largest unit owns them.
    """
    if len(experts) < 3:
        raise PipelineError("need at least three experts to form units")
    ordered = sorted(experts, key=lambda e: e.years_experience)
    third = len(ordered) // 3
    splits = (
        ordered[: third + len(ordered) % 3],
        ordered[third + len(ordered) % 3 : 2 * third + len(ordered) % 3],
        ordered[2 * third + len(ordered) % 3 :],
    )
    units: dict[str, UnitAssignment] = {}
    for task_class, members in zip(UNIT_CLASS_ORDER, splits):
        owner = max(members, key=lambda e: e.years_experience)
        units[task_class] = UnitAssignment(
            task_class=task_class, members=tuple(members), owner=owner
        )
    return units


def unit_for_pair(
    pair: InstructionPair, units: dict[str, UnitAssignment]
) -> UnitAssignment:
    """Route a pair to the unit owning its difficulty class.

    Unprovenanced pairs (retained filter-class pairs) go to the most
    experienced unit, since their revision is the least routine.
    """
    if pair.provenance is None:
        return units[CLASS_CREATIVE]
    task_class = get_category(pair.provenance.category_id).task_class
    return units[task_class]
