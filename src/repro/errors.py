"""Exception hierarchy for the CoachLM reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class VocabularyError(ReproError):
    """A token was requested that the microtext vocabulary does not define."""


class DatasetError(ReproError):
    """An instruction dataset is malformed or an IO operation failed."""


class ScoringError(ReproError):
    """The quality scorer received a pair it cannot evaluate."""


class ModelError(ReproError):
    """A neural-network component was used inconsistently."""


class GenerationError(ReproError):
    """Text generation failed (e.g. exceeded the model context window)."""


class JudgeError(ReproError):
    """An evaluation judge received invalid candidates."""


class PipelineError(ReproError):
    """An experiment pipeline stage failed or was mis-ordered."""


class ServingError(ReproError):
    """The online revision service failed or was misused."""


class AdmissionError(ServingError):
    """A request was rejected by the serving queue's admission control."""
