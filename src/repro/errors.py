"""Exception hierarchy for the CoachLM reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class VocabularyError(ReproError):
    """A token was requested that the microtext vocabulary does not define."""


class DatasetError(ReproError):
    """An instruction dataset is malformed or an IO operation failed."""


class ScoringError(ReproError):
    """The quality scorer received a pair it cannot evaluate."""


class ModelError(ReproError):
    """A neural-network component was used inconsistently."""


class GenerationError(ReproError):
    """Text generation failed (e.g. exceeded the model context window)."""


class JudgeError(ReproError):
    """An evaluation judge received invalid candidates."""


class PipelineError(ReproError):
    """An experiment pipeline stage failed or was mis-ordered."""


class ServingError(ReproError):
    """The online revision service failed or was misused."""


class AdmissionError(ServingError):
    """A request was rejected by the serving queue's admission control."""


class OverloadError(AdmissionError):
    """A request was shed: the service is saturated, degraded, or draining.

    Unlike a plain :class:`AdmissionError` (a bounded queue answering
    "try again soon", HTTP 429), an overload means the service chose to
    shed load — the fleet is partially dead, draining for shutdown, or
    the request lost a priority fight for the last queue slot.  The HTTP
    front-end maps it to ``503`` with a ``Retry-After`` of
    :attr:`retry_after_s`.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class JournalError(ServingError):
    """A run journal is unusable (unwritable path, malformed header)."""


class JournalMismatchError(JournalError):
    """A journal was opened against different inputs than it recorded.

    The journal's header pins the configuration hash and dataset
    fingerprint of the run that wrote it; resuming against anything else
    would silently splice stale results into a fresh dataset, so the
    mismatch is a refusal, never a warning.
    """


class RetryBudgetExceededError(ServingError):
    """An HTTP revision client spent its whole retry budget on one request.

    The typed give-up state of :class:`~repro.serving.httpclient.
    RevisionHTTPClient`: every transport fault and 429/503 backoff for
    the request was retried up to the configured budget and the last
    attempt still failed.  Carries the final underlying error as
    ``__cause__``.
    """


class WorkerLostError(ServingError):
    """A request's worker process died and the requeue budget is spent.

    Raised out of :meth:`RevisionFuture.result` — the typed terminal
    state of a request whose fleet worker crashed or hung more times
    than the fleet was willing to recompute it.  The request was never
    silently dropped *or* duplicated: every requeue re-decodes from
    scratch (same tokens, greedy decode is deterministic) and the future
    resolves exactly once, with a result or with this error.
    """
