"""repro — a reproduction of *CoachLM: Automatic Instruction Revisions
Improve the Data Quality in LLM Instruction Tuning* (ICDE 2024).

The package implements the paper's full pipeline over a closed synthetic
language (see DESIGN.md for the substitution rationale):

* :mod:`repro.textgen` — the microtext language and 42-category taxonomy;
* :mod:`repro.data` — instruction pairs, datasets, the ALPACA52K simulacrum;
* :mod:`repro.quality` — the Table II nine-dimension rubric;
* :mod:`repro.editdist` — Levenshtein distances used for α-selection;
* :mod:`repro.experts` — the simulated expert revision campaign;
* :mod:`repro.nn` — a from-scratch numpy autograd + transformer + LoRA;
* :mod:`repro.llm` — tokenizer, backbones, instruction tuning, model zoo;
* :mod:`repro.judges` — ChatGPT / GPT-4 / PandaLM / human judge simulacra;
* :mod:`repro.core` — **CoachLM itself**: coach pair construction,
  α-selection, coach instruction tuning, dataset revision, post-processing;
* :mod:`repro.testsets` — the four instruction-following test sets;
* :mod:`repro.pipeline` — experiment orchestration and caching;
* :mod:`repro.serving` — the online revision service: asynchronous
  request intake, streaming scheduler over the batched engine, HTTP
  front-end;
* :mod:`repro.deployment` — the Fig. 6 data-management platform simulator;
* :mod:`repro.analysis` — histograms, linear fits, table rendering.
"""

from .config import (
    DEFAULT_SEED,
    PRESETS,
    ScaleConfig,
    ServingConfig,
    get_scale,
    make_rng,
)
from .errors import (
    AdmissionError,
    ConfigError,
    DatasetError,
    GenerationError,
    JudgeError,
    ModelError,
    PipelineError,
    ReproError,
    ScoringError,
    ServingError,
    VocabularyError,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SEED",
    "PRESETS",
    "ScaleConfig",
    "ServingConfig",
    "get_scale",
    "make_rng",
    "ReproError",
    "AdmissionError",
    "ServingError",
    "ConfigError",
    "DatasetError",
    "GenerationError",
    "JudgeError",
    "ModelError",
    "PipelineError",
    "ScoringError",
    "VocabularyError",
    "__version__",
]
