"""LLM simulacra: tokenizer, backbones, tuning recipes and the model zoo.

Everything the paper calls an "LLM" lives here at tiny scale:

* :mod:`repro.llm.tokenizer` — word-level tokenizer over the closed
  microtext vocabulary plus special and template tokens;
* :mod:`repro.llm.prompts` — the Alpaca-style instruction template and the
  Fig. 3 coach revision template;
* :mod:`repro.llm.backbone` — backbone specs (LLaMA-sim / ChatGLM-sim /
  ChatGLM2-sim) with pre-training and alignment budgets;
* :mod:`repro.llm.pretrain` — next-token pre-training on the microtext
  corpus;
* :mod:`repro.llm.instruction_tuning` — the Alpaca recipe: fine-tune a
  base LM on an instruction dataset with response-only loss;
* :mod:`repro.llm.engine` — text-level facade over the batched decoding
  engine (fleet-wide KV-cache generation with continuous batching);
* :mod:`repro.llm.generation` — batch response generation on test sets;
* :mod:`repro.llm.model_zoo` — every named model of Table IX, built
  reproducibly from (backbone, dataset) and cached on disk.
"""

from .tokenizer import SpecialTokens, WordTokenizer, build_tokenizer
from .prompts import (
    COACH_PROMPT_WORDS,
    encode_coach_example,
    encode_coach_prompt,
    encode_instruction_example,
    encode_instruction_prompt,
    encode_truncated_instruction_prompt,
    parse_coach_output,
)
from .backbone import BACKBONES, BackboneSpec, build_backbone
from .engine import DEFAULT_BATCH_SIZE, TextEngine
from .pretrain import pretrain_lm
from .instruction_tuning import instruction_tune
from .generation import generate_response, generate_responses

__all__ = [
    "SpecialTokens",
    "WordTokenizer",
    "build_tokenizer",
    "COACH_PROMPT_WORDS",
    "encode_coach_example",
    "encode_coach_prompt",
    "encode_instruction_example",
    "encode_instruction_prompt",
    "encode_truncated_instruction_prompt",
    "parse_coach_output",
    "BACKBONES",
    "BackboneSpec",
    "build_backbone",
    "DEFAULT_BATCH_SIZE",
    "TextEngine",
    "pretrain_lm",
    "instruction_tune",
    "generate_response",
    "generate_responses",
]
