"""Response generation for tuned LLM simulacra."""

from __future__ import annotations

import numpy as np

from ..data.instruction_pair import InstructionPair, Origin
from ..nn.transformer import TransformerLM
from ..textgen.tasks import TaskInstance
from .prompts import encode_instruction_prompt
from .tokenizer import WordTokenizer


def generate_response(
    model: TransformerLM,
    tokenizer: WordTokenizer,
    instruction: str,
    max_new_tokens: int = 48,
) -> str:
    """Greedy-decode a response to one instruction (beam size 1)."""
    prompt = encode_instruction_prompt(tokenizer, instruction)
    context = model.config.max_seq_len
    if len(prompt) >= context - 2:
        prompt = prompt[: context - 2]
    out = model.generate(
        prompt, max_new_tokens=max_new_tokens, eos_id=tokenizer.specials.eos
    )
    return tokenizer.decode(out)


def generate_responses(
    model: TransformerLM,
    tokenizer: WordTokenizer,
    instructions: list[str],
    provenances: list[TaskInstance | None] | None = None,
    max_new_tokens: int = 48,
) -> list[InstructionPair]:
    """Generate responses for a list of instructions.

    Returns model-generated pairs carrying the test items' provenance so
    the judges can run oracle checks against them.
    """
    if provenances is None:
        provenances = [None] * len(instructions)
    pairs: list[InstructionPair] = []
    for instruction, provenance in zip(instructions, provenances):
        response = generate_response(
            model, tokenizer, instruction, max_new_tokens=max_new_tokens
        )
        pairs.append(
            InstructionPair(
                instruction=instruction,
                response=response,
                provenance=provenance,
                origin=Origin.MODEL_GENERATED,
            )
        )
    return pairs
