"""Response generation for tuned LLM simulacra."""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_GEN_BATCH_SIZE
from ..data.instruction_pair import InstructionPair, Origin
from ..nn.transformer import TransformerLM
from ..textgen.tasks import TaskInstance
from .prompts import encode_truncated_instruction_prompt
from .tokenizer import WordTokenizer


def generate_response(
    model: TransformerLM,
    tokenizer: WordTokenizer,
    instruction: str,
    max_new_tokens: int = 48,
) -> str:
    """Greedy-decode a response to one instruction (beam size 1)."""
    prompt = encode_truncated_instruction_prompt(
        tokenizer, instruction, model.config.max_seq_len
    )
    out = model.generate(
        prompt, max_new_tokens=max_new_tokens, eos_id=tokenizer.specials.eos
    )
    return tokenizer.decode(out)


def generate_responses(
    model: TransformerLM,
    tokenizer: WordTokenizer,
    instructions: list[str],
    provenances: list[TaskInstance | None] | None = None,
    max_new_tokens: int = 48,
    batch_size: int = DEFAULT_GEN_BATCH_SIZE,
    prefill_chunk_tokens: int | None = None,
    prefill_concurrency: int = 1,
    kv_page_tokens: int | None = None,
) -> list[InstructionPair]:
    """Generate responses for a list of instructions.

    Decoding runs through the batched engine (``batch_size`` sequences
    per forward pass, ragged batched prefill, continuous slot refill)
    and is token-identical to calling :func:`generate_response` per
    instruction.  Returns model-generated pairs carrying the test items'
    provenance so the judges can run oracle checks against them.
    """
    from .engine import TextEngine

    if provenances is None:
        provenances = [None] * len(instructions)
    engine = TextEngine(
        model,
        tokenizer,
        batch_size=batch_size,
        prefill_chunk_tokens=prefill_chunk_tokens,
        prefill_concurrency=prefill_concurrency,
        kv_page_tokens=kv_page_tokens,
    )
    responses = engine.respond(instructions, max_new_tokens=max_new_tokens)
    return [
        InstructionPair(
            instruction=instruction,
            response=response,
            provenance=provenance,
            origin=Origin.MODEL_GENERATED,
        )
        for instruction, response, provenance in zip(
            instructions, responses, provenances
        )
    ]
