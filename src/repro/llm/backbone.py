"""Backbone LM specs — the Table XI ablation axis.

The paper trains CoachLM from three open-source backbones and finds that
stronger alignment helps coach tuning: LLaMA (foundation only) < ChatGLM
(RL-tuned) < ChatGLM2 (RL-tuned, newer).  We reproduce the *axis* —
backbones differing in pre-training budget and alignment quality — with
three specs:

* ``llama-sim``     — pre-training only (a foundation model);
* ``chatglm-sim``   — pre-training + alignment on conversation-grade data;
* ``chatglm2-sim``  — more pre-training + alignment on curated data.

Alignment here is a real instruction-tuning pass on synthetic corpora of
the corresponding quality profile, so the Table XI ordering can *emerge*
from training rather than being asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ScaleConfig
from ..data.alpaca_generator import (
    CONVERSATION_PROFILE,
    PROPRIETARY_PROFILE,
    GeneratorProfile,
    generate_dataset,
)
from ..errors import ConfigError
from ..nn.transformer import TransformerConfig, TransformerLM
from .instruction_tuning import TuningRecipe, instruction_tune
from .pretrain import pretrain_lm
from .tokenizer import WordTokenizer


@dataclass(frozen=True)
class BackboneSpec:
    """One backbone: pre-training budget plus optional alignment pass."""

    name: str
    size_label: str
    pretrain_factor: float
    align_profile: GeneratorProfile | None
    align_fraction: float = 0.25  #: alignment corpus size vs scale.dataset_size
    use_large: bool = False

    def describe(self) -> str:
        align = self.align_profile.name if self.align_profile else "none"
        return (
            f"{self.name} ({self.size_label}, pretrain×{self.pretrain_factor}, "
            f"align={align})"
        )


BACKBONES: dict[str, BackboneSpec] = {
    "llama-sim": BackboneSpec(
        name="llama-sim", size_label="7B-sim",
        pretrain_factor=1.0, align_profile=None,
    ),
    "chatglm-sim": BackboneSpec(
        name="chatglm-sim", size_label="6B-sim",
        pretrain_factor=1.0, align_profile=CONVERSATION_PROFILE,
        align_fraction=0.20,
    ),
    "chatglm2-sim": BackboneSpec(
        name="chatglm2-sim", size_label="6B-sim",
        pretrain_factor=1.3, align_profile=PROPRIETARY_PROFILE,
        align_fraction=0.30,
    ),
    "llama-13b-sim": BackboneSpec(
        name="llama-13b-sim", size_label="13B-sim",
        pretrain_factor=1.2, align_profile=None, use_large=True,
    ),
}


def build_backbone(
    spec: BackboneSpec,
    scale: ScaleConfig,
    tokenizer: WordTokenizer,
    rng: np.random.Generator,
) -> TransformerLM:
    """Pre-train (and optionally align) a backbone per ``spec``."""
    if spec.name not in BACKBONES:
        raise ConfigError(f"unknown backbone {spec.name!r}")
    dims = scale.large_model if spec.use_large else scale.base_model
    config = TransformerConfig(
        vocab_size=tokenizer.vocab_size,
        d_model=dims.d_model,
        n_layers=dims.n_layers,
        n_heads=dims.n_heads,
        max_seq_len=dims.max_seq_len,
    )
    model = TransformerLM(config, rng)
    pretrain_lm(
        model,
        tokenizer,
        rng,
        steps=int(scale.pretrain_steps * spec.pretrain_factor),
        batch_size=scale.batch_size,
    )
    if spec.align_profile is not None:
        align_size = max(16, int(scale.dataset_size * spec.align_fraction))
        align_data = generate_dataset(
            rng, align_size, spec.align_profile,
            name=f"{spec.name}-align",
        )
        recipe = TuningRecipe(
            epochs=max(1, scale.finetune_epochs - 1),
            batch_size=scale.batch_size,
            learning_rate=scale.learning_rate,
        )
        model, _ = instruction_tune(model, tokenizer, align_data, rng, recipe)
    return model
