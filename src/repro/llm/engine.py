"""Text-level facade over the batched decoding engine.

Inference engine
----------------

:class:`repro.nn.decoding.BatchedEngine` works in token-id space; this
module binds it to a :class:`WordTokenizer` so pipeline stages can hand
over plain strings.  :class:`TextEngine` owns one model + tokenizer and

* ``complete(prompts)`` — decode continuations for pre-encoded prompts;
* ``respond(instructions)`` — wrap instructions in the Alpaca template
  (with the same context-window truncation as the sequential
  :func:`repro.llm.generation.generate_response`) and decode responses;
* ``submit(text)`` / ``pump()`` / ``respond_iter(instructions)`` — the
  streaming counterparts over the engine's incremental
  ``submit``/``step``/``collect`` API: responses surface in *completion*
  order as slots retire, which is what the serving layer builds on.

All paths are EOS-terminated and token-identical to their sequential
counterparts — greedy by default, or seeded top-k sampling when
``top_k`` is passed (each sequence draws from its own spawned rng
stream, matching :meth:`TransformerLM.generate` under the same seed);
the fleet advances ``batch_size`` sequences per forward pass with
continuous slot refill, ``prefill_chunk_tokens`` bounds how long a
refill prompt may stall in-flight decodes, and ``prefill_concurrency``
lets that many refill prompts advance their chunked prefill together in
one ragged forward per step (see
:class:`~repro.nn.decoding.BatchedEngine`).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..config import DEFAULT_GEN_BATCH_SIZE as DEFAULT_BATCH_SIZE
from ..nn.decoding import BatchedEngine, GenerationRequest
from ..nn.transformer import TransformerLM
from .prompts import encode_truncated_instruction_prompt
from .tokenizer import WordTokenizer


class TextEngine:
    """Batched text generation bound to one (model, tokenizer)."""

    def __init__(
        self,
        model: TransformerLM,
        tokenizer: WordTokenizer,
        batch_size: int = DEFAULT_BATCH_SIZE,
        prefill_chunk_tokens: int | None = None,
        prefill_concurrency: int = 1,
        kv_page_tokens: int | None = None,
    ):
        self.model = model
        self.tokenizer = tokenizer
        self.engine = BatchedEngine(
            model,
            max_batch=batch_size,
            prefill_chunk_tokens=prefill_chunk_tokens,
            prefill_concurrency=prefill_concurrency,
            kv_page_tokens=kv_page_tokens,
        )

    @staticmethod
    def _sampling_rngs(
        n: int, top_k: int | None, seed: int | None
    ) -> list[np.random.Generator | None]:
        """One private rng stream per sequence when sampling, else Nones."""
        if top_k is None:
            return [None] * n
        return [
            np.random.default_rng(ss)
            for ss in np.random.SeedSequence(seed).spawn(n)
        ]

    def complete(
        self,
        prompts: list[list[int]],
        max_new_tokens: int,
        top_k: int | None = None,
        seed: int | None = None,
    ) -> list[list[int]]:
        """EOS-terminated continuations for pre-encoded prompts.

        Greedy by default; with ``top_k`` each prompt samples from its
        own rng stream spawned off ``seed``, so results are reproducible
        and independent of batch composition.
        """
        eos = self.tokenizer.specials.eos
        rngs = self._sampling_rngs(len(prompts), top_k, seed)
        return self.engine.generate(
            [
                GenerationRequest(
                    prompt, max_new_tokens, eos_id=eos, top_k=top_k, rng=rng
                )
                for prompt, rng in zip(prompts, rngs)
            ]
        )

    def respond(
        self,
        instructions: list[str],
        max_new_tokens: int = 48,
        top_k: int | None = None,
        seed: int | None = None,
    ) -> list[str]:
        """Responses to a batch of instructions (Alpaca template)."""
        context = self.model.config.max_seq_len
        prompts = [
            encode_truncated_instruction_prompt(self.tokenizer, text, context)
            for text in instructions
        ]
        return [
            self.tokenizer.decode(out)
            for out in self.complete(prompts, max_new_tokens, top_k, seed)
        ]

    # -- streaming ---------------------------------------------------------------
    def submit(
        self, instruction: str, max_new_tokens: int = 48, priority: int = 0
    ) -> int:
        """Enqueue one instruction (Alpaca template); returns its sequence id.

        The request joins the decode fleet at the next :meth:`pump`, in
        the first free or retiring slot — it does not wait for the
        in-flight batch to drain.  ``priority`` orders admission (smaller
        is more urgent) and, when the engine has preemption enabled,
        marks which in-flight decodes a more urgent arrival may evict.
        """
        context = self.model.config.max_seq_len
        prompt = encode_truncated_instruction_prompt(
            self.tokenizer, instruction, context
        )
        return self.engine.submit(
            GenerationRequest(
                prompt, max_new_tokens, eos_id=self.tokenizer.specials.eos,
                priority=priority,
            )
        )

    def pump(self) -> dict[int, str]:
        """Advance the fleet one step; return newly finished ``{id: text}``.

        The caller must be the engine's only driver (see
        :class:`~repro.nn.decoding.BatchedEngine` on thread-safety).
        """
        self.engine.step()
        return {
            seq_id: self.tokenizer.decode(tokens)
            for seq_id, tokens in self.engine.collect().items()
        }

    def respond_iter(
        self, instructions: list[str], max_new_tokens: int = 48
    ) -> Iterator[tuple[int, str]]:
        """Yield ``(input_index, response)`` in completion order."""
        index_of = {
            self.submit(text, max_new_tokens): i
            for i, text in enumerate(instructions)
        }
        remaining = len(index_of)
        while remaining:
            for seq_id, text in self.pump().items():
                if seq_id not in index_of:
                    # Residue from an earlier abandoned iterator on this
                    # engine: its caller is gone, drop the result.
                    continue
                remaining -= 1
                yield index_of[seq_id], text
