"""Prompt templates: the Alpaca instruction format and the Fig. 3 coach format.

Instruction-following template (Alpaca recipe)::

    <bos> instruction : <instruction words> <sep> response : <response words> <eos>

Coach revision template (Fig. 3 of the paper — "a succinct revision
instruction that highlights the primary areas for revision", deliberately
not an exhaustive rubric)::

    <bos> please improve the quality of the instruction and response pair .
    instruction : <original instruction> <sep> response : <original response>
    <sep> revised instruction : <revised instruction>
    <sep> revised response : <revised response> <eos>

The inference-time coach prompt ends right after the second ``<sep>
revised instruction :`` so CoachLM fills in both revised fields;
:func:`parse_coach_output` recovers them.
"""

from __future__ import annotations

from ..data.instruction_pair import InstructionPair
from ..errors import GenerationError
from .tokenizer import WordTokenizer

#: Words of the succinct coach revision instruction (Fig. 3).
COACH_PROMPT_WORDS = (
    "please improve the quality of the instruction and response pair ."
)


def _ids(tokenizer: WordTokenizer, text: str) -> list[int]:
    return tokenizer.encode(text)


# ---------------------------------------------------------------------------
# Instruction-following format
# ---------------------------------------------------------------------------


def encode_instruction_prompt(
    tokenizer: WordTokenizer, instruction: str
) -> list[int]:
    """Prompt part of the Alpaca template (model continues with a response)."""
    sp = tokenizer.specials
    return (
        [sp.bos]
        + _ids(tokenizer, "instruction :")
        + _ids(tokenizer, instruction)
        + _ids(tokenizer, "response :")
    )


def encode_truncated_instruction_prompt(
    tokenizer: WordTokenizer, instruction: str, context: int
) -> list[int]:
    """Alpaca prompt truncated to leave decode room in ``context``.

    Both the sequential and batched response-generation paths share this
    rule so they stay token-identical.
    """
    prompt = encode_instruction_prompt(tokenizer, instruction)
    if len(prompt) >= context - 2:
        prompt = prompt[: context - 2]
    return prompt


def encode_instruction_example(
    tokenizer: WordTokenizer, pair: InstructionPair
) -> tuple[list[int], int]:
    """Full training sequence and its prompt length (for loss masking)."""
    sp = tokenizer.specials
    prompt = encode_instruction_prompt(tokenizer, pair.instruction)
    completion = _ids(tokenizer, pair.response) + [sp.eos]
    return prompt + completion, len(prompt)


# ---------------------------------------------------------------------------
# Coach revision format (Fig. 3)
# ---------------------------------------------------------------------------


def encode_coach_prompt(
    tokenizer: WordTokenizer, pair: InstructionPair
) -> list[int]:
    """Inference prompt: revision instruction + original pair."""
    sp = tokenizer.specials
    return (
        [sp.bos]
        + _ids(tokenizer, COACH_PROMPT_WORDS)
        + _ids(tokenizer, "instruction :")
        + _ids(tokenizer, pair.instruction)
        + _ids(tokenizer, "response :")
        + _ids(tokenizer, pair.response)
        + _ids(tokenizer, "revised instruction :")
    )


def encode_coach_example(
    tokenizer: WordTokenizer,
    original: InstructionPair,
    revised: InstructionPair,
) -> tuple[list[int], int]:
    """Training sequence x_c: coach prompt → expert-revised pair (Fig. 3)."""
    sp = tokenizer.specials
    prompt = encode_coach_prompt(tokenizer, original)
    completion = (
        _ids(tokenizer, revised.instruction)
        + _ids(tokenizer, "revised response :")
        + _ids(tokenizer, revised.response)
        + [sp.eos]
    )
    return prompt + completion, len(prompt)


def _find_subsequence(haystack: list[int], needle: list[int]) -> int:
    n = len(needle)
    for i in range(len(haystack) - n + 1):
        if haystack[i : i + n] == needle:
            return i
    return -1


def parse_coach_output(
    tokenizer: WordTokenizer, output_ids: list[int]
) -> tuple[str, str]:
    """Split CoachLM's decoded continuation into (instruction, response).

    The continuation format is::

        <revised instruction> revised response : <revised response> <eos>

    Raises :class:`GenerationError` when the output does not follow the
    format — callers treat that as an invalid revision and fall back to
    the original pair (Section III-B1: ~1.3% of outputs).
    """
    sp = tokenizer.specials
    marker = tokenizer.encode("revised response :")
    cut = _find_subsequence(output_ids, marker)
    if cut < 0:
        raise GenerationError("coach output missing 'revised response :' marker")
    instruction_ids = output_ids[:cut]
    response_ids = output_ids[cut + len(marker) :]
    if sp.eos in response_ids:
        response_ids = response_ids[: response_ids.index(sp.eos)]
    # A second marker in the response means the decoder looped.
    second = _find_subsequence(response_ids, marker)
    if second >= 0:
        response_ids = response_ids[:second]
    instruction = tokenizer.decode(instruction_ids)
    response = tokenizer.decode(response_ids)
    if not instruction or not response:
        raise GenerationError("coach output has an empty field")
    return instruction, response
