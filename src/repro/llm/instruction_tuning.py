"""The Alpaca instruction-tuning recipe (Section III-A3).

Fine-tunes a (copy of a) base LM on an instruction dataset using the
Alpaca template with response-only loss — "we utilized the same settings
as the official Alpaca repository, with the exception of using different
instruction datasets."  The dataset is the *only* variable across the
tuned models compared in Table IX.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import InstructionDataset
from ..errors import ModelError
from ..nn.trainer import LMTrainer, TrainExample, TrainStats
from ..nn.transformer import TransformerLM
from .prompts import encode_instruction_example
from .tokenizer import WordTokenizer


@dataclass(frozen=True)
class TuningRecipe:
    """Hyper-parameters of one instruction-tuning run."""

    epochs: int = 3
    batch_size: int = 32
    learning_rate: float = 1.5e-3
    grad_clip: float = 1.0


def dataset_to_examples(
    tokenizer: WordTokenizer,
    dataset: InstructionDataset,
    max_seq_len: int,
) -> list[TrainExample]:
    """Encode a dataset with the Alpaca template, dropping over-long pairs."""
    examples: list[TrainExample] = []
    for pair in dataset:
        if not pair.response.strip():
            # Empty responses contribute no learnable tokens; the Alpaca
            # recipe still feeds them, so keep a bare EOS completion.
            pass
        tokens, prompt_len = encode_instruction_example(tokenizer, pair)
        if len(tokens) > max_seq_len + 1:
            tokens = tokens[: max_seq_len + 1]
        if prompt_len >= len(tokens):
            continue
        examples.append(TrainExample(tuple(tokens), prompt_len))
    if not examples:
        raise ModelError("dataset produced no usable training examples")
    return examples


def instruction_tune(
    base_model: TransformerLM,
    tokenizer: WordTokenizer,
    dataset: InstructionDataset,
    rng: np.random.Generator,
    recipe: TuningRecipe = TuningRecipe(),
) -> tuple[TransformerLM, TrainStats]:
    """Fine-tune a copy of ``base_model`` on ``dataset``.

    Returns the tuned model and its loss trajectory; the base model is
    left untouched so many variants can be tuned from one pre-trained
    checkpoint, exactly as the paper tunes every Alpaca variant from the
    same LLaMA weights.
    """
    model = base_model.clone()
    examples = dataset_to_examples(tokenizer, dataset, model.config.max_seq_len)
    trainer = LMTrainer(
        model,
        pad_id=tokenizer.specials.pad,
        lr=recipe.learning_rate,
        batch_size=recipe.batch_size,
        grad_clip=recipe.grad_clip,
    )
    stats = trainer.train(examples, epochs=recipe.epochs, rng=rng)
    return model, stats
