"""Next-token pre-training of backbone LMs on the microtext corpus.

Sentences are packed into fixed-length windows separated by ``<sep>``; the
LM predicts every token (prompt_len = 1).  Pre-training instils the
knowledge base, arithmetic and discourse patterns that instruction tuning
later aligns (Section II-F1 of the paper).
"""

from __future__ import annotations

import numpy as np

from ..nn.trainer import LMTrainer, TrainExample, TrainStats
from ..nn.transformer import TransformerLM
from ..textgen.corpus import build_pretrain_corpus
from .tokenizer import WordTokenizer


def pack_corpus(
    tokenizer: WordTokenizer,
    sentences: list[list[str]],
    window: int,
) -> list[TrainExample]:
    """Pack tokenised documents into windows of about ``window`` tokens.

    Packing respects document boundaries: a document is never split across
    windows (long-range drills like the pair-revision sequences must stay
    intact to teach copying).  Documents longer than the window are
    truncated; short documents are grouped, separated by ``<sep>``.
    """
    sp = tokenizer.specials
    examples: list[TrainExample] = []
    current: list[int] = []

    def flush() -> None:
        if len(current) >= 8:
            examples.append(TrainExample(tuple([sp.bos] + current), prompt_len=1))

    for sentence in sentences:
        ids = tokenizer.encode(" ".join(sentence))[:window]
        if len(current) + len(ids) + 1 > window and current:
            flush()
            current = []
        current.extend(ids)
        current.append(sp.sep)
    flush()
    return examples


def pretrain_lm(
    model: TransformerLM,
    tokenizer: WordTokenizer,
    rng: np.random.Generator,
    steps: int,
    batch_size: int = 32,
    lr: float = 2e-3,
    corpus_sentences: int = 2500,
    window: int = 112,
) -> TrainStats:
    """Pre-train ``model`` for roughly ``steps`` optimiser steps."""
    sentences = build_pretrain_corpus(rng, corpus_sentences)
    examples = pack_corpus(tokenizer, sentences, window=window)
    trainer = LMTrainer(model, pad_id=tokenizer.specials.pad,
                        lr=lr, batch_size=batch_size)
    steps_per_epoch = max(1, (len(examples) + batch_size - 1) // batch_size)
    epochs = max(1, int(round(steps / steps_per_epoch)))
    return trainer.train(examples, epochs=epochs, rng=rng)
