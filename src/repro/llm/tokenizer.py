"""Word-level tokenizer over the closed microtext vocabulary.

Microtext is whitespace-tokenised by construction, so the tokenizer is a
bijective word↔id map plus the special tokens every LM pipeline needs.
Unknown words map to ``<unk>`` — they only ever appear when scoring text
produced by an undertrained model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError
from ..textgen.vocabulary import all_words


@dataclass(frozen=True)
class SpecialTokens:
    """Ids of the reserved tokens (always the lowest ids)."""

    pad: int = 0
    bos: int = 1
    eos: int = 2
    sep: int = 3
    unk: int = 4


#: Template keywords used by prompts beyond the microtext lexicon.
TEMPLATE_WORDS = (
    "instruction", "response", "please", "improve", "revised", "quality",
    "pair", "input", "output",
)

_SPECIAL_STRINGS = ("<pad>", "<bos>", "<eos>", "<sep>", "<unk>")


class WordTokenizer:
    """Bijective word-level tokenizer with reserved special ids."""

    def __init__(self, words: tuple[str, ...]):
        duplicates = set(words) & set(_SPECIAL_STRINGS)
        if duplicates:
            raise ModelError(f"words collide with special tokens: {duplicates}")
        if len(set(words)) != len(words):
            raise ModelError("duplicate words in tokenizer vocabulary")
        self.specials = SpecialTokens()
        self._id_to_word: list[str] = list(_SPECIAL_STRINGS) + list(words)
        self._word_to_id: dict[str, int] = {
            w: i for i, w in enumerate(self._id_to_word)
        }

    @property
    def vocab_size(self) -> int:
        return len(self._id_to_word)

    def encode_word(self, word: str) -> int:
        return self._word_to_id.get(word, self.specials.unk)

    def encode(self, text: str) -> list[int]:
        """Encode a whitespace-tokenised string (no BOS/EOS added)."""
        return [self.encode_word(w) for w in text.split()]

    def decode(self, ids: list[int], skip_special: bool = True) -> str:
        """Decode ids back to a string; unknown ids raise."""
        words: list[str] = []
        n_special = len(_SPECIAL_STRINGS)
        for i in ids:
            if not 0 <= i < self.vocab_size:
                raise ModelError(f"token id {i} out of range")
            if skip_special and i < n_special:
                continue
            words.append(self._id_to_word[i])
        return " ".join(words)

    def token(self, word: str) -> int:
        """Id of a known word; raises for unknown (template safety check)."""
        if word not in self._word_to_id:
            raise ModelError(f"word {word!r} not in tokenizer vocabulary")
        return self._word_to_id[word]


def build_tokenizer() -> WordTokenizer:
    """The canonical tokenizer over microtext + template keywords."""
    extra = tuple(w for w in TEMPLATE_WORDS if w not in set(all_words()))
    return WordTokenizer(tuple(all_words()) + extra)
