"""Serving metrics: counters, latency percentiles, decode throughput.

Every quantity is recorded with monotonic clocks (``time.monotonic`` for
latency anchors, ``time.perf_counter`` for engine busy time), so numbers
cannot go negative under wall-clock adjustment.  ``tokens_per_second``
is *sustained* engine throughput: tokens produced divided by the time
the engine actually spent stepping, which is directly comparable to the
offline numbers in ``BENCH_throughput.json``.
"""

from __future__ import annotations

import threading

import numpy as np

from .requests import (
    RevisionResult,
    SOURCE_CACHE,
    SOURCE_DEADLINE,
    SOURCE_DEDUP,
    SOURCE_ENGINE,
    SOURCE_GATE,
    SOURCE_SHED,
)


class ServingMetrics:
    """Thread-safe metrics collector for one revision service.

    Shared by the single-process :class:`RevisionServer` and the
    multi-process :class:`~repro.serving.fleet.EngineFleet`; the fleet
    additionally feeds the fault-tolerance counters (requeues, lost
    workers, duplicate results) that stay zero in a single process.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.by_source: dict[str, int] = {
            SOURCE_ENGINE: 0,
            SOURCE_CACHE: 0,
            SOURCE_DEDUP: 0,
            SOURCE_GATE: 0,
            SOURCE_DEADLINE: 0,
            SOURCE_SHED: 0,
        }
        self.engine_tokens = 0
        self.engine_busy_s = 0.0
        #: Jobs pushed back to the queue after their worker died.
        self.requeued = 0
        #: Requests terminated with :class:`WorkerLostError` (budget spent).
        self.worker_lost = 0
        #: Results received for an already-resolved request — must stay 0;
        #: a nonzero value means the at-most-once requeue discipline broke.
        self.duplicate_results = 0
        #: HTTP client: transport/5xx attempts retried after backoff.
        self.retries = 0
        #: HTTP client: total seconds slept honoring server ``Retry-After``.
        self.retry_after_honored_s = 0.0
        #: HTTP client: requests abandoned with
        #: :class:`~repro.errors.RetryBudgetExceededError` (budget spent).
        self.gave_up = 0
        #: Run journal: valid records replayed when a journal was opened.
        self.journal_records_replayed = 0
        #: Run journal: pairs served from the journal instead of decoding.
        self.journal_pairs_skipped = 0
        self._latencies: list[float] = []

    # -- recording ---------------------------------------------------------------
    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_requeued(self, n: int = 1) -> None:
        with self._lock:
            self.requeued += n

    def record_worker_lost_result(self) -> None:
        with self._lock:
            self.worker_lost += 1

    def record_duplicate_result(self) -> None:
        with self._lock:
            self.duplicate_results += 1

    def record_result(self, result: RevisionResult) -> None:
        with self._lock:
            self.completed += 1
            self.by_source[result.source] = (
                self.by_source.get(result.source, 0) + 1
            )
            self._latencies.append(result.latency_s)

    def record_engine_work(self, tokens: int, busy_s: float) -> None:
        with self._lock:
            self.engine_tokens += tokens
            self.engine_busy_s += busy_s

    def record_retry(self, retry_after_s: float = 0.0) -> None:
        """One HTTP attempt retried; ``retry_after_s`` > 0 when the sleep
        came from a server ``Retry-After`` header rather than backoff."""
        with self._lock:
            self.retries += 1
            self.retry_after_honored_s += max(0.0, retry_after_s)

    def record_gave_up(self) -> None:
        with self._lock:
            self.gave_up += 1

    def record_journal_replay(
        self, records_replayed: int, pairs_skipped: int
    ) -> None:
        with self._lock:
            self.journal_records_replayed += records_replayed
            self.journal_pairs_skipped += pairs_skipped

    # -- reading -----------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        with self._lock:
            return self.by_source[SOURCE_CACHE] + self.by_source[SOURCE_DEDUP]

    def latency_percentile(self, p: float) -> float:
        """Latency percentile over all completed requests (0 when empty)."""
        with self._lock:
            if not self._latencies:
                return 0.0
            return float(np.percentile(self._latencies, p))

    def tokens_per_second(self) -> float:
        """Sustained engine decode throughput (tokens / engine busy time)."""
        with self._lock:
            if self.engine_busy_s == 0.0:
                return 0.0
            return self.engine_tokens / self.engine_busy_s

    def snapshot(
        self, queue_depth: int | None = None, engine: dict | None = None
    ) -> dict:
        """JSON-serialisable view of every metric (the ``/metrics`` payload).

        ``engine`` attaches the engine's occupancy/KV counters (see
        :meth:`BatchedEngine.kv_stats`) so operators can watch queue
        depth *and* free-page headroom from one endpoint — the two
        gauges that move before admission control starts rejecting.
        """
        p50 = self.latency_percentile(50.0)
        p95 = self.latency_percentile(95.0)
        with self._lock:
            snap: dict = {
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "by_source": dict(self.by_source),
                "engine_tokens": self.engine_tokens,
                "engine_busy_s": round(self.engine_busy_s, 6),
                "requeued": self.requeued,
                "worker_lost": self.worker_lost,
                "duplicate_results": self.duplicate_results,
                "retries": self.retries,
                "retry_after_honored_s": round(self.retry_after_honored_s, 6),
                "gave_up": self.gave_up,
                "journal": {
                    "records_replayed": self.journal_records_replayed,
                    "pairs_skipped": self.journal_pairs_skipped,
                },
                "latency_p50_s": round(p50, 6),
                "latency_p95_s": round(p95, 6),
            }
            tokens_per_sec = (
                self.engine_tokens / self.engine_busy_s
                if self.engine_busy_s
                else 0.0
            )
        snap["tokens_per_sec"] = round(tokens_per_sec, 1)
        if queue_depth is not None:
            snap["queue_depth"] = queue_depth
        if engine is not None:
            snap["engine"] = engine
        return snap
