"""Content-hash dedup and LRU result cache for the revision service.

Online traffic repeats itself (template instructions, retried uploads),
and CoachLM's greedy revision is a pure function of the pair *text* plus
the coach's decode knobs — so identical content can be served straight
from a cache without touching the engine.  Keys reuse
:func:`repro.pipeline.cache.config_hash`, the same stable hash the
offline artifact cache is keyed by.

Leakage gating is the one outcome that depends on ``pair_id`` rather
than content; the server bypasses this cache entirely for such pairs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..data.instruction_pair import InstructionPair, Origin
from ..pipeline.cache import config_hash


def revision_key(pair: InstructionPair, max_new_tokens: int, copy_bias: float) -> str:
    """Stable content hash identifying one revision computation.

    The ``kind`` field namespaces the key-space per request kind: a
    ``score`` and a ``revise`` of the very same pair are different
    computations and must never dedup onto (or cache-hit) each other.
    """
    return config_hash({
        "kind": "revise",
        "instruction": pair.instruction,
        "response": pair.response,
        "max_new_tokens": max_new_tokens,
        "copy_bias": copy_bias,
    })


def score_key(pair: InstructionPair) -> str:
    """Stable content hash identifying one IFD scoring computation.

    Scoring has no decode knobs — the verdict depends only on the pair
    text (and the model weights, which are fixed per server) — so the
    key is just the namespaced content.
    """
    return config_hash({
        "kind": "score",
        "instruction": pair.instruction,
        "response": pair.response,
    })


@dataclass(frozen=True)
class CachedRevision:
    """Terminal revision texts stored per content key."""

    instruction: str
    response: str
    outcome: str    #: the ``RevisionOutcome`` (or serving outcome) value

    def apply(self, pair: InstructionPair) -> InstructionPair:
        """Re-bind the cached texts to ``pair``'s identity and provenance."""
        from ..core.coachlm import RevisionOutcome

        if self.outcome == RevisionOutcome.REVISED.value:
            return pair.with_text(
                self.instruction, self.response, Origin.COACHLM_REVISED
            )
        # Fallback / unchanged / gated outcomes keep the requester's text.
        return pair


@dataclass(frozen=True)
class CachedScore:
    """Terminal IFD verdict stored per content key.

    ``payload`` is the JSON-safe ``PairIFD.as_dict()`` blob (``None``
    for unscoreable pairs, whose ``outcome`` says why); scoring never
    rewrites the pair, so :meth:`apply` is the identity.
    """

    payload: dict | None
    outcome: str

    def apply(self, pair: InstructionPair) -> InstructionPair:
        return pair


class RevisionLRUCache:
    """Thread-safe LRU of :class:`CachedRevision` / :class:`CachedScore`
    entries (one shared capacity; keys are kind-namespaced).

    ``capacity == 0`` disables the cache (every ``get`` misses, ``put``
    is a no-op), which also switches off in-flight dedup in the server.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: OrderedDict[str, CachedRevision | CachedScore] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> CachedRevision | CachedScore | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, entry: CachedRevision | CachedScore) -> bool:
        """Store ``entry``; returns True when it was actually retained.

        A zero-capacity cache (caching disabled) stores nothing and
        returns False so callers can report honest acceptance counts.
        """
        if self.capacity <= 0:
            return False
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return True

    # -- persistence (the fleet saves its cache across restarts) -----------------
    def export_entries(self) -> list[list[str]]:
        """LRU-ordered rows ``[key, instruction, response, outcome]``,
        oldest first — importing them in order reproduces the recency
        ranking exactly.  Only revision entries persist: scores are
        cheap to recompute and their payload shape is not worth a
        persistence-format version bump."""
        with self._lock:
            return [
                [key, entry.instruction, entry.response, entry.outcome]
                for key, entry in self._entries.items()
                if isinstance(entry, CachedRevision)
            ]

    def import_entries(self, rows: object) -> int:
        """Load rows from :meth:`export_entries`; returns entries retained.

        Tolerant of damaged input (a half-persisted artifact): anything
        that is not a 4-list of strings is skipped, never raised on —
        a warm-start must not be able to wedge a fresh fleet.  Only rows
        :meth:`put` actually stored count: a cache-disabled fleet
        (``capacity == 0``) reports 0, not the rows it dropped.
        """
        if not isinstance(rows, list):
            return 0
        accepted = 0
        for row in rows:
            if (
                isinstance(row, list)
                and len(row) == 4
                and all(isinstance(field, str) for field in row)
            ):
                if self.put(row[0], CachedRevision(row[1], row[2], row[3])):
                    accepted += 1
        return accepted
