"""In-process client: dataset revision through a running RevisionServer.

:class:`InProcessRevisionClient` gives callers the exact
``CoachLM.revise_dataset`` signature — ``(InstructionDataset) ->
(InstructionDataset, RevisionStats)`` — but routes every pair through the
server, so the Fig. 6 platform's intake stage exercises the same
admission control, cache and scheduler as external HTTP traffic.  Unlike
raw :meth:`RevisionServer.submit`, the client absorbs back-pressure: on
:class:`AdmissionError` it blocks on its oldest outstanding future before
retrying, keeping at most one queue-full of requests in flight.
"""

from __future__ import annotations

import time
from collections import deque

from ..core.coachlm import RevisionStats
from ..data.dataset import InstructionDataset
from ..data.instruction_pair import InstructionPair
from ..errors import AdmissionError, OverloadError, ServingError
from .requests import RevisionFuture, RevisionResult


class InProcessRevisionClient:
    """CoachLM-compatible revision façade over a revision service.

    ``server`` is anything implementing the service protocol —
    a single-process :class:`~repro.serving.server.RevisionServer` or a
    multi-process :class:`~repro.serving.fleet.EngineFleet`.
    """

    def __init__(self, server, timeout_s: float = 300.0):
        self.server = server
        self.timeout_s = timeout_s

    def _idle_wait_s(self) -> float:
        config = self.server.config
        serving = getattr(config, "serving", config)
        return serving.idle_wait_s

    def revise_pairs(self, pairs: list[InstructionPair]) -> list[RevisionResult]:
        """Revise pairs in order, blocking on back-pressure as needed."""
        return self._run_pairs(pairs, self.server.submit)

    def score_pairs(self, pairs: list[InstructionPair]) -> list[RevisionResult]:
        """Teacher-force score pairs in order (IFD), same back-pressure.

        Each result carries the ``PairIFD.as_dict()`` payload in
        ``RevisionResult.score`` (``None`` for unscoreable pairs).
        """
        return self._run_pairs(pairs, self.server.submit_score)

    def _run_pairs(self, pairs: list[InstructionPair], submit) -> list[RevisionResult]:
        self.server.start()
        results: list[RevisionResult | None] = [None] * len(pairs)
        outstanding: deque[tuple[int, RevisionFuture]] = deque()
        for index, pair in enumerate(pairs):
            retry_until = time.monotonic() + self.timeout_s
            while True:
                try:
                    future = submit(pair)
                    break
                except AdmissionError as error:
                    # A shedding service (OverloadError) may refuse this
                    # request forever (e.g. drain): bound the retries.
                    if (
                        isinstance(error, OverloadError)
                        and time.monotonic() > retry_until
                    ):
                        raise ServingError(
                            f"service kept shedding for {self.timeout_s}s"
                        ) from error
                    if outstanding:
                        oldest, oldest_future = outstanding.popleft()
                        results[oldest] = oldest_future.result(self.timeout_s)
                    else:
                        # Queue filled by other clients: briefly yield.
                        time.sleep(self._idle_wait_s())
            outstanding.append((index, future))
        for index, future in outstanding:
            results[index] = future.result(self.timeout_s)
        return results  # type: ignore[return-value]

    def revise_dataset(
        self, dataset: InstructionDataset
    ) -> tuple[InstructionDataset, RevisionStats]:
        """Drop-in for :meth:`CoachLM.revise_dataset`, served online."""
        pairs = list(dataset)
        results = self.revise_pairs(pairs)
        stats = RevisionStats()
        for result in results:
            stats.record(result.outcome)
        return (
            InstructionDataset(
                [result.pair for result in results],
                name=f"{dataset.name}-coachlm",
            ),
            stats,
        )
