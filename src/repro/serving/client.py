"""In-process client: dataset revision through a running RevisionServer.

:class:`InProcessRevisionClient` gives callers the exact
``CoachLM.revise_dataset`` signature — ``(InstructionDataset) ->
(InstructionDataset, RevisionStats)`` — but routes every pair through the
server, so the Fig. 6 platform's intake stage exercises the same
admission control, cache and scheduler as external HTTP traffic.  Unlike
raw :meth:`RevisionServer.submit`, the client absorbs back-pressure: on
:class:`AdmissionError` it blocks on its oldest outstanding future before
retrying, keeping at most one queue-full of requests in flight.
"""

from __future__ import annotations

import time
from collections import deque

from ..core.coachlm import RevisionStats
from ..data.dataset import InstructionDataset
from ..data.instruction_pair import InstructionPair
from ..errors import AdmissionError, OverloadError, ServingError
from .requests import SOURCE_JOURNAL, RevisionFuture, RevisionResult


class InProcessRevisionClient:
    """CoachLM-compatible revision façade over a revision service.

    ``server`` is anything implementing the service protocol —
    a single-process :class:`~repro.serving.server.RevisionServer` or a
    multi-process :class:`~repro.serving.fleet.EngineFleet`.
    """

    def __init__(self, server, timeout_s: float = 300.0):
        self.server = server
        self.timeout_s = timeout_s

    def _idle_wait_s(self) -> float:
        config = self.server.config
        serving = getattr(config, "serving", config)
        return serving.idle_wait_s

    def revise_pairs(
        self, pairs: list[InstructionPair], journal=None
    ) -> list[RevisionResult]:
        """Revise pairs in order, blocking on back-pressure as needed.

        ``journal`` (a :class:`~repro.serving.journal.RunJournal`) makes
        the run crash-safe: each result is journaled as its future
        resolves, and a resumed run serves journaled-``DONE`` pairs with
        ``source == "journal"`` without ever re-submitting them.
        """
        return self._run_pairs(pairs, self.server.submit, journal=journal)

    def score_pairs(
        self, pairs: list[InstructionPair], journal=None
    ) -> list[RevisionResult]:
        """Teacher-force score pairs in order (IFD), same back-pressure.

        Each result carries the ``PairIFD.as_dict()`` payload in
        ``RevisionResult.score`` (``None`` for unscoreable pairs).
        """
        return self._run_pairs(
            pairs, self.server.submit_score, journal=journal, kind="score"
        )

    def _journal_hash(self, kind: str) -> str:
        """Identity hash of a served run — the coach's semantic knobs.

        Scheduling (queue depths, batch sizes, fleet size) is excluded:
        the serving layer's pinned contract is that scheduling never
        changes tokens, so a resumed run may be served by a differently
        shaped fleet and still produce identical results.
        """
        from .journal import run_config_hash

        base = self.server.coach.revision_run_hash()
        if kind == "revise":
            return base
        return run_config_hash({"kind": f"served_{kind}", "base": base})

    def _run_pairs(
        self,
        pairs: list[InstructionPair],
        submit,
        journal=None,
        kind: str = "revise",
    ) -> list[RevisionResult]:
        completed = {}
        if journal is not None:
            from .journal import dataset_fingerprint

            replay = journal.open_run(
                self._journal_hash(kind), dataset_fingerprint(pairs)
            )
            completed = replay.completed
            metrics = getattr(self.server, "metrics", None)
            if metrics is not None:
                metrics.record_journal_replay(
                    replay.records_replayed, replay.pairs_skipped
                )
            journal.record_submitted(
                [i for i in range(len(pairs)) if i not in completed]
            )
        self.server.start()
        results: list[RevisionResult | None] = [None] * len(pairs)

        def finish(index: int, future: RevisionFuture) -> None:
            try:
                result = future.result(self.timeout_s)
            except ServingError as error:
                if journal is not None:
                    journal.record_failed(index, str(error))
                raise
            results[index] = result
            if journal is not None:
                journal.record_done(
                    index,
                    result.pair,
                    result.outcome,
                    result.generated_tokens,
                    result.score,
                )

        outstanding: deque[tuple[int, RevisionFuture]] = deque()
        for index, pair in enumerate(pairs):
            if index in completed:
                done = completed[index]
                results[index] = RevisionResult(
                    pair=done.apply(pair),
                    outcome=done.outcome,
                    source=SOURCE_JOURNAL,
                    latency_s=0.0,
                    generated_tokens=0,
                    score=done.score,
                )
                continue
            retry_until = time.monotonic() + self.timeout_s
            while True:
                try:
                    future = submit(pair)
                    break
                except AdmissionError as error:
                    # A shedding service (OverloadError) may refuse this
                    # request forever (e.g. drain): bound the retries.
                    if (
                        isinstance(error, OverloadError)
                        and time.monotonic() > retry_until
                    ):
                        raise ServingError(
                            f"service kept shedding for {self.timeout_s}s"
                        ) from error
                    if outstanding:
                        oldest, oldest_future = outstanding.popleft()
                        finish(oldest, oldest_future)
                    else:
                        # Queue filled by other clients: briefly yield.
                        time.sleep(self._idle_wait_s())
            outstanding.append((index, future))
        for index, future in outstanding:
            finish(index, future)
        return results  # type: ignore[return-value]

    def revise_dataset(
        self, dataset: InstructionDataset, journal=None
    ) -> tuple[InstructionDataset, RevisionStats]:
        """Drop-in for :meth:`CoachLM.revise_dataset`, served online."""
        pairs = list(dataset)
        results = self.revise_pairs(pairs, journal=journal)
        stats = RevisionStats()
        for result in results:
            stats.record(result.outcome)
        return (
            InstructionDataset(
                [result.pair for result in results],
                name=f"{dataset.name}-coachlm",
            ),
            stats,
        )
