"""Crash-safe write-ahead run journal for dataset revision runs.

The paper's industrial deployment (Fig. 6) runs revision as a daily
batch job over thousands of pairs; a whole-process crash near the end of
such a run must not cost the hours of decode work already done.  The
:class:`RunJournal` is the durability layer that makes revision runs
resumable:

* **Append-only JSONL WAL** — one record per pair state transition
  (``SUBMITTED`` → ``DONE``/``FAILED``), each line carrying a CRC of its
  own payload.  Records are flushed and ``fsync``'d as they are
  appended, so a ``kill -9`` loses at most the record being written.
* **Torn-tail-tolerant replay** — a process killed mid-append leaves a
  partial (or CRC-corrupt) final line.  Replay truncates the journal at
  the *first* corrupt record and resumes from the last durable state; it
  never crashes on damage, and it never trusts bytes past the damage.
* **Identity guards** — the journal header pins a configuration hash and
  a dataset fingerprint.  Opening a journal against different inputs
  raises a typed :class:`~repro.errors.JournalMismatchError` instead of
  silently splicing stale revisions into a fresh dataset.

Because greedy revision is deterministic, a resumed run that skips
journaled-``DONE`` pairs and re-decodes only the unfinished tail yields
a **byte-identical** final dataset to an uninterrupted run — pinned by
``tests/test_journal.py`` (directed SIGKILL points) and
``tests/test_fuzz_network.py`` (random fault schedules).

The journal composes with every execution path that carries revision
traffic: :meth:`CoachLM.revise_dataset(journal=...)
<repro.core.coachlm.CoachLM.revise_dataset>` (offline engine),
:class:`~repro.serving.client.InProcessRevisionClient` (served), and
:class:`~repro.serving.httpclient.RevisionHTTPClient` (over the
network) — see ``docs/resilience.md``.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..data.instruction_pair import InstructionPair
from ..errors import JournalError, JournalMismatchError
from ..pipeline.cache import config_hash as _config_hash

#: Journal record ``type`` values (the pair state machine).
RECORD_HEADER = "header"
RECORD_SUBMITTED = "submitted"
RECORD_DONE = "done"
RECORD_FAILED = "failed"

#: On-disk format version; bumped on any incompatible record change.
JOURNAL_VERSION = 1


def dataset_fingerprint(pairs: list[InstructionPair]) -> str:
    """Stable, order-sensitive fingerprint of a dataset's identity.

    Covers the fields a revision run actually consumes — pair id,
    instruction and response text, in order — so the journal guard fires
    on any reordering, insertion, deletion, or edit, while ignoring
    bookkeeping metadata that cannot change the run's outputs.
    """
    digest = zlib.crc32(b"")
    for pair in pairs:
        blob = json.dumps(
            [pair.pair_id, pair.instruction, pair.response],
            sort_keys=True,
        ).encode("utf-8")
        digest = zlib.crc32(blob, digest)
    return f"{len(pairs)}-{digest:08x}"


def run_config_hash(payload: dict) -> str:
    """Hash the semantic knobs of a revision run for the journal header.

    Callers include everything that can change the run's *outputs*
    (decode knobs, selection knobs, a model fingerprint) and exclude
    pure scheduling knobs (batch size, chunking, paging) — the engine's
    pinned contract is that scheduling never changes tokens, so a
    resumed run may batch differently and still be byte-identical.
    """
    return _config_hash(payload)


def _encode(payload: dict) -> bytes:
    """One journal line: the payload plus a CRC of its canonical form."""
    canonical = json.dumps(payload, sort_keys=True)
    record = dict(payload)
    record["crc"] = zlib.crc32(canonical.encode("utf-8"))
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")


def _decode(line: bytes) -> dict | None:
    """Parse one journal line; ``None`` for anything torn or corrupt."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or "crc" not in record:
        return None
    crc = record.pop("crc")
    canonical = json.dumps(record, sort_keys=True)
    if zlib.crc32(canonical.encode("utf-8")) != crc:
        return None
    return record


@dataclass(frozen=True)
class JournaledDone:
    """The durable terminal state of one pair, replayed from the journal."""

    index: int
    instruction: str
    response: str
    outcome: str
    generated_tokens: int = 0
    score: dict | None = None

    def apply(self, pair: InstructionPair) -> InstructionPair:
        """Re-bind the journaled texts to ``pair``'s identity/provenance.

        Mirrors :meth:`~repro.serving.cache.CachedRevision.apply`: only a
        ``revised`` outcome rewrites the text; every fallback outcome
        keeps the caller's pair untouched — which is what makes the
        resumed dataset byte-identical to an uninterrupted run.
        """
        from ..core.coachlm import RevisionOutcome
        from ..data.instruction_pair import Origin

        if self.outcome == RevisionOutcome.REVISED.value:
            return pair.with_text(
                self.instruction, self.response, Origin.COACHLM_REVISED
            )
        return pair


@dataclass
class JournalReplay:
    """What a journal held when it was opened for (re)use."""

    completed: dict[int, JournaledDone] = field(default_factory=dict)
    #: Valid records read back (header included).
    records_replayed: int = 0
    #: Indices that were ``SUBMITTED`` but never reached a terminal state
    #: — the in-flight work the crash destroyed.
    interrupted: frozenset[int] = frozenset()
    #: True when a torn/corrupt tail was found and truncated away.
    torn_tail: bool = False
    #: Bytes dropped by the torn-tail truncation.
    truncated_bytes: int = 0

    @property
    def pairs_skipped(self) -> int:
        """Pairs a resumed run serves from the journal instead of decoding."""
        return len(self.completed)

    def pending_indices(self, total: int) -> list[int]:
        """Dataset indices a resumed run still has to produce, in order."""
        return [i for i in range(total) if i not in self.completed]


class RunJournal:
    """Append-only, fsync'd JSONL write-ahead journal of one revision run.

    ``fsync=True`` (the default) makes every appended record durable
    before the call returns — the crash-safety contract.  ``fsync=False``
    trades durability of the last few records for speed (data still
    reaches the OS on every append; only a machine-level crash can lose
    it) — the torn-tail replay handles either way.

    Use as a context manager, or call :meth:`close` when done.  A
    journal must be :meth:`open_run`-ed (which validates or writes the
    header) before any record is appended.
    """

    def __init__(self, path: str | os.PathLike, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._fh = None
        self.replay: JournalReplay | None = None

    # -- lifecycle ---------------------------------------------------------------
    def open_run(
        self, config_hash: str, fingerprint: str
    ) -> JournalReplay:
        """Open (or create) the journal for a run with this identity.

        Replays any durable records from a previous incarnation of the
        same run — truncating a torn tail in place, never crashing on
        one — and refuses with :class:`JournalMismatchError` when the
        journal on disk belongs to a different configuration or dataset.
        Returns the :class:`JournalReplay` describing what was recovered.
        """
        if self._fh is not None:
            raise JournalError(f"journal {self.path} is already open")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        replay = self._replay_and_truncate(config_hash, fingerprint)
        self._fh = open(self.path, "ab")
        if replay.records_replayed == 0:
            self._append({
                "type": RECORD_HEADER,
                "version": JOURNAL_VERSION,
                "config": config_hash,
                "fingerprint": fingerprint,
            })
        self.replay = replay
        return replay

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- appends -----------------------------------------------------------------
    def record_submitted(self, indices: list[int]) -> None:
        """Mark pairs as entering the decode pipeline (one batched record)."""
        if indices:
            self._append({
                "type": RECORD_SUBMITTED, "indices": list(map(int, indices))
            })

    def record_done(
        self,
        index: int,
        pair: InstructionPair,
        outcome: str,
        generated_tokens: int = 0,
        score: dict | None = None,
    ) -> None:
        """Record one pair's terminal result (durable once this returns)."""
        record: dict = {
            "type": RECORD_DONE,
            "index": int(index),
            "instruction": pair.instruction,
            "response": pair.response,
            "outcome": outcome,
            "generated_tokens": int(generated_tokens),
        }
        if score is not None:
            record["score"] = score
        self._append(record)

    def record_failed(self, index: int, error: str) -> None:
        """Record a terminal failure; the pair is retried on resume."""
        self._append({
            "type": RECORD_FAILED, "index": int(index), "error": str(error)
        })

    def _append(self, payload: dict) -> None:
        if self._fh is None:
            raise JournalError(
                f"journal {self.path} is not open (call open_run first)"
            )
        self._fh.write(_encode(payload))
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    # -- replay ------------------------------------------------------------------
    def _replay_and_truncate(
        self, config_hash: str, fingerprint: str
    ) -> JournalReplay:
        replay = JournalReplay()
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return replay
        if not raw:
            return replay

        offset = 0
        valid_end = 0
        records: list[dict] = []
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                break  # torn final line: no newline ever made it to disk
            record = _decode(raw[offset : newline + 1])
            if record is None:
                break  # CRC/parse failure: stop trusting the file here
            if not records:
                if (
                    record.get("type") != RECORD_HEADER
                    or record.get("version") != JOURNAL_VERSION
                ):
                    break  # headerless/foreign file: replay nothing
            records.append(record)
            offset = newline + 1
            valid_end = offset

        if valid_end < len(raw):
            replay.torn_tail = True
            replay.truncated_bytes = len(raw) - valid_end
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_end)
        if not records:
            return replay

        header = records[0]
        if (
            header.get("config") != config_hash
            or header.get("fingerprint") != fingerprint
        ):
            raise JournalMismatchError(
                f"journal {self.path} was written by a different run "
                f"(config {header.get('config')!r} vs {config_hash!r}, "
                f"dataset {header.get('fingerprint')!r} vs {fingerprint!r});"
                " refusing to resume — delete the stale journal to start over"
            )

        submitted: set[int] = set()
        for record in records[1:]:
            kind = record.get("type")
            if kind == RECORD_SUBMITTED:
                submitted.update(
                    int(i) for i in record.get("indices", ())
                )
            elif kind == RECORD_DONE:
                index = int(record["index"])
                replay.completed[index] = JournaledDone(
                    index=index,
                    instruction=record.get("instruction", ""),
                    response=record.get("response", ""),
                    outcome=record.get("outcome", ""),
                    generated_tokens=int(record.get("generated_tokens", 0)),
                    score=record.get("score"),
                )
            elif kind == RECORD_FAILED:
                # A FAILED pair is terminal for *that* incarnation only:
                # the resume retries it (failures are usually transient —
                # a lost worker, a spent retry budget).
                replay.completed.pop(int(record["index"]), None)
        replay.records_replayed = len(records)
        replay.interrupted = frozenset(submitted - set(replay.completed))
        return replay
