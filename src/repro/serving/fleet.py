"""Fault-tolerant multi-process serving fleet.

:class:`EngineFleet` scales the revision service past one process — and
keeps it alive when processes die.  A supervisor (the caller's process)
owns admission, the content cache, dedup, and every
:class:`~repro.serving.requests.RevisionFuture`; N forked **worker
processes** each run a private :class:`~repro.nn.decoding.BatchedEngine`
behind a :class:`~repro.serving.scheduler.StreamingScheduler` and talk
to the supervisor over one duplex pipe.  CoachLM's weights travel by
fork (copy-on-write), never by pickle.

Placement is a **consistent-hash ring** over worker slots keyed by the
request's content hash: identical content always lands on the same
worker while it lives, so each worker's KV/prefill locality mirrors the
single-process server's.  A full pinned worker spills to the
least-loaded routable one; a dead worker's arc is absorbed by its ring
successor until the replacement reports ready.

Failure model (every path is fuzz-tested under seeded
:class:`~repro.serving.faults.FaultPlan` schedules):

* **crash** — the pipe EOFs or the process sentinel fires.  The
  supervisor drains the pipe to EOF first (results the worker flushed
  before dying are honoured — *at-most-once*, never recomputed), then
  requeues the unresolved remainder.  A request that loses its worker
  more than ``requeue_budget`` times fails with a typed
  :class:`~repro.errors.WorkerLostError`; nothing is ever silently
  dropped or resolved twice.
* **hang** — a worker whose heartbeats stop past
  ``heartbeat_timeout_s`` is SIGKILLed and handled as a crash.
* **restart** — replacements fork after exponential backoff
  (``restart_backoff_s · 2^k``, capped) and are excluded from routing
  until they report ready; a slot that exhausts ``max_worker_restarts``
  is retired and the fleet degrades onto the survivors.
* **overload / degradation** — admission sheds lowest-priority-first:
  a full queue displaces its worst entry (resolved as ``shed``) for a
  strictly better arrival and otherwise raises
  :class:`~repro.errors.OverloadError` (HTTP ``503`` + ``Retry-After``).
  Cache and dedup hits are served even when every worker is down.
* **drain** — :meth:`stop` stops admitting (cache hits still served),
  lets in-flight work finish, asks workers to exit cleanly, and
  persists the revision cache through the lockfile-hardened
  :class:`~repro.pipeline.cache.ArtifactCache` so the next fleet warm
  starts; past ``drain_timeout_s`` stragglers are killed and their
  requests resolved (shed / :class:`WorkerLostError`) — an accepted
  request's future *always* resolves.

Failure handling never changes tokens: greedy decode is deterministic,
so a requeued request re-decodes to exactly the revision its dead worker
was producing, and parity with :meth:`CoachLM.revise_pair` is pinned by
the fuzz harness.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import multiprocessing
import os
import threading
import time
from multiprocessing.connection import Connection, wait as connection_wait

from ..config import FleetConfig, ServingConfig
from ..core.coachlm import CoachLM, RevisionOutcome
from ..data.instruction_pair import InstructionPair
from ..errors import (
    AdmissionError,
    GenerationError,
    ModelError,
    OverloadError,
    ServingError,
    WorkerLostError,
)
from ..nn.decoding import BatchedEngine
from ..pipeline.cache import ArtifactCache, config_hash
from ..quality.scorer import CriteriaScorer
from ..scoring.ifd import conditioned_request, pair_ifd, unconditioned_request
from .cache import (
    CachedRevision,
    CachedScore,
    RevisionLRUCache,
    revision_key,
    score_key,
)
from .faults import FaultInjector, FaultPlan, WorkerFaults, write_torn_json
from .metrics import ServingMetrics
from .queueing import BoundedPriorityQueue
from .requests import (
    KIND_REVISE,
    KIND_SCORE,
    OUTCOME_EXPIRED,
    OUTCOME_QUALITY_GATED,
    OUTCOME_SCORED,
    OUTCOME_SHED,
    RevisionFuture,
    RevisionResult,
    RevisionTask,
    SOURCE_CACHE,
    SOURCE_DEADLINE,
    SOURCE_DEDUP,
    SOURCE_ENGINE,
    SOURCE_GATE,
    SOURCE_SHED,
)
from .scheduler import EngineJob, StreamingScheduler

#: Ring points per worker slot — enough that a dead slot's arc spreads
#: over several successors instead of doubling one neighbour's load.
_RING_REPLICAS = 32

_STATE_STARTING = "starting"    #: forked, engine building, not routable
_STATE_READY = "ready"          #: routable
_STATE_DEAD = "dead"            #: lost, restart pending or retired
_STATE_EXITED = "exited"        #: clean shutdown during drain


def _fleet_worker_main(
    slot: int,
    incarnation: int,
    conn: Connection,
    inherited: list[Connection],
    coach: CoachLM,
    scorer: CriteriaScorer | None,
    config: ServingConfig,
    heartbeat_interval_s: float,
    faults: WorkerFaults | None,
) -> None:
    """One worker process: a private engine pumped by a message loop.

    Single-threaded on purpose — the heartbeat is sent from the same
    loop that pumps the engine, so a beat *proves* the loop is making
    progress (a hung decode stops the beats, which is exactly what the
    supervisor's hang detector listens for).
    """
    for other in inherited:
        # Pipe ends of sibling workers copied in by fork: close them so
        # fds don't accumulate across restarts.
        try:
            other.close()
        except OSError:
            pass
    injector = FaultInjector(faults) if faults is not None else None
    metrics = ServingMetrics()
    scheduler = StreamingScheduler(
        BatchedEngine(
            coach.model,
            max_batch=config.max_batch,
            prefill_chunk_tokens=config.prefill_chunk_tokens,
            prefill_concurrency=config.prefill_concurrency,
            kv_page_tokens=config.kv_page_tokens,
            kv_pool_pages=config.kv_pool_pages,
            kv_prefix_cache=config.kv_prefix_cache_enabled,
            preemption=config.preemption_enabled,
        ),
        metrics,
    )
    outbox: list[tuple] = []
    threshold = config.quality_gate_threshold

    def complete(
        job_id: int, pair: InstructionPair, outcome: str, source: str,
        generated: int, cacheable: bool, score: dict | None = None,
    ) -> None:
        outbox.append((
            "done", job_id, pair, outcome, source, generated, cacheable, score,
        ))

    def handle_score_job(
        job_id: int, pair: InstructionPair, deadline: float | None,
        priority: int = 0,
    ) -> None:
        # Mirrors RevisionServer._admit_score: two teacher-forced engine
        # jobs plus a worker-loop-local combiner latch (single-threaded
        # worker, no lock needed).
        cond = conditioned_request(coach.tokenizer, pair)
        uncond = unconditioned_request(coach.tokenizer, pair)
        resolved: dict[str, object] = {}

        def combine(which: str, score) -> None:
            resolved[which] = score
            if len(resolved) == 2:
                verdict = pair_ifd(resolved["cond"], resolved["uncond"])
                complete(
                    job_id, pair, OUTCOME_SCORED, SOURCE_ENGINE, 0, True,
                    verdict.as_dict(),
                )

        expired = {"fired": False}

        def on_expired() -> None:
            if expired["fired"]:
                return
            expired["fired"] = True
            complete(job_id, pair, OUTCOME_EXPIRED, SOURCE_DEADLINE, 0, False)

        try:
            scheduler.submit(EngineJob(
                cond, lambda s: combine("cond", s),
                deadline=deadline, on_expired=on_expired, priority=priority,
            ))
            scheduler.submit(EngineJob(
                uncond, lambda s: combine("uncond", s),
                deadline=deadline, on_expired=on_expired, priority=priority,
            ))
        except GenerationError:
            complete(
                job_id, pair, RevisionOutcome.PROMPT_TOO_LONG.value,
                SOURCE_ENGINE, 0, True,
            )

    def handle_job(
        job_id: int, pair: InstructionPair, deadline: float | None,
        kind: str = KIND_REVISE, priority: int = 0,
    ) -> None:
        # Mirrors RevisionServer._admit gate-for-gate, so fleet results
        # are token-for-token the single-process server's.
        if kind == KIND_SCORE:
            handle_score_job(job_id, pair, deadline, priority)
            return
        if threshold is not None and scorer is not None:
            report = scorer.score_pair(pair)
            if report.min_score >= threshold:
                complete(job_id, pair, OUTCOME_QUALITY_GATED, SOURCE_GATE, 0, True)
                return
        request, outcome = coach.prepare_revision(pair)
        if request is None:
            assert outcome is not None
            complete(
                job_id, pair, outcome.value, SOURCE_ENGINE, 0,
                outcome is RevisionOutcome.PROMPT_TOO_LONG,
            )
            return

        def on_done(tokens: list[int]) -> None:
            revised, out = coach.finalize_revision(pair, tokens)
            complete(job_id, revised, out.value, SOURCE_ENGINE, len(tokens), True)

        def on_expired() -> None:
            complete(job_id, pair, OUTCOME_EXPIRED, SOURCE_DEADLINE, 0, False)

        scheduler.submit(EngineJob(
            request, on_done, deadline=deadline, on_expired=on_expired,
            priority=priority,
        ))

    def send(message: tuple) -> None:
        if injector is not None:
            injector.before_send()
        conn.send(message)

    def flush_outbox() -> None:
        while outbox:
            message = outbox.pop(0)
            if (
                message[0] == "done"
                and injector is not None
                and injector.on_result()
            ):
                continue    # injected pipe tear: result dropped, crash follows
            send(message)

    def beat() -> tuple[int, float]:
        send((
            "beat",
            metrics.engine_tokens - sent[0],
            metrics.engine_busy_s - sent[1],
            scheduler.kv_stats(),
        ))
        return metrics.engine_tokens, metrics.engine_busy_s

    conn.send(("ready", slot, incarnation))
    sent = (0, 0.0)
    last_beat = time.monotonic()
    stopping = False
    try:
        while True:
            timeout = (
                0.0
                if scheduler.has_work or outbox
                else min(config.idle_wait_s, heartbeat_interval_s / 2.0)
            )
            while conn.poll(timeout):
                message = conn.recv()
                if message[0] == "job":
                    handle_job(
                        message[1], message[2], message[3], message[4],
                        message[5] if len(message) > 5 else 0,
                    )
                elif message[0] == "stop":
                    stopping = True
                timeout = 0.0
            if scheduler.has_work:
                if injector is not None:
                    injector.on_step()
                scheduler.pump()
            flush_outbox()
            now = time.monotonic()
            if now - last_beat >= heartbeat_interval_s:
                sent = beat()
                last_beat = now
            if stopping and not scheduler.has_work and not outbox:
                break
        # Final beat carries the drained engine's stats: the supervisor
        # (and the fuzz harness) verify zero leaked pages/reservations.
        beat()
        conn.close()
    except (EOFError, OSError, ValueError):
        # Supervisor went away mid-conversation: nothing to report to.
        return


class _Worker:
    """Supervisor-side record of one worker slot."""

    __slots__ = (
        "slot", "process", "conn", "state", "incarnation", "restarts",
        "restart_due", "last_seen", "outstanding", "kv", "clean_exit",
    )

    def __init__(self, slot: int):
        self.slot = slot
        self.process: multiprocessing.process.BaseProcess | None = None
        self.conn: Connection | None = None
        self.state = _STATE_STARTING
        self.incarnation = 0
        self.restarts = 0
        self.restart_due: float | None = None
        self.last_seen = time.monotonic()
        self.outstanding: set[int] = set()
        self.kv: dict | None = None
        self.clean_exit = False

    @property
    def routable(self) -> bool:
        return self.state == _STATE_READY

    @property
    def retired(self) -> bool:
        return self.state == _STATE_DEAD and self.restart_due is None


class EngineFleet:
    """Supervises N engine worker processes behind one submit() façade.

    API-compatible with :class:`~repro.serving.server.RevisionServer`
    (``submit`` / ``revise`` / ``metrics_snapshot`` / ``health`` /
    context manager), so the HTTP front-end and the in-process client
    drive either interchangeably.  ``artifact_dir`` enables cross-process
    persistence of the revision cache (warm starts across fleets);
    ``fault_plan`` injects a deterministic failure schedule — when
    omitted, ``REPRO_FAULT_*`` environment variables are consulted so
    ops can run kill drills against a live fleet.
    """

    def __init__(
        self,
        coach: CoachLM,
        config: FleetConfig | None = None,
        scorer: CriteriaScorer | None = None,
        artifact_dir: str | os.PathLike | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        if coach.model is None:
            raise ModelError("EngineFleet needs a CoachLM with a model")
        self.coach = coach
        self.config = config or FleetConfig()
        serving = self.config.serving
        if serving.quality_gate_threshold is not None and scorer is None:
            scorer = CriteriaScorer()
        self.scorer = scorer
        self.fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        self.queue: BoundedPriorityQueue[RevisionTask] = BoundedPriorityQueue(
            self.config.max_queue_depth
        )
        self.cache = RevisionLRUCache(serving.cache_capacity)
        self.metrics = ServingMetrics()
        self.artifact_cache = (
            ArtifactCache(artifact_dir) if artifact_dir is not None else None
        )
        self._mp = multiprocessing.get_context("fork")
        self._workers = [
            _Worker(slot) for slot in range(self.config.fleet_workers)
        ]
        self._ring = self._build_ring(self.config.fleet_workers)
        self._job_ids = itertools.count()
        self._jobs: dict[int, RevisionTask] = {}
        # RLock: shedding a displaced leader pops its followers while the
        # submit path already holds the lock around enqueue+register.
        self._state_lock = threading.RLock()
        self._inflight: dict[str, list[RevisionTask]] = {}
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        os.set_blocking(self._wake_w, False)
        self._thread: threading.Thread | None = None
        self._draining = False
        self._drain_deadline: float | None = None
        self._stop_sent = False

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "EngineFleet":
        """Fork the fleet, load the persisted cache, await readiness."""
        if self._thread is not None:
            return self
        self._draining = False
        self._stop_sent = False
        self._load_persisted_cache()
        for worker in self._workers:
            self._spawn(worker)
        self._thread = threading.Thread(
            target=self._run, name="fleet-supervisor", daemon=True
        )
        self._thread.start()
        deadline = time.monotonic() + self.config.worker_ready_timeout_s
        while not all(w.routable for w in self._workers):
            if time.monotonic() > deadline:
                self.stop()
                raise ServingError(
                    f"fleet not ready within {self.config.worker_ready_timeout_s}s"
                )
            time.sleep(0.005)
        return self

    def stop(self) -> None:
        """Graceful drain: finish in-flight work, persist, shut down.

        Every accepted request's future resolves before this returns —
        with its result, as shed, or with :class:`WorkerLostError` if
        the drain deadline forces a kill.
        """
        if self._thread is None:
            return
        self._draining = True
        self._drain_deadline = time.monotonic() + self.config.drain_timeout_s
        self._wake()
        self._thread.join()
        self._thread = None
        for worker in self._workers:
            if worker.process is not None:
                worker.process.join(timeout=5.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=5.0)
                worker.process = None
            if worker.conn is not None:
                worker.conn.close()
                worker.conn = None
        self._persist_cache()

    def __enter__(self) -> "EngineFleet":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def install_sigterm_drain(self) -> None:
        """Route SIGTERM to a graceful :meth:`stop` (main thread only)."""
        import signal

        def handler(signum: int, frame: object) -> None:
            self.stop()

        signal.signal(signal.SIGTERM, handler)

    # -- client API --------------------------------------------------------------
    def submit(
        self,
        pair: InstructionPair,
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> RevisionFuture:
        """Enqueue one pair; sheds lowest-priority-first under pressure.

        Raises :class:`OverloadError` (HTTP ``503`` + ``Retry-After``)
        when the request cannot be accepted: the fleet is draining, or
        the queue is full and this request doesn't outrank anything in
        it.  Cache hits are served even while draining or with every
        worker down — the degraded fleet still answers what it already
        knows.
        """
        key = (
            None
            if self.coach.is_leakage_gated(pair)
            else revision_key(pair, self.coach.max_new_tokens, self.coach.copy_bias)
        )
        return self._submit_task(pair, key, KIND_REVISE, priority, deadline_s)

    def submit_score(
        self,
        pair: InstructionPair,
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> RevisionFuture:
        """Enqueue one pair for teacher-forced IFD scoring.

        Scoring shares the queue, cache and workers with revise traffic
        but lives in its own key-space (see :func:`score_key`), so a
        score and a revise of the same content never dedup onto each
        other.  Leakage gating does not apply: scoring reads the pair,
        it never rewrites it.
        """
        return self._submit_task(
            pair, score_key(pair), KIND_SCORE, priority, deadline_s
        )

    def _submit_task(
        self,
        pair: InstructionPair,
        key: str | None,
        kind: str,
        priority: int,
        deadline_s: float | None,
    ) -> RevisionFuture:
        if deadline_s is None:
            deadline_s = self.config.serving.default_deadline_s
        now = time.monotonic()
        future = RevisionFuture()
        self.metrics.record_submitted()
        task = RevisionTask(
            pair=pair,
            future=future,
            cache_key=key,
            submitted_at=now,
            deadline=now + deadline_s if deadline_s is not None else None,
            priority=priority,
            kind=kind,
        )
        if key is not None and self.cache.capacity > 0:
            with self._state_lock:
                entry = self.cache.get(key)
                if entry is not None:
                    self._resolve(
                        future, entry.apply(pair), entry.outcome, SOURCE_CACHE,
                        now, score=getattr(entry, "payload", None),
                    )
                    return future
                if not self._draining:
                    followers = self._inflight.get(key)
                    if followers is not None:
                        followers.append(task)
                        return future
                    self._enqueue(task)
                    self._inflight[key] = []
                    self._wake()
                    return future
        if self._draining:
            self.metrics.record_rejected()
            raise OverloadError(
                "fleet is draining: not admitting new revisions",
                retry_after_s=self.config.shed_retry_after_s,
            )
        self._enqueue(task)
        self._wake()
        return future

    def revise(
        self, pair: InstructionPair, timeout: float | None = None
    ) -> RevisionResult:
        """Synchronous helper: submit one pair and wait for its result."""
        return self.submit(pair).result(timeout)

    def score(
        self, pair: InstructionPair, timeout: float | None = None
    ) -> RevisionResult:
        """Synchronous helper: submit one scoring job and wait."""
        return self.submit_score(pair).result(timeout)

    # -- observability ------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """``/metrics`` payload with engine gauges aggregated fleet-wide."""
        return self.metrics.snapshot(
            queue_depth=self.queue.depth, engine=self._engine_stats()
        )

    def health(self) -> dict:
        """``/healthz``: ``ok`` | ``degraded`` | ``draining`` + headroom."""
        alive = sum(1 for w in self._workers if w.routable)
        total = len(self._workers)
        if self._draining:
            status = "draining"
        elif alive == total:
            status = "ok"
        else:
            status = "degraded"
        engine = self._engine_stats()
        return {
            "status": status,
            "queue_depth": self.queue.depth,
            "workers": {
                "alive": alive,
                "total": total,
                "restarts": sum(w.restarts for w in self._workers),
            },
            "free_slots": engine["free_slots"],
            "free_pages": engine.get("free_pages"),
        }

    def worker_stats(self) -> list[dict]:
        """Per-slot liveness/restart/KV view (tests assert page hygiene)."""
        return [
            {
                "slot": w.slot,
                "state": w.state,
                "incarnation": w.incarnation,
                "restarts": w.restarts,
                "clean_exit": w.clean_exit,
                "kv": dict(w.kv) if w.kv else None,
            }
            for w in self._workers
        ]

    def _engine_stats(self) -> dict:
        serving = self.config.serving
        snaps = [w.kv for w in self._workers if w.routable and w.kv]
        summed_keys = (
            "max_batch", "n_active", "n_prefilling", "n_pending",
            "n_preempted", "free_slots", "resident_kv_bytes", "total_pages",
            "free_pages", "reserved_pages", "pages_in_use",
        )
        agg: dict = {
            "workers": len(snaps),
            "paged": (
                all(s.get("paged", False) for s in snaps)
                if snaps
                else serving.kv_page_tokens is not None
            ),
            "kv_page_tokens": serving.kv_page_tokens,
        }
        for stat_key in summed_keys:
            if snaps and not any(stat_key in s for s in snaps):
                continue
            agg[stat_key] = sum(s.get(stat_key, 0) for s in snaps)
        # Prefix-cache counters (workers with kv_prefix_cache on): summed
        # across the fleet, with the hit rate recomputed over the sums.
        prefix_snaps = [
            s["prefix_cache"] for s in snaps if s.get("prefix_cache")
        ]
        if prefix_snaps:
            merged = {
                key: sum(p.get(key, 0) for p in prefix_snaps)
                for key in (
                    "cached_pages", "shared_pinned_pages", "lookups", "hits",
                    "shared_tokens", "cow_copies", "inserted_pages",
                    "evicted_pages",
                )
            }
            merged["hit_rate"] = (
                round(merged["hits"] / merged["lookups"], 4)
                if merged["lookups"]
                else 0.0
            )
            agg["prefix_cache"] = merged
        # Preemption counters: summed across workers, so a fleet-wide
        # "how much decode work was evicted" reads off one dict.
        preempt_snaps = [
            s["preemption"] for s in snaps if s.get("preemption")
        ]
        if preempt_snaps:
            agg["preemption"] = {
                key: sum(p.get(key, 0) for p in preempt_snaps)
                for key in (
                    "preemptions", "resumes", "preempted_resident_tokens",
                    "stream_disconnects",
                )
            }
        return agg

    # -- admission internals ------------------------------------------------------
    def _enqueue(self, task: RevisionTask) -> None:
        try:
            displaced = self.queue.put_or_displace(task, task.priority)
        except AdmissionError as error:
            self.metrics.record_rejected()
            raise OverloadError(
                str(error), retry_after_s=self.config.shed_retry_after_s
            ) from error
        if displaced is not None:
            self._shed_task(displaced)

    def _shed_task(self, task: RevisionTask) -> None:
        """Resolve a displaced/undeliverable task (and followers) as shed."""
        followers = self._pop_followers(task)
        self._resolve(
            task.future, task.pair, OUTCOME_SHED, SOURCE_SHED, task.submitted_at
        )
        for follower in followers:
            self._resolve(
                follower.future, follower.pair, OUTCOME_SHED, SOURCE_SHED,
                follower.submitted_at,
            )

    def _fail_task(self, task: RevisionTask, error: WorkerLostError) -> None:
        """Terminal worker-loss failure, fanned out to dedup followers —
        identical content rides the same poison pill."""
        followers = self._pop_followers(task)
        for target in (task, *followers):
            self.metrics.record_worker_lost_result()
            target.future.set_exception(error)

    def _pop_followers(self, task: RevisionTask) -> list[RevisionTask]:
        if task.cache_key is None:
            return []
        with self._state_lock:
            return self._inflight.pop(task.cache_key, [])

    def _expire_task(self, task: RevisionTask) -> RevisionTask | None:
        """Resolve one deadline-missed task; promote its oldest follower."""
        promoted: RevisionTask | None = None
        if task.cache_key is not None:
            with self._state_lock:
                followers = self._inflight.pop(task.cache_key, [])
                if followers:
                    promoted, rest = followers[0], followers[1:]
                    self._inflight[task.cache_key] = rest
        self._resolve(
            task.future, task.pair, OUTCOME_EXPIRED, SOURCE_DEADLINE,
            task.submitted_at,
        )
        return promoted

    def _finish(
        self,
        task: RevisionTask,
        result_pair: InstructionPair,
        outcome: str,
        source: str,
        cacheable: bool,
        generated: int = 0,
        score: dict | None = None,
    ) -> None:
        entry: CachedRevision | CachedScore
        if task.kind == KIND_SCORE:
            entry = CachedScore(score, outcome)
        else:
            entry = CachedRevision(
                result_pair.instruction, result_pair.response, outcome
            )
        followers: list[RevisionTask] = []
        if task.cache_key is not None:
            with self._state_lock:
                if cacheable:
                    self.cache.put(task.cache_key, entry)
                followers = self._inflight.pop(task.cache_key, [])
        self._resolve(
            task.future, result_pair, outcome, source, task.submitted_at,
            generated, score=score,
        )
        for follower in followers:
            self._resolve(
                follower.future, entry.apply(follower.pair), outcome,
                SOURCE_DEDUP, follower.submitted_at, score=score,
            )

    def _resolve(
        self,
        future: RevisionFuture,
        pair: InstructionPair,
        outcome: str,
        source: str,
        submitted_at: float,
        generated: int = 0,
        score: dict | None = None,
    ) -> None:
        result = RevisionResult(
            pair=pair,
            outcome=outcome,
            source=source,
            latency_s=time.monotonic() - submitted_at,
            generated_tokens=generated,
            score=score,
        )
        self.metrics.record_result(result)
        future.set_result(result)

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"\0")
        except (BlockingIOError, OSError):
            pass    # a full pipe already guarantees a pending wakeup

    # -- placement ---------------------------------------------------------------
    @staticmethod
    def _build_ring(n_workers: int) -> tuple[list[int], list[int]]:
        points: list[tuple[int, int]] = []
        for slot in range(n_workers):
            for replica in range(_RING_REPLICAS):
                digest = hashlib.sha1(
                    f"worker-{slot}-point-{replica}".encode("ascii")
                ).hexdigest()
                points.append((int(digest[:8], 16), slot))
        points.sort()
        return [p for p, _ in points], [s for _, s in points]

    def _placement_key(self, task: RevisionTask) -> str:
        if task.cache_key is not None:
            return task.cache_key
        return config_hash({
            "pair_id": task.pair.pair_id,
            "instruction": task.pair.instruction,
            "response": task.pair.response,
        })

    def _max_outstanding(self) -> int:
        return (
            self.config.dispatch_depth_per_worker * self.config.serving.max_batch
        )

    def _route(self, task: RevisionTask) -> _Worker | None:
        """Pinned-by-content placement with liveness/load fallback."""
        cap = self._max_outstanding()
        points, slots = self._ring
        point = int(
            hashlib.sha1(self._placement_key(task).encode("utf-8")).hexdigest()[:8],
            16,
        )
        start = bisect.bisect_left(points, point) % len(points)
        seen: set[int] = set()
        for offset in range(len(points)):
            slot = slots[(start + offset) % len(points)]
            if slot in seen:
                continue
            seen.add(slot)
            worker = self._workers[slot]
            if worker.routable:
                if len(worker.outstanding) < cap:
                    return worker
                break   # pinned worker is live but full: spill by load
        candidates = [
            w for w in self._workers
            if w.routable and len(w.outstanding) < cap
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda w: len(w.outstanding))

    # -- supervision --------------------------------------------------------------
    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        inherited = [
            w.conn for w in self._workers
            if w is not worker and w.conn is not None
        ]
        faults = (
            self.fault_plan.for_worker(worker.slot)
            if self.fault_plan is not None and worker.incarnation == 0
            else None
        )
        process = self._mp.Process(
            target=_fleet_worker_main,
            args=(
                worker.slot,
                worker.incarnation,
                child_conn,
                inherited,
                self.coach,
                self.scorer,
                self.config.serving,
                self.config.heartbeat_interval_s,
                faults,
            ),
            name=f"fleet-worker-{worker.slot}.{worker.incarnation}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.state = _STATE_STARTING
        worker.restart_due = None
        worker.last_seen = time.monotonic()
        worker.kv = None
        worker.clean_exit = False

    def _run(self) -> None:
        interval = self.config.heartbeat_interval_s
        while True:
            now = time.monotonic()
            self._spawn_due_restarts(now)
            self._check_hangs(now)
            self._dispatch(now)
            if self._draining and self._drain_step(now):
                break
            if self._fleet_is_lost():
                self._fail_everything("every fleet worker is gone")
                if self._draining:
                    break
            objects: list = [self._wake_r]
            owners: dict = {}
            for worker in self._workers:
                if worker.conn is not None and not worker.conn.closed:
                    objects.append(worker.conn)
                    owners[worker.conn] = (worker, "conn")
                if worker.process is not None and worker.state in (
                    _STATE_STARTING, _STATE_READY
                ):
                    objects.append(worker.process.sentinel)
                    owners[worker.process.sentinel] = (worker, "sentinel")
            for ready in connection_wait(objects, timeout=interval):
                if ready == self._wake_r:
                    try:
                        os.read(self._wake_r, 65536)
                    except (BlockingIOError, OSError):
                        pass
                    continue
                worker, kind = owners[ready]
                if kind == "conn":
                    self._pump_conn(worker)
                elif worker.state in (_STATE_STARTING, _STATE_READY):
                    self._on_worker_loss(worker)

    def _pump_conn(self, worker: _Worker) -> None:
        if worker.conn is None:
            return
        try:
            while worker.conn.poll(0):
                self._handle_message(worker, worker.conn.recv())
        except (EOFError, OSError):
            if worker.state in (_STATE_STARTING, _STATE_READY):
                self._on_worker_loss(worker)

    def _handle_message(self, worker: _Worker, message: tuple) -> None:
        worker.last_seen = time.monotonic()
        kind = message[0]
        if kind == "ready":
            worker.state = _STATE_READY
        elif kind == "beat":
            _, tokens, busy_s, kv = message
            if tokens or busy_s:
                self.metrics.record_engine_work(tokens, busy_s)
            worker.kv = kv
        elif kind == "done":
            (
                _, job_id, pair, outcome, source, generated, cacheable, score,
            ) = message
            worker.outstanding.discard(job_id)
            task = self._jobs.pop(job_id, None)
            if task is None:
                # The at-most-once discipline makes this unreachable; the
                # counter existing (and staying zero) is the proof.
                self.metrics.record_duplicate_result()
                return
            if source == SOURCE_DEADLINE:
                promoted = self._expire_task(task)
                if promoted is not None:
                    self._requeue(promoted, count_requeue=False)
                return
            self._finish(
                task, pair, outcome, source,
                cacheable=cacheable, generated=generated, score=score,
            )

    def _dispatch(self, now: float) -> None:
        cap = self._max_outstanding()
        while any(
            w.routable and len(w.outstanding) < cap for w in self._workers
        ):
            task = self.queue.get(timeout=0.0)
            if task is None:
                return
            while task is not None and (
                task.deadline is not None and now > task.deadline
            ):
                task = self._expire_task(task)
            if task is None:
                continue
            worker = self._route(task)
            if worker is None or worker.conn is None:
                self._requeue(task, count_requeue=False)
                return
            job_id = next(self._job_ids)
            self._jobs[job_id] = task
            worker.outstanding.add(job_id)
            try:
                worker.conn.send((
                    "job", job_id, task.pair, task.deadline, task.kind,
                    task.priority,
                ))
            except (OSError, ValueError):
                # Loss handling requeues this job with the rest.
                self._on_worker_loss(worker)

    def _requeue(self, task: RevisionTask, count_requeue: bool) -> None:
        if count_requeue:
            task.requeues += 1
            if task.requeues > self.config.requeue_budget:
                self._fail_task(
                    task,
                    WorkerLostError(
                        f"revision lost its worker {task.requeues} times "
                        f"(budget {self.config.requeue_budget}); giving up"
                    ),
                )
                return
            self.metrics.record_requeued()
        try:
            displaced = self.queue.put_or_displace(task, task.priority)
        except (AdmissionError, ServingError):
            self._shed_task(task)
            return
        if displaced is not None:
            self._shed_task(displaced)

    def _on_worker_loss(self, worker: _Worker) -> None:
        """Crash/hang path: kill, drain the pipe, requeue, schedule restart."""
        if worker.state not in (_STATE_STARTING, _STATE_READY):
            return
        process = worker.process
        if process is not None and process.is_alive():
            if self._stop_sent:
                # A stopping worker closes its pipe a beat before it
                # exits; let the clean exit land instead of SIGKILLing
                # a process that is already on its way out.
                process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
        if process is not None:
            process.join(timeout=10.0)
        # Drain buffered messages to EOF *before* requeueing: results the
        # worker flushed before dying are honoured, which is what makes
        # the requeue at-most-once instead of at-least-once.
        if worker.conn is not None:
            try:
                while worker.conn.poll(0):
                    self._handle_message(worker, worker.conn.recv())
            except (EOFError, OSError):
                pass
            worker.conn.close()
            worker.conn = None
        clean = (
            self._stop_sent
            and process is not None
            and process.exitcode == 0
            and not any(jid in self._jobs for jid in worker.outstanding)
        )
        worker.state = _STATE_EXITED if clean else _STATE_DEAD
        worker.clean_exit = clean
        lost = [jid for jid in worker.outstanding if jid in self._jobs]
        worker.outstanding.clear()
        for job_id in lost:
            task = self._jobs.pop(job_id)
            self._requeue(task, count_requeue=True)
        if worker.state == _STATE_DEAD and not self._draining:
            if worker.restarts < self.config.max_worker_restarts:
                worker.restarts += 1
                backoff = min(
                    self.config.restart_backoff_s * 2 ** (worker.restarts - 1),
                    self.config.restart_backoff_max_s,
                )
                worker.incarnation = worker.restarts
                worker.restart_due = time.monotonic() + backoff
            else:
                worker.restart_due = None   # retired

    def _spawn_due_restarts(self, now: float) -> None:
        if self._draining:
            return
        for worker in self._workers:
            if (
                worker.state == _STATE_DEAD
                and worker.restart_due is not None
                and now >= worker.restart_due
            ):
                self._spawn(worker)

    def _check_hangs(self, now: float) -> None:
        timeout = self.config.heartbeat_timeout_s
        ready_timeout = self.config.worker_ready_timeout_s
        for worker in self._workers:
            silent = now - worker.last_seen
            if worker.state == _STATE_READY and silent > timeout:
                self._on_worker_loss(worker)
            elif worker.state == _STATE_STARTING and silent > ready_timeout:
                self._on_worker_loss(worker)

    def _fleet_is_lost(self) -> bool:
        if not all(
            w.retired or w.state == _STATE_EXITED for w in self._workers
        ):
            return False
        return bool(self._jobs) or self.queue.depth > 0

    def _fail_everything(self, reason: str) -> None:
        for job_id in list(self._jobs):
            task = self._jobs.pop(job_id)
            self._fail_task(task, WorkerLostError(reason))
        for worker in self._workers:
            worker.outstanding.clear()
        while True:
            task = self.queue.get(timeout=0.0)
            if task is None:
                break
            self._fail_task(task, WorkerLostError(reason))

    # -- drain -------------------------------------------------------------------
    def _drain_step(self, now: float) -> bool:
        """One supervision round of the drain state machine; True = done."""
        assert self._drain_deadline is not None
        if now > self._drain_deadline:
            # Forced shutdown: kill stragglers, resolve everything left.
            for worker in self._workers:
                if worker.state in (_STATE_STARTING, _STATE_READY):
                    self._on_worker_loss(worker)
            self._fail_everything(
                f"fleet drain exceeded {self.config.drain_timeout_s}s"
            )
            return True
        live = [
            w for w in self._workers
            if w.state in (_STATE_STARTING, _STATE_READY)
        ]
        if not self._stop_sent and self.queue.depth == 0 and not self._jobs:
            for worker in live:
                if worker.conn is not None:
                    try:
                        worker.conn.send(("stop",))
                    except (OSError, ValueError):
                        self._on_worker_loss(worker)
            self._stop_sent = True
        if self._stop_sent and not live:
            return True
        if not live and (self._jobs or self.queue.depth):
            # Every worker died mid-drain with work left: nothing will
            # ever complete it (restarts are disabled while draining).
            self._fail_everything("fleet lost all workers while draining")
            return True
        return False

    # -- persistence --------------------------------------------------------------
    def _persistence_key(self) -> str:
        serving = self.config.serving
        return config_hash({
            "what": "fleet-revision-cache",
            "max_new_tokens": self.coach.max_new_tokens,
            "copy_bias": self.coach.copy_bias,
            "quality_gate_threshold": serving.quality_gate_threshold,
        })

    def _load_persisted_cache(self) -> None:
        if self.artifact_cache is None or self.cache.capacity <= 0:
            return
        # get_json quarantines a torn artifact and reads it as a miss:
        # a fleet that died mid-persist costs a cold cache, never a crash.
        blob = self.artifact_cache.get_json(
            "fleet-cache", self._persistence_key()
        )
        if isinstance(blob, dict):
            self.cache.import_entries(blob.get("revisions"))

    def _persist_cache(self) -> None:
        if self.artifact_cache is None or self.cache.capacity <= 0:
            return
        key = self._persistence_key()
        if self.fault_plan is not None and self.fault_plan.torn_cache_write:
            # Injected fault: die mid-persist, leaving truncated bytes at
            # the artifact's real path for the next fleet to survive.
            write_torn_json(self.artifact_cache.json_path("fleet-cache", key))
            return
        self.artifact_cache.save_json(
            "fleet-cache", key, {"revisions": self.cache.export_entries()}
        )
