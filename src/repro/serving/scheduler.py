"""Streaming scheduler: pumps revision jobs through the batched engine.

The scheduler is the bridge between *requests that arrive over time* and
the :class:`~repro.nn.decoding.BatchedEngine`'s slot fleet.  It owns no
thread of its own — :meth:`pump` performs exactly one scheduling round
(expire deadline-missed jobs → admit waiting jobs into free slots → one
batched decode step → dispatch completions) and is driven either by the
server's worker thread or directly by tests, which makes the late-join
behaviour deterministic:

* a job submitted while the fleet is mid-flight is prefilled into the
  first slot that retires, so it **joins the in-flight batch** instead of
  waiting for the whole batch to drain;
* with the engine's ``prefill_chunk_tokens`` set (the serving default),
  that late-join prefill is *interleaved*: each :meth:`pump` advances
  every joining prompt (up to the engine's ``prefill_concurrency``) by
  at most one chunk alongside one decode step, so a burst of long
  prompts delays the in-flight requests by a bounded ragged chunk
  forward per step instead of a whole prompt-length forward pass each;
* admission is capped at the engine's slot count, so jobs keep waiting in
  the server's *priority* queue (not the engine's FIFO) until a slot is
  actually imminent — priorities stay meaningful under load;
* a job whose ``deadline`` has already passed is **never** handed to the
  engine (:meth:`submit` short-circuits it to ``on_expired``), and one
  that expires while waiting inside the engine is cancelled at the next
  :meth:`pump` — deadline-missed work stops consuming prefill/decode
  steps the moment the miss is observable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..nn.decoding import BatchedEngine, GenerationRequest, ScoringRequest
from .metrics import ServingMetrics


@dataclass
class EngineJob:
    """One decode or scoring job: an engine request plus its callback.

    ``deadline`` (a ``time.monotonic`` instant) marks the job stale: once
    passed, the scheduler resolves it through ``on_expired`` instead of
    (or in place of) spending further engine work on it.  Jobs without a
    deadline never expire.

    A job resolves **exactly once**: the scheduler routes every terminal
    transition through :meth:`resolve_done` / :meth:`resolve_expired`,
    which flip a one-way latch before invoking the callback.  Whatever
    interleaving of submit-time expiry, in-flight expiry, completion and
    drain races to the latch, only the first transition fires its
    callback — the rest are no-ops, so a future behind ``on_done`` can
    never be double-resolved or stranded by a lost second path.

    ``priority`` (lower value = more urgent) is stamped onto the engine
    request at submit so the engine's pending heap, parked fleet, and
    preemption policy all order by the same class.  ``on_token``
    (optional) makes the job *streaming*: every pump delivers the
    tokens produced since the last delivery, so a client observes
    incremental progress — and a preemption as a stall-and-resume —
    instead of one terminal burst.
    """

    request: GenerationRequest | ScoringRequest
    on_done: Callable  #: receives tokens (generation) or a SequenceScore
    deadline: float | None = None
    on_expired: Callable[[], None] | None = None
    priority: int = 0
    on_token: Callable[[list[int]], None] | None = None
    _sent: int = 0
    _terminal: bool = False

    def resolve_done(self, tokens) -> bool:
        """Fire ``on_done`` if no terminal callback ran yet; True if fired."""
        if self._terminal:
            return False
        self._terminal = True
        self.on_done(tokens)
        return True

    def resolve_expired(self) -> bool:
        """Fire ``on_expired`` (if any) exactly once; True if this call won."""
        if self._terminal:
            return False
        self._terminal = True
        if self.on_expired is not None:
            self.on_expired()
        return True


class StreamingScheduler:
    """Feeds :class:`EngineJob`s into a :class:`BatchedEngine` incrementally."""

    def __init__(self, engine: BatchedEngine, metrics: ServingMetrics | None = None):
        self.engine = engine
        self.metrics = metrics
        self._jobs: dict[int, EngineJob] = {}
        self._has_deadlines = False

    @property
    def free_capacity(self) -> int:
        """Jobs the engine can absorb without queueing behind other jobs."""
        return self.engine.free_capacity

    @property
    def in_flight(self) -> int:
        """Jobs submitted to the engine and not yet dispatched."""
        return len(self._jobs)

    @property
    def n_prefilling(self) -> int:
        """Jobs mid-way through chunked prompt prefill."""
        return self.engine.n_prefilling

    @property
    def has_work(self) -> bool:
        return self.engine.has_work

    def kv_stats(self) -> dict:
        """Engine occupancy + KV residency counters for ``/metrics``.

        Plain int/bool reads of engine fields (safe to call from the
        HTTP threads while the worker is pumping — values may be one
        step stale, never torn): fleet occupancy, and for a paged KV
        pool the ``free_pages`` headroom that signals admission pressure
        before requests start queueing.
        """
        return self.engine.kv_stats()

    def submit(self, job: EngineJob) -> int | None:
        """Hand one job to the engine; it joins the fleet at the next pump.

        A job whose deadline has already passed is resolved through
        ``on_expired`` immediately — the engine never sees it — and
        ``None`` is returned instead of a sequence id.
        """
        if job.deadline is not None and time.monotonic() > job.deadline:
            job.resolve_expired()
            return None
        if isinstance(job.request, ScoringRequest):
            seq_id = self.engine.submit_score(job.request)
        else:
            job.request.priority = job.priority
            seq_id = self.engine.submit(job.request)
        self._jobs[seq_id] = job
        if job.deadline is not None:
            self._has_deadlines = True
        return seq_id

    def cancel(self, seq_id: int) -> bool:
        """Cancel a tracked job (client disconnected mid-stream).

        The engine sequence is cancelled — its slot, pages, and
        reservation recycle immediately — and the job's terminal latch
        is sealed without firing any callback: there is nobody left to
        deliver to.  Returns ``False`` for unknown ids.
        """
        job = self._jobs.pop(seq_id, None)
        if job is None:
            return False
        self.engine.cancel(seq_id)
        job._terminal = True
        self._has_deadlines = any(
            j.deadline is not None for j in self._jobs.values()
        )
        return True

    def preempt_victim(self, than_priority: int) -> int | None:
        """Evict the lowest-priority active decode strictly below
        ``than_priority`` so a more urgent arrival can take its slot;
        the victim resumes later with identical tokens.  ``None`` when
        nothing qualifies (see :meth:`BatchedEngine.preempt_victim`)."""
        return self.engine.preempt_victim(than_priority)

    def _expire_overdue(self) -> None:
        """Cancel in-flight jobs whose deadline passed while they waited.

        Runs only when some tracked job carries a deadline.  A cancelled
        job's partial tokens are discarded (its deadline makes the result
        worthless) and its queue entry / parked slab / KV slot is freed
        for live work.
        """
        now = time.monotonic()
        overdue = [
            (seq_id, job)
            for seq_id, job in self._jobs.items()
            if job.deadline is not None and now > job.deadline
        ]
        for seq_id, job in overdue:
            if self.engine.cancel(seq_id):
                del self._jobs[seq_id]
                job.resolve_expired()
        if not overdue:
            self._has_deadlines = any(
                job.deadline is not None for job in self._jobs.values()
            )

    def pump(self) -> int:
        """One round: a single engine step plus completion dispatch.

        Returns the number of jobs completed this round.  Engine busy
        time and produced tokens are recorded into the metrics collector.
        """
        if not self.engine.has_work:
            return 0
        if self._has_deadlines:
            self._expire_overdue()
        start = time.perf_counter()
        self.engine.step()
        busy = time.perf_counter() - start
        done = self.engine.collect()
        if self.metrics is not None:
            # Score completions (SequenceScore) and cancellation residue
            # (None) spend no decode tokens; only token lists count.
            self.metrics.record_engine_work(
                sum(len(v) for v in done.values() if isinstance(v, list)), busy
            )
        completed = 0
        first_error: BaseException | None = None
        for seq_id, tokens in done.items():
            job = self._jobs.pop(seq_id, None)
            if job is None:
                # Residue of a cancelled (expired) job this same round.
                continue
            try:
                if (
                    job.on_token is not None
                    and isinstance(tokens, list)
                    and len(tokens) > job._sent
                ):
                    # Flush the final delta before the terminal event so
                    # a streaming client sees every token exactly once.
                    job.on_token(tokens[job._sent:])
                    job._sent = len(tokens)
                if job.resolve_done(tokens):
                    completed += 1
            except Exception as exc:  # noqa: BLE001 - callback-owned failure
                # A raising on_done must not strand the *other* jobs that
                # finished this round; dispatch them all, then surface the
                # first failure to the pump driver.
                if first_error is None:
                    first_error = exc
        for seq_id, job in self._jobs.items():
            # Incremental delivery for still-running streaming jobs: the
            # tokens this step produced go out now, not at completion.
            if job.on_token is None:
                continue
            produced = self.engine.produced_so_far(seq_id)
            if produced is not None and len(produced) > job._sent:
                try:
                    job.on_token(produced[job._sent:])
                except Exception as exc:  # noqa: BLE001 - callback-owned
                    if first_error is None:
                        first_error = exc
                job._sent = len(produced)
        if first_error is not None:
            raise first_error
        return completed

    def drain(self) -> int:
        """Pump until the engine is empty; returns total jobs completed.

        Finishes with a safety sweep: any job the scheduler still tracks
        once the engine reports no work (a cancellation the engine
        absorbed without a completion record, or expiry racing the final
        pump) is resolved through its expiry path — exactly once, via the
        job's terminal latch — so no future outlives a drain unresolved.
        """
        total = 0
        while self.engine.has_work:
            total += self.pump()
        if self._jobs:
            leaked = list(self._jobs.values())
            self._jobs.clear()
            self._has_deadlines = False
            for job in leaked:
                job.resolve_expired()
        return total
