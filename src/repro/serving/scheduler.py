"""Streaming scheduler: pumps revision jobs through the batched engine.

The scheduler is the bridge between *requests that arrive over time* and
the :class:`~repro.nn.decoding.BatchedEngine`'s slot fleet.  It owns no
thread of its own — :meth:`pump` performs exactly one scheduling round
(admit waiting jobs into free slots → one batched decode step → dispatch
completions) and is driven either by the server's worker thread or
directly by tests, which makes the late-join behaviour deterministic:

* a job submitted while the fleet is mid-flight is prefilled into the
  first slot that retires, so it **joins the in-flight batch** instead of
  waiting for the whole batch to drain;
* with the engine's ``prefill_chunk_tokens`` set (the serving default),
  that late-join prefill is *interleaved*: each :meth:`pump` advances the
  joining prompt by at most one chunk alongside one decode step, so a
  long prompt delays the in-flight requests by a bounded chunk forward
  per step instead of a whole prompt-length forward pass;
* admission is capped at the engine's slot count, so jobs keep waiting in
  the server's *priority* queue (not the engine's FIFO) until a slot is
  actually imminent — priorities stay meaningful under load.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..nn.decoding import BatchedEngine, GenerationRequest
from .metrics import ServingMetrics


@dataclass
class EngineJob:
    """One decode job: an engine request plus its completion callback."""

    request: GenerationRequest
    on_done: Callable[[list[int]], None]


class StreamingScheduler:
    """Feeds :class:`EngineJob`s into a :class:`BatchedEngine` incrementally."""

    def __init__(self, engine: BatchedEngine, metrics: ServingMetrics | None = None):
        self.engine = engine
        self.metrics = metrics
        self._jobs: dict[int, EngineJob] = {}

    @property
    def free_capacity(self) -> int:
        """Jobs the engine can absorb without queueing behind other jobs."""
        return self.engine.free_capacity

    @property
    def in_flight(self) -> int:
        """Jobs submitted to the engine and not yet dispatched."""
        return len(self._jobs)

    @property
    def n_prefilling(self) -> int:
        """Jobs mid-way through chunked prompt prefill (0 or 1)."""
        return self.engine.n_prefilling

    @property
    def has_work(self) -> bool:
        return self.engine.has_work

    def submit(self, job: EngineJob) -> int:
        """Hand one job to the engine; it joins the fleet at the next pump."""
        seq_id = self.engine.submit(job.request)
        self._jobs[seq_id] = job
        return seq_id

    def pump(self) -> int:
        """One round: a single engine step plus completion dispatch.

        Returns the number of jobs completed this round.  Engine busy
        time and produced tokens are recorded into the metrics collector.
        """
        if not self.engine.has_work:
            return 0
        start = time.perf_counter()
        self.engine.step()
        busy = time.perf_counter() - start
        done = self.engine.collect()
        if self.metrics is not None:
            self.metrics.record_engine_work(
                sum(len(tokens) for tokens in done.values()), busy
            )
        for seq_id, tokens in done.items():
            job = self._jobs.pop(seq_id)
            job.on_done(tokens)
        return len(done)

    def drain(self) -> int:
        """Pump until the engine is empty; returns total jobs completed."""
        total = 0
        while self.engine.has_work:
            total += self.pump()
        return total
