"""Deterministic fault injection for the serving fleet.

Fault tolerance that is only exercised by real hardware failures is
untested fault tolerance.  This module gives the fleet a seeded,
reproducible failure schedule: a :class:`FaultPlan` describes *which*
worker misbehaves, *how* (crash mid-decode, hang, drop a finished result
on the floor, slow its pipe), and *when* (at the k-th engine step), and
a worker-side :class:`FaultInjector` executes the schedule from inside
the victim process.  The fuzz harness (``tests/test_fuzz_fleet.py``)
draws thousands of plans from seeds and asserts the fleet's invariants
hold under every one of them: no lost results, no duplicates, exact
token parity with the sequential coach, no leaked KV pages.

Faults only fire in a worker's **first incarnation** — the supervisor's
replacement processes run clean, so every scenario converges instead of
crash-looping forever.

The same schedule is reachable from the environment
(:meth:`FaultPlan.from_env`) for ops drills against a live fleet:
``REPRO_FAULT_WORKER``, ``REPRO_FAULT_CRASH_STEP``,
``REPRO_FAULT_HANG_STEP``, ``REPRO_FAULT_DROP_RESULTS``,
``REPRO_FAULT_SEND_DELAY_S``, ``REPRO_FAULT_TORN_CACHE``.

The **network layer** gets the same treatment: a
:class:`NetworkFaultPlan` schedules one :class:`ConnectionFault` per
TCP connection (reset mid-response, truncated body, slow-loris stall,
synthesized 503 burst), and a seeded in-process
:class:`FaultyProxy` sits between an HTTP client and the revision
front-end executing the schedule on real sockets.
``tests/test_fuzz_network.py`` drives
:class:`~repro.serving.httpclient.RevisionHTTPClient` (+ run journal)
through the proxy and asserts every pair still resolves exactly once
with token parity.  Env knobs for live drills:
``REPRO_FAULT_NET_CONN``, ``REPRO_FAULT_NET_KIND``,
``REPRO_FAULT_NET_AFTER_BYTES``, ``REPRO_FAULT_NET_STALL_S``,
``REPRO_FAULT_NET_RETRY_AFTER_S``.
"""

from __future__ import annotations

import os
import socket
import struct
import threading
import time
from dataclasses import dataclass, field

import numpy as np

#: Exit code of an injected crash — distinguishes scheduled faults from
#: genuine worker bugs in the supervisor's logs.
FAULT_EXIT_CODE = 3

#: How long an injected hang sleeps: effectively forever next to any
#: heartbeat timeout, short enough that a leaked process dies on its own.
_HANG_S = 600.0


@dataclass(frozen=True)
class WorkerFaults:
    """The failure schedule of one worker process (first incarnation).

    ``crash_at_step`` / ``hang_at_step`` count the worker's engine pump
    steps, so both fire *mid-decode* with requests in flight — the
    interesting moment for the requeue discipline.  ``drop_results``
    silently discards that many finished results and then crashes: a
    drop without the crash would strand futures (the supervisor believes
    the worker still owns them), so the two are coupled — exactly the
    torn-pipe behaviour of a process dying between completing a job and
    flushing its pipe.  ``send_delay_s`` slows every pipe message to
    stress the supervisor's multiplexing (results arriving interleaved
    with heartbeats and deaths), without changing any outcome.
    """

    crash_at_step: int | None = None
    hang_at_step: int | None = None
    drop_results: int = 0
    send_delay_s: float = 0.0

    @property
    def is_lethal(self) -> bool:
        """Whether this schedule kills the worker (crash, hang, or drop)."""
        return (
            self.crash_at_step is not None
            or self.hang_at_step is not None
            or self.drop_results > 0
        )


@dataclass(frozen=True)
class FaultPlan:
    """A full fleet failure schedule, reproducible from its seed.

    ``workers`` maps worker slot index → that worker's schedule; slots
    absent from the map run clean.  ``torn_cache_write`` additionally
    sabotages the supervisor's drain-time cache persistence with a
    truncated JSON file (simulating a writer killed mid-save), which the
    next fleet must quarantine and recompute around.
    """

    seed: int = 0
    workers: dict[int, WorkerFaults] = field(default_factory=dict)
    torn_cache_write: bool = False

    def for_worker(self, slot: int) -> WorkerFaults | None:
        return self.workers.get(slot)

    @classmethod
    def from_seed(cls, seed: int, n_workers: int, max_step: int = 12) -> FaultPlan:
        """Draw one reproducible scenario: same seed, same schedule.

        Picks 1..n_workers victims (weighted towards one) and one fault
        kind per victim; crash/hang steps land in ``[1, max_step]`` so
        the fault interleaves with real decode work at fleet scale.
        """
        rng = np.random.default_rng(seed)
        n_victims = 1 + int(rng.random() < 0.3 and n_workers > 1)
        victims = rng.choice(n_workers, size=n_victims, replace=False)
        workers: dict[int, WorkerFaults] = {}
        for victim in victims:
            kind = rng.choice(["crash", "hang", "drop", "slow", "none"])
            step = int(rng.integers(1, max_step + 1))
            if kind == "crash":
                faults = WorkerFaults(crash_at_step=step)
            elif kind == "hang":
                faults = WorkerFaults(hang_at_step=step)
            elif kind == "drop":
                faults = WorkerFaults(drop_results=int(rng.integers(1, 3)))
            elif kind == "slow":
                faults = WorkerFaults(send_delay_s=float(rng.uniform(0.001, 0.01)))
            else:
                continue
            workers[int(victim)] = faults
        return cls(
            seed=seed,
            workers=workers,
            torn_cache_write=bool(rng.random() < 0.25),
        )

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None) -> FaultPlan | None:
        """Build a plan from ``REPRO_FAULT_*`` env vars; ``None`` when unset."""
        env = os.environ if environ is None else environ
        crash = env.get("REPRO_FAULT_CRASH_STEP")
        hang = env.get("REPRO_FAULT_HANG_STEP")
        drop = env.get("REPRO_FAULT_DROP_RESULTS")
        delay = env.get("REPRO_FAULT_SEND_DELAY_S")
        torn = env.get("REPRO_FAULT_TORN_CACHE", "") in ("1", "on", "true")
        if not any((crash, hang, drop, delay, torn)):
            return None
        faults = WorkerFaults(
            crash_at_step=int(crash) if crash else None,
            hang_at_step=int(hang) if hang else None,
            drop_results=int(drop) if drop else 0,
            send_delay_s=float(delay) if delay else 0.0,
        )
        slot = int(env.get("REPRO_FAULT_WORKER", "0"))
        workers = {slot: faults} if faults.is_lethal or faults.send_delay_s else {}
        return cls(seed=0, workers=workers, torn_cache_write=torn)


class FaultInjector:
    """Executes one :class:`WorkerFaults` schedule inside the victim.

    The fleet worker loop calls :meth:`on_step` once per engine pump,
    :meth:`on_result` as each finished job is about to be reported, and
    :meth:`before_send` around every pipe write.  All hooks are no-ops
    once the schedule is spent, and the injector for a clean worker is
    simply never constructed.
    """

    def __init__(self, faults: WorkerFaults):
        self.faults = faults
        self._steps = 0
        self._dropped = 0

    def on_step(self) -> None:
        """Fire crash/hang scheduled at this engine step (pre-step)."""
        self._steps += 1
        if self.faults.crash_at_step is not None:
            if self._steps >= self.faults.crash_at_step:
                os._exit(FAULT_EXIT_CODE)
        if self.faults.hang_at_step is not None:
            if self._steps >= self.faults.hang_at_step:
                time.sleep(_HANG_S)  # killed by the supervisor long before
                os._exit(FAULT_EXIT_CODE)

    def on_result(self) -> bool:
        """True = drop this finished result (and crash once quota is met)."""
        if self._dropped >= self.faults.drop_results:
            return False
        self._dropped += 1
        if self._dropped >= self.faults.drop_results:
            # Dying with unsent results IS the fault being modelled; a
            # drop without death would strand the futures forever.
            os._exit(FAULT_EXIT_CODE)
        return True

    def before_send(self) -> None:
        if self.faults.send_delay_s > 0.0:
            time.sleep(self.faults.send_delay_s)


def write_torn_json(path: str | os.PathLike) -> None:
    """Plant a truncated JSON artifact, as a crashed pre-hardening writer
    would: bytes that parse up to the cut and then stop mid-token."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"revisions": [{"key": "deadbeef", "instr')


# -- network-layer fault injection -------------------------------------------------

#: ``ConnectionFault.kind`` values.
NET_FAULT_KINDS = (
    "none", "reset", "truncate", "stall", "reject", "stream_reset",
)


@dataclass(frozen=True)
class ConnectionFault:
    """What happens to one TCP connection through the faulty proxy.

    ``after_bytes`` counts *response* bytes relayed before the fault
    fires — ``0`` hits the very first response byte (the client sees a
    torn status line), a mid-body value tears the JSON payload.  The
    response side is the interesting one for retry semantics: the
    server has already done the work, so a naive re-send is exactly the
    at-least-once duplicate the server's dedup cache must absorb.

    * ``reset`` — abort the client socket (``SO_LINGER`` 0 → RST); the
      client sees ``ConnectionResetError`` mid-read.
    * ``truncate`` — clean FIN short of the announced Content-Length;
      the client sees ``IncompleteRead``.
    * ``stall`` — hold the connection open, bytes withheld, for
      ``stall_s``; a client with a sane timeout gives up first.
    * ``reject`` — never contact the upstream: synthesize a ``503``
      with ``Retry-After: retry_after_s`` (an overload burst).
    * ``stream_reset`` — the mid-stream disconnect: identical RST
      machinery to ``reset``, but aimed at SSE responses
      (``"stream": true``), where ``after_bytes`` lands between token
      events rather than inside a one-shot JSON body.  The server must
      notice the torn stream, cancel the sequence, and recycle its KV
      pages — kept a distinct kind so directed tests and
      ``REPRO_FAULT_NET_KIND`` can target streams without touching the
      seeded draw pool (existing fuzz seeds stay aligned).
    """

    kind: str = "none"
    after_bytes: int = 0
    stall_s: float = 0.0
    retry_after_s: float = 0.05


@dataclass(frozen=True)
class NetworkFaultPlan:
    """A per-connection failure schedule, reproducible from its seed.

    ``connections`` maps the proxy's connection ordinal (0-based, in
    accept order) → the fault that connection suffers; absent ordinals
    relay cleanly.  A single-connection-per-request client (like
    :class:`~repro.serving.httpclient.RevisionHTTPClient`) therefore
    sees a deterministic fault sequence for a given seed.
    """

    seed: int = 0
    connections: dict[int, ConnectionFault] = field(default_factory=dict)

    def for_connection(self, n: int) -> ConnectionFault | None:
        return self.connections.get(n)

    @property
    def n_faulty(self) -> int:
        return sum(
            1 for f in self.connections.values() if f.kind != "none"
        )

    @classmethod
    def from_seed(
        cls,
        seed: int,
        n_connections: int = 12,
        p_fault: float = 0.4,
        max_after_bytes: int = 600,
        stall_s: float = 0.6,
        retry_after_s: float = 0.05,
    ) -> "NetworkFaultPlan":
        """Draw one reproducible schedule: same seed, same faults.

        Each of the first ``n_connections`` connections independently
        suffers a fault with probability ``p_fault``; kinds are drawn
        uniformly and ``after_bytes`` lands anywhere from the status
        line (0) to deep in the body (``max_after_bytes``).
        """
        rng = np.random.default_rng(seed)
        connections: dict[int, ConnectionFault] = {}
        for n in range(n_connections):
            if rng.random() >= p_fault:
                continue
            kind = str(rng.choice(["reset", "truncate", "stall", "reject"]))
            connections[n] = ConnectionFault(
                kind=kind,
                after_bytes=int(rng.integers(0, max_after_bytes + 1)),
                stall_s=stall_s,
                retry_after_s=retry_after_s,
            )
        return cls(seed=seed, connections=connections)

    @classmethod
    def from_env(
        cls, environ: dict[str, str] | None = None
    ) -> "NetworkFaultPlan | None":
        """Build a plan from ``REPRO_FAULT_NET_*`` vars; ``None`` if unset."""
        env = os.environ if environ is None else environ
        kind = env.get("REPRO_FAULT_NET_KIND")
        if not kind:
            return None
        if kind not in NET_FAULT_KINDS:
            raise ValueError(
                f"REPRO_FAULT_NET_KIND must be one of {NET_FAULT_KINDS}, "
                f"got {kind!r}"
            )
        fault = ConnectionFault(
            kind=kind,
            after_bytes=int(env.get("REPRO_FAULT_NET_AFTER_BYTES", "0")),
            stall_s=float(env.get("REPRO_FAULT_NET_STALL_S", "0.6")),
            retry_after_s=float(
                env.get("REPRO_FAULT_NET_RETRY_AFTER_S", "0.05")
            ),
        )
        conn = int(env.get("REPRO_FAULT_NET_CONN", "0"))
        return cls(seed=0, connections={conn: fault})


def _abort_socket(sock: socket.socket) -> None:
    """Close with ``SO_LINGER`` 0: the peer gets an RST, not a FIN."""
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    sock.close()


class FaultyProxy:
    """Seeded in-process TCP proxy injecting faults on real sockets.

    Sits between an HTTP client and the revision front-end: every
    accepted connection is relayed byte-for-byte to
    ``(upstream_host, upstream_port)`` unless its
    :class:`ConnectionFault` says otherwise.  Faults execute at the
    socket layer — an injected ``reset`` is a genuine TCP RST, a
    ``truncate`` a genuine early FIN — so the client under test
    exercises the exact error paths a flaky network produces, not
    mocked exceptions.  ``port=0`` binds an ephemeral port; read
    :attr:`address` after construction.  Use as a context manager or
    call :meth:`start`/:meth:`stop`.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: NetworkFaultPlan | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.upstream = (upstream_host, upstream_port)
        self.plan = plan if plan is not None else NetworkFaultPlan()
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.connections_seen = 0
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        host, port = self._listener.getsockname()[:2]
        return f"http://{host}:{port}"

    def start(self) -> "FaultyProxy":
        if self._thread is None:
            self._stopping.clear()
            self._thread = threading.Thread(
                target=self._serve, name="faulty-proxy", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stopping.set()
        self._thread.join()
        self._thread = None
        self._listener.close()

    def __enter__(self) -> "FaultyProxy":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- internals ---------------------------------------------------------------
    def _serve(self) -> None:
        while not self._stopping.is_set():
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                ordinal = self.connections_seen
                self.connections_seen += 1
            fault = self.plan.for_connection(ordinal) or ConnectionFault()
            threading.Thread(
                target=self._handle,
                args=(client, fault),
                name=f"faulty-proxy-conn-{ordinal}",
                daemon=True,
            ).start()

    def _handle(self, client: socket.socket, fault: ConnectionFault) -> None:
        client.settimeout(30.0)
        if fault.kind == "reject":
            self._reject(client, fault)
            return
        try:
            upstream = socket.create_connection(self.upstream, timeout=30.0)
        except OSError:
            _abort_socket(client)
            return
        request_pump = threading.Thread(
            target=self._pump_request,
            args=(client, upstream),
            daemon=True,
        )
        request_pump.start()
        self._pump_response(upstream, client, fault)

    def _reject(self, client: socket.socket, fault: ConnectionFault) -> None:
        """Synthesize an overload burst without touching the upstream."""
        try:
            # Drain the request first: closing with unread bytes in the
            # receive buffer sends an RST that can destroy the 503 before
            # the client reads it — we want the Retry-After delivered.
            client.settimeout(1.0)
            client.recv(1 << 16)
        except OSError:
            pass
        body = b'{"error": "injected 503 (network fault plan)"}'
        head = (
            "HTTP/1.1 503 Service Unavailable\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Retry-After: {fault.retry_after_s}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        try:
            client.sendall(head + body)
        except OSError:
            pass
        client.close()

    def _pump_request(
        self, client: socket.socket, upstream: socket.socket
    ) -> None:
        """Relay client → upstream until the client stops sending."""
        try:
            while True:
                data = client.recv(4096)
                if not data:
                    break
                upstream.sendall(data)
            upstream.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def _pump_response(
        self,
        upstream: socket.socket,
        client: socket.socket,
        fault: ConnectionFault,
    ) -> None:
        """Relay upstream → client, firing the fault at ``after_bytes``."""
        sent = 0
        try:
            while True:
                data = upstream.recv(4096)
                if not data:
                    break
                if fault.kind in ("reset", "truncate", "stall", "stream_reset"):
                    budget = fault.after_bytes - sent
                    if budget < len(data):
                        head = data[:max(0, budget)]
                        if head:
                            client.sendall(head)
                            sent += len(head)
                        if fault.kind in ("reset", "stream_reset"):
                            _abort_socket(client)
                        elif fault.kind == "truncate":
                            client.close()
                        else:  # stall: withhold bytes until the client quits
                            time.sleep(fault.stall_s)
                            _abort_socket(client)
                        upstream.close()
                        return
                client.sendall(data)
                sent += len(data)
            client.close()
        except OSError:
            pass
        finally:
            try:
                upstream.close()
            except OSError:
                pass
